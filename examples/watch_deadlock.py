#!/usr/bin/env python3
"""Watch a deadlock form, get detected, and get broken — live.

Steps a deadlock-prone configuration (DOR, 1 VC, past saturation) cycle by
cycle, printing the network occupancy grid periodically and, when the
detector finds a knot, its full anatomy and position in the grid; then
shows the network after Disha-style recovery breaks it.

Usage::

    python examples/watch_deadlock.py
"""

from __future__ import annotations

from repro import NetworkSimulator, SimulationConfig
from repro.viz import describe_event, render_knot, render_occupancy


def main() -> None:
    config = SimulationConfig(
        k=6, n=2, routing="dor", num_vcs=1, message_length=8,
        load=1.0, detection_interval=25, recovery="disha",
        warmup_cycles=0, measure_cycles=1, seed=5,
    )
    sim = NetworkSimulator(config)
    print(f"watching {config.label()} for its first true deadlock...\n")

    shown = 0
    for _ in range(20_000):
        sim.step()
        if sim.cycle % 200 == 0 and shown < 3:
            print(render_occupancy(sim))
            print()
            shown += 1
        record = sim.detector.records[-1] if sim.detector.records else None
        if record and record.cycle == sim.cycle and record.events:
            event = record.events[0]
            print(describe_event(event))
            print()
            print(render_knot(sim, event))
            print()
            victim = sorted(event.deadlock_set)[0]
            print(f"recovery removed one deadlock-set message; the other "
                  f"{len(event.deadlock_set) - 1} resume as its channels free")
            for _ in range(50):
                sim.step()
            print()
            print("fifty cycles later:")
            print(render_occupancy(sim))
            return
    print("no deadlock formed in 20,000 cycles (try another seed)")


if __name__ == "__main__":
    main()
