#!/usr/bin/env python3
"""Quickstart: simulate a torus under unrestricted routing and watch true
deadlocks form, be characterized, and be recovered.

Runs dimension-order routing with a single virtual channel — the
configuration of the paper's Figure 1 — on an 8-ary 2-cube at a load past
saturation, then prints the characterization of every detected deadlock.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import NetworkSimulator, SimulationConfig


def main() -> None:
    config = SimulationConfig(
        k=8,
        n=2,
        bidirectional=True,
        routing="dor",  # static dimension-order routing
        num_vcs=1,  # one VC: the classic deadlock-prone setup
        buffer_depth=2,  # wormhole switching, paper default
        message_length=16,
        traffic="uniform",
        load=0.8,  # past saturation for this network
        detection_interval=50,  # paper: detect every 50 cycles
        recovery="disha",  # break deadlocks Disha-style
        warmup_cycles=500,
        measure_cycles=3_000,
        seed=7,
    )
    sim = NetworkSimulator(config)
    print(f"simulating {config.label()} ...")
    result = sim.run()

    print()
    print("run summary")
    print("-----------")
    print(f"  messages delivered        : {result.delivered}")
    print(f"  delivered via recovery    : {result.recovered}")
    print(f"  average latency (cycles)  : {result.avg_latency:.1f}")
    cap = sim.topology.capacity_flits_per_node_cycle
    print(f"  normalized throughput     : {result.normalized_throughput(cap):.3f}")
    print(f"  avg blocked messages      : {result.avg_blocked_messages:.1f} "
          f"({100 * result.avg_blocked_fraction:.1f}% of those in flight)")
    print()
    print("deadlock characterization")
    print("-------------------------")
    print(f"  true deadlocks detected   : {result.deadlocks}")
    print(f"  normalized deadlocks      : {result.normalized_deadlocks:.4f} "
          f"per message delivered")
    print(f"  single-cycle deadlocks    : {result.single_cycle_deadlocks}")
    print(f"  multi-cycle deadlocks     : {result.multi_cycle_deadlocks}")
    if result.deadlocks:
        print(f"  avg deadlock set size     : {result.avg_deadlock_set_size:.1f} messages")
        print(f"  avg resource set size     : {result.avg_resource_set_size:.1f} channels")
        print(f"  avg knot cycle density    : {result.avg_knot_cycle_density:.1f} cycles")
    print(f"  avg dependency cycles/CWG : {result.avg_cycle_count:.1f}")

    # Dissect the first detected deadlock in detail.
    if sim.detector.events:
        ev = sim.detector.events[0]
        print()
        print(f"anatomy of the first deadlock (cycle {ev.cycle})")
        print("-----------------------------------------")
        print(f"  knot             : {len(ev.knot)} channels")
        print(f"  deadlock set     : messages {sorted(ev.deadlock_set)}")
        print(f"  resource set     : {ev.resource_set_size} channels")
        print(f"  knot cycle density: {ev.knot_cycle_density} "
              f"({ev.classification})")
        print(f"  dependent msgs   : {sorted(ev.dependent) or 'none'}")
        print(f"  transient deps   : {sorted(ev.transient_dependent) or 'none'}")


if __name__ == "__main__":
    main()
