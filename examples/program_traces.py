#!/usr/bin/env python3
"""Trace-driven deadlock study: program-phase workloads.

The paper's future work proposes "program-driven simulations".  This
example replays three synthetic program-communication traces — stencil
halo exchange, FFT butterfly stages, and a bursty all-to-all — through the
flit-level simulator and reports deadlock formation per phase.  The bursty
all-to-all (every node transmitting simultaneously) is the maximally
correlated regime in which knots form most readily under DOR with one VC.

Usage::

    python examples/program_traces.py
"""

from __future__ import annotations

from repro import SimulationConfig, build_topology
from repro.metrics.analysis import analyze_records
from repro.network.simulator import NetworkSimulator
from repro.traffic.trace import all_to_all_trace, butterfly_trace, stencil_trace


def replay(name, cfg, trace, max_cycles=40_000):
    sim = NetworkSimulator(cfg, trace=trace)
    result = sim.run_to_drain(max_cycles=max_cycles)
    analysis = analyze_records(sim.detector.records)
    done = result.delivered + result.recovered
    print(f"{name}:")
    print(f"  messages      : {done}/{len(trace)} completed "
          f"({result.recovered} via recovery) in {sim.cycle} cycles")
    print(f"  deadlocks     : {result.deadlocks} "
          f"(avg set {result.avg_deadlock_set_size:.1f}, "
          f"avg density {result.avg_knot_cycle_density:.1f})")
    print(f"  peak blocked  : "
          f"{max(result.blocked_samples, default=0)} messages")
    print(f"  analysis      : {analysis.summary()}")
    print()


def main() -> None:
    cfg = SimulationConfig(
        k=6, n=2, routing="dor", num_vcs=1, message_length=8,
        detection_interval=25, warmup_cycles=0, measure_cycles=1,
    )
    topo = build_topology(cfg)

    print(f"replaying program traces on {cfg.k}-ary {cfg.n}-cube, "
          f"{cfg.routing.upper()}{cfg.num_vcs}\n")
    replay(
        "stencil halo exchange (10 iterations)",
        cfg,
        stencil_trace(topo, iterations=10, period=300, length=8),
    )
    # the butterfly needs a power-of-two node count: use a 4-ary 2-cube
    bf_cfg = cfg.replace(k=4)
    replay(
        "butterfly / FFT stages (4-ary 2-cube)",
        bf_cfg,
        butterfly_trace(build_topology(bf_cfg), period=300, length=8),
    )
    replay(
        "bursty all-to-all (single instant)",
        cfg,
        all_to_all_trace(topo, period=0, length=8),
    )
    print("staggered all-to-all for comparison (one round per 150 cycles):")
    replay(
        "staggered all-to-all",
        cfg,
        all_to_all_trace(topo, period=150, length=8),
    )


if __name__ == "__main__":
    main()
