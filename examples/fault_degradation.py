#!/usr/bin/env python3
"""Faulty links and deadlock susceptibility (the Figure 2 mechanism, live).

The paper's Figure 2 shows how *exhausted adaptivity* — e.g. due to faulty
links — lets even adaptive routing form single-cycle deadlocks.  This
example measures that directly: it removes progressively more physical
channels from a torus (the paper's future-work "irregular topology" item)
and reruns TFAR with one VC at a fixed load, reporting how deadlock
frequency responds as routing options disappear.

Usage::

    python examples/fault_degradation.py
"""

from __future__ import annotations

import random

from repro import NetworkSimulator, SimulationConfig, build_topology


def failed_link_sets(k: int, n: int, counts: list[int], seed: int):
    """Random link subsets to fail, one nested set per count."""
    topo = build_topology(SimulationConfig(k=k, n=n))
    rng = random.Random(seed)
    links = [(l.src, l.dst) for l in topo.links]
    rng.shuffle(links)
    return {c: tuple(links[:c]) for c in counts}


def main() -> None:
    k, n = 6, 2
    base = SimulationConfig(
        k=k,
        n=n,
        routing="tfar",
        num_vcs=1,
        message_length=8,
        load=0.7,
        warmup_cycles=300,
        measure_cycles=2_000,
        seed=11,
    )
    counts = [0, 2, 4, 8]
    fail_sets = failed_link_sets(k, n, counts, seed=3)

    print(f"TFAR, 1 VC, {k}-ary {n}-cube, load={base.load} — failing links:")
    print(f"{'failed':>7}  {'deadlocks':>9}  {'norm':>8}  {'blocked%':>8}  {'latency':>8}")
    for count in counts:
        cfg = base.replace(failed_links=fail_sets[count])
        try:
            result = NetworkSimulator(cfg).run()
        except Exception as exc:  # a set may disconnect the network
            print(f"{count:>7}  skipped ({exc})")
            continue
        print(
            f"{count:>7}  {result.deadlocks:>9}  "
            f"{result.normalized_deadlocks:>8.4f}  "
            f"{100 * result.avg_blocked_fraction:>8.1f}  "
            f"{result.avg_latency:>8.1f}"
        )
    print()
    print("fewer surviving channels => fewer routing alternatives => the")
    print("correlated dependencies a knot needs form more easily")


if __name__ == "__main__":
    main()
