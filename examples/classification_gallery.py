#!/usr/bin/env python3
"""The paper's Section 2 deadlock taxonomy, reproduced end to end.

Builds the channel wait-for graphs of the paper's Figures 1-4 and runs the
knot detector and cycle counter over each, printing the full
characterization: knot, deadlock set, resource set, knot cycle density,
classification, and dependent messages.  Also emits Graphviz DOT for each
CWG so the figures can be rendered.

Usage::

    python examples/classification_gallery.py [--dot]
"""

from __future__ import annotations

import sys

from repro.core.cycles import count_simple_cycles
from repro.core.gallery import figure1_cwg, figure2_cwg, figure3_cwg, figure4_cwg
from repro.core.knots import find_knots


def analyze(name: str, title: str, g, show_dot: bool) -> None:
    adjacency = g.adjacency()
    knots = find_knots(adjacency)
    total_cycles = count_simple_cycles(adjacency)

    print(f"{name}: {title}")
    print("-" * 72)
    print(f"  vertices: {g.num_vertices}, arcs: {g.num_arcs}, "
          f"blocked messages: {len(g.blocked_messages())}")
    print(f"  resource-dependency cycles in CWG: {total_cycles.count}")
    if not knots:
        print("  no knot => NO deadlock (cycles are necessary, not sufficient)")
    for knot in knots:
        deadlock_set = g.messages_owning(knot)
        resource_set = g.resources_of(deadlock_set)
        sub = {v: [w for w in adjacency[v] if w in knot] for v in knot}
        density = count_simple_cycles(sub).count
        kind = "single-cycle" if density <= 1 else "multi-cycle"
        print(f"  KNOT {sorted(map(str, knot))}")
        print(f"    deadlock set      : m{sorted(deadlock_set)}")
        print(f"    resource set size : {len(resource_set)}")
        print(f"    knot cycle density: {density} => {kind} deadlock")
        # fan-out of each blocked deadlock-set message
        fans = {m: g.fan_out(m) for m in sorted(deadlock_set)}
        print(f"    routing fan-outs  : {fans}")
        deps = [
            m for m in g.blocked_messages()
            if m not in deadlock_set
            and all(g.owner.get(t) in deadlock_set for t in g.requests[m])
        ]
        if deps:
            print(f"    dependent msgs    : m{sorted(deps)} "
                  "(blocked by the deadlock, but removing them cannot fix it)")
    if show_dot:
        print()
        print(g.to_dot())
    print()


def main() -> None:
    show_dot = "--dot" in sys.argv[1:]
    analyze(
        "Figure 1",
        "single-cycle deadlock, DOR with 1 VC (static routing, fan-out 1)",
        figure1_cwg(),
        show_dot,
    )
    analyze(
        "Figure 2",
        "single-cycle deadlock, minimal adaptive routing with exhausted "
        "adaptivity (plus a dependent message)",
        figure2_cwg(),
        show_dot,
    )
    analyze(
        "Figure 3",
        "multi-cycle deadlock, adaptive routing with 2 VCs (fan-out 2)",
        figure3_cwg(),
        show_dot,
    )
    analyze(
        "Figure 4",
        "cyclic NON-deadlock: cycles without a knot (escape channel exists)",
        figure4_cwg(),
        show_dot,
    )


if __name__ == "__main__":
    main()
