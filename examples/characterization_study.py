#!/usr/bin/env python3
"""Run the paper's entire characterization study and print every table.

Drives all eight experiment runners (Figures 5-8, Sections 3.5/3.6, the
recovery-vs-avoidance comparison and the detector ablation) at the chosen
scale and prints the paper-style tables plus shape checks.

Usage::

    python examples/characterization_study.py [--scale tiny|bench|paper]
    python examples/characterization_study.py --only FIG5,FIG7
"""

from __future__ import annotations

import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main() -> None:
    argv = sys.argv[1:]
    scale = "tiny"
    if "--scale" in argv:
        scale = argv[argv.index("--scale") + 1]
    wanted = list(ALL_EXPERIMENTS)
    if "--only" in argv:
        wanted = argv[argv.index("--only") + 1].split(",")

    for exp_id in wanted:
        runner = ALL_EXPERIMENTS[exp_id]
        print("#" * 72)
        t0 = time.time()
        result = runner(scale=scale)
        print(result.format_tables())
        print(f"[{exp_id} completed in {time.time() - t0:.1f}s at scale={scale}]")
        print()


if __name__ == "__main__":
    main()
