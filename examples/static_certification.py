#!/usr/bin/env python3
"""Static deadlock-freedom certification of routing algorithms.

Demonstrates the avoidance-theory tooling: builds the channel dependency
graph (CDG) of each built-in routing algorithm on a torus and a mesh,
certifies acyclicity (the Dally-Seitz sufficient condition), checks the
connectivity premise of the knot criterion, and cross-validates every
verdict dynamically — certified routers are stressed and must never knot,
flagged routers are stressed until they do.

Usage::

    python examples/static_certification.py
"""

from __future__ import annotations

from repro import NetworkSimulator, SimulationConfig
from repro.core.pwfg import is_connected_routing
from repro.network.channels import ChannelPool
from repro.network.topology import KAryNCube, Mesh
from repro.routing import certify_deadlock_free, make_routing

CASES = [
    # (routing, vcs, mesh?)
    ("dor", 1, False),
    ("tfar", 1, False),
    ("dor-dateline", 2, False),
    ("duato", 3, False),
    ("dor", 1, True),
    ("negative-first", 1, True),
]


def main() -> None:
    k = 4
    print(f"static analysis on a {k}-ary 2-cube torus / {k}x{k} mesh\n")
    verdicts = {}
    for name, vcs, mesh in CASES:
        topo = Mesh(k, 2) if mesh else KAryNCube(k, 2)
        pool = ChannelPool(topo, vcs, 2)
        routing = make_routing(name)
        connected = is_connected_routing(routing, topo, pool)
        report = certify_deadlock_free(routing, topo, pool)
        kind = "mesh " if mesh else "torus"
        print(f"[{kind}] {report.summary()}")
        print(f"         connected routing relation: {connected}")
        verdicts[(name, vcs, mesh)] = report.certified
    print()

    print("dynamic cross-validation (stress at 1.5x capacity):")
    for (name, vcs, mesh), certified in verdicts.items():
        cfg = SimulationConfig(
            k=k, n=2, mesh=mesh, routing=name, num_vcs=vcs,
            message_length=8, load=1.5, warmup_cycles=0,
            measure_cycles=2_500, max_queued_per_node=16, seed=3,
        )
        result = NetworkSimulator(cfg).run()
        kind = "mesh " if mesh else "torus"
        status = "certified " if certified else "flagged   "
        agree = (result.deadlocks == 0) if certified else True
        print(f"[{kind}] {name:15s} {status} -> {result.deadlocks:4d} "
              f"true deadlocks observed "
              f"{'(consistent)' if agree else '(VIOLATION!)'}")
        if certified:
            assert result.deadlocks == 0, "certified router deadlocked!"
    print()
    print("acyclic CDG -> deadlock-free is sufficient, not necessary:")
    print("TFAR's CDG is wildly cyclic yet TFAR rarely deadlocks in "
          "practice — the gap the paper's characterization quantifies.")


if __name__ == "__main__":
    main()
