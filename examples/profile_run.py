#!/usr/bin/env python3
"""Profile a simulation run with the observability subsystem.

Runs a deadlock-prone scenario with ``obs_level=2`` (metrics registry +
phase profiler + cycle-level trace ring buffer), then shows everything the
subsystem collects:

* the per-phase wall-clock table — where a simulated cycle's time goes
  (generate / allocate / move / detect / recover, plus the detector's
  region pipeline when dirty-region caching is active);
* the detector's cache counters (region/signature hits, misses,
  short-circuited passes) and the incremental CWG's dirty-vertex stats;
* per-pass histograms (blocked messages and knots per detection);
* a Chrome-trace export — open it at https://ui.perfetto.dev or in
  ``chrome://tracing`` to see phase lanes and block/wake/deadlock/recovery
  instants on a timeline.

Usage::

    python examples/profile_run.py [--trace-out profile_trace.json]

The same data is reachable from the CLI
(``python -m repro simulate ... --obs-level 2 --trace-out t.json``) and,
merged across sweep points, from ``python -m repro experiment FIG6
--obs-level 1``.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse

from repro import NetworkSimulator, SimulationConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the Chrome trace here (default: no file output)",
    )
    args = parser.parse_args()

    config = SimulationConfig(
        k=8,
        n=2,
        routing="dor",  # deadlock-prone: plenty of detector work to profile
        num_vcs=1,
        message_length=16,
        load=0.8,
        cwg_maintenance="incremental",  # exercise the region pipeline timers
        count_cycles=True,
        warmup_cycles=300,
        measure_cycles=2_000,
        seed=7,
        obs_level=2,  # metrics + profiler + trace ring buffer
    )
    sim = NetworkSimulator(config)
    print(f"simulating {config.label()} with obs_level=2 ...")
    result = sim.run()
    print(
        f"delivered {result.delivered} messages, "
        f"{result.deadlocks} deadlocks detected"
    )

    print()
    print(sim.obs.phase_table("phase profile (whole run)"))

    print()
    print("detector cache counters")
    print("-----------------------")
    for name, value in sorted(sim.detector.cache_stats().items()):
        print(f"  {name:<22} {value}")

    if sim.tracker is not None:
        print()
        print("incremental CWG dirty-vertex stats")
        print("----------------------------------")
        stats = sim.tracker.stats()
        for name, value in sorted(stats.items()):
            print(f"  {name:<22} {value}")
        if stats["dirty_consumptions"]:
            avg = stats["dirty_consumed"] / stats["dirty_consumptions"]
            print(f"  (avg {avg:.1f} dirty vertices per detection pass)")

    print()
    print("per-pass histograms")
    print("-------------------")
    snap = sim.obs.snapshot()
    for name, h in snap["histograms"].items():
        mean = h["total"] / h["count"] if h["count"] else 0.0
        print(f"  {name}: n={h['count']} mean={mean:.2f}")

    tracer = sim.obs.tracer
    stats = tracer.stats()
    print()
    print(
        f"trace ring buffer: {stats['events']} events recorded, "
        f"{stats['dropped']} dropped (capacity {tracer.capacity})"
    )
    if args.trace_out:
        tracer.write_chrome(args.trace_out)
        print(
            f"Chrome trace written to {args.trace_out} — open it at "
            f"https://ui.perfetto.dev or chrome://tracing"
        )


if __name__ == "__main__":
    main()
