#!/usr/bin/env python3
"""Recovery-based vs avoidance-based routing on an equal resource budget.

The engineering question the paper's characterization informs: given the
same network (same topology, VCs, buffers) and workload, does unrestricted
adaptive routing plus deadlock recovery beat restriction-based deadlock
avoidance?  The paper's conclusion — deadlock is so improbable with a few
VCs that "recovery-based routing is viable" — predicts yes.

Compares, with 3 VCs per physical channel:

* TFAR (unrestricted) + Disha-style recovery,
* dateline dimension-order routing (avoidance by VC ordering),
* Duato-protocol adaptive routing (avoidance by escape channels).

Usage::

    python examples/recovery_vs_avoidance.py [--scale tiny|bench]
"""

from __future__ import annotations

import sys

from repro.experiments import avoidance_vs_recovery


def main() -> None:
    scale = "tiny"
    argv = sys.argv[1:]
    if "--scale" in argv:
        scale = argv[argv.index("--scale") + 1]
    result = avoidance_vs_recovery.run(scale=scale)
    print(result.format_tables())
    print()
    rec = result.observations["recovery_peak_throughput"]
    date = result.observations["dateline_peak_throughput"]
    duato = result.observations["duato_peak_throughput"]
    print(f"peak normalized throughput — recovery: {rec:.3f}, "
          f"dateline avoidance: {date:.3f}, Duato avoidance: {duato:.3f}")
    dl = result.observations["recovery_total_deadlocks"]
    print(f"deadlocks the recovery router actually had to break: {dl:.0f}")
    if dl == 0:
        print("  (none at all — exactly the paper's 'highly improbable' claim)")


if __name__ == "__main__":
    main()
