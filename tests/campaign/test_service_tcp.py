"""Distributed campaign service over real sockets and real processes.

The acceptance property throughout: a campaign drained by N networked
workers — through crashes, silent heartbeat loss and lease reclaims — is
**bit-identical**, artifact-for-artifact, to the same campaign run by the
single-host :class:`CampaignRunner`.  Workers here are real subprocesses
(killed with real signals) or in-process :class:`WorkerSession` threads
on real TCP connections; nothing is mocked.
"""

import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.campaign import CampaignRunner, ResultStore
from repro.campaign.service import (
    CampaignService,
    ServiceError,
    ServiceRunner,
    WorkerError,
    WorkerSession,
)
from repro.campaign.service.status import (
    fetch_status,
    iter_status_events,
    render_service_status,
)
from repro.config import tiny_default
from repro.metrics.sweep import run_load_sweep

SRC = str(pathlib.Path(repro.__file__).parents[1])
FAST = dict(measure_cycles=300, warmup_cycles=50)
LOADS = [0.3, 0.6, 0.9]


def reference_store(tmp_path, configs, name="reference"):
    store = ResultStore(tmp_path / name)
    CampaignRunner(store, max_workers=2).run_points(configs)
    return store


def artifact_bytes(store):
    return {
        p.name: p.read_bytes()
        for p in store.points_dir.glob("*.json")
        if not p.name.endswith(".err.json")
    }


def assert_bit_identical(store, reference):
    ours, theirs = artifact_bytes(store), artifact_bytes(reference)
    assert ours.keys() == theirs.keys()
    for name in theirs:
        assert ours[name] == theirs[name], f"artifact {name} differs"


def spawn_worker(port, name, extra_env=None):
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC
    env.update(extra_env or {})
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "worker",
            "--connect", f"127.0.0.1:{port}", "--id", name,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        start_new_session=True,  # killpg reaches forked point workers too
    )


def kill_worker(proc):
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    proc.wait(timeout=10)


def wait_for(predicate, timeout_s=30.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError("condition not reached before timeout")


class TestDistributedDrain:
    def test_two_tcp_workers_produce_bit_identical_store(self, tmp_path):
        """The headline invariant, on the pure network path."""
        base = tiny_default(**FAST)
        configs = [base.replace(load=load) for load in LOADS]
        reference = reference_store(tmp_path, configs)

        with CampaignService(tmp_path / "store", local_workers=0) as svc:
            workers = [
                threading.Thread(
                    target=WorkerSession(
                        "127.0.0.1", svc.port, worker_id=f"w{i}"
                    ).run,
                    daemon=True,
                )
                for i in range(2)
            ]
            for thread in workers:
                thread.start()
            out = ServiceRunner(svc).run_points(configs)
            assert sorted(out["completed"]) == [0, 1, 2]
            assert out["executed"] == 3 and not out["failures"]
            svc.seal()
            for thread in workers:
                thread.join(timeout=20)
                assert not thread.is_alive()
            # both workers actually participated
            workers_used = {
                p.worker for p in svc.scheduler.points.values()
            }
            assert len(workers_used) >= 1  # >=2 is racy on tiny points
            assert_bit_identical(svc.store, reference)

    def test_service_sweep_equals_serial_sweep(self, tmp_path):
        """ServiceRunner.run_sweep merges to the exact serial SweepResult."""
        base = tiny_default(**FAST)
        with CampaignService(tmp_path / "store", local_workers=2) as svc:
            out = ServiceRunner(svc).run_sweep(base, LOADS)
        assert out.sweep == run_load_sweep(base, LOADS)
        assert out.executed == 3 and out.resumed == 0

    def test_resubmission_resumes_from_the_store(self, tmp_path):
        base = tiny_default(**FAST)
        configs = [base.replace(load=load) for load in LOADS]
        store = ResultStore(tmp_path / "store")
        with CampaignService(store, local_workers=2) as svc:
            ServiceRunner(svc).run_points(configs)
        with CampaignService(store, local_workers=2) as svc:
            out = ServiceRunner(svc).run_points(configs)
        assert out["resumed"] == 3 and out["executed"] == 0

    def test_schema_mismatch_worker_is_refused(self, tmp_path):
        with CampaignService(tmp_path / "store", local_workers=0) as svc:
            with pytest.raises(WorkerError, match="schema version mismatch"):
                WorkerSession(
                    "127.0.0.1", svc.port, schema_version=999
                ).run()

    def test_wait_for_never_submitted_point_raises(self, tmp_path):
        with CampaignService(tmp_path / "store", local_workers=0) as svc:
            with pytest.raises(ServiceError, match="never-submitted"):
                svc.wait_points(["feedfacefeedfacefeedface"], timeout=5)


class TestStatusEndpoint:
    def test_json_poll_sse_stream_and_rendering(self, tmp_path):
        base = tiny_default(**FAST)
        configs = [base.replace(load=load) for load in LOADS[:2]]
        with CampaignService(
            tmp_path / "store", local_workers=2, status_port=0
        ) as svc:
            out = ServiceRunner(svc).run_points(configs)
            assert out["executed"] == 2
            snapshot = fetch_status("127.0.0.1", svc.status_port)
            assert snapshot["scheduler"]["points"]["done"] == 2
            assert snapshot["service"]["store"] == str(svc.store.root)
            events = iter_status_events("127.0.0.1", svc.status_port)
            first = next(events)
            assert first["scheduler"]["points"]["done"] == 2
            text = render_service_status(snapshot)
            assert "2/2 done" in text
            assert "campaign service @" in text


class TestWorkerCrash:
    def test_killed_worker_lease_is_requeued_and_completed_by_sibling(
        self, tmp_path
    ):
        """Kill -9 a worker mid-point: the lease must come back, a sibling
        must finish the point, and the store must stay bit-identical."""
        base = tiny_default(**FAST)
        configs = [base.replace(load=load) for load in LOADS]
        reference = reference_store(tmp_path, configs)
        hang_label = configs[0].label()  # victim hangs on its first claim

        victim = None
        with CampaignService(
            tmp_path / "store", local_workers=0, lease_ttl=30.0
        ) as svc:
            try:
                submitted = svc.submit_points(configs)
                hang_digest = submitted["digests"][0]
                victim = spawn_worker(
                    svc.port,
                    "victim",
                    extra_env={
                        "REPRO_INJECT_FAULT": "hang-point",
                        "REPRO_FAULT_MATCH": hang_label,
                        "REPRO_FAULT_DIR": str(tmp_path / "faults"),
                    },
                )
                (tmp_path / "faults").mkdir(exist_ok=True)
                # FIFO order: the victim's first claim is the hang point
                wait_for(
                    lambda: svc.status_snapshot()["scheduler"]["leases"]
                    .get(hang_digest, {})
                    .get("worker")
                    == "victim"
                )
                sibling = WorkerSession(
                    "127.0.0.1", svc.port, worker_id="sibling"
                )
                thread = threading.Thread(target=sibling.run, daemon=True)
                thread.start()
                # the sibling drains the other points while the victim hangs
                wait_for(
                    lambda: svc.status_snapshot()["scheduler"]["points"]["done"]
                    >= 2
                )
                kill_worker(victim)
                statuses = svc.wait_points(submitted["digests"], timeout=60)
                assert all(s["status"] == "done" for s in statuses.values())
                status = svc.status_snapshot()["scheduler"]
                assert status["counters"]["worker_disconnects"] >= 1
                assert status["counters"]["points_requeued"] >= 1
                # the requeued point was completed by the surviving worker
                assert svc.scheduler.points[hang_digest].worker == "sibling"
                svc.seal()
                thread.join(timeout=20)
            finally:
                if victim is not None and victim.poll() is None:
                    kill_worker(victim)
        assert_bit_identical(ResultStore(tmp_path / "store"), reference)
        # and the merged sweep is exactly the single-host one
        resumed = CampaignRunner(ResultStore(tmp_path / "store")).run_sweep(
            base, LOADS
        )
        assert resumed.sweep == run_load_sweep(base, LOADS)
        assert resumed.resumed == 3


class TestDropHeartbeatTeeth:
    """The `drop-lease-heartbeat` fault must be *caught* by the reaper."""

    #: sized so one point runs for ~2s — several lease TTLs — on the
    #: current engine tier; the negative control proves the margin holds
    SLOW = dict(measure_cycles=20_000, warmup_cycles=100)

    def _drain_with_worker(self, tmp_path, *, fault):
        base = tiny_default(**self.SLOW)
        config = base.replace(load=0.6)
        extra_env = (
            {"REPRO_INJECT_FAULT": "drop-lease-heartbeat"} if fault else {}
        )
        with CampaignService(
            tmp_path / ("faulty" if fault else "clean"),
            local_workers=0,
            lease_ttl=0.5,
            requeue_limit=50,  # reclaim must never degrade the point
        ) as svc:
            worker = spawn_worker(svc.port, "w0", extra_env=extra_env)
            try:
                submitted = svc.submit_points([config])
                statuses = svc.wait_points(submitted["digests"], timeout=120)
                assert statuses[submitted["digests"][0]]["status"] == "done"
                counters = dict(svc.scheduler.counters)
                svc.seal()
                worker.wait(timeout=30)
            finally:
                if worker.poll() is None:
                    kill_worker(worker)
        return counters, svc.store, config

    def test_silent_worker_lease_is_reclaimed_and_requeued(self, tmp_path):
        counters, store, config = self._drain_with_worker(tmp_path, fault=True)
        # teeth: the reaper caught the silent lease at least once
        assert counters["leases_reclaimed"] >= 1
        assert counters["points_requeued"] >= 1
        # the slow-but-alive worker's result was accepted as stale
        assert counters.get("stale_results", 0) >= 1
        # the artifact is still the canonical one
        reference = ResultStore(tmp_path / "ref")
        CampaignRunner(reference, max_workers=1).run_points([config])
        assert_bit_identical(store, reference)

    def test_negative_control_heartbeats_keep_the_lease(self, tmp_path):
        """Same slow point, same tight TTL, heartbeats flowing: no reclaim.
        Proves the teeth test fails through the fault, not the timing."""
        counters, _, _ = self._drain_with_worker(tmp_path, fault=False)
        assert counters.get("leases_reclaimed", 0) == 0
        assert counters.get("points_requeued", 0) == 0
        assert counters["heartbeats"] >= 1
