"""Lease scheduler semantics, driven directly with a fake clock.

The scheduler is a pure single-threaded state machine (no I/O, injectable
clock), so every distributed-failure scenario — dead workers, silent
workers, slow workers racing their own reclaimed leases, tenants hogging
the pool — reduces to a deterministic unit test here.  The cross-process
versions of the same scenarios live in ``test_service_tcp.py``.
"""

import pytest

from repro.campaign.service import protocol
from repro.campaign.service.scheduler import LEASE_EXPIRED_KIND, LeaseScheduler


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def scheduler(clock, **kw):
    kw.setdefault("lease_ttl", 10.0)
    return LeaseScheduler(clock=clock, **kw)


def submit(sched, digest, *, tenant="default", priority=0, load=0.3):
    return sched.submit(
        digest, {"cfg": digest}, f"label-{digest}", load, 1,
        tenant=tenant, priority=priority,
    )


class TestClaiming:
    def test_fifo_within_a_priority_class(self, clock):
        sched = scheduler(clock)
        for digest in ("d1", "d2", "d3"):
            submit(sched, digest)
        got = [sched.claim("w")["digest"] for _ in range(3)]
        assert got == ["d1", "d2", "d3"]
        assert sched.claim("w") is None

    def test_higher_priority_class_wins(self, clock):
        sched = scheduler(clock)
        submit(sched, "bulk", priority=0)
        submit(sched, "urgent", priority=5)
        assert sched.claim("w")["digest"] == "urgent"
        assert sched.claim("w")["digest"] == "bulk"

    def test_duplicate_submit_is_refused(self, clock):
        sched = scheduler(clock)
        assert submit(sched, "d1") is True
        assert submit(sched, "d1") is False
        assert sched.counters["submitted"] == 1

    def test_lease_carries_config_and_attempt(self, clock):
        sched = scheduler(clock)
        submit(sched, "d1")
        lease = sched.claim("w")
        assert lease["config"] == {"cfg": "d1"}
        assert lease["attempt"] == 1


class TestTenantQuotas:
    def test_quota_caps_concurrent_leases(self, clock):
        sched = scheduler(clock, quotas={"bulk": 1})
        submit(sched, "d1", tenant="bulk")
        submit(sched, "d2", tenant="bulk")
        assert sched.claim("w1")["digest"] == "d1"
        assert sched.claim("w2") is None  # bulk is at quota
        sched.complete("w1", "d1")
        assert sched.claim("w2")["digest"] == "d2"

    def test_quota_blocked_tenant_does_not_starve_others(self, clock):
        sched = scheduler(clock, quotas={"bulk": 1})
        submit(sched, "b1", tenant="bulk", priority=5)
        submit(sched, "b2", tenant="bulk", priority=5)
        submit(sched, "i1", tenant="interactive")
        assert sched.claim("w1")["digest"] == "b1"
        # b2 is quota-blocked; the lower-priority interactive point flows
        assert sched.claim("w2")["digest"] == "i1"
        # and the blocked entry is restored, not lost
        sched.complete("w1", "b1")
        assert sched.claim("w3")["digest"] == "b2"

    def test_default_quota_applies_to_unlisted_tenants(self, clock):
        sched = scheduler(clock, default_quota=1)
        submit(sched, "d1", tenant="anyone")
        submit(sched, "d2", tenant="anyone")
        assert sched.claim("w1") is not None
        assert sched.claim("w2") is None


class TestLeaseLifecycle:
    def test_heartbeat_extends_the_lease(self, clock):
        sched = scheduler(clock)
        submit(sched, "d1")
        sched.claim("w1")
        clock.advance(8.0)
        assert sched.heartbeat("w1", "d1") is True
        clock.advance(8.0)  # 16s since grant, but only 8 since heartbeat
        assert sched.reap() == []
        assert sched.points["d1"].status == "leased"

    def test_silent_lease_is_reaped_and_requeued(self, clock):
        sched = scheduler(clock)
        submit(sched, "d1")
        sched.claim("w1")
        clock.advance(10.1)
        assert sched.reap() == ["d1"]
        assert sched.points["d1"].status == "pending"
        assert sched.counters["leases_reclaimed"] == 1
        # a sibling picks it up; attempt count reflects the history
        assert sched.claim("w2")["attempt"] == 2

    def test_requeue_limit_degrades_to_terminal_failure(self, clock):
        sched = scheduler(clock, requeue_limit=2)
        submit(sched, "d1")
        for n in (1, 2):
            assert sched.claim(f"w{n}")["digest"] == "d1"
            clock.advance(10.1)
            sched.reap()
        point = sched.points["d1"]
        assert point.status == "failed"
        assert point.kind == LEASE_EXPIRED_KIND
        assert sched.is_drained()

    def test_disconnect_requeues_immediately(self, clock):
        sched = scheduler(clock)
        submit(sched, "d1")
        sched.connect_worker("w1")
        sched.claim("w1")
        assert sched.disconnect_worker("w1") == ["d1"]
        assert sched.points["d1"].status == "pending"
        # no TTL wait: a sibling claims right away
        assert sched.claim("w2")["digest"] == "d1"

    def test_heartbeat_for_lost_lease_is_refused(self, clock):
        sched = scheduler(clock)
        submit(sched, "d1")
        sched.claim("w1")
        clock.advance(10.1)
        sched.reap()
        assert sched.heartbeat("w1", "d1") is False


class TestResultArbitration:
    def test_live_lease_completion_is_ok(self, clock):
        sched = scheduler(clock)
        submit(sched, "d1")
        sched.claim("w1")
        assert sched.complete("w1", "d1") == "ok"
        assert sched.is_drained(["d1"])

    def test_slow_worker_result_accepted_while_point_open(self, clock):
        """Reclaimed-but-correct: determinism makes the stale result safe."""
        sched = scheduler(clock)
        submit(sched, "d1")
        sched.claim("w1")
        clock.advance(10.1)
        sched.reap()  # w1's lease reclaimed; point pending again
        assert sched.complete("w1", "d1") == "stale"
        assert sched.points["d1"].status == "done"
        # the requeued copy never needs to run
        assert sched.claim("w2") is None

    def test_result_after_completion_is_duplicate(self, clock):
        sched = scheduler(clock)
        submit(sched, "d1")
        sched.claim("w1")
        sched.complete("w1", "d1")
        assert sched.complete("w2", "d1") == "duplicate"
        assert sched.counters["duplicate_results"] == 1

    def test_worker_reported_failure_is_terminal(self, clock):
        sched = scheduler(clock)
        submit(sched, "d1")
        sched.claim("w1")
        assert sched.fail("w1", "d1", "sim exploded", kind="error") == "failed"
        point = sched.points["d1"]
        assert point.status == "failed" and point.error == "sim exploded"

    def test_stale_failure_is_dropped(self, clock):
        """A reclaimed worker's failure must not kill a point that is
        being retried elsewhere."""
        sched = scheduler(clock)
        submit(sched, "d1")
        sched.claim("w1")
        clock.advance(10.1)
        sched.reap()
        assert sched.fail("w1", "d1", "late crash") == "stale"
        assert sched.points["d1"].status == "pending"

    def test_unknown_digest_reports(self, clock):
        sched = scheduler(clock)
        assert sched.complete("w1", "nope") == "unknown"
        assert sched.fail("w1", "nope", "err") == "unknown"


class TestStatusSnapshot:
    def test_snapshot_is_json_able_and_complete(self, clock):
        import json

        sched = scheduler(clock, quotas={"bulk": 2})
        submit(sched, "d1", tenant="bulk")
        submit(sched, "d2")
        sched.claim("w1")
        status = sched.status()
        json.dumps(status)  # must serialize
        assert status["points"]["total"] == 2
        assert status["points"]["leased"] == 1
        assert status["tenants"]["bulk"]["quota"] == 2
        assert status["leases"]["d1"]["worker"] == "w1"
        assert status["workers"]["w1"]["leases"] == ["d1"]

    def test_next_deadline_tracks_earliest_expiry(self, clock):
        sched = scheduler(clock)
        assert sched.next_deadline() is None
        submit(sched, "d1")
        sched.claim("w1")
        assert sched.next_deadline() == pytest.approx(110.0)


class TestProtocolFraming:
    def test_encode_decode_round_trip(self):
        message = {"type": "result", "digest": "d1", "artifact": {"a": [1, 2]}}
        assert protocol.decode(protocol.encode(message)) == message

    def test_decode_rejects_non_objects_and_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2, 3]\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"{not json\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b'{"no_type": 1}\n')

    def test_encoded_messages_are_single_lines(self):
        line = protocol.encode({"type": "x", "s": "multi\nline"})
        assert line.count(b"\n") == 1 and line.endswith(b"\n")
