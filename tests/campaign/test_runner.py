"""Campaign runner: resume, retry/backoff, timeout kill, degradation.

The injected point faults (``crash-point`` / ``flaky-point`` /
``hang-point``, see :mod:`repro.faults`) arm inside the forked worker
processes via inherited environment variables, so these tests exercise the
real cross-process kill/retry/resume machinery, not an in-process stand-in.
"""

import pytest

from repro import faults
from repro.campaign import CampaignRunner, PointFailure, ResultStore
from repro.config import tiny_default
from repro.metrics.sweep import run_load_sweep

FAST = dict(measure_cycles=300, warmup_cycles=50)
LOADS = [0.3, 0.6]


def counters(runner):
    return runner.registry.snapshot()["counters"]


class TestResume:
    def test_uninterrupted_campaign_matches_serial_sweep(self, tmp_path):
        cfg = tiny_default(**FAST)
        runner = CampaignRunner(tmp_path / "store", max_workers=2)
        out = runner.run_sweep(cfg, LOADS)
        assert out.sweep == run_load_sweep(cfg, LOADS)
        assert out.executed == len(LOADS) and out.resumed == 0

    def test_resume_after_interruption_is_bit_identical(self, tmp_path):
        """The acceptance scenario: interrupt mid-campaign, resume, merge."""
        cfg = tiny_default(**FAST)
        store = ResultStore(tmp_path / "store")
        first = CampaignRunner(store, max_workers=1, max_points=1)
        out1 = first.run_sweep(cfg, LOADS)
        assert out1.executed == 1 and out1.remaining == 1
        assert out1.sweep.loads == LOADS[:1]

        second = CampaignRunner(store, max_workers=2)
        out2 = second.run_sweep(cfg, LOADS)
        assert out2.resumed == 1 and out2.executed == 1
        assert counters(second)["campaign/points_resumed"] == 1
        assert out2.sweep == run_load_sweep(cfg, LOADS)

    def test_full_resume_runs_nothing(self, tmp_path):
        cfg = tiny_default(**FAST)
        store = ResultStore(tmp_path / "store")
        CampaignRunner(store, max_workers=2).run_sweep(cfg, LOADS)
        again = CampaignRunner(store, max_workers=2)
        out = again.run_sweep(cfg, LOADS)
        assert out.resumed == len(LOADS) and out.executed == 0
        assert out.sweep == run_load_sweep(cfg, LOADS)

    def test_different_seed_is_a_different_point(self, tmp_path):
        cfg = tiny_default(**FAST)
        store = ResultStore(tmp_path / "store")
        CampaignRunner(store, max_workers=1).run_sweep(cfg, LOADS[:1])
        out = CampaignRunner(store, max_workers=1).run_sweep(
            cfg.replace(seed=cfg.seed + 1), LOADS[:1]
        )
        assert out.resumed == 0 and out.executed == 1


class TestRetry:
    def test_flaky_point_retries_then_succeeds(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "flaky-point")
        monkeypatch.setenv(faults.DIR_ENV_VAR, str(tmp_path / "markers"))
        (tmp_path / "markers").mkdir()
        cfg = tiny_default(**FAST)
        runner = CampaignRunner(
            tmp_path / "store", retries=2, backoff_s=0.01, max_workers=2
        )
        out = runner.run_sweep(cfg, LOADS)
        assert not out.failures
        assert counters(runner)["campaign/retries"] == len(LOADS)
        monkeypatch.delenv(faults.ENV_VAR)
        assert out.sweep == run_load_sweep(cfg, LOADS)

    def test_exhausted_retries_degrade_without_aborting(
        self, tmp_path, monkeypatch
    ):
        """A point failing every attempt is recorded, siblings complete."""
        monkeypatch.setenv(faults.ENV_VAR, "crash-point")
        monkeypatch.setenv(faults.MATCH_ENV_VAR, "L=0.60")
        cfg = tiny_default(**FAST)
        runner = CampaignRunner(
            tmp_path / "store", retries=1, backoff_s=0.01, max_workers=2
        )
        out = runner.run_sweep(cfg, LOADS)
        assert out.sweep.loads == [0.3]
        assert len(out.failures) == 1
        failure = out.failures[0]
        assert isinstance(failure, PointFailure)
        assert failure.load == 0.6 and failure.kind == "error"
        assert failure.attempts == 2  # first try + one retry
        assert "crash-point" in failure.error
        assert out.sweep.failures == out.failures
        assert counters(runner)["campaign/failures"] == 1
        manifest = runner.store.load_manifest()
        entry = manifest["points"][failure.digest]
        assert entry["status"] == "failed" and entry["kind"] == "error"

    def test_degraded_point_reruns_after_clean(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "crash-point")
        cfg = tiny_default(**FAST)
        store = ResultStore(tmp_path / "store")
        out = CampaignRunner(
            store, retries=0, backoff_s=0.01, max_workers=1
        ).run_sweep(cfg, LOADS[:1])
        assert len(out.failures) == 1
        monkeypatch.delenv(faults.ENV_VAR)
        store.clean()
        out = CampaignRunner(store, max_workers=1).run_sweep(cfg, LOADS[:1])
        assert not out.failures and out.executed == 1
        assert out.sweep == run_load_sweep(cfg, LOADS[:1])


class TestTimeout:
    def test_hung_worker_killed_and_respawned(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "hang-point")
        monkeypatch.setenv(faults.DIR_ENV_VAR, str(tmp_path / "markers"))
        (tmp_path / "markers").mkdir()
        cfg = tiny_default(**FAST)
        runner = CampaignRunner(
            tmp_path / "store",
            retries=2,
            backoff_s=0.01,
            timeout_s=1.0,
            max_workers=2,
        )
        out = runner.run_sweep(cfg, LOADS[:1])
        assert not out.failures
        stats = counters(runner)
        assert stats["campaign/timeouts"] == 1
        assert stats["campaign/retries"] == 1
        monkeypatch.delenv(faults.ENV_VAR)
        assert out.sweep == run_load_sweep(cfg, LOADS[:1])

    def test_timeout_exhaustion_degrades_as_timeout_kind(
        self, tmp_path, monkeypatch
    ):
        # crash-point never writes a marker, so arming hang via a fresh
        # marker dir per attempt is not needed: hang-point only hangs the
        # first attempt.  To exhaust retries on timeouts, allow none.
        monkeypatch.setenv(faults.ENV_VAR, "hang-point")
        monkeypatch.setenv(faults.DIR_ENV_VAR, str(tmp_path / "markers"))
        (tmp_path / "markers").mkdir()
        runner = CampaignRunner(
            tmp_path / "store", retries=0, timeout_s=1.0, max_workers=1
        )
        out = runner.run_sweep(tiny_default(**FAST), LOADS[:1])
        assert len(out.failures) == 1
        assert out.failures[0].kind == "timeout"
        assert "timeout" in out.failures[0].error
        assert out.sweep.loads == []


class TestCampaignThroughExperiments:
    def test_experiment_sweep_uses_installed_runner(self, tmp_path):
        from repro.experiments.base import (
            experiment_sweep,
            set_campaign_runner,
        )

        cfg = tiny_default(**FAST)
        runner = CampaignRunner(tmp_path / "store", max_workers=2)
        set_campaign_runner(runner)
        try:
            sweep = experiment_sweep(cfg, LOADS)
        finally:
            set_campaign_runner(None)
        assert counters(runner)["campaign/points_executed"] == len(LOADS)
        assert sweep == run_load_sweep(cfg, LOADS)
        # without a runner the plain serial path is used
        assert experiment_sweep(cfg, LOADS) == sweep


class TestStatusRendering:
    def test_status_lists_done_and_failed(self, tmp_path, monkeypatch):
        from repro.experiments.report import render_campaign_status

        monkeypatch.setenv(faults.ENV_VAR, "crash-point")
        monkeypatch.setenv(faults.MATCH_ENV_VAR, "L=0.60")
        store = ResultStore(tmp_path / "store")
        CampaignRunner(
            store, retries=0, backoff_s=0.01, max_workers=2
        ).run_sweep(tiny_default(**FAST), LOADS)
        text = render_campaign_status(store)
        assert "1 done, 1 failed" in text
        assert "FAILED" in text and "L=0.60" in text

    def test_status_reports_elapsed_and_retries(self, tmp_path, monkeypatch):
        from repro.experiments.report import render_campaign_status

        monkeypatch.setenv(faults.ENV_VAR, "flaky-point")
        monkeypatch.setenv(faults.MATCH_ENV_VAR, "L=0.60")
        (tmp_path / "faults").mkdir()
        monkeypatch.setenv(faults.DIR_ENV_VAR, str(tmp_path / "faults"))
        store = ResultStore(tmp_path / "store")
        CampaignRunner(
            store, retries=2, backoff_s=0.01, max_workers=2
        ).run_sweep(tiny_default(**FAST), LOADS)
        text = render_campaign_status(store)
        assert "elapsed:" in text and "wall-clock" in text
        assert "last manifest write" in text
        # flaky-point fails only the first attempt: one retry survives
        assert "retries: 1 attempt(s) re-run" in text
        assert "1 surviving in per-point attempt counts" in text
