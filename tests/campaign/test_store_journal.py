"""Concurrent-writer store machinery: journal, compaction, rebuild.

The distributed campaign service has N result producers and one manifest.
The store's answer is an append-only per-writer journal folded in by a
single compactor (exactly-once via persisted per-writer offsets), plus
``manifest_rebuild`` as the recovery path when the manifest itself is
lost or corrupted.  These tests drive that machinery directly — including
the corruption-teeth case: a deliberately mangled manifest and artifact
must be survived, detected and counted, not trusted.
"""

import json

import pytest

from repro.campaign import ResultStore, new_writer_id
from repro.campaign.runner import CampaignRunner
from repro.config import tiny_default

FAST = dict(measure_cycles=200, warmup_cycles=50)


def done_record(digest, label="pt", load=0.3, seed=1, attempts=1, worker="w0"):
    return {
        "op": "done", "digest": digest, "label": label, "load": load,
        "seed": seed, "attempts": attempts, "worker": worker,
    }


class TestJournal:
    def test_append_and_read_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        writer = new_writer_id()
        records = [done_record("d1"), {"op": "count", "name": "resumed"}]
        for record in records:
            store.journal_append(writer, record)
        assert store.journal_writers() == [writer]
        assert store.journal_records(writer) == records

    def test_torn_tail_is_treated_as_absent(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.journal_append("w1", done_record("d1"))
        store.journal_append("w1", done_record("d2"))
        path = store.journal_dir / "w1.jsonl"
        # crash mid-append: the final line is half-written
        path.write_text(path.read_text() + '{"op": "done", "dig')
        records = store.journal_records("w1")
        assert [r["digest"] for r in records] == ["d1", "d2"]

    def test_distinct_writers_never_interleave(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        a, b = new_writer_id(), new_writer_id()
        assert a != b  # uuid suffix keeps same-process writers distinct
        store.journal_append(a, done_record("d1", worker="a"))
        store.journal_append(b, done_record("d2", worker="b"))
        store.journal_append(a, done_record("d3", worker="a"))
        assert [r["digest"] for r in store.journal_records(a)] == ["d1", "d3"]
        assert [r["digest"] for r in store.journal_records(b)] == ["d2"]


class TestCompaction:
    def test_compact_folds_records_into_manifest(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.journal_append("w1", done_record("d1", label="p1", attempts=2))
        store.journal_append("w1", {"op": "count", "name": "resumed", "amount": 3})
        manifest = store.compact_manifest()
        entry = manifest["points"]["d1"]
        assert entry["status"] == "done"
        assert entry["attempts"] == 2 and entry["worker"] == "w0"
        assert manifest["counters"] == {"executed": 1, "resumed": 3}

    def test_records_apply_exactly_once_across_compactions(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.journal_append("w1", done_record("d1"))
        store.compact_manifest()
        store.compact_manifest()  # no new records: counters must not double
        store.journal_append("w1", done_record("d2"))
        manifest = store.compact_manifest()
        assert manifest["counters"]["executed"] == 2
        assert manifest["journal_offsets"] == {"w1": 2}

    def test_two_writers_merge_into_one_index(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.journal_append("w1", done_record("d1", worker="w1"))
        store.journal_append("w2", done_record("d2", worker="w2"))
        store.journal_append(
            "w2",
            {"op": "failed", "digest": "d3", "label": "p3", "load": 0.9,
             "seed": 1, "error": "boom", "kind": "error", "attempts": 3},
        )
        manifest = store.compact_manifest()
        assert manifest["points"]["d1"]["worker"] == "w1"
        assert manifest["points"]["d2"]["worker"] == "w2"
        assert manifest["points"]["d3"]["status"] == "failed"
        assert manifest["counters"] == {"executed": 2, "failures": 1}

    def test_done_is_terminal_over_stale_failed(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.journal_append("w1", done_record("d1"))
        store.journal_append(
            "w2",
            {"op": "failed", "digest": "d1", "error": "stale report",
             "kind": "error", "attempts": 1},
        )
        manifest = store.compact_manifest()
        assert manifest["points"]["d1"]["status"] == "done"
        assert "error" not in manifest["points"]["d1"]
        assert manifest["counters"].get("failures", 0) == 0


class TestManifestRebuild:
    def _campaign(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        cfg = tiny_default(**FAST)
        configs = [cfg.replace(load=load) for load in (0.3, 0.6)]
        CampaignRunner(store, max_workers=1).run_points(configs)
        return store, configs

    def test_rebuild_from_artifacts_matches_original(self, tmp_path):
        store, configs = self._campaign(tmp_path)
        original = store.load_manifest()
        store.manifest_path.unlink()  # manifest lost entirely
        rebuilt = store.manifest_rebuild()
        assert set(rebuilt["points"]) == set(original["points"])
        for digest, entry in rebuilt["points"].items():
            assert entry["status"] == "done"
            assert entry["label"] == original["points"][digest]["label"]
        # the store still resumes every point
        out = CampaignRunner(store, max_workers=1).run_points(configs)
        assert out["resumed"] == 2 and out["executed"] == 0

    def test_rebuild_survives_corrupt_manifest_and_artifact(self, tmp_path):
        """Corruption teeth: mangled files are detected, not trusted."""
        store, configs = self._campaign(tmp_path)
        digests = [store.digest(c) for c in configs]
        store.manifest_path.write_text('{"schema_version": 1, "points": {"')
        store.point_path(digests[0]).write_text("NOT JSON {")
        rebuilt = store.manifest_rebuild()
        # the corrupt artifact is dropped and counted; the intact one kept
        assert digests[0] not in rebuilt["points"]
        assert rebuilt["points"][digests[1]]["status"] == "done"
        assert rebuilt["counters"]["corrupt_artifacts"] == 1
        # load_manifest works again and the missing point re-runs
        out = CampaignRunner(store, max_workers=1).run_points(configs)
        assert out["resumed"] == 1 and out["executed"] == 1

    def test_rebuild_replays_journal_detail_on_top(self, tmp_path):
        store, configs = self._campaign(tmp_path)
        digests = [store.digest(c) for c in configs]
        store.journal_append(
            "svc", done_record(digests[0], attempts=3, worker="remote/1")
        )
        store.journal_append(
            "svc",
            {"op": "failed", "digest": "gone", "label": "lost-pt", "load": 0.9,
             "seed": 1, "error": "lease expired", "kind": "lease-expired",
             "attempts": 3},
        )
        store.manifest_path.unlink()
        rebuilt = store.manifest_rebuild()
        # journal detail restored onto the artifact-backed entry
        assert rebuilt["points"][digests[0]]["attempts"] == 3
        assert rebuilt["points"][digests[0]]["worker"] == "remote/1"
        # artifact-less failure entries come back from the journal alone
        assert rebuilt["points"]["gone"]["status"] == "failed"
        assert rebuilt["points"]["gone"]["kind"] == "lease-expired"
        # offsets cover the replay: a later compaction must not re-apply
        after = store.compact_manifest()
        assert after["points"][digests[0]]["attempts"] == 3
        assert after["counters"] == rebuilt["counters"]

    def test_rebuild_drops_done_records_without_artifacts(self, tmp_path):
        """A journaled `done` whose artifact vanished must rerun, not lie."""
        store, configs = self._campaign(tmp_path)
        digest = store.digest(configs[0])
        store.journal_append("svc", done_record(digest))
        store.point_path(digest).unlink()
        rebuilt = store.manifest_rebuild()
        assert digest not in rebuilt["points"]
        out = CampaignRunner(store, max_workers=1).run_points(configs)
        assert out["executed"] == 1 and out["resumed"] == 1


class TestWriterIds:
    def test_new_writer_ids_are_unique_and_filename_safe(self):
        ids = {new_writer_id() for _ in range(50)}
        assert len(ids) == 50
        for writer in ids:
            assert "/" not in writer and "\\" not in writer
