"""Content-addressed result store: digests, round-trips, schema guard."""

import json

import pytest

from repro.campaign.store import (
    SCHEMA_VERSION,
    PointFailure,
    ResultStore,
    StoreSchemaError,
    config_digest,
    config_from_json,
    config_to_json,
    result_from_json,
    result_to_json,
)
from repro.config import tiny_default
from repro.network.simulator import NetworkSimulator

FAST = dict(measure_cycles=300, warmup_cycles=50)


class TestDigest:
    def test_stable_across_calls(self):
        cfg = tiny_default(**FAST)
        assert config_digest(cfg) == config_digest(cfg)

    def test_every_field_keys_the_digest(self):
        cfg = tiny_default(**FAST)
        assert config_digest(cfg) != config_digest(cfg.replace(load=0.7))
        assert config_digest(cfg) != config_digest(cfg.replace(seed=cfg.seed + 1))

    def test_schema_version_keys_the_digest(self):
        cfg = tiny_default(**FAST)
        assert config_digest(cfg, 1) != config_digest(cfg, 2)

    def test_digest_is_hex_prefix(self):
        digest = config_digest(tiny_default(**FAST))
        assert len(digest) == 24
        int(digest, 16)  # must be valid hex


class TestRoundTrip:
    def test_config_round_trip_restores_tuple_fields(self):
        cfg = tiny_default(
            **FAST,
            failed_links=((0, 1), (5, 6)),
            length_mix=((8, 0.5), (32, 0.5)),
        )
        back = config_from_json(json.loads(json.dumps(config_to_json(cfg))))
        assert back == cfg
        assert isinstance(back.failed_links[0], tuple)

    def test_result_round_trip_bit_identical(self):
        cfg = tiny_default(**FAST)
        result = NetworkSimulator(cfg).run()
        back = result_from_json(json.loads(json.dumps(result_to_json(result))))
        assert back == result

    def test_point_failure_round_trip(self):
        failure = PointFailure(
            label="x", digest="d", load=0.6, seed=1,
            error="boom", attempts=3, kind="timeout",
        )
        assert PointFailure.from_json(failure.to_json()) == failure


class TestStore:
    def test_write_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cfg = tiny_default(**FAST)
        sim = NetworkSimulator(cfg)
        result = sim.run()
        digest = store.write(cfg, result, sim.obs.snapshot())
        assert store.has(cfg)
        point = store.load(cfg)
        assert point.digest == digest
        assert point.config == cfg
        assert point.result == result

    def test_missing_point(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert not store.has(tiny_default(**FAST))

    def test_writes_leave_no_temp_files(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cfg = tiny_default(**FAST)
        store.write(cfg, NetworkSimulator(cfg).run())
        store.save_manifest(store.load_manifest())
        assert not list(store.points_dir.glob(".*.tmp"))
        assert not list(store.root.glob(".*.tmp"))

    def test_error_sidecar_consumed_on_read(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.write_error("abc", "RuntimeError: boom", "trace...")
        assert store.read_error("abc")["error"] == "RuntimeError: boom"
        assert store.read_error("abc") is None


class TestSchemaGuard:
    def test_mismatched_artifact_refused(self, tmp_path):
        cfg = tiny_default(**FAST)
        old = ResultStore(tmp_path / "store", schema_version=SCHEMA_VERSION)
        old.write(cfg, NetworkSimulator(cfg).run())
        new = ResultStore(
            tmp_path / "store", schema_version=SCHEMA_VERSION + 1
        )
        # different schema -> different digest -> simply not found
        assert not new.has(cfg)

    def test_artifact_written_under_other_schema_refused(self, tmp_path):
        """Same digest on disk but wrong recorded schema must not load."""
        cfg = tiny_default(**FAST)
        store = ResultStore(tmp_path / "store")
        digest = store.write(cfg, NetworkSimulator(cfg).run())
        artifact = store.point_path(digest)
        data = json.loads(artifact.read_text())
        data["schema_version"] = SCHEMA_VERSION + 1
        artifact.write_text(json.dumps(data))
        assert not store.has(cfg)
        with pytest.raises(StoreSchemaError):
            store.load(cfg)

    def test_mismatched_manifest_refused(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        manifest = store.load_manifest()
        manifest["schema_version"] = SCHEMA_VERSION + 1
        store.save_manifest(manifest)
        with pytest.raises(StoreSchemaError):
            store.load_manifest()


class TestClean:
    def test_clean_drops_failed_entries_only(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cfg = tiny_default(**FAST)
        digest = store.write(cfg, NetworkSimulator(cfg).run())
        manifest = store.load_manifest()
        manifest["points"][digest] = {"label": cfg.label(), "status": "done"}
        manifest["points"]["deadbeef"] = {"label": "x", "status": "failed"}
        store.save_manifest(manifest)
        summary = store.clean()
        assert summary == {"failed_dropped": 1, "artifacts_dropped": 0}
        points = store.load_manifest()["points"]
        assert digest in points and "deadbeef" not in points
        assert store.has(cfg)

    def test_clean_all_empties_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cfg = tiny_default(**FAST)
        store.write(cfg, NetworkSimulator(cfg).run())
        summary = store.clean(all_points=True)
        assert summary["artifacts_dropped"] == 1
        assert not store.has(cfg)
        assert store.load_manifest() == {
            "schema_version": SCHEMA_VERSION,
            "points": {},
            "counters": {},
        }
