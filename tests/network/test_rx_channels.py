"""Tests for multiple reception channels per node."""

import pytest

from repro.config import tiny_default
from repro.errors import ConfigurationError, SimulationError
from repro.network.channels import ChannelPool
from repro.network.message import Message, MessageStatus
from repro.network.simulator import NetworkSimulator
from repro.network.topology import KAryNCube


class TestPool:
    def test_groups_created(self):
        pool = ChannelPool(KAryNCube(4, 2), 1, 2, rx_channels=3)
        assert all(len(g) == 3 for g in pool.reception_groups)
        assert pool.reception[5].index == 0  # back-compat view

    def test_free_reception_picks_first_free(self):
        pool = ChannelPool(KAryNCube(4, 2), 1, 2, rx_channels=2)
        group = pool.reception_groups[3]
        group[0].acquire(1)
        assert pool.free_reception(3) is group[1]
        group[1].acquire(2)
        assert pool.free_reception(3) is None

    def test_invalid_count(self):
        with pytest.raises(SimulationError):
            ChannelPool(KAryNCube(4, 2), 1, 2, rx_channels=0)
        with pytest.raises(ConfigurationError):
            tiny_default(rx_channels=0).validate()


class TestConcurrentEjection:
    def _race(self, rx_channels):
        """Two messages arrive at the same destination simultaneously."""
        cfg = tiny_default(load=0.0, routing="dor", rx_channels=rx_channels,
                           check_invariants=True)
        sim = NetworkSimulator(cfg)
        a = Message(0, 1, 0, 8, created_cycle=0)
        b = Message(1, 4, 0, 8, created_cycle=0)
        for m in (a, b):
            sim.queues[m.src].append(m)
            sim._live[m.id] = m
        while not (a.is_done and b.is_done) and sim.cycle < 400:
            sim.step()
        assert a.status is MessageStatus.DELIVERED
        assert b.status is MessageStatus.DELIVERED
        return max(a.completed_cycle, b.completed_cycle)

    def test_two_rx_channels_faster_than_one(self):
        serial = self._race(rx_channels=1)
        concurrent = self._race(rx_channels=2)
        # with one channel the second message waits a full drain (8 cycles)
        assert concurrent < serial

    def test_single_rx_serializes(self):
        done = self._race(rx_channels=1)
        assert done >= 2 * 8  # two 8-flit drains cannot overlap


class TestDetectionWithMultiRx:
    def test_rx_waits_cover_whole_group(self):
        """A message blocked on ejection waits on *every* rx channel."""
        from repro.core.detector import DeadlockDetector

        cfg = tiny_default(load=0.0, routing="dor", rx_channels=2)
        sim = NetworkSimulator(cfg)
        msgs = [Message(i, src, 0, 8, created_cycle=0)
                for i, src in enumerate((1, 4, 3))]
        for m in msgs:
            sim.queues[m.src].append(m)
            sim._live[m.id] = m
        saw_group_wait = False
        while sim.cycle < 200 and not saw_group_wait:
            sim.step()
            g = DeadlockDetector.build_cwg(sim)
            for mid, targets in g.requests.items():
                rx_targets = [t for t in targets if isinstance(t, tuple)]
                if rx_targets:
                    assert sorted(rx_targets) == [("rx", 0, 0), ("rx", 0, 1)]
                    saw_group_wait = True
        assert saw_group_wait

    def test_incremental_equivalence_with_multi_rx(self):
        from repro.core.detector import DeadlockDetector

        cfg = tiny_default(
            load=1.0, routing="dor", num_vcs=1, rx_channels=2, seed=3,
            cwg_maintenance="incremental", warmup_cycles=0,
            measure_cycles=600,
        )
        sim = NetworkSimulator(cfg)
        while sim.cycle < 600:
            sim.step()
            if sim.cycle % 50 == 0:
                inc = sim.tracker.snapshot()
                reb = DeadlockDetector.build_cwg(sim)
                assert inc.chains == reb.chains
                assert inc.requests == reb.requests

    def test_extra_rx_channels_relieve_ejection_pressure(self):
        results = {}
        for rx in (1, 4):
            cfg = tiny_default(traffic="hot-spot", hotspot_fraction=0.4,
                               load=0.6, rx_channels=rx, seed=2,
                               measure_cycles=1500)
            results[rx] = NetworkSimulator(cfg).run()
        assert results[4].avg_latency <= results[1].avg_latency
