"""Unit tests for topologies: k-ary n-cubes, meshes, irregular tori."""

import pytest

from repro.errors import TopologyError
from repro.network.topology import IrregularTorus, KAryNCube, Mesh


class TestKAryNCubeBidirectional:
    def test_node_and_link_counts(self):
        t = KAryNCube(4, 2)
        assert t.num_nodes == 16
        assert t.num_links == 16 * 2 * 2  # 2 dims, 2 directions

    def test_16ary_2cube_paper_default(self):
        t = KAryNCube(16, 2)
        assert t.num_nodes == 256
        assert t.num_links == 1024

    def test_coords_roundtrip(self):
        t = KAryNCube(5, 3)
        for node in range(t.num_nodes):
            assert t.node_at(t.coords(node)) == node

    def test_coords_dimension0_least_significant(self):
        t = KAryNCube(4, 2)
        assert t.coords(1) == (1, 0)
        assert t.coords(4) == (0, 1)

    def test_neighbour_wraps(self):
        t = KAryNCube(4, 2)
        assert t.neighbour(3, 0, +1) == 0
        assert t.neighbour(0, 0, -1) == 3

    def test_min_distance_wraparound(self):
        t = KAryNCube(8, 1)
        assert t.min_distance(0, 7) == 1  # shorter the other way
        assert t.min_distance(0, 4) == 4
        assert t.min_distance(0, 3) == 3

    def test_min_distance_symmetric(self):
        t = KAryNCube(5, 2)
        for a in range(0, t.num_nodes, 3):
            for b in range(0, t.num_nodes, 5):
                assert t.min_distance(a, b) == t.min_distance(b, a)

    def test_average_internode_distance_closed_form(self):
        # 16-ary 2-cube bidirectional: per-ring mean (incl. zero) = 4,
        # so the pair-mean over distinct nodes is 2*4*N/(N-1)
        t = KAryNCube(16, 2)
        expected = (256 * 256 * 2 * 4.0) / (256 * 255)
        assert t.average_internode_distance == pytest.approx(expected)

    def test_average_distance_matches_bruteforce(self):
        t = KAryNCube(4, 2)
        n = t.num_nodes
        brute = sum(
            t.min_distance(a, b) for a in range(n) for b in range(n) if a != b
        ) / (n * (n - 1))
        assert t.average_internode_distance == pytest.approx(brute)

    def test_capacity_positive(self):
        t = KAryNCube(8, 2)
        assert t.capacity_flits_per_node_cycle > 0

    def test_productive_directions_tie_gives_both(self):
        t = KAryNCube(8, 1)
        dirs = t.productive_directions(0, 4)  # offset exactly k/2
        assert set(dirs) == {(0, +1), (0, -1)}

    def test_productive_directions_shorter_way(self):
        t = KAryNCube(8, 1)
        assert t.productive_directions(0, 6) == [(0, -1)]
        assert t.productive_directions(0, 2) == [(0, +1)]

    def test_productive_links_reduce_distance(self):
        t = KAryNCube(6, 2)
        for src in (0, 7, 21):
            for dest in (5, 17, 35):
                if src == dest:
                    continue
                d = t.min_distance(src, dest)
                for link in t.productive_links(src, dest):
                    assert t.min_distance(link.dst, dest) == d - 1

    def test_out_links_degree(self):
        t = KAryNCube(4, 2)
        for node in range(t.num_nodes):
            assert len(t.out_links(node)) == 4
            assert len(t.in_links(node)) == 4

    def test_radix2_no_duplicate_links(self):
        t = KAryNCube(2, 3)
        assert t.num_nodes == 8
        # each node has n=3 out-links (the +/- neighbours coincide)
        for node in range(8):
            assert len(t.out_links(node)) == 3

    def test_link_between_unknown_raises(self):
        t = KAryNCube(4, 2)
        with pytest.raises(TopologyError):
            t.link_between(0, 5)  # diagonal: not adjacent

    def test_bad_parameters(self):
        with pytest.raises(TopologyError):
            KAryNCube(1, 2)
        with pytest.raises(TopologyError):
            KAryNCube(4, 0)

    def test_node_out_of_range(self):
        t = KAryNCube(4, 2)
        with pytest.raises(TopologyError):
            t.coords(16)
        with pytest.raises(TopologyError):
            t.out_links(-1)


class TestKAryNCubeUnidirectional:
    def test_link_count_halved(self):
        t = KAryNCube(4, 2, bidirectional=False)
        assert t.num_links == 16 * 2

    def test_distance_is_forward_only(self):
        t = KAryNCube(8, 1, bidirectional=False)
        assert t.min_distance(0, 7) == 7
        assert t.min_distance(7, 0) == 1

    def test_productive_direction_always_positive(self):
        t = KAryNCube(8, 2, bidirectional=False)
        for src, dest in [(0, 63), (5, 3), (17, 2)]:
            for _dim, direction in t.productive_directions(src, dest):
                assert direction == +1

    def test_average_distance_closed_form(self):
        t = KAryNCube(16, 2, bidirectional=False)
        expected = (256 * 256 * 2 * 7.5) / (256 * 255)
        assert t.average_internode_distance == pytest.approx(expected)

    def test_uni_capacity_lower_than_bi(self):
        uni = KAryNCube(16, 2, bidirectional=False)
        bi = KAryNCube(16, 2, bidirectional=True)
        assert uni.capacity_flits_per_node_cycle < bi.capacity_flits_per_node_cycle


class TestMesh:
    def test_no_wraparound_links(self):
        m = Mesh(4, 2)
        assert not m.has_link(3, 0)
        assert not m.has_link(0, 3)
        assert m.has_link(0, 1)

    def test_link_count(self):
        m = Mesh(4, 2)
        # per dimension: k-1 bidirectional pairs per row, k rows, 2 dims
        assert m.num_links == 2 * 2 * 3 * 4

    def test_corner_degree(self):
        m = Mesh(4, 2)
        assert len(m.out_links(0)) == 2  # corner
        assert len(m.out_links(5)) == 4  # interior

    def test_distance_manhattan(self):
        m = Mesh(4, 2)
        assert m.min_distance(0, 15) == 6
        assert m.min_distance(0, 3) == 3

    def test_productive_links_reduce_distance(self):
        m = Mesh(5, 2)
        for src, dest in [(0, 24), (12, 3), (20, 4)]:
            d = m.min_distance(src, dest)
            links = m.productive_links(src, dest)
            assert links
            for link in links:
                assert m.min_distance(link.dst, dest) == d - 1

    def test_average_distance_matches_bruteforce(self):
        m = Mesh(3, 2)
        n = m.num_nodes
        brute = sum(
            m.min_distance(a, b) for a in range(n) for b in range(n) if a != b
        ) / (n * (n - 1))
        assert m.average_internode_distance == pytest.approx(brute)


class TestIrregularTorus:
    def test_no_failures_matches_regular(self):
        reg = KAryNCube(4, 2)
        irr = IrregularTorus(4, 2)
        assert irr.num_links == reg.num_links
        for a in range(16):
            for b in range(16):
                assert irr.min_distance(a, b) == reg.min_distance(a, b)

    def test_failed_link_removed(self):
        irr = IrregularTorus(4, 2, failed=[(0, 1)])
        assert not irr.has_link(0, 1)
        assert irr.has_link(1, 0)  # reverse direction survives

    def test_distances_detour_around_failure(self):
        irr = IrregularTorus(4, 2, failed=[(0, 1)])
        # 0 -> 1 now takes a detour (e.g. 0 -> 3 -> ... or via dim 1)
        assert irr.min_distance(0, 1) > 1

    def test_productive_links_still_minimal(self):
        irr = IrregularTorus(4, 2, failed=[(0, 1)])
        d = irr.min_distance(0, 1)
        for link in irr.productive_links(0, 1):
            assert irr.min_distance(link.dst, 1) == d - 1

    def test_unknown_failed_link_rejected(self):
        with pytest.raises(TopologyError):
            IrregularTorus(4, 2, failed=[(0, 5)])

    def test_disconnecting_failure_rejected(self):
        # remove every link of node 0 in both directions
        t = KAryNCube(2, 1)
        with pytest.raises(TopologyError):
            IrregularTorus(2, 1, failed=[(0, 1), (1, 0)])

    def test_productive_links_at_destination_empty(self):
        irr = IrregularTorus(4, 2)
        assert irr.productive_links(3, 3) == []
