"""Unit/behavioural tests for the flit-level engine."""

import pytest

from repro.config import tiny_default
from repro.errors import ConfigurationError
from repro.network.message import Message, MessageStatus
from repro.network.simulator import NetworkSimulator, build_topology
from repro.network.topology import IrregularTorus, KAryNCube, Mesh


def make_sim(**overrides):
    return NetworkSimulator(tiny_default(**overrides))


class TestBuildTopology:
    def test_torus(self):
        topo = build_topology(tiny_default())
        assert isinstance(topo, KAryNCube) and topo.bidirectional

    def test_uni_torus(self):
        topo = build_topology(tiny_default(bidirectional=False))
        assert not topo.bidirectional

    def test_mesh(self):
        topo = build_topology(tiny_default(mesh=True, routing="negative-first"))
        assert isinstance(topo, Mesh)

    def test_irregular(self):
        topo = build_topology(tiny_default(failed_links=((0, 1),)))
        assert isinstance(topo, IrregularTorus)


class TestSingleMessageTransit:
    """Drive one hand-injected message through an otherwise idle network."""

    def _run_single(self, src, dest, length=4, routing="dor", max_cycles=200):
        sim = make_sim(routing=routing, load=0.0, check_invariants=True)
        m = Message(0, src, dest, length, created_cycle=0)
        sim.queues[src].append(m)
        sim._live[0] = m
        for _ in range(max_cycles):
            sim.step()
            if m.is_done:
                return sim, m
        raise AssertionError(f"message never delivered: {m!r}")

    def test_neighbour_delivery(self):
        sim, m = self._run_single(0, 1)
        assert m.status is MessageStatus.DELIVERED
        assert m.ejected == m.length

    def test_cross_network_delivery(self):
        sim, m = self._run_single(0, 10)  # (2, 2) in a 4x4 torus
        assert m.status is MessageStatus.DELIVERED

    def test_wraparound_delivery(self):
        sim, m = self._run_single(0, 3)  # one hop the short way around
        assert m.status is MessageStatus.DELIVERED
        assert m.latency is not None

    def test_all_resources_released_after_delivery(self):
        sim, m = self._run_single(0, 5, length=8)
        for vc in sim.pool.vcs:
            assert vc.is_free
            assert vc.occupancy == 0
        for rx in sim.pool.reception:
            assert rx.is_free

    def test_latency_lower_bound(self):
        # latency >= distance + message length (pipelined transfer)
        sim, m = self._run_single(0, 2, length=4)
        dist = sim.topology.min_distance(0, 2)
        assert m.latency >= dist + m.length

    def test_tfar_also_delivers(self):
        sim, m = self._run_single(0, 10, routing="tfar")
        assert m.status is MessageStatus.DELIVERED

    def test_single_flit_message(self):
        sim, m = self._run_single(0, 9, length=1)
        assert m.status is MessageStatus.DELIVERED


class TestPipelining:
    def test_throughput_of_long_message(self):
        """A worm streams: delivery takes ~distance + length cycles, not
        distance * length."""
        sim = make_sim(load=0.0, routing="dor", buffer_depth=4)
        m = Message(0, 0, 2, 16, created_cycle=0)
        sim.queues[0].append(m)
        sim._live[0] = m
        cycles = 0
        while not m.is_done and cycles < 500:
            sim.step()
            cycles += 1
        assert m.status is MessageStatus.DELIVERED
        dist = sim.topology.min_distance(0, 2)
        assert cycles <= 3 * (dist + 16)  # far below dist * length


class TestContention:
    def test_two_messages_share_reception_channel(self):
        """Both arrive at the same destination; one must wait, then drain."""
        sim = make_sim(load=0.0, routing="dor", check_invariants=True)
        a = Message(0, 1, 0, 4, created_cycle=0)
        b = Message(1, 4, 0, 4, created_cycle=0)
        sim.queues[1].append(a)
        sim.queues[4].append(b)
        sim._live[0] = a
        sim._live[1] = b
        for _ in range(300):
            sim.step()
            if a.is_done and b.is_done:
                break
        assert a.status is MessageStatus.DELIVERED
        assert b.status is MessageStatus.DELIVERED

    def test_injection_serialized_per_node(self):
        """Messages from one source enter the network one at a time."""
        sim = make_sim(load=0.0, routing="dor")
        msgs = [Message(i, 0, 2, 4, created_cycle=0) for i in range(3)]
        for m in msgs:
            sim.queues[0].append(m)
            sim._live[m.id] = m
        injections = []
        for _ in range(400):
            sim.step()
            for m in msgs:
                if m.injected_cycle is not None and m.id not in injections:
                    injections.append(m.id)
            if all(m.is_done for m in msgs):
                break
        assert all(m.status is MessageStatus.DELIVERED for m in msgs)
        assert injections == [0, 1, 2]  # FIFO order


class TestRunHarness:
    def test_run_returns_result(self):
        sim = make_sim(load=0.3, measure_cycles=300, warmup_cycles=50)
        result = sim.run()
        assert result.delivered > 0
        assert result.measured_cycles == 300
        assert sim.cycle == 350

    def test_zero_load_runs_clean(self):
        sim = make_sim(load=0.0, measure_cycles=200, warmup_cycles=0)
        result = sim.run()
        assert result.delivered == 0
        assert result.deadlocks == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkSimulator(tiny_default(load=-1))

    def test_detection_interval_respected(self):
        sim = make_sim(load=0.2, measure_cycles=500, warmup_cycles=0,
                       detection_interval=100)
        sim.run()
        assert len(sim.detector.records) == 5

    def test_throughput_tracks_offered_load_below_saturation(self):
        sim = make_sim(load=0.2, measure_cycles=2000, warmup_cycles=300)
        result = sim.run()
        thr = result.normalized_throughput(
            sim.topology.capacity_flits_per_node_cycle
        )
        assert thr == pytest.approx(0.2, rel=0.25)


class TestLinkBandwidth:
    def test_one_flit_per_link_per_cycle(self):
        """With 2 VCs two messages share a link at half rate each."""
        sim = make_sim(load=0.0, num_vcs=2, routing="dor")
        a = Message(0, 0, 2, 8, created_cycle=0)
        b = Message(1, 0, 2, 8, created_cycle=0)
        # place both at node 0's queue: injection is serialized, so instead
        # start b from node 3 routing through 0? Simplest: watch aggregate
        # delivery time: 16 flits over the shared 1->2 link need >= 16 cycles.
        sim.queues[0].append(a)
        sim.queues[0].append(b)
        sim._live[0] = a
        sim._live[1] = b
        start = sim.cycle
        while not (a.is_done and b.is_done) and sim.cycle - start < 500:
            sim.step()
        assert a.is_done and b.is_done
        assert sim.cycle - start >= 16
