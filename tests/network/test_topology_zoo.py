"""Unit tests for the topology zoo and the heterogeneous-latency metrics.

Covers the geometry of :class:`Torus3D` / :class:`Mesh3D` /
:class:`Dragonfly` / :class:`FullMesh` and the latency-aware capacity
model: ``capacity_flits_per_node_cycle`` weights each link by ``1 /
latency`` (a latency-L channel accepts a flit every L cycles), and
``average_internode_latency`` is the latency-weighted counterpart of the
hop-based ``average_internode_distance``.
"""

import pytest

from repro.errors import TopologyError
from repro.network.topology import (
    Dragonfly,
    FullMesh,
    KAryNCube,
    Mesh3D,
    Torus3D,
)


class TestTorus3D:
    def test_requires_three_dimensions(self):
        with pytest.raises(TopologyError):
            Torus3D((4, 4))

    def test_mixed_radix_geometry(self):
        t = Torus3D((4, 3, 2))
        assert t.num_nodes == 24
        assert t.coords(t.node_at((3, 2, 1))) == (3, 2, 1)
        # per-ring wraparound distance, summed over dimensions
        assert t.min_distance(t.node_at((0, 0, 0)), t.node_at((3, 2, 1))) == 3

    def test_uniform_latency_flag(self):
        assert Torus3D((3, 3, 3)).uniform_latency
        assert not Torus3D((3, 3, 3), link_latencies=(1, 1, 2)).uniform_latency

    def test_tsv_latency_on_third_dimension_only(self):
        t = Torus3D((3, 3, 3), link_latencies=(1, 1, 4))
        for link in t.links:
            assert link.latency == (4 if link.dim == 2 else 1)
        assert t.max_link_latency == 4


class TestMesh3D:
    def test_no_wraparound(self):
        m = Mesh3D((3, 3, 3))
        corner, far = m.node_at((0, 0, 0)), m.node_at((2, 2, 2))
        assert m.min_distance(corner, far) == 6  # Manhattan, no wrap
        assert not m.has_link(m.node_at((2, 0, 0)), m.node_at((0, 0, 0)))

    def test_latency_validation(self):
        with pytest.raises(TopologyError):
            Mesh3D((3, 3, 3), link_latencies=(1, 1))
        with pytest.raises(TopologyError):
            Mesh3D((3, 3, 3), link_latencies=(1, 1, 0))


class TestDragonfly:
    def test_canonical_sizing(self):
        # a=4, h=2 -> 9 groups of 4 routers = 36 nodes
        t = Dragonfly(4, 2, 2)
        assert t.num_nodes == 36
        assert t.group_of(35) == 8

    def test_diameter_at_most_three(self):
        # local -> global -> local reaches any router from any other
        t = Dragonfly(3, 1, 2)
        worst = max(
            t.min_distance(a, b)
            for a in range(t.num_nodes)
            for b in range(t.num_nodes)
        )
        assert worst <= 3

    def test_global_link_latency(self):
        t = Dragonfly(2, 1, 1, local_latency=1, global_latency=5)
        for link in t.links:
            assert link.latency == (5 if link.dim == 1 else 1)

    def test_truncated_group_count(self):
        t = Dragonfly(2, 1, 1, groups=2)
        assert t.num_nodes == 4
        with pytest.raises(TopologyError):
            Dragonfly(2, 1, 1, groups=5)  # > a*h + 1


class TestFullMesh:
    def test_direct_links_everywhere(self):
        t = FullMesh(5)
        assert t.num_links == 20
        assert all(t.min_distance(a, b) == 1 for a in range(5) for b in range(5) if a != b)

    def test_rejects_trivial_sizes(self):
        with pytest.raises(TopologyError):
            FullMesh(1)


class TestLatencyWeightedMetrics:
    def test_capacity_matches_docstring_formula(self):
        """capacity = sum(1/latency) / (num_nodes * avg hop distance)."""
        t = Torus3D((3, 3, 3), link_latencies=(1, 2, 3))
        bandwidth = sum(1.0 / link.latency for link in t.links)
        expected = bandwidth / (t.num_nodes * t.average_internode_distance)
        assert t.capacity_flits_per_node_cycle == pytest.approx(expected)

    def test_uniform_latency_reduces_to_link_count(self):
        """With unit latencies the weighted form is the classic one."""
        t = KAryNCube(4, 2)
        expected = t.num_links / (t.num_nodes * t.average_internode_distance)
        assert t.capacity_flits_per_node_cycle == pytest.approx(expected)

    def test_slow_links_strictly_reduce_capacity(self):
        fast = Torus3D((3, 3, 3))
        slow = Torus3D((3, 3, 3), link_latencies=(1, 1, 4))
        assert slow.capacity_flits_per_node_cycle < fast.capacity_flits_per_node_cycle

    def test_min_latency_prefers_longer_cheaper_path(self):
        """Weighted shortest path is not the hop-shortest path when a slow
        dimension can be detoured around."""
        t = Torus3D((4, 4, 2), link_latencies=(1, 1, 6))
        a, b = t.node_at((0, 0, 0)), t.node_at((0, 0, 1))
        assert t.min_distance(a, b) == 1
        # the only way across dim 2 is a latency-6 link; no detour exists,
        # so min_latency pays it
        assert t.min_latency(a, b) == 6

    def test_average_latency_weighted_brute_force(self):
        t = Dragonfly(2, 1, 1, global_latency=3)
        nn = t.num_nodes
        pairs = [(a, b) for a in range(nn) for b in range(nn) if a != b]
        brute = sum(t.min_latency(a, b) for a, b in pairs) / len(pairs)
        assert t.average_internode_latency == pytest.approx(brute)
        # and it exceeds the hop average, because globals cost 3
        assert t.average_internode_latency > t.average_internode_distance
