"""Tests for the drain-driven run mode and engine edge cases."""

from repro.config import tiny_default
from repro.network.message import Message
from repro.network.simulator import NetworkSimulator


def test_run_to_drain_with_bernoulli_source_stops_at_cap():
    """The Bernoulli generator never exhausts; the cap bounds the run."""
    cfg = tiny_default(load=0.3)
    sim = NetworkSimulator(cfg)
    sim.run_to_drain(max_cycles=300)
    assert sim.cycle == 300


def test_run_to_drain_counts_from_cycle_zero():
    from repro.network.topology import KAryNCube
    from repro.traffic.trace import Trace, TraceRecord

    cfg = tiny_default()
    trace = Trace([TraceRecord(0, 0, 1, 4)])
    sim = NetworkSimulator(cfg, trace=trace)
    result = sim.run_to_drain(max_cycles=500)
    assert result.delivered == 1  # no warmup exclusion in drain mode


def test_step_is_reentrant_after_run():
    """Stepping past run() keeps the engine consistent."""
    cfg = tiny_default(load=0.4, measure_cycles=200, warmup_cycles=0,
                       check_invariants=True)
    sim = NetworkSimulator(cfg)
    sim.run()
    for _ in range(100):
        sim.step()
    assert sim.cycle == 300


def test_empty_network_detection_is_cheap_and_clean():
    cfg = tiny_default(load=0.0, measure_cycles=500, warmup_cycles=0)
    sim = NetworkSimulator(cfg)
    result = sim.run()
    assert all(not r.events for r in sim.detector.records)
    assert result.avg_cycle_count == 0.0


def test_message_to_adjacent_node_wraparound_both_ways():
    """Shortest wrap in either direction delivers."""
    for src, dest in ((0, 3), (3, 0)):
        cfg = tiny_default(load=0.0, routing="dor")
        sim = NetworkSimulator(cfg)
        m = Message(0, src, dest, 4, created_cycle=0)
        sim.queues[src].append(m)
        sim._live[0] = m
        for _ in range(100):
            sim.step()
            if m.is_done:
                break
        assert m.is_done


def test_queue_cap_bounds_source_queues():
    cfg = tiny_default(load=3.0, max_queued_per_node=4, measure_cycles=400,
                       warmup_cycles=0)
    sim = NetworkSimulator(cfg)
    max_seen = 0
    while sim.cycle < 400:
        sim.step()
        max_seen = max(max_seen, max(len(q) for q in sim.queues))
    assert max_seen <= 5  # cap + the one generated before the check
    assert sim.generator.suppressed > 0
