"""Unit tests for virtual channels, reception channels, and the pool."""

import pytest

from repro.errors import SimulationError
from repro.network.channels import ChannelPool, ReceptionChannel, VirtualChannel
from repro.network.topology import KAryNCube


@pytest.fixture
def pool():
    return ChannelPool(KAryNCube(4, 2), num_vcs=2, buffer_depth=3)


class TestVirtualChannel:
    def test_acquire_release_cycle(self, pool):
        vc = pool.vcs[0]
        assert vc.is_free
        vc.acquire(7)
        assert vc.owner == 7
        assert not vc.is_free
        vc.release(7)
        assert vc.is_free

    def test_double_acquire_rejected(self, pool):
        vc = pool.vcs[0]
        vc.acquire(1)
        with pytest.raises(SimulationError):
            vc.acquire(2)

    def test_release_by_non_owner_rejected(self, pool):
        vc = pool.vcs[0]
        vc.acquire(1)
        with pytest.raises(SimulationError):
            vc.release(2)

    def test_release_with_flits_rejected(self, pool):
        vc = pool.vcs[0]
        vc.acquire(1)
        vc.occupancy = 1
        with pytest.raises(SimulationError):
            vc.release(1)

    def test_src_dst_follow_link(self, pool):
        vc = pool.vcs[0]
        assert vc.src == vc.link.src
        assert vc.dst == vc.link.dst


class TestReceptionChannel:
    def test_acquire_release(self):
        rx = ReceptionChannel(3)
        rx.acquire(1)
        assert not rx.is_free
        rx.release(1)
        assert rx.is_free

    def test_exclusive(self):
        rx = ReceptionChannel(3)
        rx.acquire(1)
        with pytest.raises(SimulationError):
            rx.acquire(2)

    def test_release_wrong_owner(self):
        rx = ReceptionChannel(3)
        rx.acquire(1)
        with pytest.raises(SimulationError):
            rx.release(9)


class TestChannelPool:
    def test_vc_count(self, pool):
        assert pool.total_vcs == pool.topology.num_links * 2

    def test_one_reception_channel_per_node(self, pool):
        assert len(pool.reception) == 16
        assert pool.reception[5].node == 5

    def test_vcs_of_link_grouping(self, pool):
        link = pool.topology.links[3]
        group = pool.vcs_of_link(link)
        assert len(group) == 2
        assert all(vc.link is link for vc in group)
        assert [vc.vc_index for vc in group] == [0, 1]

    def test_global_vc_indices_dense_and_unique(self, pool):
        indices = [vc.index for vc in pool.vcs]
        assert indices == list(range(pool.total_vcs))

    def test_free_vcs_of_link(self, pool):
        link = pool.topology.links[0]
        group = pool.vcs_of_link(link)
        assert pool.free_vcs_of_link(link) == group
        group[0].acquire(1)
        assert pool.free_vcs_of_link(link) == [group[1]]

    def test_owned_vcs(self, pool):
        assert pool.owned_vcs() == []
        pool.vcs[4].acquire(9)
        assert pool.owned_vcs() == [pool.vcs[4]]

    def test_buffer_capacity_configured(self, pool):
        assert all(vc.capacity == 3 for vc in pool.vcs)

    def test_invalid_parameters(self):
        topo = KAryNCube(4, 2)
        with pytest.raises(SimulationError):
            ChannelPool(topo, num_vcs=0, buffer_depth=2)
        with pytest.raises(SimulationError):
            ChannelPool(topo, num_vcs=1, buffer_depth=0)

    def test_assert_consistent_catches_bad_occupancy(self, pool):
        pool.vcs[0].occupancy = 99
        with pytest.raises(SimulationError):
            pool.assert_consistent()

    def test_assert_consistent_catches_unowned_flits(self, pool):
        pool.vcs[0].occupancy = 1  # flits without an owner
        with pytest.raises(SimulationError):
            pool.assert_consistent()
