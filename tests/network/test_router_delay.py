"""Tests for the router pipeline delay (route-compute / VC-allocate latency)."""

import pytest

from repro.config import tiny_default
from repro.network.message import Message, MessageStatus
from repro.network.simulator import NetworkSimulator


def transit_latency(router_delay, src=0, dest=10, length=4):
    cfg = tiny_default(load=0.0, routing="dor", router_delay=router_delay,
                       check_invariants=True)
    sim = NetworkSimulator(cfg)
    m = Message(0, src, dest, length, created_cycle=0)
    sim.queues[src].append(m)
    sim._live[0] = m
    for _ in range(600):
        sim.step()
        if m.is_done:
            return sim, m
    raise AssertionError("message never delivered")


def test_zero_delay_is_default_behaviour():
    sim, m = transit_latency(0)
    assert m.status is MessageStatus.DELIVERED


def test_delay_slows_per_hop_latency():
    """The engine's allocate-before-move order already gives every hop one
    cycle of routing latency, so ``router_delay=d`` adds ``d - 1`` extra
    cycles at each routing decision (intermediate hops + ejection)."""
    _, fast = transit_latency(0)
    _, slow = transit_latency(3)
    dist = 4  # 0 -> 10 in a 4x4 torus is (2, 2): 4 hops
    assert slow.latency >= fast.latency + (3 - 1) * dist


def test_delay_of_one_matches_inherent_latency():
    _, base = transit_latency(0)
    _, one = transit_latency(1)
    assert one.latency == base.latency


def test_delay_scales_roughly_linearly():
    lat = {d: transit_latency(d)[1].latency for d in (0, 2, 4)}
    assert lat[4] > lat[2] > lat[0]


def test_pipeline_waiting_header_is_not_blocked():
    """A header inside the router pipeline must not appear in the CWG."""
    cfg = tiny_default(load=0.0, routing="dor", router_delay=50)
    sim = NetworkSimulator(cfg)
    m = Message(0, 0, 2, 4, created_cycle=0)
    sim.queues[0].append(m)
    sim._live[0] = m
    # step until the header has entered its first VC
    for _ in range(20):
        sim.step()
        if m.header_in_newest_vc:
            break
    assert m.header_in_newest_vc
    # within the 50-cycle pipeline window: not eligible, not blocked
    assert not sim.routing_eligible(m)
    assert m not in sim.blocked_messages()
    from repro.core.detector import DeadlockDetector

    g = DeadlockDetector.build_cwg(sim)
    assert m.id not in g.blocked_messages()


def test_deadlocks_still_detected_with_delay():
    cfg = tiny_default(routing="dor", num_vcs=1, load=1.0, router_delay=2,
                       measure_cycles=3000, seed=3)
    result = NetworkSimulator(cfg).run()
    # pipeline delay postpones requests but does not prevent knots
    assert result.delivered > 0
    assert result.deadlocks >= 0  # smoke: run completes cleanly


def test_negative_delay_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        tiny_default(router_delay=-1).validate()
