"""Tests for engine arbitration (service order) policies."""

import pytest

from repro.config import tiny_default
from repro.errors import ConfigurationError
from repro.network.simulator import NetworkSimulator


def run(arbitration, seed=1, **overrides):
    params = dict(
        arbitration=arbitration,
        load=0.8,
        measure_cycles=1200,
        warmup_cycles=100,
        seed=seed,
        check_invariants=True,
    )
    params.update(overrides)
    return NetworkSimulator(tiny_default(**params)).run()


class TestPolicies:
    @pytest.mark.parametrize(
        "policy", ["random", "oldest-first", "round-robin"]
    )
    def test_all_policies_deliver(self, policy):
        result = run(policy)
        assert result.delivered > 0

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_default(arbitration="coin-flip").validate()

    def test_policies_are_deterministic(self):
        for policy in ("oldest-first", "round-robin", "random"):
            a = run(policy, seed=4)
            b = run(policy, seed=4)
            assert a.delivered == b.delivered
            assert a.deadlocks == b.deadlocks

    def test_policies_differ_behaviourally(self):
        """Different arbitration produces (generally) different schedules."""
        results = {p: run(p, seed=2) for p in ("random", "oldest-first")}
        # identical workload, different outcome ordering: latency sums differ
        assert (
            results["random"].latency_sum
            != results["oldest-first"].latency_sum
        )


class TestServiceOrderUnit:
    def _sim(self, policy):
        return NetworkSimulator(tiny_default(arbitration=policy))

    def test_oldest_first_sorts_by_id(self):
        from repro.network.message import Message

        sim = self._sim("oldest-first")
        msgs = [Message(i, 0, 1, 2, 0) for i in (5, 2, 9)]
        assert [m.id for m in sim._service_order(msgs)] == [2, 5, 9]

    def test_round_robin_rotates(self):
        from repro.network.message import Message

        sim = self._sim("round-robin")
        msgs = [Message(i, 0, 1, 2, 0) for i in range(4)]
        first = [m.id for m in sim._service_order(list(msgs))]
        second = [m.id for m in sim._service_order(list(msgs))]
        assert sorted(first) == [0, 1, 2, 3]
        assert first != second  # the starting point rotated

    def test_round_robin_empty(self):
        sim = self._sim("round-robin")
        assert sim._service_order([]) == []


class TestStarvationMetrics:
    def test_max_blocked_duration_tracked(self):
        result = run("random", load=1.0, routing="dor", num_vcs=1, seed=3)
        assert result.max_blocked_duration > 0
        assert result.max_latency >= result.avg_latency

    def test_oldest_first_bounds_blocked_tail(self):
        """Age priority should not make the starvation tail worse."""
        rnd = run("random", load=1.0, seed=6)
        old = run("oldest-first", load=1.0, seed=6)
        # soft check: same order of magnitude (both bounded by run length)
        assert old.max_blocked_duration <= max(
            2 * rnd.max_blocked_duration, 400
        )
