"""SoAState mirror round-trips: as_arrays() projections and verify().

The vectorized/kernel engines trust the SoA mirrors completely — a stale
row silently changes arbitration, so these tests pin (a) that
``as_arrays()`` is a faithful, uniformly-numpy projection of the live
state, (b) that ``verify()`` passes against the object model throughout a
saturated run (slots recycling included), and (c) that ``verify()`` has
teeth: corrupting any single mirror raises.
"""

import numpy as np
import pytest

from repro.config import tiny_default
from repro.errors import SimulationError
from repro.network.simulator import NetworkSimulator


def _saturated_sim():
    cfg = tiny_default(
        routing="dor",
        num_vcs=1,
        load=1.2,
        warmup_cycles=0,
        measure_cycles=300,
        seed=11,
        engine_fast_path=True,
        engine_vectorized=True,
    )
    return NetworkSimulator(cfg)


def test_verify_round_trips_through_a_saturated_run():
    sim = _saturated_sim()
    checks = 0
    while sim.cycle < 300:
        sim.step()
        if sim.cycle % 10 == 0:
            sim.soa.verify(sim)  # raises on any mirror drift
            checks += 1
    assert checks == 30
    assert sim.soa.slots_recycled > 0, (
        "scenario too tame: verify() never saw a recycled slot"
    )


def test_as_arrays_matches_object_model():
    sim = _saturated_sim()
    for _ in range(120):
        sim.step()
    soa = sim.soa
    arrays = soa.as_arrays()
    # uniform numpy projection, one consistent slot-table length
    n_slots = len(soa.slot_msgs)
    for name, arr in arrays.items():
        assert isinstance(arr, np.ndarray), f"{name} is not a numpy array"
    for name in (
        "msg_id", "length", "at_source", "ejected", "head_vc", "tail_vc",
        "routable", "stalled", "immobile", "blocked", "live",
    ):
        assert arrays[name].shape == (n_slots,)
    # every live message's row reads back the object model exactly
    live = [m for m in sim.active_messages() if m.slot is not None]
    assert live, "scenario too tame: no active messages to compare"
    for msg in live:
        s = msg.slot
        assert arrays["msg_id"][s] == msg.id
        assert arrays["length"][s] == msg.length
        assert arrays["at_source"][s] == msg.at_source
        assert arrays["ejected"][s] == msg.ejected
        assert arrays["head_vc"][s] == (msg.vcs[-1].index if msg.vcs else -1)
        assert arrays["tail_vc"][s] == (msg.vcs[0].index if msg.vcs else -1)
        assert arrays["routable"][s] == int(msg.routable)
        assert arrays["live"][s] == 1
    # VC columns round-trip against the pool
    for vc in sim.pool.vcs:
        owner = -1 if vc.owner is None else vc.owner
        assert arrays["vc_owner"][vc.index] == owner
        assert arrays["vc_occupancy"][vc.index] == vc.occupancy


def test_as_arrays_copies_list_backed_columns():
    """The list-backed hot counters are exported as copies — mutating the
    projection must not corrupt the engine's state (the numpy-backed
    columns are documented as direct views, pinned here too)."""
    sim = _saturated_sim()
    for _ in range(50):
        sim.step()
    soa = sim.soa
    arrays = soa.as_arrays()
    before = list(soa.at_source)
    arrays["at_source"] += 1000
    arrays["vc_occupancy"] += 1000
    assert soa.at_source == before
    assert all(occ < 1000 for occ in soa.vc_occupancy)
    assert arrays["vc_owner"] is soa.vc_owner
    assert arrays["rx_owner"] is soa.rx_owner
    soa.verify(sim)  # the projection round-trip left the mirrors intact


@pytest.mark.parametrize(
    "column", ["routable", "stalled", "immobile", "blocked"]
)
def test_verify_catches_corrupted_flag_mirror(column):
    sim = _saturated_sim()
    for _ in range(80):
        sim.step()
    sim.soa.verify(sim)
    live = [m for m in sim.active_messages() if m.slot is not None]
    assert live
    slot = live[0].slot
    arr = getattr(sim.soa, column)
    arr[slot] ^= 1
    with pytest.raises(SimulationError, match=column):
        sim.soa.verify(sim)
    arr[slot] ^= 1
    sim.soa.verify(sim)


def test_verify_catches_corrupted_vc_owner():
    sim = _saturated_sim()
    for _ in range(80):
        sim.step()
    owned = [vc for vc in sim.pool.vcs if vc.owner is not None]
    assert owned, "scenario too tame: no owned VCs"
    idx = owned[0].index
    sim.soa.vc_owner[idx] = -1
    with pytest.raises(SimulationError, match="vc_owner"):
        sim.soa.verify(sim)


def test_verify_catches_orphaned_live_slot():
    sim = _saturated_sim()
    for _ in range(80):
        sim.step()
    free = sim.soa._free[-1]
    sim.soa.live[free] = 1
    with pytest.raises(SimulationError, match="live without a backing"):
        sim.soa.verify(sim)
