"""Unit tests for message state transitions and flit conservation."""

import pytest

from repro.errors import SimulationError
from repro.network.channels import ChannelPool, ReceptionChannel
from repro.network.message import Message, MessageStatus
from repro.network.topology import KAryNCube


@pytest.fixture
def pool():
    return ChannelPool(KAryNCube(4, 2), num_vcs=1, buffer_depth=2)


def vc_between(pool, a, b):
    return pool.vcs_of_link(pool.topology.link_between(a, b))[0]


class TestConstruction:
    def test_initial_state(self):
        m = Message(3, src=0, dest=5, length=8, created_cycle=10)
        assert m.status is MessageStatus.QUEUED
        assert m.at_source == 8
        assert m.head_node == 0
        assert not m.in_network
        m.check_conservation()

    def test_self_addressed_rejected(self):
        with pytest.raises(SimulationError):
            Message(1, src=2, dest=2, length=4, created_cycle=0)

    def test_zero_length_rejected(self):
        with pytest.raises(SimulationError):
            Message(1, src=0, dest=1, length=0, created_cycle=0)


class TestAcquisition:
    def test_first_vc_activates(self, pool):
        m = Message(1, src=0, dest=2, length=4, created_cycle=0)
        vc = vc_between(pool, 0, 1)
        m.acquire_vc(vc, cycle=5)
        assert m.status is MessageStatus.ACTIVE
        assert m.injected_cycle == 5
        assert vc.owner == 1
        assert m.head_node == 1

    def test_header_position_tracking(self, pool):
        m = Message(1, src=0, dest=2, length=4, created_cycle=0)
        vc = vc_between(pool, 0, 1)
        m.acquire_vc(vc, 0)
        assert not m.header_in_newest_vc  # header hasn't crossed the link
        vc.occupancy = 1
        assert m.header_in_newest_vc

    def test_needs_next_vc_progression(self, pool):
        m = Message(1, src=0, dest=2, length=4, created_cycle=0)
        assert m.needs_next_vc  # queued, routing from source
        vc01 = vc_between(pool, 0, 1)
        m.acquire_vc(vc01, 0)
        assert not m.needs_next_vc  # header not at node 1 yet
        vc01.occupancy = 1
        assert m.needs_next_vc  # at node 1, dest is 2
        vc12 = vc_between(pool, 1, 2)
        m.acquire_vc(vc12, 1)
        vc12.occupancy = 1
        vc01.occupancy = 0
        assert m.at_destination
        assert m.needs_reception
        assert not m.needs_next_vc

    def test_blocked_since_cleared_on_acquire(self, pool):
        m = Message(1, src=0, dest=2, length=4, created_cycle=0)
        m.blocked_since = 17
        m.acquire_vc(vc_between(pool, 0, 1), 20)
        assert m.blocked_since is None


class TestTailRelease:
    def test_release_waits_for_source_drain(self, pool):
        m = Message(1, src=0, dest=2, length=4, created_cycle=0)
        vc = vc_between(pool, 0, 1)
        m.acquire_vc(vc, 0)
        m.at_source = 2  # two flits still at the source
        vc.occupancy = 0
        m.release_drained_tail()
        assert m.vcs == [vc]  # not released: source flits still coming

    def test_release_drained_prefix(self, pool):
        m = Message(1, src=0, dest=3, length=2, created_cycle=0)
        vc01 = vc_between(pool, 0, 1)
        vc12 = vc_between(pool, 1, 2)
        m.acquire_vc(vc01, 0)
        m.acquire_vc(vc12, 0)
        m.at_source = 0
        vc01.occupancy = 0
        vc12.occupancy = 2
        m.release_drained_tail()
        assert m.vcs == [vc12]
        assert vc01.is_free

    def test_interior_bubble_not_released(self, pool):
        m = Message(1, src=0, dest=3, length=4, created_cycle=0)
        vc01 = vc_between(pool, 0, 1)
        vc12 = vc_between(pool, 1, 2)
        vc23 = vc_between(pool, 2, 3)
        for vc in (vc01, vc12, vc23):
            m.acquire_vc(vc, 0)
        m.at_source = 0
        vc01.occupancy = 2
        vc12.occupancy = 0  # bubble
        vc23.occupancy = 2
        m.release_drained_tail()
        assert m.vcs == [vc01, vc12, vc23]  # nothing released


class TestDeliveryAndRemoval:
    def test_finish_delivery(self, pool):
        m = Message(1, src=0, dest=1, length=2, created_cycle=0)
        rx = ReceptionChannel(1)
        m.acquire_reception(rx)
        m.at_source = 0
        m.ejected = 2
        m.finish_delivery(50)
        assert m.status is MessageStatus.DELIVERED
        assert m.latency == 50
        assert rx.is_free

    def test_finish_delivery_incomplete_rejected(self):
        m = Message(1, src=0, dest=1, length=4, created_cycle=0)
        m.ejected = 2
        with pytest.raises(SimulationError):
            m.finish_delivery(10)

    def test_finish_while_owning_vcs_rejected(self, pool):
        m = Message(1, src=0, dest=1, length=1, created_cycle=0)
        m.acquire_vc(vc_between(pool, 0, 1), 0)
        m.at_source = 0
        m.ejected = 1
        with pytest.raises(SimulationError):
            m.finish_delivery(10)

    def test_conservation_check(self, pool):
        m = Message(1, src=0, dest=1, length=4, created_cycle=0)
        m.check_conservation()
        m.at_source = 1  # lost flits!
        with pytest.raises(SimulationError):
            m.check_conservation()

    def test_latency_none_before_completion(self):
        m = Message(1, src=0, dest=1, length=4, created_cycle=0)
        assert m.latency is None

    def test_is_done_states(self):
        m = Message(1, src=0, dest=1, length=4, created_cycle=0)
        assert not m.is_done
        m.remove_from_network(1, delivered=False)
        assert m.is_done
