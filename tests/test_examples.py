"""Smoke tests: the example scripts run end to end and print sane output.

Heavyweight examples (full studies, long traces) are exercised indirectly
by the experiment tests; the ones here complete in seconds.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_classification_gallery(capsys):
    run_example("classification_gallery.py")
    out = capsys.readouterr().out
    assert "Figure 1" in out and "Figure 4" in out
    assert "single-cycle deadlock" in out
    assert "NO deadlock" in out
    assert "dependent msgs" in out


def test_classification_gallery_dot(capsys):
    run_example("classification_gallery.py", ["--dot"])
    assert "digraph CWG" in capsys.readouterr().out


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "deadlock characterization" in out
    assert "true deadlocks detected" in out


def test_static_certification(capsys):
    run_example("static_certification.py")
    out = capsys.readouterr().out
    assert "deadlock-free (Dally-Seitz)" in out
    assert "VIOLATION" not in out


def test_watch_deadlock(capsys):
    run_example("watch_deadlock.py")
    out = capsys.readouterr().out
    assert "deadlock @ cycle" in out or "no deadlock formed" in out


def test_profile_run(capsys, tmp_path):
    import json

    trace_path = tmp_path / "trace.json"
    run_example("profile_run.py", ["--trace-out", str(trace_path)])
    out = capsys.readouterr().out
    assert "phase profile" in out
    assert "engine/allocate" in out
    assert "detector cache counters" in out
    assert "trace ring buffer" in out
    doc = json.loads(trace_path.read_text())
    assert {ev["name"] for ev in doc["traceEvents"]} >= {
        "engine/generate",
        "engine/allocate",
        "engine/move",
        "engine/detect",
    }
