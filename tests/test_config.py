"""Unit tests for simulation configuration."""

import pytest

from repro.config import SimulationConfig, bench_default, paper_default, tiny_default
from repro.errors import ConfigurationError


def test_paper_default_matches_paper():
    cfg = paper_default()
    assert cfg.k == 16 and cfg.n == 2
    assert cfg.bidirectional
    assert cfg.message_length == 32
    assert cfg.buffer_depth == 2
    assert cfg.detection_interval == 50
    assert cfg.measure_cycles == 30_000
    assert cfg.selection == "straight"
    cfg.validate()


def test_bench_and_tiny_valid():
    bench_default().validate()
    tiny_default().validate()


def test_replace_creates_new_config():
    cfg = tiny_default()
    other = cfg.replace(load=0.9)
    assert other.load == 0.9
    assert cfg.load != 0.9 or cfg is not other


def test_num_nodes():
    assert SimulationConfig(k=4, n=3).num_nodes == 64


def test_is_cut_through():
    assert SimulationConfig(buffer_depth=32, message_length=32).is_cut_through
    assert not SimulationConfig(buffer_depth=2, message_length=32).is_cut_through


def test_label_mentions_key_fields():
    label = SimulationConfig(k=8, n=2, routing="dor", num_vcs=2).label()
    assert "8-ary" in label and "DOR2" in label


@pytest.mark.parametrize(
    "field,value",
    [
        ("k", 1),
        ("n", 0),
        ("num_vcs", 0),
        ("buffer_depth", 0),
        ("message_length", 0),
        ("load", -0.1),
        ("detection_interval", 0),
        ("measure_cycles", 0),
        ("warmup_cycles", -1),
    ],
)
def test_invalid_fields_rejected(field, value):
    with pytest.raises(ConfigurationError):
        tiny_default(**{field: value}).validate()


def test_mesh_constraints():
    with pytest.raises(ConfigurationError):
        tiny_default(mesh=True, bidirectional=False).validate()
    with pytest.raises(ConfigurationError):
        tiny_default(mesh=True, failed_links=((0, 1),)).validate()


def test_config_is_frozen():
    cfg = tiny_default()
    with pytest.raises(Exception):
        cfg.load = 0.7  # type: ignore[misc]
