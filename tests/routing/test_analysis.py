"""Tests for static channel-dependency-graph analysis."""

import pytest

from repro.network.channels import ChannelPool
from repro.network.topology import KAryNCube, Mesh
from repro.routing import (
    DatelineDOR,
    DimensionOrderRouting,
    NegativeFirstRouting,
    TrueFullyAdaptiveRouting,
)
from repro.routing.analysis import (
    certify_deadlock_free,
    channel_dependency_graph,
    dependency_cycles,
    is_acyclic,
)


@pytest.fixture
def torus():
    return KAryNCube(4, 2)


class TestCDGConstruction:
    def test_dor_torus_has_ring_cycles(self, torus):
        pool = ChannelPool(torus, 1, 2)
        adj = channel_dependency_graph(DimensionOrderRouting(), torus, pool)
        assert not is_acyclic(adj)
        assert dependency_cycles(adj).count >= 2  # at least one per dimension

    def test_dor_mesh_is_acyclic(self):
        mesh = Mesh(4, 2)
        pool = ChannelPool(mesh, 1, 2)
        adj = channel_dependency_graph(DimensionOrderRouting(), mesh, pool)
        assert is_acyclic(adj)

    def test_dateline_torus_is_acyclic(self, torus):
        pool = ChannelPool(torus, 2, 2)
        adj = channel_dependency_graph(DatelineDOR(), torus, pool)
        assert is_acyclic(adj)

    def test_turn_model_is_acyclic(self):
        mesh = Mesh(4, 2)
        pool = ChannelPool(mesh, 1, 2)
        adj = channel_dependency_graph(NegativeFirstRouting(), mesh, pool)
        assert is_acyclic(adj)

    def test_tfar_torus_has_many_cycles(self, torus):
        pool = ChannelPool(torus, 1, 2)
        adj = channel_dependency_graph(TrueFullyAdaptiveRouting(), torus, pool)
        assert not is_acyclic(adj)

    def test_cdg_vertices_are_reachable_vcs(self, torus):
        pool = ChannelPool(torus, 1, 2)
        adj = channel_dependency_graph(DimensionOrderRouting(), torus, pool)
        # every VC of a 4-ary 2-cube is usable by some (src, dest) pair
        assert len(adj) == pool.total_vcs

    def test_arcs_connect_adjacent_links(self, torus):
        pool = ChannelPool(torus, 1, 2)
        adj = channel_dependency_graph(DimensionOrderRouting(), torus, pool)
        for u, succs in adj.items():
            for v in succs:
                # a dependency u->v requires v's link to start where u's ends
                assert pool.vcs[u].dst == pool.vcs[v].src


class TestCertification:
    def test_certifies_dateline(self, torus):
        pool = ChannelPool(torus, 2, 2)
        report = certify_deadlock_free(DatelineDOR(), torus, pool)
        assert report.certified
        assert report.example_cycle is None
        assert "deadlock-free" in report.summary()

    def test_flags_dor_on_torus(self, torus):
        pool = ChannelPool(torus, 1, 2)
        report = certify_deadlock_free(DimensionOrderRouting(), torus, pool)
        assert not report.certified
        assert report.cycle_count >= 1
        assert report.example_cycle is not None
        assert "deadlock possible" in report.summary()

    def test_example_cycle_is_real(self, torus):
        pool = ChannelPool(torus, 1, 2)
        report = certify_deadlock_free(DimensionOrderRouting(), torus, pool)
        adj = channel_dependency_graph(DimensionOrderRouting(), torus, pool)
        cyc = report.example_cycle
        for u, v in zip(cyc, cyc[1:]):
            assert v in adj[u]
        assert cyc[0] in adj[cyc[-1]]

    def test_certification_matches_dynamic_behaviour(self):
        """The static certifier's verdicts agree with what the simulator
        observes: certified routers never knot, flagged ones do (under
        stress)."""
        from repro.config import tiny_default
        from repro.network.simulator import NetworkSimulator

        stress = dict(load=1.0, measure_cycles=2500, seed=3)
        torus = KAryNCube(4, 2)
        cert = certify_deadlock_free(
            DatelineDOR(), torus, ChannelPool(torus, 2, 2)
        )
        assert cert.certified
        result = NetworkSimulator(
            tiny_default(routing="dor-dateline", num_vcs=2, **stress)
        ).run()
        assert result.deadlocks == 0

        flag = certify_deadlock_free(
            DimensionOrderRouting(), torus, ChannelPool(torus, 1, 2)
        )
        assert not flag.certified
        result = NetworkSimulator(
            tiny_default(routing="dor", num_vcs=1, **stress)
        ).run()
        assert result.deadlocks > 0
