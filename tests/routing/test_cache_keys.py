"""Candidate-cache correctness: memoized sets equal fresh computations.

The engine memoizes routing candidates under each relation's cache_key;
these tests assert the key captures *all* state the candidates depend on,
by comparing cached and fresh candidate sets over many live states.
"""

import pytest

from repro.config import tiny_default
from repro.network.simulator import NetworkSimulator


@pytest.mark.parametrize(
    "routing,vcs,mesh",
    [
        ("dor", 1, False),
        ("tfar", 2, False),
        ("tfar-mis", 1, False),
        ("dor-dateline", 2, False),
        ("duato", 3, False),
        ("negative-first", 1, True),
    ],
)
def test_cached_candidates_match_fresh(routing, vcs, mesh):
    cfg = tiny_default(
        routing=routing, num_vcs=vcs, mesh=mesh, load=0.8, seed=2,
        warmup_cycles=0, measure_cycles=400,
    )
    sim = NetworkSimulator(cfg)
    compared = 0
    while sim.cycle < 400:
        sim.step()
        if sim.cycle % 20 != 0:
            continue
        for msg in sim.active_messages():
            if not (msg.needs_next_vc and msg.header_in_newest_vc):
                continue
            cached = sim.route_candidates(msg)
            fresh = sim.routing.candidates(
                msg, msg.head_node, sim.topology, sim.pool
            )
            assert [vc.index for vc in cached] == [vc.index for vc in fresh]
            compared += 1
    assert compared > 10


def test_cache_key_distinguishes_dateline_sources():
    """Two messages at the same node with the same destination but
    different sources can legally need different dateline classes; their
    cache keys must differ."""
    from repro.network.message import Message
    from repro.routing.dateline import DatelineDOR

    r = DatelineDOR()
    a = Message(0, 6, 1, 4, 0)  # crosses the wrap travelling +
    b = Message(1, 7, 1, 4, 0)
    assert r.cache_key(a, 0) != r.cache_key(b, 0)


def test_misrouting_key_includes_progress():
    from repro.network.channels import ChannelPool
    from repro.network.message import Message
    from repro.network.topology import KAryNCube
    from repro.routing.tfar import MisroutingTFAR

    topo = KAryNCube(4, 2)
    pool = ChannelPool(topo, 1, 2)
    r = MisroutingTFAR(misroute_budget=1)
    m = Message(0, 0, 2, 4, 0)
    key_before = r.cache_key(m, 0)
    vc = pool.vcs_of_link(topo.link_between(0, 1))[0]
    m.acquire_vc(vc, 0)
    key_after = r.cache_key(m, 1)
    assert key_before != key_after
