"""Candidate-cache correctness: memoized sets equal fresh computations.

The engine memoizes routing candidates under each relation's cache_key;
these tests assert the key captures *all* state the candidates depend on,
by comparing cached and fresh candidate sets over many live states.
"""

import pytest

from repro.config import tiny_default
from repro.network.simulator import NetworkSimulator


@pytest.mark.parametrize(
    "routing,vcs,mesh",
    [
        ("dor", 1, False),
        ("tfar", 2, False),
        ("tfar-mis", 1, False),
        ("dor-dateline", 2, False),
        ("duato", 3, False),
        ("negative-first", 1, True),
    ],
)
def test_cached_candidates_match_fresh(routing, vcs, mesh):
    cfg = tiny_default(
        routing=routing, num_vcs=vcs, mesh=mesh, load=0.8, seed=2,
        warmup_cycles=0, measure_cycles=400,
    )
    sim = NetworkSimulator(cfg)
    compared = 0
    while sim.cycle < 400:
        sim.step()
        if sim.cycle % 20 != 0:
            continue
        for msg in sim.active_messages():
            if not (msg.needs_next_vc and msg.header_in_newest_vc):
                continue
            cached = sim.route_candidates(msg)
            fresh = sim.routing.candidates(
                msg, msg.head_node, sim.topology, sim.pool
            )
            assert [vc.index for vc in cached] == [vc.index for vc in fresh]
            compared += 1
    assert compared > 10


def test_cache_key_distinguishes_dateline_sources():
    """Two messages at the same node with the same destination but
    different sources can legally need different dateline classes; their
    cache keys must differ."""
    from repro.network.message import Message
    from repro.routing.dateline import DatelineDOR

    r = DatelineDOR()
    a = Message(0, 6, 1, 4, 0)  # crosses the wrap travelling +
    b = Message(1, 7, 1, 4, 0)
    assert r.cache_key(a, 0) != r.cache_key(b, 0)


def test_candidate_table_wraparound_matches_fresh():
    """A warm CandidateTable returns exactly what a fresh relation call
    would, for every (source, destination) pair of a torus — including the
    pairs whose minimal route crosses the wrap-around link, where a lossy
    cache key would collide positions on opposite sides of the dateline."""
    from repro.network.channels import ChannelPool
    from repro.network.message import Message
    from repro.network.topology import KAryNCube
    from repro.routing.batch import CandidateTable
    from repro.routing.dor import DimensionOrderRouting

    topo = KAryNCube(4, 2)
    pool = ChannelPool(topo, 1, 2)
    r = DimensionOrderRouting()
    table = CandidateTable(r, topo, pool)
    pairs = [
        (src, dest)
        for src in range(topo.num_nodes)
        for dest in range(topo.num_nodes)
        if src != dest
    ]
    # two passes: the first builds entries, the second reads every pair
    # back from the fully-warm table, so any key collision between two
    # pairs surfaces as the wrong memoized entry
    for _ in range(2):
        for i, (src, dest) in enumerate(pairs):
            msg = Message(i, src, dest, 4, 0)
            cached, idxs = table.lookup(msg, src)
            fresh = r.candidates(msg, src, topo, pool)
            assert idxs == tuple(vc.index for vc in fresh), (
                f"candidate table diverges from fresh DOR candidates at "
                f"node {src} -> dest {dest}"
            )
            assert cached == fresh
    assert len(table) > 0


def test_candidate_table_dateline_wrap_distinct_entries():
    """Dateline VC classes split on wrap-around crossings: at the same
    node, with the same destination, a message that crossed the wrap and
    one that did not must hit *different* table entries with different
    candidate sets — the cache key has to carry the source."""
    from repro.network.channels import ChannelPool
    from repro.network.message import Message
    from repro.network.topology import KAryNCube
    from repro.routing.batch import CandidateTable
    from repro.routing.dateline import DatelineDOR

    topo = KAryNCube(8, 1)
    pool = ChannelPool(topo, 2, 2)
    r = DatelineDOR()
    table = CandidateTable(r, topo, pool)
    # both head at node 0 with dest 1; `wrapped` entered the ring at 6 and
    # crossed the 7 -> 0 dateline to get here, `local` started at 0
    wrapped = Message(0, 6, 1, 4, 0)
    local = Message(1, 0, 1, 4, 0)
    _, idx_wrapped = table.lookup(wrapped, 0)
    _, idx_local = table.lookup(local, 0)
    assert len(table) == 2, "wrap/non-wrap positions collided on one key"
    assert idx_wrapped != idx_local, (
        "dateline classes lost: wrapped and local messages memoized the "
        "same candidate VCs"
    )
    fresh_wrapped = r.candidates(wrapped, 0, topo, pool)
    fresh_local = r.candidates(local, 0, topo, pool)
    assert idx_wrapped == tuple(vc.index for vc in fresh_wrapped)
    assert idx_local == tuple(vc.index for vc in fresh_local)


def test_misrouting_key_includes_progress():
    from repro.network.channels import ChannelPool
    from repro.network.message import Message
    from repro.network.topology import KAryNCube
    from repro.routing.tfar import MisroutingTFAR

    topo = KAryNCube(4, 2)
    pool = ChannelPool(topo, 1, 2)
    r = MisroutingTFAR(misroute_budget=1)
    m = Message(0, 0, 2, 4, 0)
    key_before = r.cache_key(m, 0)
    vc = pool.vcs_of_link(topo.link_between(0, 1))[0]
    m.acquire_vc(vc, 0)
    key_after = r.cache_key(m, 1)
    assert key_before != key_after
