"""Tests for the deadlock-avoidance baselines.

Beyond unit behaviour, these tests verify the *theoretical* deadlock-freedom
property structurally: the channel dependency graph induced by walking every
(source, destination) pair under the routing relation must be acyclic
(dateline DOR, turn model) or must keep its escape sub-network acyclic
(Duato).
"""

import pytest

from repro.core.knots import strongly_connected_components
from repro.errors import RoutingError
from repro.network.channels import ChannelPool
from repro.network.message import Message
from repro.network.topology import KAryNCube, Mesh
from repro.routing.dateline import DatelineDOR
from repro.routing.duato import DuatoProtocolRouting
from repro.routing.turnmodel import NegativeFirstRouting


def msg(src, dest):
    return Message(0, src, dest, 4, 0)


def walk_dor_dependencies(routing, topology, pool, vc_filter=None):
    """Channel dependency arcs induced by every (src, dest) DOR walk."""
    arcs = set()
    for src in range(topology.num_nodes):
        for dest in range(topology.num_nodes):
            if src == dest:
                continue
            m = msg(src, dest)
            node = src
            prev = None
            while node != dest:
                cands = routing.candidates(m, node, topology, pool)
                if vc_filter is not None:
                    cands = [vc for vc in cands if vc_filter(vc)]
                cur = cands[0]  # DOR-style: single link, pick first legal VC
                if prev is not None:
                    arcs.add((prev.index, cur.index))
                prev = cur
                node = cur.link.dst
    adj = {}
    for u, v in arcs:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, [])
    return adj


def assert_acyclic(adj):
    for comp in strongly_connected_components(adj):
        assert len(comp) == 1, f"dependency cycle through {comp}"
        (v,) = comp
        assert v not in adj.get(v, []), f"self-dependency at {v}"


class TestDatelineDOR:
    def test_requires_two_vcs_on_torus(self):
        topo = KAryNCube(4, 2)
        pool = ChannelPool(topo, num_vcs=1, buffer_depth=2)
        with pytest.raises(RoutingError):
            DatelineDOR().validate(topo, pool)

    def test_mesh_allows_single_vc(self):
        mesh = Mesh(4, 2)
        pool = ChannelPool(mesh, num_vcs=1, buffer_depth=2)
        DatelineDOR().validate(mesh, pool)  # must not raise

    def test_candidates_are_single_class(self):
        topo = KAryNCube(8, 1)
        pool = ChannelPool(topo, num_vcs=2, buffer_depth=2)
        r = DatelineDOR()
        # before the dateline: low class only
        m = msg(0, 3)
        cands = r.candidates(m, 0, topo, pool)
        assert all(vc.vc_index == 0 for vc in cands)

    def test_switches_class_after_wraparound(self):
        topo = KAryNCube(8, 1)
        pool = ChannelPool(topo, num_vcs=2, buffer_depth=2)
        r = DatelineDOR()
        m = msg(6, 1)  # 6 -> 7 -> 0 -> 1 crosses the + dateline
        # at node 7 the next hop IS the wrap: high class
        cands = r.candidates(m, 7, topo, pool)
        assert all(vc.vc_index == 1 for vc in cands)
        # at node 0 (already wrapped): still high class
        cands = r.candidates(m, 0, topo, pool)
        assert all(vc.vc_index == 1 for vc in cands)

    def test_dependency_graph_acyclic_ring(self):
        topo = KAryNCube(8, 1)
        pool = ChannelPool(topo, num_vcs=2, buffer_depth=2)
        adj = walk_dor_dependencies(DatelineDOR(), topo, pool)
        assert_acyclic(adj)

    def test_dependency_graph_acyclic_torus(self):
        topo = KAryNCube(4, 2)
        pool = ChannelPool(topo, num_vcs=2, buffer_depth=2)
        adj = walk_dor_dependencies(DatelineDOR(), topo, pool)
        assert_acyclic(adj)

    def test_declared_deadlock_free(self):
        assert DatelineDOR.deadlock_free


class TestDuato:
    def test_requires_three_vcs_on_torus(self):
        topo = KAryNCube(4, 2)
        pool = ChannelPool(topo, num_vcs=2, buffer_depth=2)
        with pytest.raises(RoutingError):
            DuatoProtocolRouting().validate(topo, pool)

    def test_offers_adaptive_plus_escape(self):
        topo = KAryNCube(8, 2)
        pool = ChannelPool(topo, num_vcs=3, buffer_depth=2)
        r = DuatoProtocolRouting()
        m = msg(topo.node_at((0, 0)), topo.node_at((3, 3)))
        cands = r.candidates(m, topo.node_at((0, 0)), topo, pool)
        adaptive = [vc for vc in cands if vc.vc_index >= 2]
        escape = [vc for vc in cands if vc.vc_index < 2]
        assert len(adaptive) == 2  # one adaptive VC per productive link
        assert len(escape) == 1  # exactly one escape VC

    def test_adaptive_traffic_never_offered_escape_vcs_adaptively(self):
        topo = KAryNCube(8, 2)
        pool = ChannelPool(topo, num_vcs=4, buffer_depth=2)
        r = DuatoProtocolRouting()
        m = msg(topo.node_at((1, 1)), topo.node_at((6, 6)))
        cands = r.candidates(m, topo.node_at((1, 1)), topo, pool)
        escape_vcs = [vc for vc in cands if vc.vc_index < 2]
        assert len(escape_vcs) == 1  # the dateline escape only

    def test_escape_subnetwork_acyclic(self):
        topo = KAryNCube(4, 2)
        pool = ChannelPool(topo, num_vcs=3, buffer_depth=2)
        # walking only escape VCs = dateline DOR on classes {0,1}
        adj = walk_dor_dependencies(
            DuatoProtocolRouting(),
            topo,
            pool,
            vc_filter=lambda vc: vc.vc_index < 2,
        )
        assert_acyclic(adj)

    def test_mesh_needs_only_two_vcs(self):
        mesh = Mesh(4, 2)
        pool = ChannelPool(mesh, num_vcs=2, buffer_depth=2)
        DuatoProtocolRouting().validate(mesh, pool)  # must not raise


class TestTurnModel:
    def test_mesh_only(self):
        topo = KAryNCube(4, 2)
        pool = ChannelPool(topo, num_vcs=1, buffer_depth=2)
        with pytest.raises(RoutingError):
            NegativeFirstRouting().validate(topo, pool)

    def test_negative_hops_first(self):
        mesh = Mesh(4, 2)
        pool = ChannelPool(mesh, num_vcs=1, buffer_depth=2)
        r = NegativeFirstRouting()
        m = msg(mesh.node_at((2, 1)), mesh.node_at((0, 3)))
        cands = r.candidates(m, mesh.node_at((2, 1)), mesh, pool)
        assert all(vc.link.direction == -1 for vc in cands)

    def test_positive_phase_fully_adaptive(self):
        mesh = Mesh(4, 2)
        pool = ChannelPool(mesh, num_vcs=1, buffer_depth=2)
        r = NegativeFirstRouting()
        m = msg(mesh.node_at((0, 0)), mesh.node_at((2, 2)))
        cands = r.candidates(m, mesh.node_at((0, 0)), mesh, pool)
        assert {vc.link.dim for vc in cands} == {0, 1}
        assert all(vc.link.direction == +1 for vc in cands)

    def test_no_forbidden_turns_reachable(self):
        """After any positive hop, no candidate ever goes negative again."""
        mesh = Mesh(4, 2)
        pool = ChannelPool(mesh, num_vcs=1, buffer_depth=2)
        r = NegativeFirstRouting()
        for src in range(mesh.num_nodes):
            for dest in range(mesh.num_nodes):
                if src == dest:
                    continue
                m = msg(src, dest)
                node = src
                seen_positive = False
                hops = 0
                while node != dest:
                    cands = r.candidates(m, node, mesh, pool)
                    directions = {vc.link.direction for vc in cands}
                    if seen_positive:
                        assert directions == {+1}
                    if +1 in directions:
                        seen_positive = True
                    node = cands[0].link.dst
                    hops += 1
                    assert hops < 20
