"""Unit tests for channel-selection policies."""

import random

import pytest

from repro.network.channels import ChannelPool
from repro.network.message import Message
from repro.network.topology import KAryNCube
from repro.routing.selection import (
    LowestIndexFirst,
    RandomSelection,
    StraightThroughFirst,
    make_selection,
)


@pytest.fixture
def torus():
    return KAryNCube(4, 2)


@pytest.fixture
def pool(torus):
    return ChannelPool(torus, num_vcs=1, buffer_depth=2)


def test_straight_prefers_current_dimension(torus, pool):
    m = Message(0, 0, 10, 4, 0)
    vc_d0 = pool.vcs_of_link(torus.link_between(0, 1))[0]
    m.acquire_vc(vc_d0, 0)  # travelling in dimension 0
    straight = pool.vcs_of_link(torus.link_between(1, 2))[0]  # dim 0
    turn = pool.vcs_of_link(torus.link_between(1, 5))[0]  # dim 1
    policy = StraightThroughFirst()
    for seed in range(10):
        assert policy.choose(m, [turn, straight], random.Random(seed)) is straight


def test_straight_falls_back_when_no_straight_option(torus, pool):
    m = Message(0, 0, 10, 4, 0)
    vc_d0 = pool.vcs_of_link(torus.link_between(0, 1))[0]
    m.acquire_vc(vc_d0, 0)
    turn = pool.vcs_of_link(torus.link_between(1, 5))[0]
    assert StraightThroughFirst().choose(m, [turn], random.Random(0)) is turn


def test_straight_random_for_fresh_message(torus, pool):
    m = Message(0, 0, 10, 4, 0)  # owns nothing: no current dimension
    a = pool.vcs_of_link(torus.link_between(0, 1))[0]
    b = pool.vcs_of_link(torus.link_between(0, 4))[0]
    seen = {
        StraightThroughFirst().choose(m, [a, b], random.Random(s)).index
        for s in range(30)
    }
    assert seen == {a.index, b.index}  # both get picked over seeds


def test_policies_return_none_on_empty(torus, pool):
    m = Message(0, 0, 10, 4, 0)
    for policy in (StraightThroughFirst(), RandomSelection(), LowestIndexFirst()):
        assert policy.choose(m, [], random.Random(0)) is None


def test_lowest_index_deterministic(torus, pool):
    m = Message(0, 0, 10, 4, 0)
    vcs = pool.vcs[:5]
    assert LowestIndexFirst().choose(m, vcs[::-1], random.Random(0)) is vcs[0]


def test_random_uniformish(torus, pool):
    m = Message(0, 0, 10, 4, 0)
    vcs = pool.vcs[:4]
    rng = random.Random(42)
    counts = {vc.index: 0 for vc in vcs}
    for _ in range(400):
        counts[RandomSelection().choose(m, vcs, rng).index] += 1
    assert all(c > 50 for c in counts.values())


def test_factory():
    assert isinstance(make_selection("straight"), StraightThroughFirst)
    assert isinstance(make_selection("random"), RandomSelection)
    assert isinstance(make_selection("lowest"), LowestIndexFirst)
    with pytest.raises(ValueError):
        make_selection("bogus")
