"""Unit tests for true fully adaptive routing (and its misrouting variant)."""

import pytest

from repro.network.channels import ChannelPool
from repro.network.message import Message
from repro.network.topology import KAryNCube
from repro.routing.tfar import MisroutingTFAR, TrueFullyAdaptiveRouting


@pytest.fixture
def torus():
    return KAryNCube(8, 2)


@pytest.fixture
def pool(torus):
    return ChannelPool(torus, num_vcs=2, buffer_depth=2)


def msg(src, dest):
    return Message(0, src, dest, 4, 0)


class TestTFAR:
    def test_offers_every_productive_link(self, torus, pool):
        tfar = TrueFullyAdaptiveRouting()
        m = msg(torus.node_at((0, 0)), torus.node_at((3, 3)))
        cands = tfar.candidates(m, torus.node_at((0, 0)), torus, pool)
        dims = {vc.link.dim for vc in cands}
        assert dims == {0, 1}  # adaptive across both dimensions
        assert len(cands) == 2 * pool.num_vcs

    def test_offers_all_vcs_unrestricted(self, torus, pool):
        tfar = TrueFullyAdaptiveRouting()
        m = msg(0, torus.node_at((2, 2)))
        cands = tfar.candidates(m, 0, torus, pool)
        for link_index in {vc.link.index for vc in cands}:
            link_vcs = [vc for vc in cands if vc.link.index == link_index]
            assert len(link_vcs) == pool.num_vcs

    def test_adaptivity_exhausted_single_dimension(self, torus, pool):
        """Near the destination only one dimension remains (Figure 2)."""
        tfar = TrueFullyAdaptiveRouting()
        m = msg(torus.node_at((0, 0)), torus.node_at((3, 0)))
        node = torus.node_at((2, 0))
        cands = tfar.candidates(m, node, torus, pool)
        assert len({vc.link.index for vc in cands}) == 1

    def test_even_radix_tie_offers_both_directions(self, torus, pool):
        tfar = TrueFullyAdaptiveRouting()
        m = msg(torus.node_at((0, 0)), torus.node_at((4, 0)))
        cands = tfar.candidates(m, torus.node_at((0, 0)), torus, pool)
        assert {vc.link.direction for vc in cands} == {+1, -1}

    def test_every_candidate_is_minimal(self, torus, pool):
        tfar = TrueFullyAdaptiveRouting()
        src, dest = torus.node_at((1, 1)), torus.node_at((5, 6))
        m = msg(src, dest)
        d = torus.min_distance(src, dest)
        for vc in tfar.candidates(m, src, torus, pool):
            assert torus.min_distance(vc.link.dst, dest) == d - 1

    def test_not_deadlock_free(self):
        assert not TrueFullyAdaptiveRouting.deadlock_free


class TestMisroutingTFAR:
    def test_budget_allows_nonminimal_links(self, torus, pool):
        mis = MisroutingTFAR(misroute_budget=2)
        src, dest = torus.node_at((0, 0)), torus.node_at((2, 0))
        m = msg(src, dest)
        cands = mis.candidates(m, src, torus, pool)
        # all four outgoing links are offered, not just the productive one
        assert len({vc.link.index for vc in cands}) == 4

    def test_zero_budget_is_minimal(self, torus, pool):
        mis = MisroutingTFAR(misroute_budget=0)
        tfar = TrueFullyAdaptiveRouting()
        src, dest = torus.node_at((0, 0)), torus.node_at((2, 3))
        m = msg(src, dest)
        a = {vc.index for vc in mis.candidates(m, src, torus, pool)}
        b = {vc.index for vc in tfar.candidates(m, src, torus, pool)}
        assert a == b

    def test_no_uturn_candidates_when_alternatives_exist(self, torus, pool):
        mis = MisroutingTFAR(misroute_budget=4)
        src = torus.node_at((0, 0))
        dest = torus.node_at((3, 3))
        m = msg(src, dest)
        first = mis.candidates(m, src, torus, pool)[0]
        m.acquire_vc(first, 0)
        first.occupancy = 1
        node = first.link.dst
        cands = mis.candidates(m, node, torus, pool)
        reverse = (first.link.dst, first.link.src)
        assert all((vc.link.src, vc.link.dst) != reverse for vc in cands)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            MisroutingTFAR(misroute_budget=-1)
