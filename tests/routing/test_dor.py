"""Unit tests for dimension-order routing."""

import pytest

from repro.errors import RoutingError
from repro.network.channels import ChannelPool
from repro.network.message import Message
from repro.network.topology import KAryNCube, Mesh
from repro.routing.dor import DimensionOrderRouting


@pytest.fixture
def torus():
    return KAryNCube(8, 2)


@pytest.fixture
def pool(torus):
    return ChannelPool(torus, num_vcs=2, buffer_depth=2)


def msg(src, dest):
    return Message(0, src, dest, 4, 0)


class TestDOR:
    def test_routes_lowest_dimension_first(self, torus, pool):
        dor = DimensionOrderRouting()
        # from (0,0) to (3,3): dim 0 must be corrected first
        m = msg(torus.node_at((0, 0)), torus.node_at((3, 3)))
        cands = dor.candidates(m, torus.node_at((0, 0)), torus, pool)
        assert all(vc.link.dim == 0 for vc in cands)
        assert all(vc.link.dst == torus.node_at((1, 0)) for vc in cands)

    def test_second_dimension_after_first_resolved(self, torus, pool):
        dor = DimensionOrderRouting()
        m = msg(torus.node_at((0, 0)), torus.node_at((3, 3)))
        node = torus.node_at((3, 0))  # dim 0 already aligned
        cands = dor.candidates(m, node, torus, pool)
        assert all(vc.link.dim == 1 for vc in cands)

    def test_returns_all_vcs_of_single_link(self, torus, pool):
        dor = DimensionOrderRouting()
        m = msg(0, 3)
        cands = dor.candidates(m, 0, torus, pool)
        assert len(cands) == pool.num_vcs
        assert len({vc.link.index for vc in cands}) == 1

    def test_takes_shorter_ring_direction(self, torus, pool):
        dor = DimensionOrderRouting()
        m = msg(torus.node_at((0, 0)), torus.node_at((6, 0)))
        cands = dor.candidates(m, torus.node_at((0, 0)), torus, pool)
        assert all(vc.link.direction == -1 for vc in cands)  # 2 hops back

    def test_even_radix_tie_is_static_positive(self, torus, pool):
        dor = DimensionOrderRouting()
        m = msg(torus.node_at((0, 0)), torus.node_at((4, 0)))  # offset k/2
        cands = dor.candidates(m, torus.node_at((0, 0)), torus, pool)
        assert all(vc.link.direction == +1 for vc in cands)

    def test_unidirectional_always_positive(self, pool):
        uni = KAryNCube(8, 2, bidirectional=False)
        upool = ChannelPool(uni, num_vcs=1, buffer_depth=2)
        dor = DimensionOrderRouting()
        m = msg(uni.node_at((3, 0)), uni.node_at((1, 0)))  # must wrap forward
        cands = dor.candidates(m, uni.node_at((3, 0)), uni, upool)
        assert all(vc.link.direction == +1 for vc in cands)

    def test_full_path_is_deterministic_and_minimal_per_dim(self, torus, pool):
        dor = DimensionOrderRouting()
        src, dest = torus.node_at((1, 2)), torus.node_at((6, 7))
        m = msg(src, dest)
        node, hops = src, 0
        while node != dest:
            cands = dor.candidates(m, node, torus, pool)
            node = cands[0].link.dst
            hops += 1
            assert hops <= 32, "routing loop"
        assert hops == torus.min_distance(src, dest)

    def test_routing_at_destination_rejected(self, torus, pool):
        dor = DimensionOrderRouting()
        m = msg(0, 5)
        with pytest.raises(RoutingError):
            dor.candidates(m, 5, torus, pool)

    def test_works_on_mesh(self):
        mesh = Mesh(4, 2)
        mpool = ChannelPool(mesh, num_vcs=1, buffer_depth=2)
        dor = DimensionOrderRouting()
        m = msg(mesh.node_at((3, 3)), mesh.node_at((0, 0)))
        cands = dor.candidates(m, mesh.node_at((3, 3)), mesh, mpool)
        assert all(vc.link.direction == -1 for vc in cands)
        assert all(vc.link.dim == 0 for vc in cands)

    def test_not_deadlock_free(self):
        assert not DimensionOrderRouting.deadlock_free
