"""Smoke + shape tests for the per-figure experiment runners (tiny scale)."""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    avoidance_vs_recovery,
    detector_ablation,
    fig5,
    fig6,
    fig7,
    fig8,
    node_degree,
    topology_comparison,
    traffic_patterns,
)
from repro.experiments.base import format_table, scaled_config, scaled_loads
from repro.errors import ConfigurationError

LOADS = [0.6, 1.0]  # keep tests brisk: two points straddling saturation
SHORT = dict(measure_cycles=1200, warmup_cycles=150)


class TestBase:
    def test_scaled_config_scales(self):
        assert scaled_config("paper").k == 16
        assert scaled_config("bench").k == 8
        assert scaled_config("tiny").k == 4

    def test_unknown_scale(self):
        with pytest.raises(ConfigurationError):
            scaled_config("galactic")

    def test_scaled_loads_monotone(self):
        for scale in ("paper", "bench", "tiny"):
            loads = scaled_loads(scale)
            assert loads == sorted(loads)

    def test_format_table_alignment(self):
        table = format_table("T", ("a", "bb"), [(1, 2.5), (33, 0.125)], ["n"])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "note: n" in table
        assert "0.1250" in table

    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "FIG5", "FIG6", "FIG7", "FIG8", "SEC3.5", "SEC3.6",
            "TAB-AVOID", "ABL-DET", "ABL-REC", "ABL-SEL", "ABL-INT",
            "ABL-TIMEOUT", "EXT-LEN", "EXT-GRAN", "EXT-FAULT", "ABL-ARB",
            "TOPO-CMP",
        }


class TestFig5:
    def test_shape(self):
        res = fig5.run(scale="tiny", loads=LOADS, **SHORT)
        assert set(res.sweeps) == {"bi-directional", "uni-directional"}
        assert (
            res.observations["uni_norm_deadlocks_deep"]
            >= res.observations["bi_norm_deadlocks_deep"]
        )
        assert any("shape OK" in n for n in res.notes)
        assert "FIG5" in res.format_tables()


class TestFig6:
    def test_shape(self):
        res = fig6.run(scale="tiny", loads=LOADS, **SHORT)
        assert res.observations["dor_total_deadlocks"] >= res.observations[
            "tfar_total_deadlocks"
        ]
        assert res.observations["dor_multi_cycle_deadlocks"] == 0


class TestFig7:
    def test_vc_sweep(self):
        res = fig7.run(scale="tiny", loads=[1.0], vc_counts=(1, 3), **SHORT)
        assert set(res.sweeps) == {"DOR1", "DOR3", "TFAR1", "TFAR3"}
        assert res.observations["DOR3_total_deadlocks"] == 0
        assert res.observations["TFAR3_total_deadlocks"] == 0
        series = fig7.cycles_vs_blocked(res)
        assert set(series) == set(res.sweeps)
        for points in series.values():
            assert len(points) == 1


class TestFig8:
    def test_depths_for_paper_message(self):
        assert fig8.buffer_depths_for(32) == [2, 4, 6, 8, 16, 32]

    def test_buffer_sweep(self):
        res = fig8.run(scale="tiny", loads=[1.0], depths=[1, 8], **SHORT)
        assert set(res.sweeps) == {"buffer=1", "buffer=8"}
        pop_series = fig8.deadlocks_vs_population(res)
        assert set(pop_series) == set(res.sweeps)


class TestNodeDegree:
    def test_shape(self):
        res = node_degree.run(scale="tiny", loads=[1.0], **SHORT)
        assert len(res.sweeps) == 2
        assert (
            res.observations["high_dim_total_deadlocks"]
            <= res.observations["low_dim_total_deadlocks"]
        )


class TestTopologyComparison:
    def test_shape(self):
        res = topology_comparison.run(scale="tiny", loads=[0.9, 1.2], **SHORT)
        assert set(res.sweeps) == {
            "torus3d/dor", "torus3d-tsv/dor",
            "dragonfly/df-min", "fullmesh/fm-2hop",
        }
        # the full mesh's direct wiring gives it far more raw bandwidth
        assert (
            res.observations["fullmesh_capacity_flits"]
            > res.observations["torus3d_capacity_flits"]
        )
        # the TSV dimension strictly reduces capacity at equal geometry
        assert (
            res.observations["torus3d_tsv_capacity_flits"]
            < res.observations["torus3d_capacity_flits"]
        )
        # misrouted full-mesh deadlock is provably reachable but rare:
        # it must never out-deadlock the wraparound torus
        assert (
            res.observations["fullmesh_total_deadlocks"]
            <= res.observations["torus3d_total_deadlocks"]
        )

    def test_series_specs_cover_every_scale(self):
        for scale in ("tiny", "bench", "paper"):
            labels = [label for label, _ in topology_comparison.series_specs(scale)]
            assert len(labels) == 4
        with pytest.raises(ConfigurationError):
            topology_comparison.series_specs("galactic")


class TestTrafficPatterns:
    def test_patterns_run(self):
        res = traffic_patterns.run(
            scale="tiny", loads=[0.8], patterns=("uniform", "transpose"),
            **SHORT,
        )
        assert set(res.sweeps) == {"uniform", "transpose"}
        assert "transpose_vs_uniform_ratio" in res.observations


class TestAvoidanceVsRecovery:
    def test_avoidance_baselines_deadlock_free(self):
        res = avoidance_vs_recovery.run(scale="tiny", loads=[0.8], **SHORT)
        assert res.observations["dateline_total_deadlocks"] == 0
        assert res.observations["duato_total_deadlocks"] == 0
        assert res.observations["recovery_peak_throughput"] > 0


class TestDetectorAblation:
    def test_threshold_monotonicity(self):
        res = detector_ablation.run(
            scale="tiny", load=1.0, thresholds=(50, 500), **SHORT
        )
        # larger threshold flags fewer congested messages
        assert (
            res.observations["t500_false_positives"]
            <= res.observations["t50_false_positives"]
        )
        # precision never decreases with the threshold
        assert (
            res.observations["t500_precision"]
            >= res.observations["t50_precision"] - 1e-9
        )

    def test_evaluation_counts_are_consistent(self):
        from repro.experiments.detector_ablation import (
            TimeoutEvaluation,
            evaluate_thresholds,
        )
        from repro.network.simulator import NetworkSimulator

        cfg = scaled_config(
            "tiny", routing="dor", num_vcs=1, load=1.0,
            record_blocked_durations=True, **SHORT,
        )
        sim = NetworkSimulator(cfg)
        sim.run()
        evals = evaluate_thresholds(sim, [0, 10**9])
        zero, huge = evals
        # threshold 0 flags everything: recall 1; huge flags nothing
        assert zero.recall == 1.0
        assert huge.true_positives == 0 and huge.false_positives == 0
        total = (
            zero.true_positives + zero.false_positives
            + zero.false_negatives + zero.true_negatives
        )
        assert total == (
            huge.true_positives + huge.false_positives
            + huge.false_negatives + huge.true_negatives
        )

    def test_precision_recall_edge_cases(self):
        from repro.experiments.detector_ablation import TimeoutEvaluation

        ev = TimeoutEvaluation(10, 0, 0, 0, 0)
        assert ev.precision == 1.0 and ev.recall == 1.0
        ev = TimeoutEvaluation(10, 2, 2, 0, 6)
        assert ev.precision == 0.5
        assert ev.false_positive_rate == pytest.approx(0.25)
