"""Smoke + shape tests for the design-choice ablations (tiny scale)."""

from repro.experiments import ablations

SHORT = dict(measure_cycles=1000, warmup_cycles=150)


class TestTeardownAblation:
    def test_both_modes_run(self):
        res = ablations.run_teardown(scale="tiny", loads=[1.0], **SHORT)
        assert set(res.sweeps) == {"instant", "flit-by-flit"}
        assert res.observations["instant_peak_throughput"] > 0
        assert res.observations["flit-by-flit_peak_throughput"] > 0

    def test_deadlock_counts_comparable(self):
        """Teardown fidelity must not change deadlock formation wildly."""
        res = ablations.run_teardown(scale="tiny", loads=[1.0], **SHORT)
        a = res.observations["instant_total_deadlocks"]
        b = res.observations["flit-by-flit_total_deadlocks"]
        if a + b > 10:
            assert 0.2 <= (a + 1) / (b + 1) <= 5.0


class TestSelectionAblation:
    def test_runs(self):
        res = ablations.run_selection(scale="tiny", loads=[0.8], **SHORT)
        assert set(res.sweeps) == {"straight", "random"}
        assert res.observations["straight_mean_latency"] > 0


class TestDetectionIntervalAblation:
    def test_interval_sweep(self):
        res = ablations.run_detection_interval(
            scale="tiny", load=1.0, intervals=(25, 400), **SHORT
        )
        assert set(res.sweeps) == {"interval=25", "interval=400"}
        # more frequent detection finds (and breaks) at least as many knots
        assert (
            res.observations["i25_deadlocks"]
            >= res.observations["i400_deadlocks"] * 0.3
        )


class TestTimeoutModeAblation:
    def test_timeout_end_to_end(self):
        res = ablations.run_timeout_mode(
            scale="tiny", load=1.0, thresholds=(75, 600), **SHORT
        )
        assert "true-detection" in res.sweeps
        assert "timeout=75" in res.sweeps
        obs = res.observations
        # aggressive threshold recovers at least as often as patient one
        assert obs["t75_recoveries"] >= obs["t600_recoveries"]
        # unnecessary recoveries never exceed total recoveries
        for t in (75, 600):
            assert obs[f"t{t}_unnecessary"] <= obs[f"t{t}_recoveries"]


class TestMessageLengthAblation:
    def test_runs_and_reports(self):
        from repro.experiments import ablations

        res = ablations.run_message_length(
            scale="tiny", load=0.9, lengths=(2, 8), **SHORT
        )
        assert set(res.sweeps) == {"len=2", "len=8"}
        assert "len2_norm_deadlocks" in res.observations
        assert "len8_avg_resource_set" in res.observations


class TestGranularityAblation:
    def test_runs_and_reports(self):
        from repro.experiments import ablations

        res = ablations.run_granularity(scale="tiny", load=1.0, **SHORT)
        obs = res.observations
        assert obs["detections"] > 0
        assert 0.0 <= obs["verdict_agreement_rate"] <= 1.0
        # PWFG knots can only over-report relative to truth
        assert (
            obs["pwfg_knotted_detections"]
            >= obs["true_deadlocked_detections"]
            or obs["pwfg_knotted_detections"] == 0
        )


class TestFaultAblation:
    def test_runs_with_fault_series(self):
        from repro.experiments import ablations

        res = ablations.run_faults(
            scale="tiny", load=0.8, fault_counts=(0, 2), **SHORT
        )
        assert "faults=0" in res.sweeps
        assert "faults=2" in res.sweeps
        assert "f0_blocked_pct" in res.observations
        assert "f2_blocked_pct" in res.observations


class TestArbitrationAblation:
    def test_runs_all_policies(self):
        from repro.experiments import ablations

        res = ablations.run_arbitration(
            scale="tiny", load=1.0, policies=("random", "oldest-first"),
            **SHORT,
        )
        assert set(res.sweeps) == {"random", "oldest-first"}
        assert res.observations["random_throughput"] > 0
        assert res.observations["oldest-first_max_blocked"] >= 0
