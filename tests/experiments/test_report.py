"""Unit tests for CSV export and ASCII chart rendering."""

import csv
import io

import pytest

from repro.experiments import fig5
from repro.experiments.report import (
    ascii_chart,
    experiment_csv,
    render_figure,
    sweep_csv,
)


@pytest.fixture(scope="module")
def tiny_fig5():
    return fig5.run(scale="tiny", loads=[0.5, 1.0], measure_cycles=600,
                    warmup_cycles=100)


class TestCSV:
    def test_sweep_csv_parses(self, tiny_fig5):
        text = sweep_csv(tiny_fig5)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 4  # 2 series x 2 loads
        assert {r["series"] for r in rows} == {
            "bi-directional", "uni-directional",
        }
        for r in rows:
            assert r["experiment"] == "FIG5"
            float(r["load"])
            float(r["norm_deadlocks"])
            int(r["deadlocks"])

    def test_experiment_csv_single_header(self, tiny_fig5):
        text = experiment_csv([tiny_fig5, tiny_fig5])
        lines = text.strip().splitlines()
        assert lines[0].startswith("experiment,series,load")
        assert sum(1 for ln in lines if ln.startswith("experiment,")) == 1
        assert len(lines) == 1 + 8


class TestAsciiChart:
    def test_empty_series(self):
        assert "(no data)" in ascii_chart({"a": []}, title="t")

    def test_marks_present(self):
        chart = ascii_chart(
            {"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]},
            title="T", width=20, height=8,
        )
        assert "o" in chart and "x" in chart
        assert "o=up" in chart and "x=down" in chart
        assert chart.splitlines()[0] == "T"

    def test_log_scale(self):
        chart = ascii_chart(
            {"s": [(0, 1), (1, 1000)]}, log_y=True, width=20, height=6
        )
        assert "(log y)" in chart

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart({"s": [(0, 5), (1, 5)]}, width=10, height=4)
        assert "o" in chart

    def test_dimensions_respected(self):
        chart = ascii_chart({"s": [(0, 0), (9, 9)]}, width=30, height=10)
        body = [ln for ln in chart.splitlines() if "|" in ln or "+" in ln]
        assert len(body) == 10

    def test_render_figure_from_experiment(self, tiny_fig5):
        chart = render_figure(tiny_fig5, "norm_deadlocks")
        assert "FIG5" in chart
        assert "normalized load" in chart
        chart2 = render_figure(tiny_fig5, "blocked_pct")
        assert "blocked_pct" in chart2
