"""Property tests: the SoA mirrors always agree with the object model.

The vectorized engine *push*-maintains :class:`repro.network.soa.SoAState`
inline at every state transition instead of deriving it per cycle, so the
mirrors are exactly as correct as the transition coverage.  These tests
drive randomized simulations through every transition class — generation,
VC acquisition/release, reception, delivery, recovery victim removal
(both teardown styles, exercising free-list compaction) — and cross-check
every mirror against the object model with :meth:`SoAState.verify` after
every cycle.
"""

import random

import pytest

from repro.config import tiny_default
from repro.network.simulator import NetworkSimulator
from repro.network.vectorized import VectorizedEngine


def _vec(**overrides):
    params = dict(
        measure_cycles=400,
        warmup_cycles=0,
        cwg_maintenance="incremental",
        engine_vectorized=True,
    )
    params.update(overrides)
    return NetworkSimulator(tiny_default(**params))


def _drive_verified(sim, cycles):
    """Step with a full mirror cross-check after every cycle."""
    for _ in range(cycles):
        sim.step()
        sim.soa.verify(sim)


#: transition-heavy scenarios: saturation for recovery churn, moderate
#: load for delivery churn, both teardown styles for both on_done paths
SCENARIOS = {
    "saturated_instant_teardown": dict(
        routing="dor", load=1.0, num_vcs=1, seed=3
    ),
    "saturated_flit_by_flit": dict(
        routing="tfar",
        load=1.0,
        num_vcs=1,
        recovery_teardown="flit-by-flit",
        seed=5,
    ),
    "moderate_two_vcs": dict(routing="tfar", load=0.5, num_vcs=2, seed=9),
    "timeout_recovery": dict(
        routing="tfar",
        load=1.0,
        detection_mode="timeout",
        timeout_threshold=60,
        seed=11,
    ),
    "abort_all_misrouting": dict(
        routing="tfar-mis", load=1.0, num_vcs=2, recovery="abort-all", seed=13
    ),
    "router_delay_rx2": dict(
        routing="tfar", load=1.0, router_delay=2, rx_channels=2, seed=17
    ),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_mirrors_agree_every_cycle(name):
    sim = _vec(**SCENARIOS[name])
    assert type(sim) is VectorizedEngine
    _drive_verified(sim, 400)
    # the run exercised the transitions the mirrors shadow
    assert sim.stats._result.delivered > 0


def test_victim_removal_recycles_slots():
    """Recovery compaction goes through the free list, not row shifts."""
    sim = _vec(routing="dor", load=1.0, num_vcs=1, seed=3)
    _drive_verified(sim, 500)
    soa = sim.soa
    assert sim.stats._result.recovered + sim.stats._result.aborted > 0, \
        "scenario produced no victims"
    assert soa.slots_recycled > 0
    # live + free always partitions the table
    live = sum(1 for m in soa.slot_msgs if m is not None)
    assert live + len(soa._free) == len(soa.slot_msgs)
    assert soa.high_water <= len(soa.slot_msgs)


def test_slot_stable_for_message_lifetime():
    """A message keeps one slot from creation to completion."""
    sim = _vec(routing="tfar", load=0.8, num_vcs=2, seed=7)
    pinned: dict[int, int] = {}
    for _ in range(300):
        sim.step()
        for msg in sim._live.values():
            slot = pinned.setdefault(msg.id, msg.slot)
            assert msg.slot == slot, (
                f"message {msg.id} moved from slot {slot} to {msg.slot}"
            )
    assert len(pinned) > 50


def test_as_arrays_matches_object_model():
    """The uniform numpy export equals a from-scratch object-model scan."""
    sim = _vec(routing="tfar", load=1.0, num_vcs=1, seed=19)
    for _ in range(250):
        sim.step()
    arrays = sim.soa.as_arrays()
    pool = sim.pool
    for vc in pool.vcs:
        owner = -1 if vc.owner is None else vc.owner
        assert int(arrays["vc_owner"][vc.index]) == owner
        assert int(arrays["vc_occupancy"][vc.index]) == vc.occupancy
        assert int(arrays["vc_capacity"][vc.index]) == vc.capacity
    for msg in sim._live.values():
        slot = msg.slot
        assert int(arrays["msg_id"][slot]) == msg.id
        assert int(arrays["at_source"][slot]) == msg.at_source
        assert int(arrays["ejected"][slot]) == msg.ejected
        assert bool(arrays["live"][slot])
    assert int(arrays["live"].sum()) == len(sim._live)


def test_randomized_config_sweep():
    """Seeded random configurations, mirrors verified every cycle."""
    rng = random.Random(1234)
    for _ in range(6):
        overrides = dict(
            routing=rng.choice(["dor", "tfar", "tfar-mis"]),
            load=rng.choice([0.4, 0.8, 1.0, 1.2]),
            num_vcs=rng.choice([1, 2, 3]),
            recovery=rng.choice(["disha", "abort-all"]),
            recovery_teardown=rng.choice(["instant", "flit-by-flit"]),
            seed=rng.randrange(1, 10_000),
        )
        sim = _vec(**overrides)
        _drive_verified(sim, 250)
