"""Property-based tests for detector classification on synthetic CWGs.

Random deadlock structures with known ground truth: ring knots (deadlock
set = ring members, density 1), chorded rings (density > 1), and escape
variants (no knot at all).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cwg import ChannelWaitForGraph
from repro.core.cycles import count_simple_cycles
from repro.core.knots import find_knots
from repro.core.pwfg import packet_wait_for_graph


def build_ring(num_messages, chain_len, escape=False):
    """num_messages messages in a wait ring, each owning chain_len VCs.

    With ``escape`` the last message also waits on a free channel, which
    must dissolve the knot (a cyclic non-deadlock).
    """
    g = ChannelWaitForGraph()
    heads = []
    v = 0
    for m in range(num_messages):
        chain = list(range(v, v + chain_len))
        v += chain_len
        g.add_ownership_chain(m, chain)
        heads.append(chain[-1])
    for m in range(num_messages):
        targets = [heads[(m + 1) % num_messages]]
        if escape and m == num_messages - 1:
            targets.append("free-escape")
        g.add_request(m, targets)
    return g, heads


@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=60, deadline=None)
def test_ring_knot_characteristics(num_messages, chain_len):
    g, heads = build_ring(num_messages, chain_len)
    adjacency = g.adjacency()
    knots = find_knots(adjacency)
    assert len(knots) == 1
    (knot,) = knots
    # the knot covers at least every head channel (the wait targets)
    assert set(heads) <= set(knot)
    # deadlock set is exactly the ring
    assert g.messages_owning(knot) == set(range(num_messages))
    # resource set = all owned channels
    resources = g.resources_of(g.messages_owning(knot))
    assert len(resources) == num_messages * chain_len
    # a pure ring has density exactly 1: single-cycle deadlock
    sub = {u: [w for w in adjacency[u] if w in knot] for u in knot}
    assert count_simple_cycles(sub).count == 1
    # and the packet wait-for graph sees the same member cycle
    assert packet_wait_for_graph(g)[0] == [1 % num_messages]


@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_escape_dissolves_knot(num_messages, chain_len):
    g, _ = build_ring(num_messages, chain_len, escape=True)
    assert find_knots(g.adjacency()) == []
    # cycles remain: a cyclic non-deadlock
    assert count_simple_cycles(g.adjacency()).count >= 1


@given(
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=1, max_value=3),
    st.data(),
)
@settings(max_examples=40, deadline=None)
def test_chord_raises_density(num_messages, chain_len, data):
    """An extra alternative pointing back into the ring multiplies cycles
    but preserves the knot (a multi-cycle deadlock)."""
    g, heads = build_ring(num_messages, chain_len)
    # add a chord: message 0 gains a second alternative into the ring
    chord_to = data.draw(
        st.integers(min_value=2, max_value=num_messages - 1)
    )
    g.requests[0].append(heads[chord_to % num_messages])
    adjacency = g.adjacency()
    knots = find_knots(adjacency)
    assert len(knots) == 1
    (knot,) = knots
    sub = {u: [w for w in adjacency[u] if w in knot] for u in knot}
    density = count_simple_cycles(sub).count
    assert density == 2  # original ring + the chord shortcut
    assert g.messages_owning(knot) == set(range(num_messages))


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=2, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_disjoint_rings_are_disjoint_knots(ring_a, ring_b):
    """Two independent deadlocks are reported as two separate knots."""
    g = ChannelWaitForGraph()
    v = 0
    head_groups = []
    for base, size in ((0, ring_a), (100, ring_b)):
        heads = []
        for i in range(size):
            chain = [v, v + 1]
            v += 2
            g.add_ownership_chain(base + i, chain)
            heads.append(chain[-1])
        head_groups.append((base, size, heads))
    for base, size, heads in head_groups:
        for i in range(size):
            g.add_request(base + i, [heads[(i + 1) % size]])
    knots = find_knots(g.adjacency())
    assert len(knots) == 2
    sets = sorted(len(g.messages_owning(k)) for k in knots)
    assert sets == sorted([ring_a, ring_b])
