"""Property-based tests for the topology zoo (3D tori, dragonfly, full mesh).

The same geometric invariants the k-ary n-cube family guarantees must
hold for every zoo class: neighbour symmetry (all zoo topologies are
bidirectional), the triangle inequality on hop distance, and productive
links that strictly decrease distance — plus the latency metrics layered
on top (``min_latency`` bounded below by hop distance, exact equality
under uniform latency).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import Dragonfly, FullMesh, Mesh3D, Torus3D

dims3 = st.tuples(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=2, max_value=3),
)
latencies3 = st.tuples(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
df_shape = st.tuples(
    st.integers(min_value=2, max_value=4),  # a: routers per group
    st.integers(min_value=1, max_value=2),  # h: global links per router
)


def build_zoo(data):
    """Draw one topology instance from any zoo class."""
    kind = data.draw(st.sampled_from(["torus3d", "mesh3d", "dragonfly", "fullmesh"]))
    if kind == "torus3d":
        return Torus3D(data.draw(dims3), link_latencies=data.draw(latencies3))
    if kind == "mesh3d":
        return Mesh3D(data.draw(dims3), link_latencies=data.draw(latencies3))
    if kind == "dragonfly":
        a, h = data.draw(df_shape)
        return Dragonfly(
            a, 1, h,
            local_latency=data.draw(st.integers(min_value=1, max_value=3)),
            global_latency=data.draw(st.integers(min_value=1, max_value=4)),
        )
    return FullMesh(
        data.draw(st.integers(min_value=2, max_value=8)),
        latency=data.draw(st.integers(min_value=1, max_value=3)),
    )


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_zoo_neighbour_symmetry(data):
    """Every zoo topology is bidirectional: a->b implies b->a, and the
    out-neighbour set equals the in-neighbour set."""
    t = build_zoo(data)
    node = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    for link in t.out_links(node):
        assert t.has_link(link.dst, node)
    assert {l.dst for l in t.out_links(node)} == {l.src for l in t.in_links(node)}


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_zoo_distance_symmetric_and_triangle(data):
    t = build_zoo(data)
    nodes = st.integers(min_value=0, max_value=t.num_nodes - 1)
    a, b, c = data.draw(nodes), data.draw(nodes), data.draw(nodes)
    assert t.min_distance(a, b) == t.min_distance(b, a)
    assert t.min_distance(a, c) <= t.min_distance(a, b) + t.min_distance(b, c)
    assert (t.min_distance(a, b) == 0) == (a == b)


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_zoo_productive_links_strictly_reduce_distance(data):
    t = build_zoo(data)
    nodes = st.integers(min_value=0, max_value=t.num_nodes - 1)
    a, b = data.draw(nodes), data.draw(nodes)
    links = t.productive_links(a, b)
    if a == b:
        assert links == []
    else:
        d = t.min_distance(a, b)
        assert links, "connected topology must offer a productive link"
        for link in links:
            assert link.src == a
            assert t.min_distance(link.dst, b) == d - 1


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_zoo_min_latency_bounds(data):
    """Latency-weighted distance: >= hop distance always (latency >= 1 per
    hop), == hop distance when every link has latency 1, symmetric on
    these bidirectional classes."""
    t = build_zoo(data)
    nodes = st.integers(min_value=0, max_value=t.num_nodes - 1)
    a, b = data.draw(nodes), data.draw(nodes)
    assert t.min_latency(a, b) >= t.min_distance(a, b)
    assert t.min_latency(a, b) == t.min_latency(b, a)
    if t.uniform_latency:
        assert t.min_latency(a, b) == t.min_distance(a, b)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_zoo_average_metrics_match_bruteforce(data):
    t = build_zoo(data)
    nn = t.num_nodes
    pairs = [(a, b) for a in range(nn) for b in range(nn) if a != b]
    brute_dist = sum(t.min_distance(a, b) for a, b in pairs) / len(pairs)
    brute_lat = sum(t.min_latency(a, b) for a, b in pairs) / len(pairs)
    assert abs(t.average_internode_distance - brute_dist) < 1e-9
    assert abs(t.average_internode_latency - brute_lat) < 1e-9


@given(dims3, latencies3)
@settings(max_examples=40, deadline=None)
def test_torus3d_per_dimension_latency_assignment(dims, lats):
    """Every link of dimension d carries exactly link_latencies[d]."""
    t = Torus3D(dims, link_latencies=lats)
    for link in t.links:
        assert link.latency == lats[link.dim]


@given(df_shape, st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_dragonfly_global_wiring(shape, p):
    """Palmtree wiring: exactly one global channel each way per group
    pair, and local links form a full mesh inside every group."""
    a, h = shape
    t = Dragonfly(a, p, h)
    groups = a * h + 1
    seen = {}
    for link in t.links:
        if link.dim == 1:
            pair = (t.group_of(link.src), t.group_of(link.dst))
            assert pair[0] != pair[1]
            seen[pair] = seen.get(pair, 0) + 1
    assert all(count == 1 for count in seen.values())
    assert len(seen) == groups * (groups - 1)
    for g in range(groups):
        members = [g * a + i for i in range(a)]
        for x in members:
            for y in members:
                if x != y:
                    assert t.has_link(x, y)


@given(st.integers(min_value=2, max_value=10))
@settings(max_examples=20, deadline=None)
def test_fullmesh_all_pairs_distance_one(n):
    t = FullMesh(n)
    assert t.num_links == n * (n - 1)
    for a in range(n):
        for b in range(n):
            if a != b:
                assert t.min_distance(a, b) == 1
    assert t.average_internode_distance == 1.0
