"""Property-based tests: SCC/knot detection against a networkx oracle."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knots import (
    find_knots,
    knot_of_vertex,
    strongly_connected_components,
)


@st.composite
def random_digraph(draw, max_nodes=12):
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=max(0, n - 1)),
                st.integers(min_value=0, max_value=max(0, n - 1)),
            ),
            max_size=40,
        )
    )
    adj = {v: [] for v in range(n)}
    for u, v in edges:
        if n and v not in adj[u]:
            adj[u].append(v)
    return adj


def nx_graph(adj):
    g = nx.DiGraph()
    g.add_nodes_from(adj)
    for u, succs in adj.items():
        g.add_edges_from((u, v) for v in succs)
    return g


@given(random_digraph())
@settings(max_examples=200, deadline=None)
def test_sccs_match_networkx(adj):
    mine = {frozenset(c) for c in strongly_connected_components(adj)}
    theirs = {frozenset(c) for c in nx.strongly_connected_components(nx_graph(adj))}
    assert mine == theirs


@given(random_digraph())
@settings(max_examples=200, deadline=None)
def test_knots_are_sink_sccs_with_arcs(adj):
    g = nx_graph(adj)
    cond = nx.condensation(g)
    expected = set()
    for comp_id in cond.nodes:
        members = cond.nodes[comp_id]["members"]
        if cond.out_degree(comp_id) == 0:
            has_arc = len(members) > 1 or any(
                v in adj.get(v, []) for v in members
            )
            if has_arc:
                expected.add(frozenset(members))
    assert set(find_knots(adj)) == expected


@given(random_digraph(max_nodes=8))
@settings(max_examples=100, deadline=None)
def test_knot_members_reach_exactly_the_knot(adj):
    """Every knot satisfies the textbook definition: reach(v) == knot."""
    for knot in find_knots(adj):
        for v in knot:
            reachable = set(nx.descendants(nx_graph(adj), v)) | {v}
            assert reachable == set(knot)


@given(random_digraph(max_nodes=8))
@settings(max_examples=100, deadline=None)
def test_knot_of_vertex_agrees_with_find_knots(adj):
    knots = {v: k for k in find_knots(adj) for v in k}
    for v in adj:
        assert knot_of_vertex(adj, v) == knots.get(v)


@given(random_digraph())
@settings(max_examples=100, deadline=None)
def test_knots_are_disjoint(adj):
    knots = find_knots(adj)
    seen = set()
    for k in knots:
        assert not (seen & k)
        seen |= k


@given(random_digraph(max_nodes=10))
@settings(max_examples=100, deadline=None)
def test_escape_arc_destroys_the_knot(adj):
    """Adding an arc from a knot member to a fresh sink kills that knot.

    This is the graph-level statement of recovery: giving any deadlocked
    message one path out of the knot (the escape/abort resource) means the
    set is no longer a knot — exactly why removing one victim suffices.
    """
    for knot in find_knots(adj):
        member = min(knot)
        escape = max(adj, default=-1) + 1
        mutated = {v: list(succs) for v, succs in adj.items()}
        mutated[member] = mutated[member] + [escape]
        mutated[escape] = []
        assert knot not in find_knots(mutated)


@given(random_digraph(max_nodes=10))
@settings(max_examples=100, deadline=None)
def test_vertices_outside_knots_escape_or_terminate(adj):
    """Any vertex not in a knot can reach a vertex with no successors,
    or a vertex outside every knot with out-degree 0 -- i.e. it is not
    trapped: its reachable set is not itself a sink component with arcs."""
    in_knot = {v for k in find_knots(adj) for v in k}
    g = nx_graph(adj)
    for v in adj:
        if v in in_knot:
            continue
        reachable = set(nx.descendants(g, v)) | {v}
        # a non-knot vertex's closure is never strongly connected with arcs,
        # unless it merely leads INTO a knot (then the closure is bigger
        # than any single SCC)
        sub = g.subgraph(reachable)
        if nx.is_strongly_connected(sub) and sub.number_of_edges() > 0:
            raise AssertionError(
                f"vertex {v} is trapped in {reachable} but not in any knot"
            )
