"""Property-based tests: SCC/knot detection against a networkx oracle."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knots import (
    find_knots,
    knot_of_vertex,
    strongly_connected_components,
)


@st.composite
def random_digraph(draw, max_nodes=12):
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=max(0, n - 1)),
                st.integers(min_value=0, max_value=max(0, n - 1)),
            ),
            max_size=40,
        )
    )
    adj = {v: [] for v in range(n)}
    for u, v in edges:
        if n and v not in adj[u]:
            adj[u].append(v)
    return adj


def nx_graph(adj):
    g = nx.DiGraph()
    g.add_nodes_from(adj)
    for u, succs in adj.items():
        g.add_edges_from((u, v) for v in succs)
    return g


@given(random_digraph())
@settings(max_examples=200, deadline=None)
def test_sccs_match_networkx(adj):
    mine = {frozenset(c) for c in strongly_connected_components(adj)}
    theirs = {frozenset(c) for c in nx.strongly_connected_components(nx_graph(adj))}
    assert mine == theirs


@given(random_digraph())
@settings(max_examples=200, deadline=None)
def test_knots_are_sink_sccs_with_arcs(adj):
    g = nx_graph(adj)
    cond = nx.condensation(g)
    expected = set()
    for comp_id in cond.nodes:
        members = cond.nodes[comp_id]["members"]
        if cond.out_degree(comp_id) == 0:
            has_arc = len(members) > 1 or any(
                v in adj.get(v, []) for v in members
            )
            if has_arc:
                expected.add(frozenset(members))
    assert set(find_knots(adj)) == expected


@given(random_digraph(max_nodes=8))
@settings(max_examples=100, deadline=None)
def test_knot_members_reach_exactly_the_knot(adj):
    """Every knot satisfies the textbook definition: reach(v) == knot."""
    for knot in find_knots(adj):
        for v in knot:
            reachable = set(nx.descendants(nx_graph(adj), v)) | {v}
            assert reachable == set(knot)


@given(random_digraph(max_nodes=8))
@settings(max_examples=100, deadline=None)
def test_knot_of_vertex_agrees_with_find_knots(adj):
    knots = {v: k for k in find_knots(adj) for v in k}
    for v in adj:
        assert knot_of_vertex(adj, v) == knots.get(v)


@given(random_digraph())
@settings(max_examples=100, deadline=None)
def test_knots_are_disjoint(adj):
    knots = find_knots(adj)
    seen = set()
    for k in knots:
        assert not (seen & k)
        seen |= k
