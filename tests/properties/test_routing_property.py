"""Property-based tests for the routing relations.

The routing function defines both behaviour (the allocator picks among its
candidates) and the CWG's dashed arcs (a blocked header waits on exactly its
candidates), so these invariants protect the detector as much as the router:

* DOR offers exactly one physical channel, and it is minimal;
* TFAR offers every VC of every minimal channel, and nothing else;
* MisroutingTFAR degenerates to TFAR when the budget is exhausted and only
  ever *adds* channels while budget remains.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.network.channels import ChannelPool
from repro.network.message import Message
from repro.network.topology import KAryNCube, Mesh
from repro.routing.dor import DimensionOrderRouting
from repro.routing.tfar import MisroutingTFAR, TrueFullyAdaptiveRouting

small_k = st.integers(min_value=2, max_value=5)
small_n = st.integers(min_value=1, max_value=3)
vc_counts = st.integers(min_value=1, max_value=3)


def make_message(src, dest):
    return Message(0, src, dest, length=4, created_cycle=0)


def draw_pair(data, topology):
    nodes = st.integers(min_value=0, max_value=topology.num_nodes - 1)
    src = data.draw(nodes)
    dest = data.draw(nodes)
    assume(src != dest)
    return src, dest


@given(small_k, small_n, st.booleans(), vc_counts, st.data())
@settings(max_examples=80, deadline=None)
def test_dor_offers_exactly_one_minimal_link(k, n, bidir, num_vcs, data):
    t = KAryNCube(k, n, bidirectional=bidir)
    pool = ChannelPool(t, num_vcs=num_vcs, buffer_depth=2)
    src, dest = draw_pair(data, t)
    msg = make_message(src, dest)
    out = DimensionOrderRouting().candidates(msg, src, t, pool)
    links = {vc.link for vc in out}
    assert len(links) == 1, "DOR must be non-adaptive: one physical channel"
    (link,) = links
    assert link.src == src
    assert t.min_distance(link.dst, dest) == t.min_distance(src, dest) - 1
    assert sorted(vc.index for vc in out) == sorted(
        vc.index for vc in pool.vcs_of_link(link)
    ), "DOR places no VC restriction on the selected channel"


@given(small_k, small_n, vc_counts, st.data())
@settings(max_examples=60, deadline=None)
def test_dor_direction_is_static_per_destination(k, n, num_vcs, data):
    """Two distinct messages with the same (node, dest) get the same link."""
    t = KAryNCube(k, n)
    pool = ChannelPool(t, num_vcs=num_vcs, buffer_depth=2)
    src, dest = draw_pair(data, t)
    dor = DimensionOrderRouting()
    a = dor.candidates(make_message(src, dest), src, t, pool)
    b = dor.candidates(Message(1, src, dest, length=9, created_cycle=5), src, t, pool)
    assert [vc.index for vc in a] == [vc.index for vc in b]


@given(small_k, small_n, st.booleans(), vc_counts, st.data())
@settings(max_examples=80, deadline=None)
def test_tfar_offers_exactly_the_minimal_channels(k, n, bidir, num_vcs, data):
    t = KAryNCube(k, n, bidirectional=bidir)
    pool = ChannelPool(t, num_vcs=num_vcs, buffer_depth=2)
    src, dest = draw_pair(data, t)
    msg = make_message(src, dest)
    out = TrueFullyAdaptiveRouting().candidates(msg, src, t, pool)
    d = t.min_distance(src, dest)
    # minimality: every candidate makes progress
    for vc in out:
        assert t.min_distance(vc.link.dst, dest) == d - 1
    # completeness ("true fully adaptive"): every VC of every minimal
    # channel is offered, with no VC-class restriction
    expected = {
        vc.index for link in t.productive_links(src, dest)
        for vc in pool.vcs_of_link(link)
    }
    assert {vc.index for vc in out} == expected


@given(small_k, small_n, vc_counts, st.data())
@settings(max_examples=60, deadline=None)
def test_dor_candidates_subset_of_tfar(k, n, num_vcs, data):
    t = KAryNCube(k, n)
    pool = ChannelPool(t, num_vcs=num_vcs, buffer_depth=2)
    src, dest = draw_pair(data, t)
    msg = make_message(src, dest)
    dor = {vc.index for vc in DimensionOrderRouting().candidates(msg, src, t, pool)}
    tfar = {
        vc.index
        for vc in TrueFullyAdaptiveRouting().candidates(msg, src, t, pool)
    }
    assert dor <= tfar


@given(small_k, st.integers(min_value=1, max_value=2), vc_counts, st.data())
@settings(max_examples=60, deadline=None)
def test_misrouting_budget_zero_is_plain_tfar(k, n, num_vcs, data):
    """With no budget and no hops taken, TFAR-mis equals minimal TFAR."""
    t = KAryNCube(k, n)
    pool = ChannelPool(t, num_vcs=num_vcs, buffer_depth=2)
    src, dest = draw_pair(data, t)
    msg = make_message(src, dest)
    mis = MisroutingTFAR(misroute_budget=0).candidates(msg, src, t, pool)
    tfar = TrueFullyAdaptiveRouting().candidates(msg, src, t, pool)
    assert {vc.index for vc in mis} == {vc.index for vc in tfar}


@given(small_k, st.integers(min_value=1, max_value=2),
       st.integers(min_value=1, max_value=3), st.data())
@settings(max_examples=60, deadline=None)
def test_misrouting_only_adds_channels(k, n, budget, data):
    """A positive budget widens the candidate set, never narrows it."""
    t = KAryNCube(k, n)
    pool = ChannelPool(t, num_vcs=1, buffer_depth=2)
    src, dest = draw_pair(data, t)
    msg = make_message(src, dest)
    mis = {
        vc.index
        for vc in MisroutingTFAR(misroute_budget=budget).candidates(
            msg, src, t, pool
        )
    }
    tfar = {
        vc.index
        for vc in TrueFullyAdaptiveRouting().candidates(msg, src, t, pool)
    }
    assert tfar <= mis


@given(small_k, st.integers(min_value=1, max_value=2), st.data())
@settings(max_examples=40, deadline=None)
def test_dor_on_mesh_never_uses_wraparound(k, n, data):
    m = Mesh(k, n)
    pool = ChannelPool(m, num_vcs=2, buffer_depth=2)
    src, dest = draw_pair(data, m)
    out = DimensionOrderRouting().candidates(make_message(src, dest), src, m, pool)
    for vc in out:
        cs, cd = m.coords(vc.link.src), m.coords(vc.link.dst)
        assert sum(abs(a - b) for a, b in zip(cs, cd)) == 1, (
            "mesh links must connect Manhattan neighbours (no wrap-around)"
        )
