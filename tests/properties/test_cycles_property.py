"""Property-based tests: cycle enumeration against networkx.simple_cycles."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cycles import count_simple_cycles, enumerate_simple_cycles


@st.composite
def random_digraph(draw, max_nodes=8):
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=max(0, n - 1)),
                st.integers(min_value=0, max_value=max(0, n - 1)),
            ),
            max_size=24,
        )
    )
    adj = {v: [] for v in range(n)}
    for u, v in edges:
        if n and v not in adj[u]:
            adj[u].append(v)
    return adj


def nx_graph(adj):
    g = nx.DiGraph()
    g.add_nodes_from(adj)
    for u, succs in adj.items():
        g.add_edges_from((u, v) for v in succs)
    return g


def canonical(cycle):
    """Rotation-invariant representation of a cycle's vertex sequence."""
    i = cycle.index(min(cycle))
    return tuple(cycle[i:] + cycle[:i])


@given(random_digraph())
@settings(max_examples=150, deadline=None)
def test_count_matches_networkx(adj):
    expected = sum(1 for _ in nx.simple_cycles(nx_graph(adj)))
    result = count_simple_cycles(adj, limit=10_000)
    assert not result.saturated or result.count == expected
    assert result.count == expected


@given(random_digraph())
@settings(max_examples=100, deadline=None)
def test_enumerated_cycles_match_networkx(adj):
    expected = {canonical(c) for c in nx.simple_cycles(nx_graph(adj))}
    cycles, saturated = enumerate_simple_cycles(adj, limit=10_000)
    assert not saturated
    assert {canonical(c) for c in cycles} == expected


@given(random_digraph(), st.integers(min_value=1, max_value=5))
@settings(max_examples=100, deadline=None)
def test_limit_is_respected(adj, limit):
    result = count_simple_cycles(adj, limit=limit)
    assert result.count <= limit or not result.saturated
    if result.saturated:
        assert result.count >= limit


@given(random_digraph())
@settings(max_examples=100, deadline=None)
def test_count_and_enumerate_agree(adj):
    """The two entry points share one engine; their answers must match."""
    result = count_simple_cycles(adj, limit=10_000)
    cycles, saturated = enumerate_simple_cycles(adj, limit=10_000)
    assert result.count == len(cycles)
    assert result.saturated == saturated


@given(random_digraph())
@settings(max_examples=100, deadline=None)
def test_enumerated_cycles_are_genuine(adj):
    """Every reported cycle is a closed walk of distinct vertices in adj."""
    cycles, _ = enumerate_simple_cycles(adj, limit=10_000)
    for cyc in cycles:
        assert len(set(cyc)) == len(cyc), "simple cycles repeat no vertex"
        for u, v in zip(cyc, cyc[1:] + cyc[:1]):
            assert v in adj[u], f"({u}, {v}) is not an arc of the graph"
