"""Property-based tests for topology geometry invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import KAryNCube, Mesh

small_k = st.integers(min_value=2, max_value=6)
small_n = st.integers(min_value=1, max_value=3)


@given(small_k, small_n, st.booleans(), st.data())
@settings(max_examples=60, deadline=None)
def test_coords_roundtrip(k, n, bidir, data):
    t = KAryNCube(k, n, bidirectional=bidir)
    node = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    assert t.node_at(t.coords(node)) == node


@given(small_k, small_n, st.data())
@settings(max_examples=60, deadline=None)
def test_bidirectional_distance_symmetric(k, n, data):
    t = KAryNCube(k, n)
    a = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    b = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    assert t.min_distance(a, b) == t.min_distance(b, a)


@given(small_k, small_n, st.booleans(), st.data())
@settings(max_examples=80, deadline=None)
def test_productive_links_strictly_reduce_distance(k, n, bidir, data):
    t = KAryNCube(k, n, bidirectional=bidir)
    a = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    b = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    d = t.min_distance(a, b)
    links = t.productive_links(a, b)
    if a == b:
        assert links == []
    else:
        assert links, "connected topology must offer a productive link"
        for link in links:
            assert t.min_distance(link.dst, b) == d - 1


@given(small_k, small_n, st.booleans())
@settings(max_examples=40, deadline=None)
def test_degree_regular(k, n, bidir):
    t = KAryNCube(k, n, bidirectional=bidir)
    if bidir:
        expected = n if k == 2 else 2 * n
    else:
        expected = n
    for node in range(t.num_nodes):
        assert len(t.out_links(node)) == expected
        assert len(t.in_links(node)) == expected


@given(small_k, small_n, st.booleans())
@settings(max_examples=30, deadline=None)
def test_average_distance_closed_form_matches_bruteforce(k, n, bidir):
    t = KAryNCube(k, n, bidirectional=bidir)
    nn = t.num_nodes
    brute = sum(
        t.min_distance(a, b) for a in range(nn) for b in range(nn) if a != b
    ) / (nn * (nn - 1))
    assert abs(t.average_internode_distance - brute) < 1e-9


@given(small_k, st.integers(min_value=1, max_value=2), st.data())
@settings(max_examples=60, deadline=None)
def test_mesh_distance_is_manhattan(k, n, data):
    m = Mesh(k, n)
    a = data.draw(st.integers(min_value=0, max_value=m.num_nodes - 1))
    b = data.draw(st.integers(min_value=0, max_value=m.num_nodes - 1))
    ca, cb = m.coords(a), m.coords(b)
    assert m.min_distance(a, b) == sum(abs(x - y) for x, y in zip(ca, cb))


@given(small_k, small_n, st.data())
@settings(max_examples=60, deadline=None)
def test_bidirectional_neighbour_symmetry(k, n, data):
    """b is a's neighbour iff a is b's neighbour, in a bidirectional torus."""
    t = KAryNCube(k, n)
    a = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    for link in t.out_links(a):
        back = {l.dst for l in t.out_links(link.dst)}
        assert a in back
    # and the two neighbour sets agree with the link lists both ways
    assert {l.dst for l in t.out_links(a)} == {l.src for l in t.in_links(a)}


@given(small_k, small_n, st.data())
@settings(max_examples=60, deadline=None)
def test_neighbour_is_invertible(k, n, data):
    t = KAryNCube(k, n)
    node = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    dim = data.draw(st.integers(min_value=0, max_value=n - 1))
    assert t.neighbour(t.neighbour(node, dim, +1), dim, -1) == node
    assert t.neighbour(t.neighbour(node, dim, -1), dim, +1) == node


@given(small_k, small_n, st.booleans(), st.data())
@settings(max_examples=80, deadline=None)
def test_wraparound_distance_per_dimension(k, n, bidir, data):
    """Torus distance is the per-dimension ring distance, summed.

    Bidirectional rings take the shorter way around (min of the two arc
    lengths); unidirectional rings can only go forward, so the distance is
    the forward offset mod k.
    """
    t = KAryNCube(k, n, bidirectional=bidir)
    a = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    b = data.draw(st.integers(min_value=0, max_value=t.num_nodes - 1))
    ca, cb = t.coords(a), t.coords(b)
    expected = 0
    for x, y in zip(ca, cb):
        if bidir:
            expected += min((y - x) % k, (x - y) % k)
        else:
            expected += (y - x) % k
    assert t.min_distance(a, b) == expected


@given(small_k, small_n, st.booleans(), st.data())
@settings(max_examples=60, deadline=None)
def test_triangle_inequality(k, n, bidir, data):
    t = KAryNCube(k, n, bidirectional=bidir)
    nodes = st.integers(min_value=0, max_value=t.num_nodes - 1)
    a, b, c = data.draw(nodes), data.draw(nodes), data.draw(nodes)
    assert t.min_distance(a, c) <= t.min_distance(a, b) + t.min_distance(b, c)
