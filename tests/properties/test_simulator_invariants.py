"""Property-based tests on whole-simulation invariants.

Each drawn configuration runs a short simulation with per-cycle invariant
checking enabled; the engine itself asserts flit conservation, exclusive VC
ownership and buffer bounds every cycle, and the test asserts global
message accounting afterwards.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.network.message import MessageStatus
from repro.network.simulator import NetworkSimulator

configs = st.fixed_dictionaries(
    {
        "k": st.sampled_from([3, 4, 5]),
        "n": st.just(2),
        "bidirectional": st.booleans(),
        "routing": st.sampled_from(["dor", "tfar"]),
        "num_vcs": st.integers(min_value=1, max_value=3),
        "buffer_depth": st.sampled_from([1, 2, 4, 8]),
        "message_length": st.sampled_from([1, 2, 5, 8]),
        "load": st.sampled_from([0.1, 0.5, 1.0]),
        "recovery": st.sampled_from(["disha", "abort-all"]),
        "recovery_teardown": st.sampled_from(["instant", "flit-by-flit"]),
        "cwg_maintenance": st.sampled_from(["rebuild", "incremental"]),
        "router_delay": st.sampled_from([0, 1, 3]),
        "rx_channels": st.sampled_from([1, 2]),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


@given(configs)
@settings(max_examples=25, deadline=None)
def test_short_run_preserves_all_invariants(params):
    cfg = SimulationConfig(
        warmup_cycles=0,
        measure_cycles=250,
        detection_interval=25,
        max_queued_per_node=8,
        check_invariants=True,
        **params,
    )
    sim = NetworkSimulator(cfg)
    result = sim.run()

    # global message accounting: everything generated is somewhere
    live = len(sim._live)
    done = result.delivered + result.recovered + result.aborted
    # stats only counted post-warmup (here warmup=0, so all); generated
    # messages are live, done, or were delivered... all accounted:
    assert sim.generator.generated >= done

    # all finished messages hold nothing
    for m in list(sim.active.values()):
        m.check_conservation()
    # every owned VC belongs to a live active message
    for vc in sim.pool.vcs:
        if vc.owner is not None:
            assert vc.owner in sim.active
    # reception channels owned only by draining active messages
    for rx in sim.pool.reception:
        if rx.owner is not None:
            assert rx.owner in sim.active


@given(configs)
@settings(max_examples=10, deadline=None)
def test_runs_are_deterministic(params):
    cfg = SimulationConfig(
        warmup_cycles=0,
        measure_cycles=150,
        detection_interval=25,
        max_queued_per_node=8,
        **params,
    )
    r1 = NetworkSimulator(cfg).run()
    r2 = NetworkSimulator(cfg).run()
    assert r1.delivered == r2.delivered
    assert r1.deadlocks == r2.deadlocks
    assert r1.latency_sum == r2.latency_sum
    assert r1.cycle_counts == r2.cycle_counts


@given(
    st.sampled_from(["dor-dateline", "duato"]),
    st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=10, deadline=None)
def test_avoidance_routers_never_knot(routing, seed):
    vcs = {"dor-dateline": 2, "duato": 3}[routing]
    cfg = SimulationConfig(
        k=4,
        n=2,
        routing=routing,
        num_vcs=vcs,
        message_length=4,
        load=1.2,
        warmup_cycles=0,
        measure_cycles=300,
        detection_interval=25,
        max_queued_per_node=8,
        seed=seed,
    )
    result = NetworkSimulator(cfg).run()
    assert result.deadlocks == 0


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=8, deadline=None)
def test_delivered_messages_always_complete(seed):
    cfg = SimulationConfig(
        k=4,
        n=2,
        routing="tfar",
        num_vcs=2,
        message_length=6,
        load=0.6,
        warmup_cycles=0,
        measure_cycles=300,
        max_queued_per_node=8,
        seed=seed,
    )
    sim = NetworkSimulator(cfg)
    delivered_ids = []
    orig = sim.stats.on_delivered

    def spy(message, cycle):
        assert message.status is MessageStatus.DELIVERED
        assert message.ejected == message.length
        assert not message.vcs
        delivered_ids.append(message.id)
        orig(message, cycle)

    sim.stats.on_delivered = spy
    sim.run()
    assert len(delivered_ids) == len(set(delivered_ids))
