"""Real runs live inside the enumerated state graph — on every engine tier.

The model-checking oracle's guarantees transfer to production runs only if
the enumerated successor relation actually contains real trajectories:
every cycle a genuinely-seeded simulator executes must step between two
states the enumerator connects.  This property closes the loop between the
scripted branch points of :mod:`repro.validation.statespace` (which claim
to cover *all* RNG draws) and the unmodified engines — on all four tiers,
since a tier whose trajectory ever left the graph would be making a draw
the oracle's branch model does not know about.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.network.simulator import NetworkSimulator
from repro.validation.statespace import (
    CanonicalState,
    oracle_config,
    snapshot_state,
    successors,
)

#: engine-tier flag sets, mirroring the differential fuzzer's axes
TIERS = {
    "legacy": dict(
        engine_fast_path=False, engine_vectorized=False, engine_kernels=False
    ),
    "fast-path": dict(
        engine_fast_path=True, engine_vectorized=False, engine_kernels=False
    ),
    "vectorized": dict(
        engine_fast_path=True, engine_vectorized=True, engine_kernels=False
    ),
    "kernels": dict(
        engine_fast_path=True, engine_vectorized=True, engine_kernels=True
    ),
}

#: tiny configurations with distinct branch-point mixes: deterministic
#: arbitration, random arbitration (shuffle draws), and two VCs
#: (selection tie-breaks)
CONFIGS = {
    "ring": SimulationConfig(
        k=3, n=1, bidirectional=False, num_vcs=1, buffer_depth=1,
        routing="dor", selection="lowest", arbitration="oldest-first",
        traffic="uniform", load=1.0, message_length=2,
        max_queued_per_node=2, seed=0, max_messages=3,
    ),
    "ring-random-arb": SimulationConfig(
        k=3, n=1, bidirectional=False, num_vcs=1, buffer_depth=1,
        routing="dor", selection="lowest", arbitration="random",
        traffic="uniform", load=1.0, message_length=2,
        max_queued_per_node=2, seed=0, max_messages=3,
    ),
    "ring-2vc": SimulationConfig(
        k=3, n=1, bidirectional=False, num_vcs=2, buffer_depth=1,
        routing="dor", selection="lowest", arbitration="oldest-first",
        traffic="uniform", load=1.0, message_length=2,
        max_queued_per_node=2, seed=0, max_messages=2,
    ),
}

TRAJECTORY_CYCLES = 25


@pytest.mark.parametrize("tier", sorted(TIERS))
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("seed", [1, 7])
def test_real_trajectory_is_a_path_in_the_state_graph(
    tier, config_name, seed
):
    """Each genuinely-random step lands in the enumerated successor set."""
    base = CONFIGS[config_name].replace(seed=seed)
    run_config = oracle_config(base).replace(**TIERS[tier])
    run_config.validate()
    sim = NetworkSimulator(run_config)
    prev = snapshot_state(sim)
    stationary = 0
    for _ in range(TRAJECTORY_CYCLES):
        sim.step()
        current = snapshot_state(sim)
        successor_states = {s for _, s in successors(base, prev)}
        assert current in successor_states, (
            f"tier {tier!r}, config {config_name!r}, seed {seed}: the real "
            f"trajectory left the enumerated state graph at cycle "
            f"{sim.cycle} — the engine made a nondeterministic move the "
            f"oracle's branch model does not cover"
        )
        stationary = stationary + 1 if current == prev else 0
        prev = current
        if stationary >= 2:
            break  # terminal (deadlocked or drained): further cycles idle


@pytest.mark.parametrize("tier", sorted(TIERS))
def test_all_tiers_agree_on_the_trajectory(tier):
    """Bit-identity restated in snapshot space, for the oracle's benefit.

    The oracle enumerates on the legacy engine only; this pins that a
    capped-generation tiny config follows the *same* canonical state
    sequence on every tier (the property that makes legacy-enumerated
    graphs ground truth for all four).
    """
    base = CONFIGS["ring"].replace(seed=11)
    run_config = oracle_config(base).replace(**TIERS[tier])
    run_config.validate()
    sim = NetworkSimulator(run_config)
    trajectory = []
    for _ in range(TRAJECTORY_CYCLES):
        sim.step()
        trajectory.append(snapshot_state(sim))
    legacy = NetworkSimulator(oracle_config(base))
    for _ in range(TRAJECTORY_CYCLES):
        legacy.step()
    reference = snapshot_state(legacy)
    assert trajectory[-1] == reference


def test_successor_sets_are_path_independent():
    """successors() is a pure function of the canonical state.

    Enumerating from a state reached by different scripts (or restored
    from JSON) yields identical successor sets — the property that lets
    the BFS deduplicate states without tracking how it reached them.
    """
    base = CONFIGS["ring"]
    sim = NetworkSimulator(oracle_config(base))
    for _ in range(3):
        sim.step()
    state = snapshot_state(sim)
    reloaded = CanonicalState.from_json(state.to_json())
    assert reloaded == state and hash(reloaded) == hash(state)
    first = {s for _, s in successors(base, state)}
    again = {s for _, s in successors(base, reloaded)}
    assert first == again
    assert len(first) >= 1
