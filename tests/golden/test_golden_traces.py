"""Golden-trace regression tests.

Two small, fully deterministic 4-ary 2-cube runs — one DOR, one TFAR — are
reduced to a canonical digest over the run statistics and the complete
deadlock-event stream, and compared against digests committed in
``golden_digests.json``.  Any engine change that alters observable
behaviour, however subtly, flips the digest.

If a digest mismatch is **intentional** (you changed simulation semantics
on purpose and reviewed the new behaviour), re-bless the goldens with:

    REPRO_BLESS_GOLDEN=1 PYTHONPATH=src python -m pytest tests/golden -q

then commit the updated ``golden_digests.json`` together with the change
that caused it, explaining the behavioural delta in the commit message.
If you did NOT intend to change behaviour, the mismatch is a regression —
do not re-bless; bisect it (``scripts/fuzz_differential.py`` can usually
minimize a reproduction).
"""

import dataclasses
import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.config import SimulationConfig
from repro.network.simulator import NetworkSimulator

GOLDEN_PATH = Path(__file__).parent / "golden_digests.json"
BLESS_ENV = "REPRO_BLESS_GOLDEN"

#: the pinned scenarios; changing ANY field here invalidates the digests
SCENARIOS = {
    "dor_4ary2cube": SimulationConfig(
        k=4,
        n=2,
        num_vcs=1,
        buffer_depth=2,
        routing="dor",
        message_length=8,
        load=1.3,
        detection_interval=25,
        recovery="disha",
        count_cycles=True,
        max_cycles_counted=2_000,
        warmup_cycles=0,
        measure_cycles=400,
        seed=97,
    ),
    # TFAR's adaptivity makes true deadlock rare at this scale (the paper's
    # central observation); this scenario pins saturated-but-live behaviour
    # while the DOR scenario above pins the deadlock/recovery event stream.
    "tfar_4ary2cube": SimulationConfig(
        k=4,
        n=2,
        num_vcs=1,
        buffer_depth=1,
        routing="tfar",
        traffic="tornado",
        message_length=8,
        load=2.0,
        detection_interval=25,
        recovery="disha",
        count_cycles=True,
        max_cycles_counted=2_000,
        warmup_cycles=0,
        measure_cycles=400,
        seed=97,
    ),
}


def canonical_trace(sim, result) -> dict:
    """JSON-stable projection of everything observable about a run."""
    fields = dataclasses.asdict(result)
    fields.pop("config")
    events = [
        {
            "cycle": e.cycle,
            "deadlock_set": sorted(e.deadlock_set),
            "resource_set": [str(r) for r in sorted(e.resource_set, key=str)],
            "knot": [str(v) for v in sorted(e.knot, key=str)],
            "knot_cycle_density": e.knot_cycle_density,
            "density_saturated": e.density_saturated,
            "dependent": sorted(e.dependent),
            "transient_dependent": sorted(e.transient_dependent),
        }
        for e in sim.detector.events
    ]
    return {"result": fields, "events": events}


def digest_of(trace: dict) -> str:
    blob = json.dumps(trace, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def run_scenario(name: str) -> tuple[str, dict]:
    sim = NetworkSimulator(SCENARIOS[name])
    result = sim.run()
    trace = canonical_trace(sim, result)
    return digest_of(trace), trace


def load_goldens() -> dict:
    if not GOLDEN_PATH.exists():
        return {}
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace(name):
    digest, trace = run_scenario(name)
    goldens = load_goldens()
    if os.environ.get(BLESS_ENV) == "1":
        goldens[name] = {
            "digest": digest,
            "deadlocks": trace["result"]["deadlocks"],
            "delivered": trace["result"]["delivered"],
            "events": len(trace["events"]),
        }
        GOLDEN_PATH.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"blessed {name}: {digest[:16]}…")
    assert name in goldens, (
        f"no committed golden digest for {name!r}; generate one with "
        f"{BLESS_ENV}=1 and commit {GOLDEN_PATH.name}"
    )
    expected = goldens[name]
    assert digest == expected["digest"], (
        f"golden trace {name!r} changed: digest {digest[:16]}… != committed "
        f"{expected['digest'][:16]}… "
        f"(now deadlocks={trace['result']['deadlocks']} "
        f"delivered={trace['result']['delivered']} "
        f"events={len(trace['events'])}; "
        f"committed deadlocks={expected['deadlocks']} "
        f"delivered={expected['delivered']} events={expected['events']}). "
        f"If this behaviour change is intentional and reviewed, re-bless "
        f"with {BLESS_ENV}=1 (see module docstring); otherwise this is a "
        f"regression — bisect it, do not re-bless."
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace_vectorized_engine(name):
    """The vectorized engine reproduces the committed digests verbatim.

    Same scenarios, same goldens, no separate blessing: the SoA core is
    required to be bit-identical, so it must hash to the exact digests
    the scalar engine committed.
    """
    goldens = load_goldens()
    if os.environ.get(BLESS_ENV) == "1" or name not in goldens:
        pytest.skip("no committed golden (blessing runs the default engine)")
    cfg = SCENARIOS[name].replace(engine_vectorized=True)
    sim = NetworkSimulator(cfg)
    result = sim.run()
    digest = digest_of(canonical_trace(sim, result))
    assert digest == goldens[name]["digest"], (
        f"vectorized engine diverged from golden trace {name!r}: "
        f"{digest[:16]}… != committed {goldens[name]['digest'][:16]}…"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace_kernel_engine(name):
    """The kernel engine reproduces the committed digests verbatim.

    Same scenarios, same goldens, no separate blessing: the batched
    kernels are required to be bit-identical, so they must hash to the
    exact digests the scalar engine committed.
    """
    goldens = load_goldens()
    if os.environ.get(BLESS_ENV) == "1" or name not in goldens:
        pytest.skip("no committed golden (blessing runs the default engine)")
    cfg = SCENARIOS[name].replace(
        engine_vectorized=True, engine_kernels=True
    )
    sim = NetworkSimulator(cfg)
    result = sim.run()
    digest = digest_of(canonical_trace(sim, result))
    assert digest == goldens[name]["digest"], (
        f"kernel engine diverged from golden trace {name!r}: "
        f"{digest[:16]}… != committed {goldens[name]['digest'][:16]}…"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_scenarios_are_deterministic(name):
    """The digest is reproducible within a process (prereq for golden use)."""
    assert run_scenario(name)[0] == run_scenario(name)[0]


def test_golden_scenarios_exercise_deadlock():
    """The pinned scenarios must actually deadlock, or the goldens guard
    nothing interesting; if tuning changes this, pick a harder scenario."""
    goldens = load_goldens()
    total = sum(goldens[n]["deadlocks"] for n in SCENARIOS if n in goldens)
    assert total > 0, "golden scenarios no longer produce any deadlock events"
