"""Golden-trace regression tests for the topology zoo.

One pinned, fully deterministic scenario per new topology class —
torus3d with a slow TSV dimension, mesh3d, dragonfly under minimal
routing, full mesh under 2-hop misrouting — digested exactly like the
k-ary n-cube goldens in :mod:`tests.golden.test_golden_traces` and
compared against ``topology_golden_digests.json``.  The zoo runs on the
legacy/fast-path engines only (the vectorized tiers are config-gated),
so there are no per-engine variants here; the fast path IS the default
engine and is what these digests pin.

Re-bless after an intentional, reviewed semantic change with:

    REPRO_BLESS_GOLDEN=1 PYTHONPATH=src python -m pytest tests/golden -q
"""

import json
import os
from pathlib import Path

import pytest

from repro.config import SimulationConfig
from repro.network.simulator import NetworkSimulator
from tests.golden.test_golden_traces import BLESS_ENV, canonical_trace, digest_of

GOLDEN_PATH = Path(__file__).parent / "topology_golden_digests.json"

_COMMON = dict(
    num_vcs=1,
    buffer_depth=2,
    message_length=8,
    detection_interval=25,
    recovery="disha",
    count_cycles=True,
    max_cycles_counted=2_000,
    warmup_cycles=0,
    measure_cycles=400,
    seed=97,
)

#: the pinned scenarios; changing ANY field here invalidates the digests
SCENARIOS = {
    "torus3d_tsv_dor": SimulationConfig(
        topology="torus3d",
        dims=(4, 2, 2),
        link_latencies=(1, 1, 3),
        routing="dor",
        load=1.3,
        **_COMMON,
    ),
    "mesh3d_dor": SimulationConfig(
        topology="mesh3d",
        dims=(3, 3, 2),
        routing="dor",
        load=1.5,
        **_COMMON,
    ),
    "dragonfly_min": SimulationConfig(
        topology="dragonfly",
        dims=(3, 1, 1),
        routing="df-min",
        load=2.0,
        **_COMMON,
    ),
    "fullmesh_2hop": SimulationConfig(
        topology="fullmesh",
        dims=(8,),
        routing="fm-2hop",
        load=1.5,
        **_COMMON,
    ),
}


def run_scenario(name: str) -> tuple[str, dict]:
    sim = NetworkSimulator(SCENARIOS[name])
    result = sim.run()
    trace = canonical_trace(sim, result)
    return digest_of(trace), trace


def load_goldens() -> dict:
    if not GOLDEN_PATH.exists():
        return {}
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_topology_golden_trace(name):
    digest, trace = run_scenario(name)
    goldens = load_goldens()
    if os.environ.get(BLESS_ENV) == "1":
        goldens[name] = {
            "digest": digest,
            "deadlocks": trace["result"]["deadlocks"],
            "delivered": trace["result"]["delivered"],
            "events": len(trace["events"]),
        }
        GOLDEN_PATH.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"blessed {name}: {digest[:16]}…")
    assert name in goldens, (
        f"no committed golden digest for {name!r}; generate one with "
        f"{BLESS_ENV}=1 and commit {GOLDEN_PATH.name}"
    )
    expected = goldens[name]
    assert digest == expected["digest"], (
        f"topology golden {name!r} changed: digest {digest[:16]}… != "
        f"committed {expected['digest'][:16]}… "
        f"(now deadlocks={trace['result']['deadlocks']} "
        f"delivered={trace['result']['delivered']} "
        f"events={len(trace['events'])}; "
        f"committed deadlocks={expected['deadlocks']} "
        f"delivered={expected['delivered']} events={expected['events']}). "
        f"Re-bless only for an intentional, reviewed semantic change."
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_topology_goldens_are_deterministic(name):
    assert run_scenario(name)[0] == run_scenario(name)[0]


def test_deadlock_prone_scenarios_exercise_deadlock():
    """The torus3d and dragonfly goldens must actually deadlock, or they
    pin nothing the zoo was built to study."""
    goldens = load_goldens()
    prone = ("torus3d_tsv_dor", "dragonfly_min")
    committed = [n for n in prone if n in goldens]
    if not committed:
        pytest.skip("goldens not blessed yet")
    assert sum(goldens[n]["deadlocks"] for n in committed) > 0
