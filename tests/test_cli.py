"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.routing == "dor"
        assert args.load == 0.5

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "FIG5", "--scale", "tiny"])
        assert args.id == "FIG5"
        assert args.scale == "tiny"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "FIG99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_serve_args(self):
        args = build_parser().parse_args(
            [
                "campaign", "serve", "FIG5", "--store", "runs/fig5",
                "--scale", "tiny", "--port", "7000", "--status-port", "7001",
                "--local-workers", "2", "--lease-ttl", "5",
            ]
        )
        assert args.campaign_command == "serve"
        assert args.id == "FIG5" and args.store == "runs/fig5"
        assert args.port == 7000 and args.status_port == 7001
        assert args.local_workers == 2 and args.lease_ttl == 5.0

    def test_campaign_serve_defaults(self):
        args = build_parser().parse_args(
            ["campaign", "serve", "FIG5", "--store", "runs/fig5"]
        )
        assert args.port == 0 and args.status_port is None
        assert args.local_workers == 0
        assert args.lease_ttl == 15.0 and args.requeue_limit == 3

    def test_campaign_worker_args(self):
        args = build_parser().parse_args(
            [
                "campaign", "worker", "--connect", "host-a:7000",
                "--id", "rack3/w1", "--max-points", "10", "--stay",
            ]
        )
        assert args.campaign_command == "worker"
        assert args.connect == "host-a:7000"
        assert args.worker_id == "rack3/w1"
        assert args.max_points == 10 and args.stay is True

    def test_campaign_worker_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "worker"])

    def test_campaign_watch_args(self):
        args = build_parser().parse_args(
            [
                "campaign", "watch", "--connect", "127.0.0.1:7001",
                "--interval", "0.5", "--max-updates", "3",
            ]
        )
        assert args.campaign_command == "watch"
        assert args.interval == 0.5 and args.max_updates == 3

    def test_campaign_rebuild_args(self):
        args = build_parser().parse_args(
            ["campaign", "rebuild", "--store", "runs/fig5"]
        )
        assert args.campaign_command == "rebuild"
        assert args.store == "runs/fig5"


class TestMain:
    def test_simulate_runs(self, capsys):
        rc = main(
            [
                "simulate", "--k", "4", "--length", "8", "--load", "0.6",
                "--warmup", "100", "--cycles", "500",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulating" in out
        assert "deadlocks:" in out

    def test_simulate_avoidance_router(self, capsys):
        rc = main(
            [
                "simulate", "--k", "4", "--routing", "duato", "--vcs", "3",
                "--length", "8", "--load", "0.8", "--warmup", "50",
                "--cycles", "400",
            ]
        )
        assert rc == 0
        assert "deadlocks: 0" in capsys.readouterr().out

    def test_experiment_with_csv_and_chart(self, capsys, tmp_path, monkeypatch):
        # shrink the tiny scale further for test speed via loads monkeypatch
        import repro.experiments.fig5 as fig5_mod

        monkeypatch.setattr(fig5_mod, "scaled_loads", lambda scale: [0.8])
        csv_path = tmp_path / "out.csv"
        rc = main(
            ["experiment", "FIG5", "--scale", "tiny", "--csv", str(csv_path),
             "--chart"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "FIG5" in out
        assert "normalized load" in out  # chart axis label
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("experiment,series,load")

    def test_simulate_obs_level_prints_phase_table(self, capsys):
        rc = main(
            [
                "simulate", "--k", "4", "--length", "8", "--load", "0.6",
                "--warmup", "50", "--cycles", "300", "--obs-level", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase profile" in out
        assert "engine/allocate" in out

    def test_simulate_trace_out_writes_chrome_trace(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        rc = main(
            [
                "simulate", "--k", "4", "--length", "8", "--load", "1.0",
                "--warmup", "50", "--cycles", "300",
                "--trace-out", str(trace_path),  # implies --obs-level 2
            ]
        )
        assert rc == 0
        assert "trace written to" in capsys.readouterr().out
        doc = json.loads(trace_path.read_text())
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert "engine/allocate" in names

    def test_simulate_trace_out_jsonl(self, tmp_path):
        import json

        trace_path = tmp_path / "trace.jsonl"
        rc = main(
            [
                "simulate", "--k", "4", "--length", "8", "--load", "0.6",
                "--warmup", "50", "--cycles", "300",
                "--trace-out", str(trace_path),
            ]
        )
        assert rc == 0
        rows = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert rows and all("name" in r for r in rows)

    def test_experiment_obs_level_prints_rollup(self, capsys, monkeypatch):
        import repro.experiments.base as base_mod
        import repro.experiments.fig5 as fig5_mod

        monkeypatch.setattr(fig5_mod, "scaled_loads", lambda scale: [0.8])
        rc = main(["experiment", "FIG5", "--scale", "tiny", "--obs-level", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "observability rollup" in out
        assert "engine/allocate" in out
        # the CLI leaves the default obs level set; reset for other tests
        base_mod.set_default_obs_level(0)
