"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.routing == "dor"
        assert args.load == 0.5

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "FIG5", "--scale", "tiny"])
        assert args.id == "FIG5"
        assert args.scale == "tiny"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "FIG99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_simulate_runs(self, capsys):
        rc = main(
            [
                "simulate", "--k", "4", "--length", "8", "--load", "0.6",
                "--warmup", "100", "--cycles", "500",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulating" in out
        assert "deadlocks:" in out

    def test_simulate_avoidance_router(self, capsys):
        rc = main(
            [
                "simulate", "--k", "4", "--routing", "duato", "--vcs", "3",
                "--length", "8", "--load", "0.8", "--warmup", "50",
                "--cycles", "400",
            ]
        )
        assert rc == 0
        assert "deadlocks: 0" in capsys.readouterr().out

    def test_experiment_with_csv_and_chart(self, capsys, tmp_path, monkeypatch):
        # shrink the tiny scale further for test speed via loads monkeypatch
        import repro.experiments.fig5 as fig5_mod

        monkeypatch.setattr(fig5_mod, "scaled_loads", lambda scale: [0.8])
        csv_path = tmp_path / "out.csv"
        rc = main(
            ["experiment", "FIG5", "--scale", "tiny", "--csv", str(csv_path),
             "--chart"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "FIG5" in out
        assert "normalized load" in out  # chart axis label
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("experiment,series,load")
