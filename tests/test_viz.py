"""Tests for ASCII network-state rendering."""

import pytest

from repro.config import tiny_default
from repro.errors import ConfigurationError
from repro.network.simulator import NetworkSimulator
from repro.viz import describe_event, render_knot, render_occupancy


def run_until_deadlock(max_cycles=20_000):
    cfg = tiny_default(routing="dor", num_vcs=1, load=1.0, seed=3,
                       warmup_cycles=0, measure_cycles=1,
                       detection_interval=25)
    sim = NetworkSimulator(cfg)
    for _ in range(max_cycles):
        sim.step()
        rec = sim.detector.records[-1] if sim.detector.records else None
        if rec and rec.cycle == sim.cycle and rec.events:
            return sim, rec.events[0]
    pytest.skip("no deadlock formed")


def test_render_occupancy_structure():
    cfg = tiny_default(load=0.5, warmup_cycles=0, measure_cycles=1)
    sim = NetworkSimulator(cfg)
    for _ in range(200):
        sim.step()
    view = render_occupancy(sim)
    lines = view.splitlines()
    assert lines[0].startswith("cycle 200:")
    assert len([l for l in lines if l.startswith("y=")]) == cfg.k
    assert "x=0" in lines[-1]


def test_render_occupancy_requires_2d():
    cfg = tiny_default(k=2, n=3, message_length=4)
    sim = NetworkSimulator(cfg)
    with pytest.raises(ConfigurationError):
        render_occupancy(sim)


def test_render_knot_marks_involved_routers():
    sim, event = run_until_deadlock()
    view = render_knot(sim, event)
    assert "[#]" in view
    assert str(sorted(event.deadlock_set)) in view
    assert "density" in view


def test_describe_event_lists_characteristics():
    sim, event = run_until_deadlock()
    text = describe_event(event)
    assert f"cycle {event.cycle}" in text
    assert "knot" in text
    assert str(sorted(event.deadlock_set)) in text
