"""Tests for packet wait-for graphs and the connectivity premise."""

from repro.core.cwg import ChannelWaitForGraph
from repro.core.gallery import figure1_cwg, figure2_cwg, figure4_cwg
from repro.core.knots import find_knots
from repro.core.pwfg import (
    is_connected_routing,
    packet_wait_for_graph,
    pwfg_cycle_count,
    pwfg_knots,
)
from repro.network.channels import ChannelPool
from repro.network.topology import KAryNCube, Mesh
from repro.routing import (
    DatelineDOR,
    DimensionOrderRouting,
    DuatoProtocolRouting,
    NegativeFirstRouting,
    TrueFullyAdaptiveRouting,
)


class TestPWFGConstruction:
    def test_figure1_message_cycle(self):
        adj = packet_wait_for_graph(figure1_cwg())
        # m1 -> m3 -> m5 -> m1; m2 and m4 are arcless
        assert adj[1] == [3]
        assert adj[3] == [5]
        assert adj[5] == [1]
        assert adj[2] == [] and adj[4] == []

    def test_figure2_includes_dependent_arc(self):
        adj = packet_wait_for_graph(figure2_cwg())
        assert adj[6] == [3]  # the dependent message waits on m3

    def test_self_waits_excluded(self):
        g = ChannelWaitForGraph()
        g.add_ownership_chain(1, ["a", "b"])
        g.add_request(1, ["a"])  # degenerate: wait on own resource
        assert packet_wait_for_graph(g)[1] == []

    def test_waits_on_free_vertex_produce_no_arc(self):
        g = ChannelWaitForGraph()
        g.add_ownership_chain(1, ["a"])
        g.add_request(1, ["free"])
        assert packet_wait_for_graph(g)[1] == []


class TestPaperClaim:
    def test_figure4_pwfg_has_cycles_but_no_deadlock(self):
        """The paper's §2.3 point: packet-wait-for cycles without deadlock,
        so forbidding PWFG cycles is overly restrictive."""
        g = figure4_cwg()
        assert pwfg_cycle_count(g).count >= 1  # message-level cycles exist
        assert find_knots(g.adjacency()) == []  # yet no channel-level knot

    def test_figure1_pwfg_knot_matches_deadlock(self):
        g = figure1_cwg()
        knots = pwfg_knots(g)
        assert knots == [frozenset({1, 3, 5})]  # the true deadlock set

    def test_pwfg_is_coarser_than_cwg(self):
        """Figure 4 again: the PWFG may even contain a knot while the CWG
        (the exact criterion) does not — message granularity cannot see
        unexhausted routing alternatives."""
        g = figure4_cwg()
        # regardless of whether the PWFG has a knot here, the CWG verdict
        # (no deadlock) is the authoritative one
        assert find_knots(g.adjacency()) == []


class TestConnectivity:
    def test_all_builtin_torus_routers_connected(self):
        torus = KAryNCube(4, 2)
        for routing, vcs in (
            (DimensionOrderRouting(), 1),
            (TrueFullyAdaptiveRouting(), 1),
            (DatelineDOR(), 2),
            (DuatoProtocolRouting(), 3),
        ):
            pool = ChannelPool(torus, vcs, 2)
            assert is_connected_routing(routing, torus, pool), routing.name

    def test_turn_model_connected_on_mesh(self):
        mesh = Mesh(4, 2)
        pool = ChannelPool(mesh, 1, 2)
        assert is_connected_routing(NegativeFirstRouting(), mesh, pool)

    def test_disconnected_relation_detected(self):
        class BrokenRouting(DimensionOrderRouting):
            def candidates(self, message, node, topology, pool):
                if node == 5:
                    return []  # drops candidates at node 5
                return super().candidates(message, node, topology, pool)

        torus = KAryNCube(4, 2)
        pool = ChannelPool(torus, 1, 2)
        assert not is_connected_routing(BrokenRouting(), torus, pool)
