"""Tests for incremental CWG maintenance.

The crucial property: at every detection instant the event-maintained
graph is *identical* to the graph rebuilt from scratch — same vertices,
same ownership, same solid and dashed arcs — across randomized runs of
every routing/recovery combination.
"""

import pytest

from repro.config import tiny_default
from repro.core.cwg import ChannelWaitForGraph
from repro.core.detector import DeadlockDetector
from repro.core.incremental import IncrementalCWG
from repro.errors import SimulationError
from repro.network.simulator import NetworkSimulator


def graphs_equal(a: ChannelWaitForGraph, b: ChannelWaitForGraph) -> bool:
    return (
        a.chains == b.chains
        and a.requests == b.requests
        and {v: o for v, o in a.owner.items() if o is not None}
        == {v: o for v, o in b.owner.items() if o is not None}
    )


class TestUnitEvents:
    def test_acquire_release_lifecycle(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        t.on_acquire(1, "b")
        assert list(t.chains[1]) == ["a", "b"]
        assert t.owner == {"a": 1, "b": 1}
        t.on_release(1, "a")
        assert list(t.chains[1]) == ["b"]
        t.on_release(1, "b")
        assert 1 not in t.chains
        assert t.owner == {}
        t.assert_consistent()

    def test_double_acquire_rejected(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        with pytest.raises(SimulationError):
            t.on_acquire(2, "a")

    def test_out_of_order_release_rejected(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        t.on_acquire(1, "b")
        with pytest.raises(SimulationError):
            t.on_release(1, "b")  # not the tail

    def test_block_unblock(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        t.on_block(1, ["x", "y"])
        assert t.requests[1] == ["x", "y"]
        t.on_unblock(1)
        assert 1 not in t.requests

    def test_block_without_chain_ignored(self):
        t = IncrementalCWG()
        t.on_block(7, ["x"])  # source-queued message: not in the CWG
        assert 7 not in t.requests

    def test_acquire_clears_block(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        t.on_block(1, ["x"])
        t.on_acquire(1, "x")
        assert 1 not in t.requests

    def test_on_done_clears_everything(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        t.on_acquire(1, "b")
        t.on_block(1, ["x"])
        t.on_done(1)
        assert not t.chains and not t.owner and not t.requests
        t.assert_consistent()

    def test_snapshot_round_trip(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        t.on_acquire(1, "b")
        t.on_acquire(2, "c")
        t.on_block(1, ["c"])
        g = t.snapshot()
        assert g.chains == {1: ["a", "b"], 2: ["c"]}
        assert g.requests == {1: ["c"]}
        assert t.adjacency() == g.adjacency()


class TestEquivalenceWithRebuild:
    @pytest.mark.parametrize(
        "routing,vcs,recovery,teardown,load,seed",
        [
            ("dor", 1, "disha", "instant", 1.0, 1),
            ("dor", 1, "disha", "flit-by-flit", 1.0, 2),
            ("tfar", 1, "disha", "instant", 1.0, 3),
            ("tfar", 2, "disha", "instant", 1.2, 4),
            ("dor", 1, "abort-all", "instant", 0.9, 5),
            ("dor", 1, "none", "instant", 1.0, 6),
            ("dor-dateline", 2, "disha", "instant", 1.2, 7),
        ],
    )
    def test_tracker_matches_rebuild_at_every_detection(
        self, routing, vcs, recovery, teardown, load, seed
    ):
        cfg = tiny_default(
            routing=routing,
            num_vcs=vcs,
            recovery=recovery,
            recovery_teardown=teardown,
            load=load,
            seed=seed,
            cwg_maintenance="incremental",
            warmup_cycles=0,
            measure_cycles=1200,
            detection_interval=50,
        )
        sim = NetworkSimulator(cfg)
        checks = 0
        while sim.cycle < 1200:
            sim.step()
            if sim.cycle % 50 == 0:
                sim.tracker.assert_consistent()
                incremental = sim.tracker.snapshot()
                rebuilt = DeadlockDetector.build_cwg(sim)
                assert graphs_equal(incremental, rebuilt), (
                    f"divergence at cycle {sim.cycle}"
                )
                checks += 1
        assert checks >= 20

    def test_detection_results_identical_between_modes(self):
        outcomes = {}
        for mode in ("rebuild", "incremental"):
            cfg = tiny_default(
                routing="dor", num_vcs=1, load=1.0, seed=3,
                cwg_maintenance=mode, measure_cycles=2000,
            )
            result = NetworkSimulator(cfg).run()
            outcomes[mode] = (
                result.deadlocks,
                result.delivered,
                tuple(result.deadlock_set_sizes),
                tuple(result.cycle_counts),
            )
        assert outcomes["rebuild"] == outcomes["incremental"]

    def test_router_delay_equivalence(self):
        cfg = tiny_default(
            routing="dor", num_vcs=1, load=1.0, seed=9, router_delay=2,
            cwg_maintenance="incremental", warmup_cycles=0,
            measure_cycles=800,
        )
        sim = NetworkSimulator(cfg)
        while sim.cycle < 800:
            sim.step()
            if sim.cycle % 100 == 0:
                assert graphs_equal(
                    sim.tracker.snapshot(), DeadlockDetector.build_cwg(sim)
                )

    def test_invalid_mode_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            tiny_default(cwg_maintenance="telepathy").validate()
