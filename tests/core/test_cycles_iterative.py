"""Pin the iterative Johnson enumeration against the recursive original.

The census used to be the textbook recursive Johnson (raising
``sys.setrecursionlimit`` to survive deep knots); it is now an explicit
frame stack with — by construction — the *same* enumeration order, so
capped counts, collected cycles and saturation flags must all match the
recursive reference embedded here verbatim.

The same file also validates the chain-contraction shortcut
(:func:`contract_graph` / :func:`count_cycles_contracted` /
:func:`find_knots_contracted`): simple-cycle counts and knot sets are
invariant under contracting pass-through vertices, including under tight
budget caps, randomized over simple digraphs and over chain-heavy
CWG-shaped graphs.
"""

import random

import pytest

from repro.core.cycles import (
    CycleCount,
    contract_graph,
    count_cycles_contracted,
    count_simple_cycles,
    enumerate_simple_cycles,
)
from repro.core.gallery import figure1_cwg, figure2_cwg, figure3_cwg, figure4_cwg
from repro.core.knots import find_knots, find_knots_contracted


# -- the pre-rewrite recursive Johnson, kept verbatim as the oracle ------------------


def _recursive_count(adjacency, limit, collect=None):
    from repro.core.knots import strongly_connected_components

    ids = {v: i for i, v in enumerate(adjacency)}
    for succs in adjacency.values():
        for w in succs:
            if w not in ids:
                ids[w] = len(ids)
    rev = {i: v for v, i in ids.items()}
    adj = {ids[v]: [ids[w] for w in succs] for v, succs in adjacency.items()}

    class Budget:
        left = limit

    budget = Budget()
    total = 0
    for v, succs in adj.items():
        if budget.left <= 0:
            break
        if v in succs:
            total += 1
            budget.left -= 1
            if collect is not None:
                collect.append([rev[v]])

    def johnson(vertices):
        nonlocal total
        vset = set(vertices)
        order = {v: i for i, v in enumerate(sorted(vertices))}
        for s in sorted(vertices, key=order.__getitem__):
            if budget.left <= 0:
                break
            allowed = {v for v in vset if order[v] >= order[s]}
            blocked = set()
            blist = {v: set() for v in allowed}
            path = []

            def unblock(v):
                stack = [v]
                while stack:
                    u = stack.pop()
                    if u in blocked:
                        blocked.discard(u)
                        stack.extend(blist[u])
                        blist[u].clear()

            def circuit(v):
                nonlocal total
                found = False
                path.append(v)
                blocked.add(v)
                for w in adj.get(v, ()):
                    if w not in allowed or w == v:
                        continue
                    if w == s:
                        total += 1
                        budget.left -= 1
                        if collect is not None:
                            collect.append([rev[u] for u in path])
                        found = True
                        if budget.left <= 0:
                            path.pop()
                            return True
                    elif w not in blocked:
                        if circuit(w):
                            found = True
                        if budget.left <= 0:
                            path.pop()
                            return True
                if found:
                    unblock(v)
                else:
                    for w in adj.get(v, ()):
                        if w in allowed:
                            blist[w].add(v)
                path.pop()
                return found

            circuit(s)
            vset.discard(s)

    for comp in strongly_connected_components(adj):
        if len(comp) < 2:
            continue
        if budget.left <= 0:
            break
        johnson(comp)
    return CycleCount(count=total, saturated=budget.left <= 0)


# -- graph generators -----------------------------------------------------------------


def _random_digraph(rng, n, arc_prob):
    """A simple digraph (arc *sets*, self-loops allowed) as adjacency lists."""
    adj = {v: [] for v in range(n)}
    for u in range(n):
        for w in range(n):
            if rng.random() < arc_prob:
                adj[u].append(w)
    return adj

def _random_cwg_like(rng, n_chains, chain_len, n_vertices):
    """Chain-heavy graphs shaped like CWGs: long paths plus dashed fan-out."""
    adj = {v: [] for v in range(n_vertices)}
    arcs = set()
    for _ in range(n_chains):
        chain = rng.sample(
            range(n_vertices), rng.randint(2, min(chain_len, n_vertices))
        )
        for u, w in zip(chain, chain[1:]):
            if u != w and (u, w) not in arcs:
                arcs.add((u, w))
                adj[u].append(w)
        tail = chain[-1]
        for w in rng.sample(range(n_vertices), rng.randint(0, 3)):
            if w != tail and (tail, w) not in arcs:
                arcs.add((tail, w))
                adj[tail].append(w)
    return adj


GALLERY = {
    "figure1": figure1_cwg,
    "figure2": figure2_cwg,
    "figure3": figure3_cwg,
    "figure4": figure4_cwg,
}


# -- iterative vs recursive ------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(GALLERY))
def test_gallery_counts_match_recursive(name):
    adjacency = GALLERY[name]().adjacency()
    assert count_simple_cycles(adjacency, limit=10_000) == _recursive_count(
        adjacency, 10_000
    )


def test_gallery_known_densities():
    """Literal expectations from the paper's figures, as a sanity anchor."""
    fig1 = figure1_cwg().adjacency()
    fig3 = figure3_cwg().adjacency()
    assert count_simple_cycles(fig1).count == 1
    assert count_simple_cycles(fig3).count == 4


def test_enumeration_order_matches_recursive():
    """Not just the same cycles — the same order (budget caps depend on it)."""
    rng = random.Random(42)
    for _ in range(60):
        adjacency = _random_digraph(rng, rng.randint(2, 9), 0.3)
        got, got_sat = enumerate_simple_cycles(adjacency, limit=10_000)
        ref = []
        ref_res = _recursive_count(adjacency, 10_000, collect=ref)
        assert got == ref
        assert got_sat == ref_res.saturated


@pytest.mark.parametrize("limit", [1, 2, 3, 7, 10_000])
def test_capped_counts_match_recursive(limit):
    rng = random.Random(limit)
    for _ in range(80):
        adjacency = _random_digraph(rng, rng.randint(2, 8), 0.35)
        assert count_simple_cycles(adjacency, limit=limit) == _recursive_count(
            adjacency, limit
        ), adjacency


@pytest.mark.slow
def test_deep_ring_needs_no_recursion_limit():
    """A ring far deeper than CPython's default recursion limit."""
    import sys

    n = 3 * sys.getrecursionlimit()
    adjacency = {i: [(i + 1) % n] for i in range(n)}
    before = sys.getrecursionlimit()
    assert count_simple_cycles(adjacency) == CycleCount(1, False)
    assert sys.getrecursionlimit() == before  # no limit fiddling anymore


# -- contraction invariance ------------------------------------------------------------


def _assert_contraction_invariant(adjacency, limit):
    contracted = contract_graph(adjacency)
    assert count_cycles_contracted(contracted, limit) == count_simple_cycles(
        adjacency, limit=limit
    ), adjacency
    if limit >= 10_000:  # knot comparison only meaningful uncapped
        assert sorted(find_knots_contracted(contracted), key=sorted) == sorted(
            find_knots(adjacency), key=sorted
        ), adjacency


@pytest.mark.parametrize("name", sorted(GALLERY))
def test_gallery_contraction_invariant(name):
    _assert_contraction_invariant(GALLERY[name]().adjacency(), 10_000)


def test_figure1_contracts_to_a_ring():
    """Figure 1's single-cycle knot is all pass-through vertices: one ring."""
    adjacency = figure1_cwg().adjacency()
    contracted = contract_graph(adjacency)
    assert len(contracted.rings) == 1
    [knot] = find_knots_contracted(contracted)
    assert knot == frozenset(contracted.rings[0])
    assert [knot] == find_knots(adjacency)


def test_contraction_invariant_random():
    rng = random.Random(7)
    for _ in range(300):
        adjacency = _random_digraph(rng, rng.randint(1, 9), 0.25)
        _assert_contraction_invariant(adjacency, 10_000)


def test_contraction_invariant_random_capped():
    rng = random.Random(8)
    for limit in (1, 2, 5):
        for _ in range(120):
            adjacency = _random_digraph(rng, rng.randint(2, 8), 0.35)
            _assert_contraction_invariant(adjacency, limit)


def test_contraction_invariant_cwg_like():
    rng = random.Random(9)
    for _ in range(150):
        adjacency = _random_cwg_like(
            rng, rng.randint(2, 8), rng.randint(3, 10), rng.randint(8, 24)
        )
        _assert_contraction_invariant(adjacency, 10_000)
