"""Unit tests for the channel wait-for graph data structure."""

import pytest

from repro.core.cwg import ChannelWaitForGraph
from repro.errors import SimulationError


def test_empty_graph():
    g = ChannelWaitForGraph()
    assert g.num_vertices == 0
    assert g.num_arcs == 0
    assert g.adjacency() == {}
    assert g.blocked_messages() == []


def test_single_chain_solid_arcs():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a", "b", "c"])
    assert g.num_vertices == 3
    assert g.solid_arcs() == [("a", "b", 1), ("b", "c", 1)]
    assert g.dashed_arcs() == []
    assert g.owner["a"] == 1 and g.owner["c"] == 1


def test_single_vertex_chain_has_no_arcs():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(5, ["only"])
    assert g.num_arcs == 0
    assert g.adjacency() == {"only": []}


def test_request_arcs_originate_at_newest_owned_vertex():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a", "b"])
    g.add_ownership_chain(2, ["x"])
    g.add_request(1, ["x", "y"])
    assert g.request_from[1] == "b"
    assert sorted(g.dashed_arcs()) == [("b", "x", 1), ("b", "y", 1)]
    # y was never owned: a free vertex in the graph
    assert g.owner["y"] is None


def test_exclusive_ownership_enforced():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a", "b"])
    with pytest.raises(SimulationError):
        g.add_ownership_chain(2, ["b", "c"])


def test_duplicate_chain_rejected():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a"])
    with pytest.raises(SimulationError):
        g.add_ownership_chain(1, ["b"])


def test_empty_chain_rejected():
    g = ChannelWaitForGraph()
    with pytest.raises(SimulationError):
        g.add_ownership_chain(1, [])


def test_request_without_ownership_rejected():
    g = ChannelWaitForGraph()
    with pytest.raises(SimulationError):
        g.add_request(1, ["a"])


def test_request_with_no_targets_rejected():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a"])
    with pytest.raises(SimulationError):
        g.add_request(1, [])


def test_duplicate_request_rejected():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a"])
    g.add_request(1, ["b"])
    with pytest.raises(SimulationError):
        g.add_request(1, ["c"])


def test_adjacency_combines_solid_and_dashed():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a", "b"])
    g.add_ownership_chain(2, ["c"])
    g.add_request(1, ["c"])
    adj = g.adjacency()
    assert adj["a"] == ["b"]
    assert adj["b"] == ["c"]
    assert adj["c"] == []


def test_fan_out_counts_alternatives():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a"])
    g.add_request(1, ["b", "c", "d"])
    assert g.fan_out(1) == 3
    assert g.fan_out(99) == 0  # unknown message: no requests


def test_messages_owning_and_resources_of():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a", "b"])
    g.add_ownership_chain(2, ["c"])
    assert g.messages_owning(["a", "c"]) == {1, 2}
    assert g.messages_owning(["nonexistent"]) == set()
    assert g.resources_of([1]) == {"a", "b"}
    assert g.resources_of([1, 2]) == {"a", "b", "c"}
    assert g.resources_of([42]) == set()


def test_num_arcs_counts_both_kinds():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a", "b", "c"])  # 2 solid
    g.add_ownership_chain(2, ["d"])
    g.add_request(1, ["d", "e"])  # 2 dashed
    assert g.num_arcs == 4


def test_blocked_messages_lists_requesters_only():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a"])
    g.add_ownership_chain(2, ["b"])
    g.add_request(1, ["b"])
    assert g.blocked_messages() == [1]


def test_add_vertex_registers_free_vertex():
    g = ChannelWaitForGraph()
    g.add_vertex("v")
    assert g.owner["v"] is None
    g.add_vertex("v", owner=3)  # upgrading a free vertex is allowed
    assert g.owner["v"] == 3


def test_add_vertex_conflicting_owner_rejected():
    g = ChannelWaitForGraph()
    g.add_vertex("v", owner=1)
    with pytest.raises(SimulationError):
        g.add_vertex("v", owner=2)


def test_to_dot_mentions_all_arcs():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a", "b"])
    g.add_ownership_chain(2, ["c"])
    g.add_request(1, ["c"])
    dot = g.to_dot()
    assert '"a" -> "b"' in dot
    assert "style=dashed" in dot
    assert dot.startswith("digraph")
