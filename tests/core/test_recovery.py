"""Unit tests for recovery policies and victim removal."""

import random

import pytest

from repro.core.recovery import (
    AbortAllRecovery,
    DishaRecovery,
    NoRecovery,
    make_recovery,
)
from repro.network.message import Message, MessageStatus


def make_messages(n=3, blocked_since=None):
    msgs = []
    for i in range(n):
        m = Message(i, src=0, dest=1, length=4, created_cycle=0)
        m.blocked_since = blocked_since[i] if blocked_since else None
        msgs.append(m)
    return msgs


class TestDisha:
    def test_picks_exactly_one_victim(self):
        msgs = make_messages(5)
        victims = DishaRecovery().victims(msgs, random.Random(0))
        assert len(victims) == 1

    def test_picks_longest_blocked(self):
        msgs = make_messages(3, blocked_since=[30, 10, 20])
        victims = DishaRecovery().victims(msgs, random.Random(0))
        assert victims[0].id == 1  # blocked since cycle 10 = longest wait

    def test_tie_breaks_by_id(self):
        msgs = make_messages(3, blocked_since=[10, 10, 10])
        victims = DishaRecovery().victims(msgs, random.Random(0))
        assert victims[0].id == 0

    def test_delivers_victim(self):
        assert DishaRecovery().delivers_victim


class TestAbortAll:
    def test_removes_everything(self):
        msgs = make_messages(4)
        victims = AbortAllRecovery().victims(msgs, random.Random(0))
        assert victims == msgs

    def test_does_not_deliver(self):
        assert not AbortAllRecovery().delivers_victim


class TestNoRecovery:
    def test_removes_nothing(self):
        msgs = make_messages(4)
        assert NoRecovery().victims(msgs, random.Random(0)) == []


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_recovery("disha"), DishaRecovery)
        assert isinstance(make_recovery("abort-all"), AbortAllRecovery)
        assert isinstance(make_recovery("none"), NoRecovery)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_recovery("magic")


class TestRemoveFromNetwork:
    def test_removal_releases_resources(self):
        from repro.network.channels import ChannelPool
        from repro.network.topology import KAryNCube

        topo = KAryNCube(4, 2)
        pool = ChannelPool(topo, num_vcs=1, buffer_depth=2)
        m = Message(1, src=0, dest=2, length=4, created_cycle=0)
        vc = pool.vcs_of_link(topo.link_between(0, 1))[0]
        m.acquire_vc(vc, 0)
        vc.occupancy = 2
        m.at_source = 2
        m.remove_from_network(100, delivered=True)
        assert vc.is_free
        assert vc.occupancy == 0
        assert m.status is MessageStatus.RECOVERED
        assert m.completed_cycle == 100
        assert m.ejected == m.length  # accounted as delivered via recovery

    def test_removal_as_abort(self):
        m = Message(1, src=0, dest=1, length=4, created_cycle=0)
        m.remove_from_network(5, delivered=False)
        assert m.status is MessageStatus.ABORTED

    def test_removal_releases_reception_channel(self):
        from repro.network.channels import ReceptionChannel

        m = Message(1, src=0, dest=1, length=4, created_cycle=0)
        rx = ReceptionChannel(1)
        m.acquire_reception(rx)
        m.remove_from_network(5, delivered=True)
        assert rx.is_free
