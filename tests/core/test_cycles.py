"""Unit tests for bounded simple-cycle enumeration."""

import pytest

from repro.core.cycles import CycleCount, count_simple_cycles, enumerate_simple_cycles


def test_empty_graph():
    assert count_simple_cycles({}).count == 0


def test_acyclic_graph():
    adj = {1: [2, 3], 2: [3], 3: []}
    result = count_simple_cycles(adj)
    assert result.count == 0
    assert not result.saturated


def test_single_cycle():
    adj = {1: [2], 2: [3], 3: [1]}
    assert count_simple_cycles(adj).count == 1


def test_self_loop_counts_as_cycle():
    assert count_simple_cycles({"v": ["v"]}).count == 1


def test_two_cycle():
    assert count_simple_cycles({1: [2], 2: [1]}).count == 1


def test_two_disjoint_cycles():
    adj = {1: [2], 2: [1], 3: [4], 4: [3]}
    assert count_simple_cycles(adj).count == 2


def test_figure3_structure_has_four_cycles():
    # ring 0..7 with chords 0->4 and 4->0
    adj = {i: [(i + 1) % 8] for i in range(8)}
    adj[0] = [1, 4]
    adj[4] = [5, 0]
    assert count_simple_cycles(adj).count == 4


def test_complete_digraph_k3():
    # K3 with all ordered arcs: 3 two-cycles + 2 three-cycles = 5
    adj = {0: [1, 2], 1: [0, 2], 2: [0, 1]}
    assert count_simple_cycles(adj).count == 5


def test_complete_digraph_k4():
    # known count: C(4,2)=6 2-cycles, 8 3-cycles, 6 4-cycles = 20
    adj = {i: [j for j in range(4) if j != i] for i in range(4)}
    assert count_simple_cycles(adj).count == 20


def test_limit_saturation():
    adj = {i: [j for j in range(6) if j != i] for i in range(6)}
    result = count_simple_cycles(adj, limit=10)
    assert result.saturated
    assert result.count >= 10


def test_limit_zero():
    result = count_simple_cycles({1: [1]}, limit=0)
    assert result.count == 0
    assert result.saturated


def test_exact_count_not_saturated():
    adj = {0: [1, 2], 1: [0, 2], 2: [0, 1]}
    result = count_simple_cycles(adj, limit=5)
    # cap reached exactly: conservatively flagged as saturated
    assert result.count == 5


def test_enumerate_returns_actual_cycles():
    adj = {1: [2], 2: [3], 3: [1]}
    cycles, saturated = enumerate_simple_cycles(adj)
    assert not saturated
    assert len(cycles) == 1
    assert set(cycles[0]) == {1, 2, 3}


def test_enumerate_self_loop():
    cycles, _ = enumerate_simple_cycles({"v": ["v"]})
    assert cycles == [["v"]]


def test_enumerate_matches_count():
    adj = {0: [1, 2], 1: [0, 2], 2: [0, 1]}
    cycles, _ = enumerate_simple_cycles(adj)
    assert len(cycles) == count_simple_cycles(adj).count
    # every enumerated cycle must be a real closed walk of distinct vertices
    for cyc in cycles:
        assert len(set(cyc)) == len(cyc)
        for u, v in zip(cyc, cyc[1:]):
            assert v in adj[u]
        assert cyc[0] in adj[cyc[-1]]


def test_cycles_only_within_sccs():
    # bridge between two cycles adds no cycles
    adj = {1: [2], 2: [1, 3], 3: [4], 4: [3]}
    assert count_simple_cycles(adj).count == 2


def test_cyclecount_int_conversion():
    assert int(CycleCount(7, False)) == 7


@pytest.mark.slow
def test_long_cycle_does_not_blow_recursion():
    n = 5_000
    adj = {i: [(i + 1) % n] for i in range(n)}
    assert count_simple_cycles(adj).count == 1
