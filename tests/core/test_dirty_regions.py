"""Dirty-vertex tracking, deque chains and the dependents worklist.

The dirty-region detector's reuse rule is: a weakly-connected region whose
vertex set is unchanged and contains no dirty vertex is structurally
unchanged.  These tests pin the marking side of that contract — every
:class:`IncrementalCWG` event hook must dirty (at least) the vertices whose
ownership or adjacency it touched — plus the O(1) deque chain semantics and
the rewritten reverse-ownership worklist in
:meth:`DeadlockDetector._dependents` against the naive fixed point it
replaced.
"""

import random
from collections import deque

from repro.core.detector import DeadlockDetector
from repro.core.cwg import ChannelWaitForGraph
from repro.core.gallery import figure2_cwg
from repro.core.incremental import IncrementalCWG


class TestDirtyMarking:
    def test_starts_clean(self):
        t = IncrementalCWG()
        assert t.consume_dirty() == set()

    def test_acquire_marks_vertex_and_old_tail(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        assert t.consume_dirty() == {"a"}
        t.on_acquire(1, "b")
        # "a" regains dirt: it just gained a solid arc to "b"
        assert t.consume_dirty() == {"a", "b"}

    def test_release_marks_vertex_and_new_head(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        t.on_acquire(1, "b")
        t.consume_dirty()
        t.on_release(1, "a")
        assert t.consume_dirty() == {"a", "b"}
        t.on_release(1, "b")
        assert t.consume_dirty() == {"b"}

    def test_block_marks_tail_once(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        t.consume_dirty()
        t.on_block(1, ["x", "y"])
        assert t.consume_dirty() == {"a"}
        # identical re-request: a graph no-op, must NOT dirty anything
        t.on_block(1, ["x", "y"])
        assert t.consume_dirty() == set()
        # changed target set: dirty again
        t.on_block(1, ["x"])
        assert t.consume_dirty() == {"a"}

    def test_block_without_chain_is_ignored(self):
        t = IncrementalCWG()
        t.on_block(99, ["x"])
        assert t.consume_dirty() == set()
        assert 99 not in t.requests

    def test_unblock_marks_tail(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        t.on_block(1, ["x"])
        t.consume_dirty()
        t.on_unblock(1)
        assert t.consume_dirty() == {"a"}
        # unblock with no outstanding request: nothing changed
        t.on_unblock(1)
        assert t.consume_dirty() == set()

    def test_done_marks_whole_chain(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        t.on_acquire(1, "b")
        t.on_acquire(1, "c")
        t.on_block(1, ["x"])
        t.consume_dirty()
        t.on_done(1)
        assert t.consume_dirty() == {"a", "b", "c"}
        assert t.owner == {}
        assert t.requests == {}

    def test_consume_resets(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        first = t.consume_dirty()
        assert first == {"a"}
        assert t.consume_dirty() == set()


class TestDequeChains:
    def test_chains_are_deques(self):
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        assert isinstance(t.chains[1], deque)

    def test_query_surface_unchanged(self):
        """Everything WaitGraphQueries touches: len, iterate, [0]/[-1]."""
        t = IncrementalCWG()
        t.on_acquire(1, "a")
        t.on_acquire(1, "b")
        t.on_acquire(1, "c")
        chain = t.chains[1]
        assert len(chain) == 3
        assert list(chain) == ["a", "b", "c"]
        assert chain[0] == "a" and chain[-1] == "c"
        t.on_block(1, ["x"])
        assert t.num_arcs == 3  # two solid + one dashed
        assert t.resources_of([1]) == {"a", "b", "c"}
        snap = t.snapshot()
        assert snap.chains[1] == ["a", "b", "c"]
        assert t.adjacency() == snap.adjacency()

    def test_release_order_enforced(self):
        import pytest

        from repro.errors import SimulationError

        t = IncrementalCWG()
        t.on_acquire(1, "a")
        t.on_acquire(1, "b")
        with pytest.raises(SimulationError):
            t.on_release(1, "b")  # head is "a"


# -- the dependents worklist vs the naive fixed point --------------------------------


def _naive_dependents(g, deadlock_set):
    """The pre-rewrite O(blocked²) fixed point, kept as the oracle."""
    dependents = set()
    changed = True
    while changed:
        changed = False
        for mid, targets in g.requests.items():
            if mid in deadlock_set or mid in dependents:
                continue
            owners = [g.owner.get(t) for t in targets]
            if all(
                o is not None and (o in deadlock_set or o in dependents)
                for o in owners
            ):
                dependents.add(mid)
                changed = True
    transients = set()
    blocking = deadlock_set | dependents
    for mid, targets in g.requests.items():
        if mid in deadlock_set or mid in dependents:
            continue
        owners = [g.owner.get(t) for t in targets]
        if any(o in blocking for o in owners if o is not None):
            transients.add(mid)
    return frozenset(dependents), frozenset(transients)


def test_dependents_figure2():
    g = figure2_cwg()
    deadlock_set = frozenset({1, 2, 3, 4})
    deps, transients = DeadlockDetector._dependents(g, deadlock_set)
    assert deps == frozenset({6})
    assert transients == frozenset()
    assert (deps, transients) == _naive_dependents(g, deadlock_set)


def test_dependents_chain_of_waiters():
    """m2 waits on m1's VC, m3 on m2's: both join via the worklist ripple."""
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a"])
    g.add_ownership_chain(2, ["b"])
    g.add_ownership_chain(3, ["c"])
    g.add_request(2, ["a"])
    g.add_request(3, ["b"])
    deps, transients = DeadlockDetector._dependents(g, frozenset({1}))
    assert deps == frozenset({2, 3})
    assert transients == frozenset()


def test_dependents_free_alternative_is_transient_at_most():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a"])
    g.add_ownership_chain(2, ["b"])
    g.add_request(2, ["a", "free"])  # one alternative is unowned
    deps, transients = DeadlockDetector._dependents(g, frozenset({1}))
    assert deps == frozenset()
    assert transients == frozenset({2})


def test_dependents_self_wait_never_joins():
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["a"])
    g.add_ownership_chain(2, ["b", "c"])
    g.add_request(2, ["a", "b"])  # waits on the deadlock AND on itself
    deps, transients = DeadlockDetector._dependents(g, frozenset({1}))
    assert deps == frozenset()
    assert transients == frozenset({2})


def test_dependents_matches_naive_randomized():
    rng = random.Random(123)
    for _ in range(200):
        g = ChannelWaitForGraph()
        n_msgs = rng.randint(2, 12)
        vertex = 0
        for m in range(n_msgs):
            chain = list(range(vertex, vertex + rng.randint(1, 3)))
            vertex += len(chain)
            g.add_ownership_chain(m, chain)
        for m in range(n_msgs):
            if rng.random() < 0.7:
                # wait on a mix of owned and free vertices
                targets = rng.sample(range(vertex + 4), rng.randint(1, 3))
                g.add_request(m, targets)
        deadlock_set = frozenset(
            m for m in range(n_msgs) if rng.random() < 0.3
        )
        assert DeadlockDetector._dependents(
            g, deadlock_set
        ) == _naive_dependents(g, deadlock_set), (
            dict(g.chains),
            dict(g.requests),
            deadlock_set,
        )
