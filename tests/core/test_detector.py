"""Unit tests for the deadlock detector (CWG building + event extraction).

A stub simulator supplies hand-crafted network state, so the detector's
classification logic is exercised in isolation from the flit engine.
"""

from repro.config import tiny_default
from repro.core.detector import DeadlockDetector
from repro.network.simulator import NetworkSimulator


def make_sim(**overrides):
    cfg = tiny_default(**overrides)
    return NetworkSimulator(cfg)


def force_cycle_deadlock(sim):
    """Manually wedge four messages into a full dependency ring.

    Builds the Figure-1 situation inside a real simulator: message i owns
    the ring VC i and its next (and only, under minimal routing) hop is the
    VC message (i+1) owns — a knot of all four ring VCs.
    """
    from repro.network.message import Message

    topo, pool = sim.topology, sim.pool
    # a 4-node ring in dimension 0, row 0: nodes 0,1,2,3
    ring_nodes = [0, 1, 2, 3]
    links = [
        topo.link_between(ring_nodes[i], ring_nodes[(i + 1) % 4]) for i in range(4)
    ]
    vcs = [pool.vcs_of_link(l)[0] for l in links]
    messages = []
    for i in range(4):
        # message i is at node i+1 heading to node i+2: exactly one minimal
        # direction, whose single VC is owned by message i+1
        src = ring_nodes[i]
        dest = ring_nodes[(i + 2) % 4]
        m = Message(1000 + i, src, dest, sim.config.message_length, 0)
        m.acquire_vc(vcs[i], 0)
        vcs[i].occupancy = 1  # header sits in the owned VC's buffer
        m.at_source = m.length - 1
        m.blocked_since = 0
        sim.active[m.id] = m
        sim._live[m.id] = m
        messages.append(m)
    return messages, vcs


class TestBuildCWG:
    def test_empty_network_empty_graph(self):
        sim = make_sim()
        g = DeadlockDetector.build_cwg(sim)
        assert g.num_vertices == 0

    def test_owned_chain_appears(self):
        sim = make_sim()
        msgs, vcs = force_cycle_deadlock(sim)
        g = DeadlockDetector.build_cwg(sim)
        for m, vc in zip(msgs, vcs):
            assert g.owner[vc.index] == m.id

    def test_blocked_messages_have_requests(self):
        sim = make_sim(routing="dor")
        msgs, vcs = force_cycle_deadlock(sim)
        g = DeadlockDetector.build_cwg(sim)
        blocked = set(g.blocked_messages())
        assert {m.id for m in msgs} <= blocked


class TestDetect:
    def test_wedged_ring_is_detected_as_deadlock(self):
        sim = make_sim(routing="dor", recovery="none")
        msgs, vcs = force_cycle_deadlock(sim)
        record = sim.detector.detect(sim)
        assert record.has_deadlock
        event = record.events[0]
        assert event.deadlock_set == {1000, 1001, 1002, 1003}
        assert event.knot_cycle_density == 1
        assert event.classification == "single-cycle"

    def test_no_deadlock_in_fresh_network(self):
        sim = make_sim()
        record = sim.detector.detect(sim)
        assert not record.has_deadlock
        assert record.blocked_messages == 0
        assert record.cycle_count is not None
        assert record.cycle_count.count == 0

    def test_detection_record_accumulates(self):
        sim = make_sim()
        sim.detector.detect(sim)
        sim.detector.detect(sim)
        assert len(sim.detector.records) == 2

    def test_cycle_census_disabled(self):
        sim = make_sim(count_cycles=False)
        record = sim.detector.detect(sim)
        assert record.cycle_count is None

    def test_blocked_durations_recorded_when_enabled(self):
        sim = make_sim(routing="dor", record_blocked_durations=True)
        force_cycle_deadlock(sim)
        sim.cycle = 120
        record = sim.detector.detect(sim)
        assert record.blocked_durations
        for mid, duration, in_deadlock in record.blocked_durations:
            assert duration == 120  # blocked_since == 0
            assert in_deadlock


class TestDependentClassification:
    def test_dependent_vs_transient(self):
        from repro.core.cwg import ChannelWaitForGraph

        g = ChannelWaitForGraph()
        # knot between m1 and m2
        g.add_ownership_chain(1, ["a"])
        g.add_ownership_chain(2, ["b"])
        g.add_request(1, ["b"])
        g.add_request(2, ["a"])
        # m3: all requests owned by the deadlock set -> dependent
        g.add_ownership_chain(3, ["c"])
        g.add_request(3, ["a"])
        # m4: depends on dependent m3 -> transitively dependent
        g.add_ownership_chain(4, ["d"])
        g.add_request(4, ["c"])
        # m5: one alternative inside, one free -> transient
        g.add_ownership_chain(5, ["e"])
        g.add_request(5, ["b", "free-vc"])
        deps, transients = DeadlockDetector._dependents(g, frozenset({1, 2}))
        assert deps == {3, 4}
        assert transients == {5}

    def test_no_dependents_without_blocked_messages(self):
        from repro.core.cwg import ChannelWaitForGraph

        g = ChannelWaitForGraph()
        g.add_ownership_chain(1, ["a"])
        deps, transients = DeadlockDetector._dependents(g, frozenset({1}))
        assert deps == frozenset() and transients == frozenset()
