"""The paper's Section 2 worked examples, verified end to end.

These tests pin the exact characteristics the paper reports for its four
illustrative figures: knot membership, deadlock set, resource set, knot
cycle density, classification and dependent messages.
"""

from repro.core.cycles import count_simple_cycles
from repro.core.gallery import figure1_cwg, figure2_cwg, figure3_cwg, figure4_cwg
from repro.core.knots import find_knots, knot_of_vertex


def knot_density(g, knot):
    adjacency = g.adjacency()
    sub = {v: [w for w in adjacency[v] if w in knot] for v in knot}
    return count_simple_cycles(sub).count


class TestFigure1:
    """Single-cycle deadlock under DOR with one VC."""

    def test_single_knot_of_eight_channels(self):
        g = figure1_cwg()
        knots = find_knots(g.adjacency())
        assert len(knots) == 1
        assert knots[0] == frozenset(f"c{i}" for i in range(8))

    def test_deadlock_set_is_three_messages(self):
        g = figure1_cwg()
        (knot,) = find_knots(g.adjacency())
        assert g.messages_owning(knot) == {1, 3, 5}

    def test_resource_set_is_eight_channels(self):
        g = figure1_cwg()
        (knot,) = find_knots(g.adjacency())
        resources = g.resources_of(g.messages_owning(knot))
        assert len(resources) == 8

    def test_density_one_single_cycle(self):
        g = figure1_cwg()
        (knot,) = find_knots(g.adjacency())
        assert knot_density(g, knot) == 1

    def test_unblocked_messages_excluded(self):
        """m2 and m4 hold channels but are not in the deadlock set."""
        g = figure1_cwg()
        (knot,) = find_knots(g.adjacency())
        deadlocked = g.messages_owning(knot)
        assert 2 not in deadlocked and 4 not in deadlocked

    def test_dor_fan_out_is_one(self):
        g = figure1_cwg()
        for m in g.blocked_messages():
            assert g.fan_out(m) == 1

    def test_knot_definition_oracle(self):
        """Direct reachability definition agrees with the SCC algorithm."""
        g = figure1_cwg()
        adjacency = g.adjacency()
        assert knot_of_vertex(adjacency, "c0") == frozenset(
            f"c{i}" for i in range(8)
        )
        assert knot_of_vertex(adjacency, "c8") is None


class TestFigure2:
    """Single-cycle deadlock after adaptivity exhaustion + dependent msg."""

    def test_knot_is_four_channels(self):
        g = figure2_cwg()
        (knot,) = find_knots(g.adjacency())
        assert knot == frozenset({"c1", "c3", "c5", "c7"})

    def test_deadlock_set_is_four_messages(self):
        g = figure2_cwg()
        (knot,) = find_knots(g.adjacency())
        assert g.messages_owning(knot) == {1, 2, 3, 4}

    def test_resource_set_is_eight_channels(self):
        g = figure2_cwg()
        (knot,) = find_knots(g.adjacency())
        assert len(g.resources_of(g.messages_owning(knot))) == 8

    def test_density_one(self):
        g = figure2_cwg()
        (knot,) = find_knots(g.adjacency())
        assert knot_density(g, knot) == 1

    def test_dependent_message_not_in_deadlock_set(self):
        """m6 waits on the deadlock but owns no knot vertex."""
        g = figure2_cwg()
        (knot,) = find_knots(g.adjacency())
        deadlocked = g.messages_owning(knot)
        assert 6 not in deadlocked
        # ... yet every channel m6 waits for is owned by the deadlock set
        assert all(g.owner[t] in deadlocked for t in g.requests[6])

    def test_dependent_channels_reach_knot_but_not_vice_versa(self):
        g = figure2_cwg()
        adjacency = g.adjacency()
        (knot,) = find_knots(adjacency)
        # c9 -> c4 -> c5 reaches the knot
        assert "c9" not in knot
        # but nothing in the knot reaches c9
        reachable = set()
        frontier = list(knot)
        while frontier:
            v = frontier.pop()
            for w in adjacency[v]:
                if w not in reachable:
                    reachable.add(w)
                    frontier.append(w)
        assert "c9" not in reachable


class TestFigure3:
    """Multi-cycle deadlock: 8 messages, 16 VCs, knot of 8, density 4."""

    def test_knot_has_eight_vertices(self):
        g = figure3_cwg()
        (knot,) = find_knots(g.adjacency())
        assert len(knot) == 8
        assert knot == frozenset(f"v{i}" for i in range(8))

    def test_deadlock_set_is_eight_messages(self):
        g = figure3_cwg()
        (knot,) = find_knots(g.adjacency())
        assert g.messages_owning(knot) == set(range(8))

    def test_resource_set_is_sixteen_vcs(self):
        g = figure3_cwg()
        (knot,) = find_knots(g.adjacency())
        assert len(g.resources_of(g.messages_owning(knot))) == 16

    def test_knot_cycle_density_is_four(self):
        g = figure3_cwg()
        (knot,) = find_knots(g.adjacency())
        assert knot_density(g, knot) == 4

    def test_classified_multi_cycle(self):
        g = figure3_cwg()
        (knot,) = find_knots(g.adjacency())
        assert knot_density(g, knot) > 1


class TestFigure4:
    """Cyclic non-deadlock: cycles exist, but an escape prevents a knot."""

    def test_no_knot(self):
        assert find_knots(figure4_cwg().adjacency()) == []

    def test_cycles_still_exist(self):
        count = count_simple_cycles(figure4_cwg().adjacency()).count
        assert count >= 2

    def test_escape_vertex_reachable_but_not_reciprocal(self):
        g = figure4_cwg()
        adjacency = g.adjacency()
        # e4 is reachable from v4 ...
        assert "e4" in adjacency["v4"]
        # ... but reaches nothing, so no knot can contain v4
        assert adjacency["e4"] == []
        assert knot_of_vertex(adjacency, "v4") is None

    def test_same_population_as_figure3(self):
        """Only m4's alternatives changed; the cycle structure remains."""
        g3, g4 = figure3_cwg(), figure4_cwg()
        assert len(g4.blocked_messages()) == len(g3.blocked_messages())
