"""Unit tests for SCC and knot detection."""

from repro.core.knots import (
    find_knots,
    knot_of_vertex,
    strongly_connected_components,
)


def sccs_as_sets(adj):
    return {frozenset(c) for c in strongly_connected_components(adj)}


class TestSCC:
    def test_empty_graph(self):
        assert strongly_connected_components({}) == []

    def test_single_vertex(self):
        assert sccs_as_sets({"a": []}) == {frozenset({"a"})}

    def test_two_cycle(self):
        adj = {"a": ["b"], "b": ["a"]}
        assert sccs_as_sets(adj) == {frozenset({"a", "b"})}

    def test_chain_is_all_singletons(self):
        adj = {1: [2], 2: [3], 3: []}
        assert sccs_as_sets(adj) == {frozenset({1}), frozenset({2}), frozenset({3})}

    def test_two_separate_cycles(self):
        adj = {1: [2], 2: [1], 3: [4], 4: [3]}
        assert sccs_as_sets(adj) == {frozenset({1, 2}), frozenset({3, 4})}

    def test_cycle_with_tail(self):
        adj = {0: [1], 1: [2], 2: [0], 3: [0]}
        assert sccs_as_sets(adj) == {frozenset({0, 1, 2}), frozenset({3})}

    def test_emission_order_is_reverse_topological(self):
        # successor components must be emitted before predecessors
        adj = {"a": ["b"], "b": ["c"], "c": []}
        order = strongly_connected_components(adj)
        assert order.index(["c"]) < order.index(["b"]) < order.index(["a"])

    def test_deep_chain_no_recursion_error(self):
        n = 50_000
        adj = {i: [i + 1] for i in range(n)}
        adj[n] = []
        assert len(strongly_connected_components(adj)) == n + 1

    def test_successors_of_unlisted_vertex(self):
        # targets that never appear as keys must still be traversed
        adj = {"a": ["b"]}
        comps = sccs_as_sets(adj)
        assert frozenset({"a"}) in comps  # 'b' has no key; reachable anyway


class TestKnots:
    def test_simple_cycle_is_knot(self):
        adj = {1: [2], 2: [3], 3: [1]}
        assert find_knots(adj) == [frozenset({1, 2, 3})]

    def test_cycle_with_escape_is_not_knot(self):
        # Figure 4 pattern: the cycle can reach an exit vertex
        adj = {1: [2], 2: [3], 3: [1, "exit"], "exit": []}
        assert find_knots(adj) == []

    def test_self_loop_is_knot(self):
        adj = {"v": ["v"]}
        assert find_knots(adj) == [frozenset({"v"})]

    def test_isolated_vertex_is_not_knot(self):
        assert find_knots({"v": []}) == []

    def test_sink_vertex_of_chain_is_not_knot(self):
        assert find_knots({1: [2], 2: []}) == []

    def test_two_disjoint_knots(self):
        adj = {1: [2], 2: [1], 3: [4], 4: [3]}
        assert set(find_knots(adj)) == {frozenset({1, 2}), frozenset({3, 4})}

    def test_knot_plus_feeding_cycle(self):
        # cycle {1,2} feeds knot {3,4}: only {3,4} is a knot
        adj = {1: [2], 2: [1, 3], 3: [4], 4: [3]}
        assert find_knots(adj) == [frozenset({3, 4})]

    def test_knot_with_incoming_tail(self):
        adj = {0: [1], 1: [2], 2: [1]}
        assert find_knots(adj) == [frozenset({1, 2})]

    def test_whole_graph_strongly_connected(self):
        n = 10
        adj = {i: [(i + 1) % n] for i in range(n)}
        assert find_knots(adj) == [frozenset(range(n))]

    def test_multi_cycle_knot(self):
        # ring of 4 plus both chords: strongly connected, sink => knot
        adj = {0: [1, 2], 1: [2], 2: [3, 0], 3: [0]}
        assert find_knots(adj) == [frozenset({0, 1, 2, 3})]


class TestKnotOfVertex:
    def test_agrees_with_find_knots_on_member(self):
        adj = {1: [2], 2: [3], 3: [1]}
        assert knot_of_vertex(adj, 1) == frozenset({1, 2, 3})

    def test_none_for_vertex_outside_knot(self):
        adj = {0: [1], 1: [2], 2: [1]}
        assert knot_of_vertex(adj, 0) is None
        assert knot_of_vertex(adj, 1) == frozenset({1, 2})

    def test_none_for_escape_cycle(self):
        adj = {1: [2], 2: [1, 3], 3: []}
        assert knot_of_vertex(adj, 1) is None

    def test_none_for_plain_vertex(self):
        assert knot_of_vertex({"a": []}, "a") is None

    def test_self_loop(self):
        assert knot_of_vertex({"a": ["a"]}, "a") == frozenset({"a"})
