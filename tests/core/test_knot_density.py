"""Tests for the detector's knot-density shortcuts."""

from repro.core.cycles import count_simple_cycles
from repro.core.detector import DeadlockDetector


def ring(n):
    return {i: [(i + 1) % n] for i in range(n)}


class TestDensityShortcuts:
    def test_pure_ring_is_exactly_one_without_enumeration(self):
        det = DeadlockDetector(knot_density_cap=0)  # enumeration would cap
        result = det._knot_density(ring(50))
        assert result.count == 1
        assert not result.saturated

    def test_small_multi_cycle_uses_exact_enumeration(self):
        det = DeadlockDetector()
        sub = ring(8)
        sub[0] = [1, 4]
        sub[4] = [5, 0]
        result = det._knot_density(sub)
        assert result.count == 4  # the Figure-3 structure, exact
        assert not result.saturated

    def test_huge_knot_reports_cyclomatic_lower_bound(self):
        det = DeadlockDetector(knot_size_enumeration_limit=10)
        sub = ring(40)
        sub[0] = [1, 20]
        sub[20] = [21, 0]
        result = det._knot_density(sub)
        assert result.saturated
        # E - V + 1 = 42 - 40 + 1 = 3 independent cycles
        assert result.count == 3
        # a lower bound on the true simple-cycle count
        assert result.count <= count_simple_cycles(sub).count

    def test_shortcut_agrees_with_enumeration_on_rings(self):
        det = DeadlockDetector()
        for n in (2, 3, 7, 19):
            shortcut = det._knot_density(ring(n))
            exact = count_simple_cycles(ring(n))
            assert shortcut.count == exact.count == 1

    def test_classification_boundary(self):
        """Density 1 => single-cycle; shortcut must not misclassify."""
        det = DeadlockDetector()
        sub = ring(5)
        assert det._knot_density(sub).count == 1
        sub[2] = [3, 0]  # one chord: now multi-cycle
        assert det._knot_density(sub).count > 1
