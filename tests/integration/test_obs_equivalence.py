"""A/B equivalence: observability is pure observation.

``obs_level`` attaches a metrics registry, per-phase timers and (at level
2) a cycle-level trace ring buffer to the engine and detector.  None of it
may perturb the simulation: no RNG draws, no state mutation.  With the
same seed, a fully-instrumented run must produce the **same**
:class:`RunResult` fields, the **same** deadlock-event stream, and the
**same** golden digests as an uninstrumented one.

Cases span the paths instrumentation touches: both engine paths (the
profiled ``step()`` is a separate branch from the plain one), both CWG
maintenance modes, the cached detector pipeline (per-region ``prof.add``
accounting), recovery (the ``engine/recover`` timer and ``recovery``
instants), and a deliberately tiny trace capacity so ring-buffer wraparound
happens mid-run.
"""

import dataclasses

import pytest

from repro.config import tiny_default
from repro.network.simulator import NetworkSimulator
from tests.golden.test_golden_traces import SCENARIOS, canonical_trace, digest_of


def _result_fields(result):
    fields = dataclasses.asdict(result)
    fields.pop("config")  # differs by construction (the flag itself)
    return fields


def _event_keys(sim):
    return [
        (
            e.cycle,
            sorted(e.deadlock_set),
            sorted(e.resource_set, key=str),
            sorted(e.knot, key=str),
            e.knot_cycle_density,
            e.density_saturated,
            sorted(e.dependent),
            sorted(e.transient_dependent),
        )
        for e in sim.detector.events
    ]


def _run_pair(obs_level=2, **overrides):
    params = dict(measure_cycles=1200, warmup_cycles=100, seed=7)
    params.update(overrides)
    cfg = tiny_default(**params)
    out = {}
    for level in (obs_level, 0):
        sim = NetworkSimulator(cfg.replace(obs_level=level))
        result = sim.run()
        out[level] = (sim, result)
    return out, obs_level


def _assert_identical(pair_and_level):
    pair, obs_level = pair_and_level
    obs_sim, obs_result = pair[obs_level]
    plain_sim, plain_result = pair[0]
    assert _result_fields(obs_result) == _result_fields(plain_result)
    assert _event_keys(obs_sim) == _event_keys(plain_sim)
    assert obs_sim.detector.records == plain_sim.detector.records
    # the instrumented run actually observed something
    assert obs_sim.obs.enabled
    assert plain_result.delivered > 0
    return obs_sim


CASES = {
    "dor_saturated": dict(routing="dor", load=1.0, num_vcs=1),
    "tfar_saturated": dict(routing="tfar", load=1.0, num_vcs=1),
    "cached_detector": dict(
        routing="dor",
        load=1.0,
        num_vcs=1,
        cwg_maintenance="incremental",
        count_cycles=True,
    ),
    "legacy_engine": dict(routing="tfar", load=1.0, engine_fast_path=False),
    "unrecovered_knots": dict(
        routing="dor", load=0.95, num_vcs=1, recovery="none"
    ),
    "metrics_only_level1": dict(
        routing="dor", load=1.0, num_vcs=1, obs_level=1
    ),
    "tiny_trace_ring_wraps": dict(
        routing="dor", load=1.0, num_vcs=1, obs_trace_capacity=64
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_obs_bit_identical(name):
    overrides = dict(CASES[name])
    obs_level = overrides.pop("obs_level", 2)
    obs_sim = _assert_identical(_run_pair(obs_level=obs_level, **overrides))
    # sanity on the observed side: the snapshot is well-formed and non-empty
    snap = obs_sim.obs.snapshot()
    assert snap["level"] == obs_level
    assert snap["phases"]["engine/allocate"]["calls"] > 0
    if obs_level >= 2:
        assert snap["trace"]["events"] > 0


def test_obs_ring_wraparound_actually_happened():
    (pair, level) = _run_pair(
        routing="dor", load=1.0, num_vcs=1, obs_trace_capacity=64
    )
    tracer = pair[level][0].obs.tracer
    assert tracer.dropped > 0, "capacity 64 should wrap on a 1300-cycle run"
    assert len(tracer) == 64


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_obs_preserves_golden_digests(name):
    """The committed golden digests must be reproduced under full tracing."""
    cfg = SCENARIOS[name].replace(obs_level=2)
    sim = NetworkSimulator(cfg)
    result = sim.run()
    plain = NetworkSimulator(SCENARIOS[name])
    plain_result = plain.run()
    assert digest_of(canonical_trace(sim, result)) == digest_of(
        canonical_trace(plain, plain_result)
    )
