"""Kitchen-sink interaction tests: every optional feature at once.

Individual features are tested in isolation elsewhere; these runs combine
them (hybrid lengths + hybrid traffic + multi-rx + pipeline delay +
incremental CWG + flit-by-flit teardown + arbitration policies) with
per-cycle invariant checking, because feature interactions are where state
machines break.
"""

import pytest

from repro.config import SimulationConfig
from repro.core.detector import DeadlockDetector
from repro.network.simulator import NetworkSimulator


def kitchen_sink_config(**overrides):
    params = dict(
        k=4,
        n=2,
        routing="dor",
        num_vcs=1,
        buffer_depth=2,
        message_length=8,
        length_mix=((2, 0.5), (12, 0.5)),
        traffic="hybrid",
        traffic_mix=(("uniform", 0.6), ("hot-spot", 0.2), ("transpose", 0.2)),
        load=1.0,
        rx_channels=2,
        router_delay=1,
        arbitration="round-robin",
        cwg_maintenance="incremental",
        recovery="disha",
        recovery_teardown="flit-by-flit",
        detection_interval=25,
        warmup_cycles=0,
        measure_cycles=1500,
        max_queued_per_node=8,
        check_invariants=True,
        seed=5,
    )
    params.update(overrides)
    return SimulationConfig(**params)


def test_everything_at_once_stays_consistent():
    sim = NetworkSimulator(kitchen_sink_config())
    result = sim.run()
    assert result.delivered > 0
    sim.tracker.assert_consistent()
    # incremental graph still mirrors the rebuild under full feature load
    inc = sim.tracker.snapshot()
    reb = DeadlockDetector.build_cwg(sim)
    assert inc.chains == reb.chains
    assert inc.requests == reb.requests


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_everything_at_once_multiple_seeds(seed):
    sim = NetworkSimulator(kitchen_sink_config(seed=seed, measure_cycles=800))
    result = sim.run()
    assert result.delivered > 0
    # conservation holds for every live message
    for m in sim.active.values():
        m.check_conservation()


def test_kitchen_sink_deterministic():
    a = NetworkSimulator(kitchen_sink_config(measure_cycles=600)).run()
    b = NetworkSimulator(kitchen_sink_config(measure_cycles=600)).run()
    assert (a.delivered, a.deadlocks, a.recovered, a.latency_sum) == (
        b.delivered, b.deadlocks, b.recovered, b.latency_sum
    )


def test_kitchen_sink_with_timeout_detection():
    cfg = kitchen_sink_config(
        detection_mode="timeout", timeout_threshold=150, measure_cycles=1200
    )
    sim = NetworkSimulator(cfg)
    result = sim.run()
    assert result.delivered > 0
    assert result.unnecessary_recoveries <= result.timeout_recoveries


def test_kitchen_sink_with_faults():
    cfg = kitchen_sink_config(
        traffic="uniform",
        traffic_mix=(),
        failed_links=((0, 1), (5, 6)),
        routing="tfar",
        measure_cycles=1000,
    )
    result = NetworkSimulator(cfg).run()
    assert result.delivered > 0
