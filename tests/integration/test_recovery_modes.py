"""Tests for flit-by-flit teardown and timeout-heuristic recovery."""

import pytest

from repro.config import tiny_default
from repro.errors import ConfigurationError
from repro.network.message import Message, MessageStatus
from repro.network.simulator import NetworkSimulator


class TestTeardownMechanics:
    def test_begin_teardown_discards_source_flits(self):
        m = Message(1, 0, 1, 8, created_cycle=0)
        m.begin_teardown()
        assert m.at_source == 0
        assert m.ejected == 8
        assert m.teardown_complete
        m.check_conservation()

    def test_teardown_step_drains_head(self):
        from repro.network.channels import ChannelPool
        from repro.network.topology import KAryNCube

        topo = KAryNCube(4, 2)
        pool = ChannelPool(topo, 1, 4)
        m = Message(1, 0, 2, 4, created_cycle=0)
        vc = pool.vcs_of_link(topo.link_between(0, 1))[0]
        m.acquire_vc(vc, 0)
        vc.occupancy = 4
        m.at_source = 0
        m.begin_teardown()
        drained = 0
        while not m.teardown_complete:
            drained += m.teardown_step()
        assert drained == 4
        m.check_conservation()

    def test_recovering_message_not_blocked(self):
        m = Message(1, 0, 1, 4, created_cycle=0)
        m.begin_teardown()
        assert not m.needs_next_vc
        assert not m.needs_reception


class TestFlitByFlitRecovery:
    def test_end_to_end_teardown(self):
        cfg = tiny_default(
            routing="dor",
            num_vcs=1,
            load=1.0,
            recovery_teardown="flit-by-flit",
            measure_cycles=3000,
            check_invariants=True,
            seed=3,
        )
        sim = NetworkSimulator(cfg)
        result = sim.run()
        assert result.deadlocks > 0
        assert result.recovered > 0
        # teardown completions never exceed detected deadlocks
        assert result.recovered <= result.deadlocks + 5

    def test_victims_release_resources_progressively(self):
        """After teardown completes no resources remain owned by victims."""
        cfg = tiny_default(
            routing="dor", num_vcs=1, load=1.0,
            recovery_teardown="flit-by-flit", measure_cycles=2000, seed=3,
        )
        sim = NetworkSimulator(cfg)
        sim.run()
        for vc in sim.pool.vcs:
            if vc.owner is not None:
                assert vc.owner in sim.active
                assert sim.active[vc.owner].status is MessageStatus.ACTIVE

    def test_comparable_to_instant_recovery(self):
        results = {}
        for mode in ("instant", "flit-by-flit"):
            cfg = tiny_default(
                routing="dor", num_vcs=1, load=1.0,
                recovery_teardown=mode, measure_cycles=2500, seed=3,
            )
            results[mode] = NetworkSimulator(cfg).run()
        # both keep the network flowing past saturation
        assert results["flit-by-flit"].delivered > 0
        assert results["instant"].delivered > 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_default(recovery_teardown="magic").validate()


class TestTimeoutRecovery:
    def test_timeout_mode_recovers_congested_messages(self):
        cfg = tiny_default(
            routing="tfar",
            num_vcs=1,
            load=1.2,
            detection_mode="timeout",
            timeout_threshold=100,
            measure_cycles=3000,
            seed=1,
        )
        sim = NetworkSimulator(cfg)
        result = sim.run()
        assert result.timeout_recoveries > 0
        # the heuristic fires on congestion: most recoveries are unnecessary
        # whenever true deadlocks are rarer than timeouts
        assert result.unnecessary_recoveries <= result.timeout_recoveries

    def test_timeout_mode_false_positives_vs_truth(self):
        """TFAR rarely truly deadlocks, so an aggressive timeout mostly
        recovers messages that were merely congested."""
        cfg = tiny_default(
            routing="tfar",
            num_vcs=2,  # provably nearly deadlock-free in practice
            load=1.2,
            detection_mode="timeout",
            timeout_threshold=75,
            measure_cycles=3000,
            seed=2,
        )
        result = NetworkSimulator(cfg).run()
        if result.timeout_recoveries:
            assert result.unnecessary_recoveries == result.timeout_recoveries

    def test_large_threshold_never_fires_below_saturation(self):
        cfg = tiny_default(
            routing="dor",
            num_vcs=2,
            load=0.2,
            detection_mode="timeout",
            timeout_threshold=10_000,
            measure_cycles=1500,
        )
        result = NetworkSimulator(cfg).run()
        assert result.timeout_recoveries == 0

    def test_knot_stats_still_collected_in_timeout_mode(self):
        cfg = tiny_default(
            routing="dor", num_vcs=1, load=1.0,
            detection_mode="timeout", timeout_threshold=200,
            measure_cycles=2500, seed=3,
        )
        sim = NetworkSimulator(cfg)
        result = sim.run()
        # true detection ran alongside: records exist with ground truth
        assert sim.detector.records
        assert result.deadlocks >= 0  # knots counted even though not used

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_default(detection_mode="psychic").validate()
        with pytest.raises(ConfigurationError):
            tiny_default(timeout_threshold=0).validate()
