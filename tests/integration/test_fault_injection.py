"""Failure injection: faulty links, adaptivity exhaustion, wedged networks."""

import pytest

from repro.config import SimulationConfig, tiny_default
from repro.errors import TopologyError
from repro.network.simulator import NetworkSimulator


def run(**overrides):
    cfg = tiny_default(**overrides)
    sim = NetworkSimulator(cfg)
    return sim, sim.run()


class TestFaultyLinks:
    def test_network_survives_failed_links(self):
        _, result = run(
            failed_links=((0, 1), (5, 6)),
            routing="tfar",
            load=0.3,
            measure_cycles=1500,
            check_invariants=True,
        )
        assert result.delivered > 0

    def test_routing_never_uses_failed_link(self):
        cfg = tiny_default(
            failed_links=((0, 1),), routing="tfar", load=0.5,
            measure_cycles=800, warmup_cycles=0,
        )
        sim = NetworkSimulator(cfg)
        assert not sim.topology.has_link(0, 1)
        sim.run()
        # no VC can exist on a removed physical channel
        for vc in sim.pool.vcs:
            assert (vc.link.src, vc.link.dst) != (0, 1)

    def test_disconnection_rejected(self):
        # sever node 0 completely in a 2-node ring
        with pytest.raises(TopologyError):
            NetworkSimulator(
                SimulationConfig(
                    k=2, n=1, failed_links=((0, 1), (1, 0)),
                    message_length=2,
                )
            )

    def test_faults_reduce_adaptivity_and_raise_blocking(self):
        """Removing links leaves fewer alternatives: blocking should not
        drop when many links fail (the Figure-2 exhaustion mechanism)."""
        base = dict(routing="tfar", num_vcs=1, load=0.8, measure_cycles=2000,
                    seed=5)
        _, healthy = run(**base)
        _, faulty = run(
            failed_links=((0, 1), (1, 2), (5, 6), (10, 11)), **base
        )
        assert (
            faulty.avg_blocked_fraction
            >= healthy.avg_blocked_fraction - 0.10
        )


class TestWedgedNetwork:
    def test_unrecovered_deadlock_persists_forever(self):
        """With recovery disabled, a knotted set of messages never moves."""
        cfg = tiny_default(
            routing="dor", num_vcs=1, load=1.0, recovery="none",
            measure_cycles=3000, seed=3,
        )
        sim = NetworkSimulator(cfg)
        sim.run()
        knotted = [r for r in sim.detector.records if r.events]
        if not knotted:
            pytest.skip("no deadlock formed with this seed")
        first = knotted[0]
        # every later detection must still contain the same wedged resources
        wedged = set().union(*(e.knot for e in first.events))
        later = [r for r in sim.detector.records if r.cycle > first.cycle]
        assert later
        for record in later[-3:]:
            current = set()
            for e in record.events:
                current |= e.knot
            assert wedged <= current

    def test_recovered_network_does_not_rewedge_on_same_messages(self):
        cfg = tiny_default(
            routing="dor", num_vcs=1, load=1.0, recovery="disha",
            measure_cycles=3000, seed=3,
        )
        sim = NetworkSimulator(cfg)
        result = sim.run()
        # each detected knot was broken: victims equal deadlock count
        assert result.recovered == result.deadlocks
