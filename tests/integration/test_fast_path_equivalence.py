"""A/B/C/D equivalence: all four engine cores are bit-identical.

``engine_fast_path`` restructures the engine's hot loops around
incrementally-maintained activity state (routable flags, a stalled-message
wake index, immobile-worm skipping, detection short-circuiting on the
blocked epoch); ``engine_vectorized`` additionally rebuilds the hot phases
over structure-of-arrays mirrors, batch candidate tables and an inline
arbitration RNG stream.  All of it is pure optimization: with the same
seed, the legacy, fast-path and vectorized engines must produce the
**same** :class:`RunResult` fields and the **same** sequence of
:class:`DeadlockEvent`\\ s.

Every case runs the identical configuration three times — legacy, fast
path, vectorized — and compares everything except the config object
itself.  Cases cover the
matrix the engine branches on: DOR/TFAR (plus the misrouting variant whose
candidate sets change as a blocked message's tail drains), uni- and
bidirectional tori, 1–4 VCs, wormhole and virtual cut-through switching,
knot and timeout detection, both CWG maintenance modes, both recovery
teardown styles, router pipeline delay, multiple reception channels, and
all three arbitration policies.

Several cases run with ``check_invariants=True``: the simulator then also
asserts every cycle that the maintained flags (``routable``, ``stalled``,
``immobile``, the waiting set) agree with the predicates they cache.
"""

import dataclasses

import pytest

from repro.config import tiny_default
from repro.network.simulator import NetworkSimulator


def _result_fields(result):
    fields = dataclasses.asdict(result)
    fields.pop("config")  # differs by construction (the flag itself)
    return fields


def _event_keys(sim):
    return [
        (
            e.cycle,
            sorted(e.deadlock_set),
            sorted(e.resource_set, key=str),
            sorted(e.knot, key=str),
            e.knot_cycle_density,
            e.density_saturated,
            sorted(e.dependent),
            sorted(e.transient_dependent),
        )
        for e in sim.detector.events
    ]


ENGINES = {
    "legacy": dict(engine_fast_path=False, engine_vectorized=False),
    "fast": dict(engine_fast_path=True, engine_vectorized=False),
    "vectorized": dict(engine_fast_path=True, engine_vectorized=True),
    "kernels": dict(
        engine_fast_path=True, engine_vectorized=True, engine_kernels=True
    ),
}


def _run_pair(**overrides):
    params = dict(measure_cycles=1500, warmup_cycles=100, seed=7)
    params.update(overrides)
    cfg = tiny_default(**params)
    out = {}
    for name, flags in ENGINES.items():
        sim = NetworkSimulator(cfg.replace(**flags))
        result = sim.run()
        out[name] = (sim, result)
    return out


def _assert_identical(runs):
    legacy_sim, legacy_result = runs["legacy"]
    legacy_fields = _result_fields(legacy_result)
    legacy_events = _event_keys(legacy_sim)
    for name in ("fast", "vectorized", "kernels"):
        sim, result = runs[name]
        assert _result_fields(result) == legacy_fields, name
        assert _event_keys(sim) == legacy_events, name
    # the workload actually exercised the engine
    assert legacy_result.delivered > 0


CASES = {
    # -- routing × topology × VCs ------------------------------------------------
    "tfar_saturated": dict(routing="tfar", load=1.0, num_vcs=1),
    "dor_unrecovered": dict(
        routing="dor", load=1.0, num_vcs=1, recovery="none"
    ),
    "tfar_four_vcs": dict(routing="tfar", load=1.0, num_vcs=4),
    "tfar_unidirectional": dict(
        routing="tfar", load=1.0, bidirectional=False, num_vcs=2
    ),
    "tfar_misrouting": dict(routing="tfar-mis", load=1.0, num_vcs=2),
    "duato_three_vcs": dict(routing="duato", load=1.0, num_vcs=3),
    "dateline_torus": dict(routing="dor-dateline", load=1.0, num_vcs=2),
    "negative_first_mesh": dict(
        routing="negative-first", load=1.0, mesh=True
    ),
    # -- switching ----------------------------------------------------------------
    "cut_through": dict(
        routing="dor", load=0.9, buffer_depth=8, message_length=8
    ),
    # -- detection / recovery modes ----------------------------------------------
    "timeout_recovery": dict(
        routing="tfar",
        load=1.0,
        detection_mode="timeout",
        timeout_threshold=100,
    ),
    "incremental_cwg": dict(
        routing="tfar", load=1.0, cwg_maintenance="incremental"
    ),
    "incremental_timeout_teardown": dict(
        routing="tfar",
        load=1.0,
        cwg_maintenance="incremental",
        detection_mode="timeout",
        timeout_threshold=100,
        recovery_teardown="flit-by-flit",
    ),
    "flit_by_flit_teardown": dict(
        routing="tfar", load=1.0, recovery_teardown="flit-by-flit"
    ),
    "abort_all_recovery": dict(
        routing="tfar", load=1.0, recovery="abort-all"
    ),
    "blocked_durations_recorded": dict(
        routing="tfar",
        load=1.0,
        record_blocked_durations=True,
        detection_mode="timeout",
        timeout_threshold=100,
        cwg_maintenance="incremental",
    ),
    # -- router / node structure ----------------------------------------------------
    "router_delay": dict(routing="tfar", load=1.0, router_delay=2),
    "two_rx_channels": dict(routing="tfar", load=1.0, rx_channels=2),
    # -- arbitration ------------------------------------------------------------------
    "round_robin": dict(
        routing="tfar", load=1.0, arbitration="round-robin"
    ),
    "oldest_first": dict(
        routing="tfar", load=1.0, arbitration="oldest-first"
    ),
}

#: cases that additionally validate the activity flags every cycle
CHECKED_CASES = {
    "tfar_saturated",
    "tfar_misrouting",
    "incremental_timeout_teardown",
    "router_delay",
    "cut_through",
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_fast_path_bit_identical(name):
    overrides = dict(CASES[name])
    if name in CHECKED_CASES:
        overrides["check_invariants"] = True
    _assert_identical(_run_pair(**overrides))


def test_fast_path_identical_across_seeds():
    """Sweep seeds on the most deadlock-prone configuration."""
    for seed in (1, 2, 3):
        _assert_identical(
            _run_pair(
                routing="dor",
                load=1.0,
                num_vcs=1,
                seed=seed,
                measure_cycles=1000,
            )
        )


def test_detection_records_match():
    """Per-pass structural fields survive the detector short-circuit."""
    pair = _run_pair(
        routing="tfar", load=0.9, cwg_maintenance="incremental"
    )
    fast_records = pair["vectorized"][0].detector.records
    legacy_records = pair["legacy"][0].detector.records
    assert len(fast_records) == len(legacy_records)
    for fr, lr in zip(fast_records, legacy_records):
        assert fr.cycle == lr.cycle
        assert fr.cwg_vertices == lr.cwg_vertices
        assert fr.cwg_arcs == lr.cwg_arcs
        assert fr.blocked_messages == lr.blocked_messages
        assert fr.messages_in_network == lr.messages_in_network
        assert len(fr.events) == len(lr.events)


def test_fast_path_is_default():
    cfg = tiny_default()
    assert cfg.engine_fast_path is True
    sim = NetworkSimulator(cfg)
    assert sim.fast_path is True


def test_vectorized_is_opt_in():
    """The vectorized core is flag-gated and dispatched transparently."""
    from repro.network.vectorized import VectorizedEngine

    cfg = tiny_default()
    assert cfg.engine_vectorized is False
    assert type(NetworkSimulator(cfg)) is NetworkSimulator

    vec = NetworkSimulator(cfg.replace(engine_vectorized=True))
    assert type(vec) is VectorizedEngine
    assert isinstance(vec, NetworkSimulator)


def test_vectorized_requires_fast_path():
    from repro.errors import ConfigurationError

    cfg = tiny_default(engine_vectorized=True, engine_fast_path=False)
    with pytest.raises(ConfigurationError):
        NetworkSimulator(cfg)


def test_kernels_is_opt_in():
    """The kernel tier is flag-gated and dispatched transparently."""
    from repro.network.kernels import KernelEngine
    from repro.network.vectorized import VectorizedEngine

    cfg = tiny_default()
    assert cfg.engine_kernels is False

    kern = NetworkSimulator(
        cfg.replace(engine_vectorized=True, engine_kernels=True)
    )
    assert type(kern) is KernelEngine
    assert isinstance(kern, VectorizedEngine)


def test_kernels_requires_vectorized():
    from repro.errors import ConfigurationError

    cfg = tiny_default(engine_kernels=True, engine_vectorized=False)
    with pytest.raises(ConfigurationError):
        NetworkSimulator(cfg)
