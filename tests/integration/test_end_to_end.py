"""End-to-end simulation behaviour across routing algorithms and loads."""

import pytest

from repro.config import tiny_default
from repro.network.simulator import NetworkSimulator


def run(**overrides):
    cfg = tiny_default(**overrides)
    sim = NetworkSimulator(cfg)
    return sim, sim.run()


class TestDeliveryAcrossRouters:
    @pytest.mark.parametrize(
        "routing,num_vcs,mesh",
        [
            ("dor", 1, False),
            ("dor", 2, False),
            ("tfar", 1, False),
            ("tfar", 2, False),
            ("tfar-mis", 2, False),
            ("dor-dateline", 2, False),
            ("duato", 3, False),
            ("negative-first", 1, True),
        ],
    )
    def test_light_load_delivers_everything_offered(self, routing, num_vcs, mesh):
        sim, result = run(
            routing=routing,
            num_vcs=num_vcs,
            mesh=mesh,
            load=0.15,
            measure_cycles=1500,
            warmup_cycles=300,
            check_invariants=True,
        )
        assert result.delivered > 0
        thr = result.normalized_throughput(
            sim.topology.capacity_flits_per_node_cycle
        )
        assert thr == pytest.approx(0.15, rel=0.35)
        # light load: latency near the unloaded bound
        assert result.avg_latency < 10 * (
            sim.topology.average_internode_distance + sim.config.message_length
        )


class TestDeadlockFormation:
    def test_dor_one_vc_deadlocks_at_saturation(self):
        _, result = run(routing="dor", num_vcs=1, load=1.0, measure_cycles=3000)
        assert result.deadlocks > 0
        assert result.multi_cycle_deadlocks == 0  # DOR fan-out is 1

    def test_uni_torus_deadlocks_more_than_bi(self):
        _, uni = run(
            routing="dor", num_vcs=1, bidirectional=False, load=0.8,
            measure_cycles=2500,
        )
        _, bi = run(routing="dor", num_vcs=1, load=0.8, measure_cycles=2500)
        assert uni.normalized_deadlocks > bi.normalized_deadlocks

    def test_dor_deadlock_characteristics(self):
        sim, result = run(routing="dor", num_vcs=1, load=1.0, measure_cycles=3000)
        for event in sim.detector.events:
            assert event.knot_cycle_density == 1
            assert event.deadlock_set_size >= 2
            assert event.resource_set_size >= event.deadlock_set_size
            # knot channels are a subset of the deadlock set's resources
            vcs_in_knot = {v for v in event.knot if isinstance(v, int)}
            assert vcs_in_knot <= {
                v for v in event.resource_set if isinstance(v, int)
            }

    def test_deadlocked_messages_marked(self):
        sim, result = run(
            routing="dor", num_vcs=1, load=1.0, measure_cycles=2500,
            recovery="abort-all",
        )
        if result.deadlocks:
            assert result.aborted > 0


class TestRecoveryIntegration:
    def test_disha_recovery_keeps_network_flowing(self):
        _, result = run(routing="dor", num_vcs=1, load=1.0, measure_cycles=3000)
        # with recovery enabled, delivery continues past saturation
        assert result.delivered > 100
        assert result.recovered == result.deadlocks  # one victim per knot

    def test_no_recovery_wedges_the_network(self):
        """Without recovery, deadlocked channels stay wedged: the same knot
        is re-detected and throughput collapses relative to recovery."""
        sim_none, none = run(
            routing="dor", num_vcs=1, load=1.0, measure_cycles=3000,
            recovery="none", seed=3,
        )
        _, disha = run(
            routing="dor", num_vcs=1, load=1.0, measure_cycles=3000,
            recovery="disha", seed=3,
        )
        if none.deadlocks:
            assert none.delivered < disha.delivered
            # a wedged knot persists across detections
            knotted_cycles = [r.cycle for r in sim_none.detector.records
                              if r.events]
            assert len(knotted_cycles) > 1

    def test_abort_all_clears_wider(self):
        _, result = run(
            routing="dor", num_vcs=1, load=1.0, measure_cycles=3000,
            recovery="abort-all",
        )
        if result.deadlocks:
            assert result.aborted >= result.deadlocks


class TestVirtualChannelEffect:
    def test_more_vcs_fewer_deadlocks(self):
        totals = {}
        for vcs in (1, 3):
            _, result = run(
                routing="dor", num_vcs=vcs, load=1.0, measure_cycles=2500
            )
            totals[vcs] = result.deadlocks
        assert totals[3] <= totals[1]

    def test_tfar_two_vcs_no_deadlocks(self):
        _, result = run(routing="tfar", num_vcs=2, load=1.2, measure_cycles=2500)
        assert result.deadlocks == 0


class TestBufferDepthEffect:
    def test_cut_through_fewer_deadlocks_than_wormhole(self):
        cfgs = dict(routing="tfar", num_vcs=1, load=1.2, measure_cycles=2500,
                    bidirectional=False)
        _, wormhole = run(buffer_depth=1, **cfgs)
        _, vct = run(buffer_depth=8, **cfgs)  # buffer == message length
        # per message in the network, shallow buffers deadlock at least as much
        assert (
            vct.normalized_deadlocks_per_message_in_network
            <= wormhole.normalized_deadlocks_per_message_in_network + 1e-9
        )


class TestTrafficPatterns:
    @pytest.mark.parametrize(
        "traffic",
        ["uniform", "bit-reversal", "transpose", "perfect-shuffle", "hot-spot",
         "bit-complement", "tornado"],
    )
    def test_all_patterns_run_clean(self, traffic):
        _, result = run(
            traffic=traffic, load=0.4, measure_cycles=1200,
            check_invariants=True,
        )
        # permutations route fine; some (sparse senders) deliver less
        assert result.measured_cycles == 1200
