"""Soundness of live-detected knots: every reported deadlock is real.

For knots found in actual simulations (not synthetic fixtures), verify the
full semantic contract:

* the independent reachability oracle agrees with the SCC detector;
* every deadlock-set message is blocked with **no free candidate**;
* every alternative of every deadlock-set message is owned by another
  deadlock-set message (the closure property);
* with recovery disabled, the knot persists verbatim across hundreds of
  cycles (deadlocks never self-resolve).
"""

import pytest

from repro.config import tiny_default
from repro.core.detector import DeadlockDetector
from repro.core.knots import knot_of_vertex
from repro.network.simulator import NetworkSimulator


def first_live_deadlock(routing="dor", vcs=1, seed=3, max_cycles=15_000):
    cfg = tiny_default(
        routing=routing, num_vcs=vcs, load=1.0, seed=seed, recovery="none",
        warmup_cycles=0, measure_cycles=1, detection_interval=25,
    )
    sim = NetworkSimulator(cfg)
    for _ in range(max_cycles):
        sim.step()
        rec = sim.detector.records[-1] if sim.detector.records else None
        if rec and rec.cycle == sim.cycle and rec.events:
            return sim, rec.events[0]
    pytest.skip(f"no deadlock formed for {routing}{vcs} seed {seed}")


@pytest.mark.parametrize("seed", [3, 5, 11])
def test_oracle_agrees_with_detector(seed):
    sim, event = first_live_deadlock(seed=seed)
    g = DeadlockDetector.build_cwg(sim)
    adjacency = g.adjacency()
    sample_vertex = next(iter(event.knot))
    assert knot_of_vertex(adjacency, sample_vertex) == event.knot


@pytest.mark.parametrize("seed", [3, 5])
def test_deadlock_set_fully_stuck(seed):
    sim, event = first_live_deadlock(seed=seed)
    owned_by_set = set()
    for mid in event.deadlock_set:
        owned_by_set.update(vc.index for vc in sim.message_by_id(mid).vcs)
    for mid in event.deadlock_set:
        msg = sim.message_by_id(mid)
        assert msg.needs_next_vc and msg.header_in_newest_vc
        candidates = sim.route_candidates(msg)
        assert candidates
        for vc in candidates:
            assert not vc.is_free, "deadlocked message has a free way out"
            assert vc.index in owned_by_set, (
                "deadlocked message waits outside the deadlock set"
            )


def test_knot_persists_without_recovery():
    sim, event = first_live_deadlock(seed=3)
    vcs_in_knot = [v for v in event.knot if isinstance(v, int)]
    owners = {v: sim.pool.vcs[v].owner for v in vcs_in_knot}
    occupancy = {v: sim.pool.vcs[v].occupancy for v in vcs_in_knot}
    for _ in range(400):
        sim.step()
    assert {v: sim.pool.vcs[v].owner for v in vcs_in_knot} == owners
    assert {v: sim.pool.vcs[v].occupancy for v in vcs_in_knot} == occupancy


def test_dependent_messages_never_own_knot_channels():
    sim, event = first_live_deadlock(seed=5)
    for mid in event.dependent | event.transient_dependent:
        msg = sim.message_by_id(mid)
        for vc in msg.vcs:
            assert vc.index not in event.knot
