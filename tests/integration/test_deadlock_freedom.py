"""Stress tests: provably deadlock-free routers never produce a knot.

These are the strongest validation of the detector — any knot reported for
dateline DOR, Duato or the turn model would be either a detector bug or a
router bug, so the assertion is run under heavy, long, multi-seed stress.
"""

import pytest

from repro.config import SimulationConfig
from repro.network.simulator import NetworkSimulator


def stress(routing, num_vcs, *, mesh=False, k=4, seed=0, load=1.5):
    cfg = SimulationConfig(
        k=k,
        n=2,
        mesh=mesh,
        routing=routing,
        num_vcs=num_vcs,
        buffer_depth=2,
        message_length=8,
        load=load,
        warmup_cycles=0,
        measure_cycles=4_000,
        detection_interval=50,
        max_queued_per_node=16,
        seed=seed,
    )
    return NetworkSimulator(cfg).run()


@pytest.mark.parametrize("seed", range(3))
def test_dateline_dor_knot_free_under_stress(seed):
    result = stress("dor-dateline", 2, seed=seed)
    assert result.deadlocks == 0
    assert result.delivered > 0


@pytest.mark.parametrize("seed", range(3))
def test_duato_knot_free_under_stress(seed):
    result = stress("duato", 3, seed=seed)
    assert result.deadlocks == 0
    assert result.delivered > 0


@pytest.mark.parametrize("seed", range(3))
def test_turn_model_knot_free_under_stress(seed):
    result = stress("negative-first", 1, mesh=True, seed=seed)
    assert result.deadlocks == 0
    assert result.delivered > 0


def test_duato_deep_saturation_still_knot_free():
    """Even at twice capacity with single-flit buffers, the escape
    sub-network keeps Duato knot-free (any CWG cycles that appear are
    Figure-4 cyclic non-deadlocks by construction)."""
    result = stress("duato", 3, k=4, seed=1, load=2.0)
    assert result.deadlocks == 0
    assert result.delivered > 0


def test_dor_on_mesh_single_vc_knot_free():
    """DOR needs no dateline on a mesh: no wraparound, no ring cycle."""
    result = stress("dor", 1, mesh=True, seed=2)
    assert result.deadlocks == 0


def test_dateline_on_larger_torus():
    result = stress("dor-dateline", 2, k=6, seed=5, load=1.2)
    assert result.deadlocks == 0
