"""A/B equivalence: dirty-region detector caching is bit-identical.

``detector_caching`` replaces the detector's per-pass global analysis
(Tarjan + knot test + Johnson census over the whole CWG) with a
partition into weakly-connected regions re-analyzed only when touched by
the tracker's dirty-vertex set, with per-region results cached by exact
vertex set and by canonical region signature, fresh analyses running on
the chain-contracted graph.  All of it is pure optimization: with the
same seed, cached and uncached detection must produce the **same**
sequence of :class:`DetectionRecord`\\ s — knots, deadlock/resource/
dependent sets, cycle-census counts *and* saturation flags, blocked
durations, everything — and, since recovery acts on those records, the
same :class:`RunResult`.

Every case runs the identical configuration twice — ``detector_caching``
on and off — over the matrix the detector branches on: DOR/TFAR (plus
misrouting, whose request sets churn as tails drain), 1–4 VCs, wormhole
and virtual cut-through switching, saturated and moderate loads, knot and
timeout detection, persistent knots (``recovery="none"``), both engine
paths, and the rebuild-maintenance fallback (no tracker → cached mode
must silently take the full path).
"""

import dataclasses

import pytest

from repro.config import tiny_default
from repro.network.simulator import NetworkSimulator


def _result_fields(result):
    fields = dataclasses.asdict(result)
    fields.pop("config")  # differs by construction (the flag itself)
    return fields


def _run_pair(**overrides):
    params = dict(
        measure_cycles=1500,
        warmup_cycles=100,
        seed=7,
        cwg_maintenance="incremental",
        count_cycles=True,
    )
    params.update(overrides)
    cfg = tiny_default(**params)
    out = {}
    for cached in (True, False):
        sim = NetworkSimulator(cfg.replace(detector_caching=cached))
        result = sim.run()
        out[cached] = (sim, result)
    return out


def _assert_identical(pair):
    cached_sim, cached_result = pair[True]
    full_sim, full_result = pair[False]
    # DetectionRecord and DeadlockEvent are dataclasses: == compares every
    # field, so this covers knots, deadlock/resource sets, densities,
    # census counts + saturation flags, blocked durations and blocked ids.
    assert cached_sim.detector.records == full_sim.detector.records
    assert cached_sim.detector.events == full_sim.detector.events
    assert _result_fields(cached_result) == _result_fields(full_result)
    # the workload actually exercised the detector
    assert full_sim.detector.records
    assert full_result.delivered > 0


CASES = {
    # -- routing × VCs at saturation ------------------------------------------------
    "dor_saturated_1vc": dict(routing="dor", load=1.0, num_vcs=1),
    "tfar_saturated_1vc": dict(routing="tfar", load=1.0, num_vcs=1),
    "tfar_saturated_2vc": dict(routing="tfar", load=1.0, num_vcs=2),
    "dor_saturated_3vc": dict(routing="dor", load=1.0, num_vcs=3),
    "tfar_saturated_4vc": dict(routing="tfar", load=1.0, num_vcs=4),
    "tfar_misrouting": dict(routing="tfar-mis", load=1.0, num_vcs=2),
    # -- moderate loads ---------------------------------------------------------------
    "dor_moderate": dict(routing="dor", load=0.45, num_vcs=2),
    "tfar_moderate": dict(routing="tfar", load=0.5, num_vcs=1),
    # -- switching --------------------------------------------------------------------
    "vct_saturated": dict(
        routing="dor", load=0.9, buffer_depth=8, message_length=8
    ),
    # -- persistent knots (regions stable across passes: max cache reuse) ----------
    "unrecovered_knots": dict(
        routing="dor", load=0.95, num_vcs=1, recovery="none"
    ),
    # -- detection / recovery modes ---------------------------------------------------
    "timeout_mode": dict(
        routing="tfar",
        load=1.0,
        detection_mode="timeout",
        timeout_threshold=100,
        record_blocked_durations=True,
    ),
    "flit_by_flit_teardown": dict(
        routing="tfar", load=1.0, recovery_teardown="flit-by-flit"
    ),
    # -- census saturation (tiny cap forces the saturated flag on) ------------------
    "census_cap_hit": dict(
        routing="tfar", load=1.0, max_cycles_counted=10
    ),
    "census_disabled": dict(routing="tfar", load=1.0, count_cycles=False),
    # -- incremental knot tracking (census off selects _analyze_tracked) ------------
    "tracked_persistent_knots": dict(
        routing="dor",
        load=0.95,
        num_vcs=1,
        recovery="none",
        count_cycles=False,
    ),
    "tracked_legacy_engine": dict(
        routing="dor",
        load=1.0,
        num_vcs=1,
        count_cycles=False,
        engine_fast_path=False,
    ),
    "tracked_timeout_mode": dict(
        routing="tfar",
        load=1.0,
        count_cycles=False,
        detection_mode="timeout",
        timeout_threshold=100,
    ),
    # -- engine / maintenance interaction --------------------------------------------
    "legacy_engine": dict(routing="tfar", load=1.0, engine_fast_path=False),
    "rebuild_fallback": dict(
        routing="tfar", load=1.0, cwg_maintenance="rebuild"
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_detector_caching_bit_identical(name):
    _assert_identical(_run_pair(**CASES[name]))


def test_detector_caching_identical_across_seeds():
    """Seed sweep on the most deadlock-prone configuration."""
    for seed in (1, 2, 3, 4):
        _assert_identical(
            _run_pair(
                routing="dor",
                load=1.0,
                num_vcs=1,
                seed=seed,
                measure_cycles=1000,
                record_blocked_durations=True,
            )
        )


def test_detector_caching_is_default():
    cfg = tiny_default()
    assert cfg.detector_caching is True
    sim = NetworkSimulator(cfg)
    assert sim.detector.caching is True


CACHE_STAT_KEYS = {
    "region_hits",
    "signature_hits",
    "region_misses",
    "signature_evictions",
    "full_passes",
    "cached_passes",
    "shortcircuit_passes",
    "tracked_passes",
    "tracked_rescans",
    "knots_reused",
    "knots_discovered",
}


def test_cache_stats_accessor_and_repeat_pass_hits():
    """``cache_stats()`` exposes live counters; a repeated pass is a hit.

    After a saturated no-recovery run the network holds persistent knots.
    Two manual back-to-back detector passes with no intervening network
    change (the blocked-epoch bump only defeats the short-circuit) must
    replay every region from cache: at least one region hit, zero new
    misses.
    """
    cfg = tiny_default(
        routing="dor",
        load=0.95,
        num_vcs=1,
        recovery="none",
        cwg_maintenance="incremental",
        count_cycles=True,
        measure_cycles=1200,
        warmup_cycles=100,
        seed=7,
    )
    sim = NetworkSimulator(cfg)
    sim.run()
    stats = sim.detector.cache_stats()
    assert set(stats) == CACHE_STAT_KEYS
    assert all(isinstance(v, int) and v >= 0 for v in stats.values())
    assert stats["cached_passes"] > 0

    # first manual pass consumes any dirt accumulated since the run's last
    # detection and caches the (wedged, stable) regions ...
    sim.blocked_epoch += 1
    sim.detector.detect(sim)
    mid = sim.detector.cache_stats()
    # ... so the identical repeated pass reuses every region verbatim
    sim.blocked_epoch += 1
    sim.detector.detect(sim)
    after = sim.detector.cache_stats()
    assert after["cached_passes"] == mid["cached_passes"] + 1
    assert after["region_hits"] >= mid["region_hits"] + 1
    assert after["region_misses"] == mid["region_misses"]


def test_cache_stats_uncached_detector_counts_full_passes():
    cfg = tiny_default(
        routing="dor",
        load=1.0,
        num_vcs=1,
        detector_caching=False,
        measure_cycles=600,
        warmup_cycles=100,
        seed=3,
    )
    sim = NetworkSimulator(cfg)
    sim.run()
    stats = sim.detector.cache_stats()
    assert stats["full_passes"] > 0
    assert stats["cached_passes"] == 0
    assert stats["region_hits"] == stats["region_misses"] == 0
