"""Tests for the runtime invariant checker (repro.validation.invariants).

Three concerns:

* wiring — ``validation_level`` attaches a checker, counters advance, and
  a validated run is bit-identical to an unvalidated one (pure observer);
* teeth — hand-corrupted simulator state is caught by the right check;
* knot soundness — real detections on a deadlocking run are verified.
"""

import dataclasses

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.network.message import MessageStatus
from repro.network.simulator import NetworkSimulator
from repro.validation.invariants import (
    DEFAULT_CHECKS,
    InvariantChecker,
    InvariantViolation,
)

#: small saturated torus that deadlocks within a few hundred cycles
DEADLOCKING = SimulationConfig(
    k=4,
    n=2,
    num_vcs=1,
    buffer_depth=2,
    routing="dor",
    message_length=8,
    load=1.3,
    detection_interval=25,
    warmup_cycles=0,
    measure_cycles=400,
    max_cycles_counted=2_000,
    seed=97,
)


def run_steps(config, cycles):
    sim = NetworkSimulator(config)
    for _ in range(cycles):
        sim.step()
    return sim


# -- wiring --------------------------------------------------------------------------
def test_from_config_levels():
    assert InvariantChecker.from_config(SimulationConfig()) is None
    lvl1 = InvariantChecker.from_config(
        SimulationConfig(validation_level=1, validation_interval=40)
    )
    assert lvl1 is not None and lvl1.interval == 40
    lvl2 = InvariantChecker.from_config(SimulationConfig(validation_level=2))
    assert lvl2 is not None and lvl2.interval == 1


def test_engine_attaches_checker_and_counters_advance():
    cfg = DEADLOCKING.replace(validation_level=2, measure_cycles=60)
    sim = NetworkSimulator(cfg)
    sim.run()
    checker = sim.validation
    assert checker is not None
    assert checker.passes >= 60
    assert checker.checks_run == checker.passes * len(checker.checks)
    assert checker.last_checked_cycle == sim.cycle


def test_sampling_interval_respected():
    cfg = DEADLOCKING.replace(
        validation_level=1, validation_interval=25, measure_cycles=100
    )
    sim = NetworkSimulator(cfg)
    sim.run()
    assert sim.validation.passes == 4  # cycles 25, 50, 75, 100


def test_validated_run_is_bit_identical():
    """The checker must be a pure observer: level 2 changes nothing."""
    results = {}
    for level in (0, 2):
        cfg = DEADLOCKING.replace(validation_level=level, measure_cycles=150)
        fields = dataclasses.asdict(NetworkSimulator(cfg).run())
        fields.pop("config")
        results[level] = fields
    assert results[0] == results[2]


def test_unknown_check_name_rejected():
    with pytest.raises(ValueError, match="unknown invariant check"):
        InvariantChecker(checks=["no-such-check"])


def test_validation_level_validated():
    with pytest.raises(ConfigurationError):
        SimulationConfig(validation_level=3).validate()
    with pytest.raises(ConfigurationError):
        SimulationConfig(validation_level=1, validation_interval=0).validate()


# -- teeth: corrupted state must be caught -------------------------------------------
def corrupt_flit_count(sim):
    msg = next(
        m for m in sim.active.values() if m.status is MessageStatus.ACTIVE
    )
    msg.at_source += 1


def corrupt_worm_order(sim):
    msg = next(m for m in sim.active.values() if len(m.vcs) >= 2)
    msg.vcs.reverse()


def corrupt_wake_index(sim):
    # deregister a waiting message from one of its keys: the engine would
    # now never wake it when that resource frees (the skip-wake fault class)
    msg = next(m for m in sim.active.values() if m.wait_keys)
    sim._wake_index[msg.wait_keys[0]].discard(msg.id)


def corrupt_tracker_owner(sim):
    vertex = next(
        v for v, o in sim.tracker.owner.items() if o is not None
    )
    sim.tracker.owner[vertex] = None


@pytest.mark.parametrize(
    "corrupt, expected_check",
    [
        (corrupt_flit_count, "flit-conservation"),
        (corrupt_worm_order, "worm-contiguity"),
        (corrupt_wake_index, "activity-coherence"),
        (corrupt_tracker_owner, "incremental-cwg"),
    ],
)
def test_corruption_is_caught(corrupt, expected_check):
    cfg = DEADLOCKING.replace(cwg_maintenance="incremental")
    sim = run_steps(cfg, 80)
    checker = InvariantChecker()
    checker.check_now(sim)  # sanity: honest state passes
    try:
        corrupt(sim)
    except StopIteration:
        pytest.skip("run produced no state to corrupt (tune DEADLOCKING)")
    with pytest.raises(InvariantViolation) as exc_info:
        checker.check_now(sim)
    assert exc_info.value.check == expected_check


def test_violation_carries_context():
    sim = run_steps(DEADLOCKING, 80)
    corrupt_flit_count(sim)
    with pytest.raises(InvariantViolation) as exc_info:
        InvariantChecker().check_now(sim)
    err = exc_info.value
    assert err.cycle == sim.cycle
    assert "flit-conservation" in str(err)


# -- knot soundness ------------------------------------------------------------------
def test_real_detections_are_verified():
    cfg = DEADLOCKING.replace(validation_level=2)
    sim = NetworkSimulator(cfg)
    result = sim.run()
    assert result.deadlocks > 0, "scenario must deadlock for this test to bite"
    assert sim.validation.detections_verified > 0


def test_fabricated_knot_event_rejected():
    """on_detection rejects an event whose members are not truly blocked."""
    cfg = DEADLOCKING.replace(validation_level=2)
    sim = NetworkSimulator(cfg)
    sim.run()
    events = sim.detector.events
    assert events, "scenario must deadlock for this test to bite"
    fake = dataclasses.replace(events[-1], deadlock_set=frozenset({999_999}))
    record = dataclasses.replace(
        sim.detector.records[-1], events=[fake]
    )
    with pytest.raises(InvariantViolation, match="knot-soundness"):
        sim.validation.on_detection(sim, record)


def test_default_battery_is_complete():
    assert set(DEFAULT_CHECKS) == {
        "flit-conservation",
        "channel-exclusivity",
        "worm-contiguity",
        "activity-coherence",
        "incremental-cwg",
    }
