"""Tests for the differential fuzz harness (repro.validation.differential).

The critical test here is the *teeth* group: arming an intentional fault
via ``REPRO_INJECT_FAULT`` and proving the harness reports a mismatch.  A
differential net that cannot catch a deliberately broken engine is
decorative; these tests keep it honest.
"""

import dataclasses
import random

import pytest

from repro.config import SimulationConfig
from repro.core.incremental import IncrementalCWG
from repro.faults import ENV_VAR, KNOWN_FAULTS, active_faults
from repro.validation.differential import (
    AXES,
    FuzzMismatch,
    check_config,
    dump_artifact,
    load_artifact,
    random_config,
    run_fuzz,
    shrink_config,
)

#: deadlocks quickly and is cheap — the engine-axis teeth scenario
SATURATED = SimulationConfig(
    k=4,
    n=2,
    num_vcs=1,
    buffer_depth=2,
    routing="dor",
    message_length=8,
    load=1.3,
    detection_interval=25,
    warmup_cycles=0,
    measure_cycles=400,
    max_cycles_counted=2_000,
    seed=97,
)

#: hot-spot traffic makes many small independent congestion regions, so a
#: region whose only change is a request-arc rewrite keeps its vertex set —
#: exactly the situation where a skipped dirty mark lets the cached detector
#: reuse a stale analysis (the detector-axis teeth scenario)
HOTSPOT = SATURATED.replace(
    buffer_depth=1, load=0.6, traffic="hot-spot", detection_interval=5
)

#: a unidirectional ring wedges *globally* (every in-flight message blocked
#: at once), which is what raises the kernel engine's maintained
#: all-immobile flag — the torus scenarios above always keep some traffic
#: mobile, so they never exercise that fast path (the kernels-axis teeth
#: scenario)
RING = SATURATED.replace(
    k=4, n=1, bidirectional=False, buffer_depth=1, message_length=4
)


# -- config generation ---------------------------------------------------------------
def test_random_config_deterministic():
    draws = [
        [dataclasses.asdict(random_config(random.Random(42))) for _ in range(5)]
        for _ in range(2)
    ]
    assert draws[0] == draws[1]


def test_random_configs_are_valid():
    rng = random.Random(7)
    for _ in range(10):
        random_config(rng).validate()  # raises on an invalid draw


# -- clean sweep ---------------------------------------------------------------------
def test_clean_configs_produce_no_mismatch():
    assert active_faults() == frozenset(), (
        f"unset {ENV_VAR} before running the test suite"
    )
    mismatches, checked = run_fuzz(num_configs=3, seed=3, shrink=False)
    assert checked == 3
    assert mismatches == []


# -- teeth: armed faults MUST be caught ----------------------------------------------
def test_skip_wake_is_caught_by_engine_axis(monkeypatch):
    """A fast path that forgets to wake waiters diverges from legacy."""
    monkeypatch.setenv(ENV_VAR, "skip-wake")
    mismatches = check_config(SATURATED, axes=("engine",))
    assert mismatches, "skip-wake fault was not detected: the net has no teeth"
    assert mismatches[0].axis == "engine"


def test_skip_dirty_block_is_caught_by_detector_axis(monkeypatch):
    """A tracker that forgets a dirty mark poisons the region cache."""
    monkeypatch.setenv(ENV_VAR, "skip-dirty-block")
    mismatches = check_config(HOTSPOT, axes=("detector",))
    assert mismatches, (
        "skip-dirty-block fault was not detected: the net has no teeth"
    )
    assert mismatches[0].axis == "detector"


def test_skip_dirty_acquire_knob_skips_marks(monkeypatch):
    """The remaining fault knob really injects its lie at the event level.

    End-to-end this fault is usually masked: an acquire almost always
    changes the region's vertex set, which forces a recompute regardless
    of dirty marks.  The unit-level contract is still worth pinning.
    """
    monkeypatch.setenv(ENV_VAR, "skip-dirty-acquire")
    tracker = IncrementalCWG()
    tracker.on_acquire(1, 10)
    assert 10 not in tracker.consume_dirty()
    assert tracker.owner[10] == 1, "fault must only skip marks, not content"
    monkeypatch.delenv(ENV_VAR)
    honest = IncrementalCWG()
    honest.on_acquire(1, 10)
    assert 10 in honest.consume_dirty()


def test_unknown_fault_name_rejected(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "no-such-fault")
    with pytest.raises(ValueError, match="no-such-fault"):
        active_faults()


def test_known_faults_registry():
    assert KNOWN_FAULTS == {
        "skip-dirty-acquire", "skip-dirty-block", "skip-wake",
        "skip-immobile-clear",
        "crash-point", "flaky-point", "hang-point",
        "drop-lease-heartbeat",
    }


# -- shrinking -----------------------------------------------------------------------
def test_shrink_preserves_mismatch_and_simplifies(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "skip-wake")
    big = SATURATED.replace(measure_cycles=600, num_vcs=2)
    assert check_config(big, axes=("engine",)), "precondition: big mismatches"
    small, detail = shrink_config(big, "engine")
    assert detail, "shrinking must report the surviving mismatch"
    assert check_config(small, axes=("engine",)), "shrunk config must still fail"
    assert small.measure_cycles <= big.measure_cycles
    assert small.num_vcs <= big.num_vcs


# -- artifacts -----------------------------------------------------------------------
def test_artifact_roundtrip(tmp_path):
    mismatch = FuzzMismatch(
        axis="engine", config=SATURATED, detail="synthetic mismatch for test"
    )
    path = dump_artifact(mismatch, tmp_path / "artifact.json")
    axis, config = load_artifact(path)
    assert axis == "engine"
    assert dataclasses.asdict(config) == dataclasses.asdict(SATURATED)


def test_axes_are_the_documented_five():
    assert AXES == ("engine", "vectorized", "kernels", "detector", "cwg")


def test_skip_wake_is_caught_by_vectorized_axis(monkeypatch):
    """The vectorized axis compares against legacy, so a fast-path fault
    shared by both optimized engines still diverges here."""
    monkeypatch.setenv(ENV_VAR, "skip-wake")
    mismatches = check_config(SATURATED, axes=("vectorized",))
    assert mismatches, (
        "skip-wake fault was not detected by the vectorized axis"
    )
    assert mismatches[0].axis == "vectorized"


def test_skip_immobile_clear_is_caught_by_kernels_axis(monkeypatch):
    """A kernel engine whose all-immobile flag lies stays frozen forever.

    The fault leaves ``KernelEngine._all_immobile`` raised after the
    wake-up events that should lower it, so once the ring wedges globally
    the faulty engine never moves another flit while the vectorized
    reference drains the recovery — the kernels axis must report that
    divergence.
    """
    monkeypatch.setenv(ENV_VAR, "skip-immobile-clear")
    mismatches = check_config(RING, axes=("kernels",))
    assert mismatches, (
        "skip-immobile-clear fault was not detected: the kernels axis "
        "has no teeth"
    )
    assert mismatches[0].axis == "kernels"


def test_skip_immobile_clear_does_not_trip_other_axes(monkeypatch):
    """The fault lives only in the kernel tier, so the axes that never
    construct a KernelEngine must stay clean — pinning that the kernels
    axis is the *necessary* net for this class of bug, not a redundant
    one."""
    monkeypatch.setenv(ENV_VAR, "skip-immobile-clear")
    mismatches = check_config(RING, axes=("engine", "vectorized"))
    assert mismatches == [], (
        "skip-immobile-clear leaked into non-kernel axes: "
        f"{[m.axis for m in mismatches]}"
    )
