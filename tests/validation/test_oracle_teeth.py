"""The oracle's fault-injection teeth: armed detector faults must be caught.

A verification oracle that has never flagged anything proves nothing — it
might be vacuously agreeing with whatever the detector says.  These tests
arm the ``REPRO_INJECT_FAULT`` bookkeeping faults and demand that witness
replay on the production engine (fast path + incremental CWG + detector
caching) produces a concrete, step-localized counterexample for each; and
that on a clean build the very same witnesses replay without a single
disagreement.
"""

from __future__ import annotations

import pytest

from repro.faults import ENV_VAR
from repro.validation.oracle import (
    TEETH_FAULTS,
    dump_witness,
    explore,
    get_case,
    load_witness,
    make_deadlock_witness,
    make_wake_witness,
    replay_witness,
    run_teeth,
    teeth_candidates,
)

CASE = get_case("ring-deadlock")


@pytest.fixture(scope="module")
def graph():
    """One shared closure for the whole module (819 states, ~0.3 s)."""
    return explore(CASE.config)


@pytest.fixture(scope="module")
def candidates(graph):
    return teeth_candidates(CASE, graph=graph)


# -- clean build: zero disagreements -------------------------------------------------
def test_clean_replay_has_zero_disagreements(candidates):
    """Every candidate witness replays clean on both engines when no fault
    is armed — the baseline that gives a later divergence its meaning."""
    for witness in candidates:
        for production in (False, True):
            result = replay_witness(witness, production=production)
            assert result.ok, (
                f"{witness['kind']} witness diverged on a clean "
                f"{'production' if production else 'oracle'} engine at "
                f"step {result.diverged_at}: {result.detail}"
            )


def test_deadlock_witness_ends_in_a_flagged_deadlock(graph):
    witness = make_deadlock_witness(CASE, graph=graph)
    assert witness["final_verdict"]["has_deadlock"]
    assert witness["final_verdict"]["flagged"], "deadlock must flag messages"
    assert len(witness["steps"]) >= 1


def test_wake_witness_traverses_a_wake_edge(graph):
    """The wake witness's defining property: its last step unblocks (or
    delivers) a message that was blocked in the preceding state."""
    from repro.validation.statespace import CanonicalState

    witness = make_wake_witness(CASE, graph=graph)
    final = CanonicalState.from_json(witness["final_state"])
    # replay all but the last step on the oracle engine to recover the
    # penultimate state, then compare blocked sets
    import dataclasses

    from repro.config import SimulationConfig
    from repro.network.simulator import NetworkSimulator
    from repro.validation.statespace import snapshot_state, step_with_script

    config = SimulationConfig(**{
        **witness["config"],
        "failed_links": (), "length_mix": (), "traffic_mix": (),
    })
    sim = NetworkSimulator(config)
    for step in witness["steps"][:-1]:
        step_with_script(sim, list(step["choices"]))
    before = snapshot_state(sim)

    def blocked_ids(state):
        return {record[0] for record in state.messages if record[9]}

    woken = blocked_ids(before) - blocked_ids(final)
    assert woken, "last step must wake a previously-blocked message"
    assert dataclasses.asdict(config) == witness["config"]


# -- armed faults: every tooth bites -------------------------------------------------
def test_run_teeth_catches_every_armed_fault():
    outcomes = run_teeth(CASE)
    assert [o.fault for o in outcomes] == list(TEETH_FAULTS)
    for outcome in outcomes:
        assert outcome.caught, (
            f"{outcome.fault}: armed fault produced no counterexample "
            f"({outcome.detail})"
        )
        assert outcome.divergence in ("state", "verdict")
        assert outcome.diverged_at is not None
        assert outcome.witness is not None, "catch must be replayable"
        assert outcome.witness_kind in ("deadlock", "wake")


def test_armed_fault_diverges_and_unarmed_replay_stays_clean(
    candidates, monkeypatch
):
    """The same witness payload flips verdict with the environment knob —
    divergence is caused by the armed fault, not by the payload."""
    monkeypatch.setenv(ENV_VAR, "skip-wake")
    armed = [replay_witness(w, production=True) for w in candidates]
    assert any(not r.ok for r in armed), "armed skip-wake must diverge"
    monkeypatch.delenv(ENV_VAR)
    for witness in candidates:
        assert replay_witness(witness, production=True).ok


def test_faults_only_bite_the_production_machinery(monkeypatch):
    """Oracle-engine replay pins the legacy path: the wake-index and
    dirty-region faults live in machinery the pinned engine never runs,
    so the same armed fault must NOT diverge there."""
    witness = make_wake_witness(CASE)
    monkeypatch.setenv(ENV_VAR, "skip-wake")
    assert replay_witness(witness, production=False).ok


def test_witness_round_trips_through_disk(candidates, tmp_path):
    for witness in candidates:
        path = dump_witness(witness, tmp_path / f"{witness['kind']}.json")
        loaded = load_witness(path)
        assert loaded["config"] == witness["config"]
        assert loaded["steps"] == [
            {**s, "choices": list(s["choices"])} for s in witness["steps"]
        ]
        assert replay_witness(loaded, production=True).ok


# -- the excluded faults: masking doctrine, pinned -----------------------------------
def test_teeth_faults_are_the_two_catchable_bookkeeping_lies():
    assert TEETH_FAULTS == ("skip-wake", "skip-dirty-block")


def test_skip_dirty_acquire_is_masked_but_real_at_unit_level(monkeypatch):
    """``skip-dirty-acquire`` is excluded from the battery because an
    acquire almost always changes the region's vertex set, forcing a
    recompute that masks the missing dirty mark end-to-end (the fuzz
    harness documents the same).  Pin that the knob nevertheless injects
    its lie at the event level, so the exclusion stays a masking fact and
    not a dead knob."""
    from repro.core.incremental import IncrementalCWG

    monkeypatch.setenv(ENV_VAR, "skip-dirty-acquire")
    tracker = IncrementalCWG()
    tracker.on_acquire(1, 10)
    assert 10 not in tracker.consume_dirty()
    assert tracker.owner[10] == 1
