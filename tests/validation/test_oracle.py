"""Unit and closure tests for the model-checking oracle.

Covers the canonical-snapshot laws (round-trip identity, hash/equality,
JSON serialization), the pinned-configuration guards, reachability ground
truth on the paper's Figure 1–4 wait-graph galleries, and full-closure
detector verification on the two smallest grid cases.  The heavyweight
whole-grid sweep lives in ``scripts/oracle_smoke.py`` (CI stage), not
here.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.gallery import (
    figure1_cwg,
    figure2_cwg,
    figure3_cwg,
    figure4_cwg,
)
from repro.errors import ConfigurationError
from repro.network.simulator import NetworkSimulator
from repro.validation.oracle import (
    ORACLE_GRID,
    analyze,
    check_case,
    cwg_doomed_messages,
    explore,
    get_case,
)
from repro.validation.statespace import (
    CanonicalState,
    ChoiceController,
    next_script,
    oracle_config,
    restore_sim,
    snapshot_state,
    successors,
)

RING = SimulationConfig(
    k=3, n=1, bidirectional=False, num_vcs=1, buffer_depth=1,
    routing="dor", selection="lowest", arbitration="oldest-first",
    traffic="uniform", load=1.0, message_length=2,
    max_queued_per_node=2, seed=0, max_messages=3,
)


# -- canonical snapshot laws ---------------------------------------------------------
def _deep_states(config, depth=3):
    """The initial state plus every state within ``depth`` steps."""
    sim = NetworkSimulator(oracle_config(config))
    frontier = [snapshot_state(sim)]
    seen = set(frontier)
    for _ in range(depth):
        nxt = []
        for state in frontier:
            for _, succ in successors(config, state):
                if succ not in seen:
                    seen.add(succ)
                    nxt.append(succ)
        frontier = nxt
    return seen


def test_snapshot_restore_round_trip_identity():
    """snapshot(restore(s)) == s for the initial state and deep states."""
    sample = sorted(_deep_states(RING, depth=2), key=lambda s: s.digest())
    assert len(sample) > 50
    for state in sample[:40]:
        sim = restore_sim(RING, state)
        assert snapshot_state(sim) == state


def test_restored_simulator_passes_invariants():
    for state in sorted(_deep_states(RING, depth=2), key=lambda s: s.digest())[:10]:
        restore_sim(RING, state).check_invariants()  # raises on violation


def test_snapshot_hash_equality_laws():
    states = list(_deep_states(RING, depth=2))
    for state in states[:30]:
        clone = CanonicalState.from_json(state.to_json())
        assert clone == state
        assert hash(clone) == hash(state)
        assert clone.digest() == state.digest()
    digests = {s.digest() for s in states}
    assert len(digests) == len(states), "digest collided on distinct states"


def test_snapshot_json_round_trip_through_text():
    import json

    state = next(iter(_deep_states(RING, depth=2)))
    text = json.dumps(state.to_json(), sort_keys=True)
    assert CanonicalState.from_json(json.loads(text)) == state


def test_derived_views_partition_the_id_space():
    for state in list(_deep_states(RING, depth=3))[:50]:
        live = set(state.live_ids())
        delivered = set(state.delivered_ids())
        assert live.isdisjoint(delivered)
        assert live | delivered == set(range(state.next_id))
        assert set(state.active_ids()) <= live


# -- pinned-configuration guards -----------------------------------------------------
def test_oracle_config_requires_bounded_generation():
    with pytest.raises(ConfigurationError, match="max_messages"):
        oracle_config(RING.replace(max_messages=None))


def test_oracle_config_rejects_round_robin_arbitration():
    with pytest.raises(ConfigurationError, match="round-robin"):
        oracle_config(RING.replace(arbitration="round-robin"))


def test_oracle_config_rejects_stochastic_mixes():
    with pytest.raises(ConfigurationError, match="length_mix"):
        oracle_config(RING.replace(length_mix=((2, 0.5), (4, 0.5))))


def test_oracle_pins_force_the_legacy_engine():
    pinned = oracle_config(RING.replace(engine_fast_path=True))
    assert not pinned.engine_fast_path
    assert pinned.detection_interval == 1
    assert pinned.recovery == "none"


# -- choice-tree enumeration laws ----------------------------------------------------
def test_next_script_enumerates_a_full_tree():
    """Sibling stepping visits every leaf of a small mixed-width tree."""
    widths = [2, 3, 2]
    leaves = []
    script = []
    while True:
        controller = ChoiceController(script)
        for w in widths:
            controller.branch(w)
        leaves.append(controller.choices())
        sibling = next_script(controller.trail)
        if sibling is None:
            break
        script = sibling
    assert len(leaves) == 2 * 3 * 2
    assert len(set(leaves)) == len(leaves)


def test_single_option_branches_are_not_recorded():
    controller = ChoiceController()
    assert controller.branch(1) == 0
    assert controller.branch(2) == 0
    assert controller.choices() == (0,)


# -- reachability ground truth on the paper galleries --------------------------------
@pytest.mark.parametrize(
    "build, expected",
    [
        # Figure 1: single-cycle deadlock of m1/m3/m5; m2 and m4 are
        # unblocked and drain
        (figure1_cwg, {1, 3, 5}),
        # Figure 2: multi-cycle deadlock {1,2,3,4} plus m6, which waits on
        # c4 (owned by deadlocked m4) — dependent, equally doomed
        (figure2_cwg, {1, 2, 3, 4, 6}),
        # Figure 3: every message participates in the knot
        (figure3_cwg, {0, 1, 2, 3, 4, 5, 6, 7}),
        # Figure 4: the reachable set escapes through e4 (owned by
        # unblocked m8) — no deadlock anywhere
        (figure4_cwg, set()),
    ],
)
def test_gallery_doomed_sets_match_the_paper(build, expected):
    assert set(cwg_doomed_messages(build())) == expected


# -- closure-level detector verification ---------------------------------------------
def test_grid_covers_at_least_three_classes_with_both_polarities():
    assert len(ORACLE_GRID) >= 3
    assert any(c.expected_deadlocked_terminals > 0 for c in ORACLE_GRID)
    assert any(c.expected_deadlocked_terminals == 0 for c in ORACLE_GRID)


def test_ring_deadlock_case_checks_clean_to_closure():
    report = check_case(get_case("ring-deadlock"))
    assert report.ok, [v.detail for v in report.violations]
    assert report.num_states == 819
    assert report.num_deadlocked_terminals == 1


def test_ring_2vc_free_case_checks_clean_to_closure():
    report = check_case(get_case("ring-2vc-free"))
    assert report.ok, [v.detail for v in report.violations]
    assert report.num_deadlocked_terminals == 0


def test_ground_truth_dooms_exactly_the_deadlocked_terminals_messages():
    """At a deadlocked terminal every active message is doomed, and the
    doomed labels propagate backward along the funnel into it."""
    graph = explore(get_case("ring-deadlock").config)
    truth = analyze(graph)
    deadlocked = graph.deadlocked_terminal_indices()
    assert len(deadlocked) == 1
    terminal = deadlocked[0]
    active = set(graph.index[terminal].active_ids())
    assert truth.doomed[terminal] == frozenset(active)
    # the BFS-tree predecessor of the terminal is already doomed too: from
    # there, every path leads into the same terminal
    parent_idx, _ = graph.parent[terminal]
    assert truth.doomed[parent_idx], "doom must precede the terminal"


def test_drained_terminal_dooms_nothing():
    graph = explore(get_case("ring-2vc-free").config)
    truth = analyze(graph)
    assert all(not doomed for doomed in truth.doomed)


def test_state_count_drift_is_a_violation():
    import dataclasses

    tampered = dataclasses.replace(
        get_case("ring-2vc-free"), expected_states=123
    )
    report = check_case(tampered)
    assert not report.ok
    assert any(v.kind == "state-count" for v in report.violations)
