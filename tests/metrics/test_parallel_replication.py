"""Tests for the parallel sweep runner and multi-seed replication."""

import pytest

from repro.config import tiny_default
from repro.metrics.parallel import (
    run_load_sweep_parallel,
    run_matrix_parallel,
    run_point,
)
from repro.metrics.replication import MetricEstimate, replicate
from repro.metrics.sweep import run_load_sweep

FAST = dict(measure_cycles=400, warmup_cycles=50)


class TestParallel:
    def test_run_point_matches_direct(self):
        from repro.network.simulator import NetworkSimulator

        cfg = tiny_default(load=0.4, **FAST)
        a = run_point(cfg)
        b = NetworkSimulator(cfg).run()
        assert a.delivered == b.delivered
        assert a.deadlocks == b.deadlocks

    def test_parallel_sweep_matches_serial(self):
        cfg = tiny_default(**FAST)
        loads = [0.2, 0.5]
        serial = run_load_sweep(cfg, loads)
        parallel = run_load_sweep_parallel(cfg, loads, max_workers=2)
        assert parallel.loads == serial.loads
        for a, b in zip(parallel.results, serial.results):
            assert a.delivered == b.delivered
            assert a.deadlocks == b.deadlocks
            assert a.latency_sum == b.latency_sum

    def test_single_worker_path(self):
        cfg = tiny_default(**FAST)
        sweep = run_load_sweep_parallel(cfg, [0.3], max_workers=1)
        assert len(sweep.results) == 1

    def test_matrix(self):
        cfgs = [tiny_default(load=l, **FAST) for l in (0.2, 0.4, 0.6)]
        results = run_matrix_parallel(cfgs, max_workers=2)
        assert len(results) == 3
        # results arrive in submission order
        assert [r.config.load for r in results] == [0.2, 0.4, 0.6]


class TestMetricEstimate:
    def test_statistics(self):
        e = MetricEstimate("m", (1.0, 2.0, 3.0))
        assert e.mean == 2.0
        assert e.std == pytest.approx(1.0)
        lo, hi = e.ci95
        assert lo < 2.0 < hi
        assert "m=2" in str(e)

    def test_single_sample(self):
        e = MetricEstimate("m", (5.0,))
        assert e.mean == 5.0
        assert e.std == 0.0
        lo, hi = e.ci95
        assert lo == float("-inf") and hi == float("inf")

    def test_zero_variance(self):
        e = MetricEstimate("m", (4.0, 4.0, 4.0))
        assert e.ci95 == (4.0, 4.0)


class TestReplicate:
    def test_basic_replication(self):
        cfg = tiny_default(load=0.8, **FAST)
        rep = replicate(cfg, seeds=[1, 2, 3])
        assert len(rep.runs) == 3
        assert rep["delivered"].n == 3
        # different seeds produce different workloads
        delivered = {r.delivered for r in rep.runs}
        assert len(delivered) > 1
        assert "normalized_deadlocks" in rep.summary()

    def test_custom_metrics(self):
        cfg = tiny_default(load=0.3, **FAST)
        rep = replicate(
            cfg, seeds=[1, 2], metrics={"thr": lambda r: float(r.delivered)}
        )
        assert set(rep.estimates) == {"thr"}

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(tiny_default(), seeds=[])

    def test_parallel_replication_matches_serial(self):
        cfg = tiny_default(load=0.5, **FAST)
        serial = replicate(cfg, seeds=[7, 8])
        parallel = replicate(cfg, seeds=[7, 8], parallel=True, max_workers=2)
        assert serial["deadlocks"].samples == parallel["deadlocks"].samples
        assert serial["delivered"].samples == parallel["delivered"].samples
