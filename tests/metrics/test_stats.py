"""Unit tests for statistics collection and derived metrics."""

import pytest

from repro.config import tiny_default
from repro.metrics.stats import RunResult, StatsCollector
from repro.network.message import Message
from repro.network.topology import KAryNCube


def make_result(**kw):
    defaults = dict(config=tiny_default(), measured_cycles=1000)
    defaults.update(kw)
    return RunResult(**defaults)


class TestRunResultDerived:
    def test_normalized_deadlocks(self):
        r = make_result(delivered=90, recovered=10, deadlocks=5)
        assert r.delivered_total == 100
        assert r.normalized_deadlocks == pytest.approx(0.05)
        assert r.deadlocks_per_kilo_delivered == pytest.approx(50.0)

    def test_normalized_deadlocks_zero_delivered(self):
        assert make_result(deadlocks=0).normalized_deadlocks == 0.0
        assert make_result(deadlocks=3).normalized_deadlocks == float("inf")

    def test_set_size_aggregates(self):
        r = make_result(deadlock_set_sizes=[2, 4, 6], resource_set_sizes=[8, 16])
        assert r.avg_deadlock_set_size == 4.0
        assert r.max_deadlock_set_size == 6
        assert r.avg_resource_set_size == 12.0
        assert r.max_resource_set_size == 16

    def test_empty_aggregates_are_zero(self):
        r = make_result()
        assert r.avg_deadlock_set_size == 0.0
        assert r.max_knot_cycle_density == 0
        assert r.avg_cycle_count == 0.0
        assert r.avg_latency == 0.0

    def test_throughput(self):
        r = make_result(delivered_flits=16000, measured_cycles=1000)
        per_node = 16000 / (1000 * 16)
        assert r.throughput_flits_per_node_cycle == pytest.approx(per_node)
        assert r.normalized_throughput(per_node * 2) == pytest.approx(0.5)
        assert r.normalized_throughput(0.0) == 0.0

    def test_latency(self):
        r = make_result(latency_sum=500, latency_count=10)
        assert r.avg_latency == 50.0

    def test_deadlocks_per_message_in_network(self):
        r = make_result(deadlocks=4, in_network_samples=[10, 10])
        assert r.normalized_deadlocks_per_message_in_network == pytest.approx(0.4)

    def test_summary_is_single_line(self):
        assert "\n" not in make_result().summary()


class TestStatsCollector:
    def test_warmup_events_excluded(self):
        cfg = tiny_default(warmup_cycles=100)
        collector = StatsCollector(cfg, KAryNCube(4, 2))
        m = Message(0, 0, 1, 8, created_cycle=0)
        m.completed_cycle = 50
        collector.on_delivered(m, cycle=50)  # during warmup
        collector.on_generated(cycle=100)  # boundary: still warmup
        assert collector._result.delivered == 0
        assert collector._result.generated == 0
        collector.on_delivered(m, cycle=101)
        assert collector._result.delivered == 1

    def test_recovered_vs_aborted(self):
        cfg = tiny_default(warmup_cycles=0)
        collector = StatsCollector(cfg, KAryNCube(4, 2))
        m1 = Message(0, 0, 1, 8, created_cycle=0)
        m1.remove_from_network(10, delivered=True)
        collector.on_recovered(m1, cycle=10)
        m2 = Message(1, 0, 1, 8, created_cycle=0)
        m2.remove_from_network(10, delivered=False)
        collector.on_recovered(m2, cycle=10)
        assert collector._result.recovered == 1
        assert collector._result.aborted == 1
        # only the Disha-delivered flits count toward throughput
        assert collector._result.delivered_flits == 8
