"""Unit tests for load sweeps and saturation estimation."""

import pytest

from repro.config import tiny_default
from repro.metrics.stats import RunResult
from repro.metrics.sweep import SweepResult, default_loads, run_load_sweep


def fake_result(load, throughput, deadlocks=0, delivered=100):
    cfg = tiny_default(load=load)
    r = RunResult(config=cfg, measured_cycles=1000)
    r.delivered = delivered
    # reverse-engineer delivered_flits so normalized_throughput == throughput
    capacity = 1.0
    r.delivered_flits = int(throughput * capacity * 1000 * cfg.num_nodes)
    r.deadlocks = deadlocks
    return r


def make_sweep(points):
    loads = [p[0] for p in points]
    results = [fake_result(*p) for p in points]
    return SweepResult("test", loads, results, capacity=1.0)


def test_default_loads_monotone():
    loads = default_loads()
    assert loads == sorted(loads)
    assert default_loads(dense=True)[0] < loads[0] + 1e-9


def test_saturation_detection():
    sweep = make_sweep([(0.2, 0.2), (0.4, 0.4), (0.6, 0.45), (0.8, 0.45)])
    assert sweep.saturation_load == 0.6


def test_no_saturation():
    sweep = make_sweep([(0.2, 0.2), (0.4, 0.39)])
    assert sweep.saturation_load is None


def test_series_accessors():
    sweep = make_sweep([(0.2, 0.2, 1), (0.4, 0.4, 3)])
    assert sweep.deadlock_counts == [1, 3]
    assert sweep.normalized_deadlocks == [0.01, 0.03]
    assert len(sweep.rows()) == 2
    assert sweep.at_load(0.4).deadlocks == 3


def test_rows_have_expected_keys():
    sweep = make_sweep([(0.2, 0.2)])
    row = sweep.rows()[0]
    for key in (
        "load",
        "throughput",
        "deadlocks",
        "norm_deadlocks",
        "avg_deadlock_set",
        "blocked_pct",
        "latency",
    ):
        assert key in row


def test_run_load_sweep_end_to_end():
    cfg = tiny_default(measure_cycles=300, warmup_cycles=50)
    seen = []
    sweep = run_load_sweep(
        cfg, [0.1, 0.3], label="it", progress=lambda l, r: seen.append(l)
    )
    assert sweep.label == "it"
    assert seen == [0.1, 0.3]
    assert len(sweep.results) == 2
    assert all(r.measured_cycles == 300 for r in sweep.results)
    # more offered load delivers at least as much below saturation
    assert sweep.results[1].delivered >= sweep.results[0].delivered
