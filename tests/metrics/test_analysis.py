"""Tests for post-hoc analysis of detection records."""

import pytest

from repro.core.cycles import CycleCount
from repro.core.detector import DeadlockEvent, DetectionRecord
from repro.metrics.analysis import (
    analyze_records,
    blocked_vs_cycles_series,
    deadlock_probability_given_cycles,
    interarrival_times,
)


def event(cycle, dset=3, rset=8, density=1, dependents=()):
    return DeadlockEvent(
        cycle=cycle,
        knot=frozenset(range(rset)),
        deadlock_set=frozenset(range(dset)),
        resource_set=frozenset(range(rset)),
        knot_cycle_density=density,
        density_saturated=False,
        dependent=frozenset(dependents),
        transient_dependent=frozenset(),
    )


def record(cycle, events=(), blocked=0, cycles=0):
    return DetectionRecord(
        cycle=cycle,
        events=list(events),
        cwg_vertices=10,
        cwg_arcs=10,
        blocked_messages=blocked,
        messages_in_network=max(blocked, 1),
        cycle_count=CycleCount(cycles, False),
    )


def test_interarrival_times():
    records = [
        record(50),
        record(100, [event(100)]),
        record(150),
        record(200, [event(200)]),
        record(250, [event(250)]),
    ]
    assert interarrival_times(records) == [100, 50]


def test_analysis_aggregates():
    records = [
        record(50, [event(50, dset=2, rset=4, density=1)], blocked=5, cycles=2),
        record(100, blocked=1, cycles=0),
        record(150, [event(150, dset=6, rset=12, density=5,
                           dependents=(9, 10))], blocked=9, cycles=8),
    ]
    a = analyze_records(records)
    assert a.detections == 3
    assert a.detections_with_deadlock == 2
    assert a.total_deadlocks == 2
    assert a.mean_deadlock_set == 4.0
    assert a.mean_resource_set == 8.0
    assert a.mean_knot_density == 3.0
    assert a.max_knot_density == 5
    assert a.single_cycle_fraction == 0.5
    assert a.mean_dependents_per_deadlock == 1.0
    assert a.mean_interarrival == 100.0
    # blocked and cycles rise together here: strong positive correlation
    assert a.blocked_cycle_correlation > 0.9
    assert "2 deadlocks" in a.summary()


def test_analysis_of_empty_records():
    a = analyze_records([])
    assert a.total_deadlocks == 0
    assert a.mean_interarrival == 0.0
    assert a.blocked_cycle_correlation == 0.0


def test_probability_given_cycles():
    records = [
        record(50, cycles=0),
        record(100, [event(100)], cycles=10),
        record(150, cycles=10),
        record(200, [event(200)], cycles=120),
    ]
    p = deadlock_probability_given_cycles(records, thresholds=(1, 100, 1000))
    assert p[1] == pytest.approx(2 / 3)
    assert p[100] == 1.0
    assert p[1000] != p[1000]  # NaN: no eligible detections


def test_blocked_vs_cycles_series():
    records = [record(50, blocked=3, cycles=7), record(100, blocked=0, cycles=0)]
    assert blocked_vs_cycles_series(records) == [(3, 7), (0, 0)]


def test_analysis_on_real_run():
    from repro.config import tiny_default
    from repro.network.simulator import NetworkSimulator

    cfg = tiny_default(routing="dor", num_vcs=1, load=1.0, measure_cycles=2500,
                       seed=3)
    sim = NetworkSimulator(cfg)
    result = sim.run()
    a = analyze_records(sim.detector.records)
    assert a.total_deadlocks == len(sim.detector.events)
    if a.total_deadlocks:
        assert a.single_cycle_fraction == 1.0  # DOR: only single-cycle
        assert a.mean_deadlock_set >= 2
