"""Regression: a mid-chunk worker failure must not drop sibling results.

Before the fix, ``_run_batch`` raised at the first failed point, discarding
the results and observability snapshots of every sibling point that had
already completed in the same batch.  The batch is now fully drained and
the raised :class:`~repro.errors.SimulationError` carries the survivors.
"""

import pytest

from repro.config import tiny_default
from repro.errors import SimulationError
from repro.metrics.parallel import run_matrix_parallel

FAST = dict(measure_cycles=300, warmup_cycles=50)


def _mixed_configs():
    good_a = tiny_default(**FAST, load=0.3, obs_level=1)
    # num_vcs=0 fails validation inside the worker -> a real worker failure
    bad = tiny_default(**FAST, load=0.5).replace(num_vcs=0)
    good_b = tiny_default(**FAST, load=0.7, obs_level=1)
    return good_a, bad, good_b


@pytest.mark.parametrize("workers", [1, 2])
def test_sibling_results_and_obs_survive_mid_batch_failure(workers):
    good_a, bad, good_b = _mixed_configs()
    with pytest.raises(SimulationError) as excinfo:
        run_matrix_parallel(
            [good_a, bad, good_b], max_workers=workers, with_obs=True
        )
    error = excinfo.value
    assert bad.label() in str(error)
    # every sibling's result AND obs snapshot survived, in submission order
    assert error.partial_configs == [good_a, good_b]
    assert len(error.partial_results) == 2
    assert [s is not None for s in error.partial_snapshots] == [True, True]
    assert [f.label for f in error.failures] == [bad.label()]


def test_all_failures_reported_not_just_first():
    good_a, bad, _ = _mixed_configs()
    bad2 = bad.replace(load=0.9)
    with pytest.raises(SimulationError) as excinfo:
        run_matrix_parallel([bad, good_a, bad2], max_workers=2, with_obs=True)
    error = excinfo.value
    assert [f.label for f in error.failures] == [bad.label(), bad2.label()]
    assert "1 more failed point(s)" in str(error)
    assert error.partial_configs == [good_a]


def test_progress_fires_for_survivors():
    good_a, bad, good_b = _mixed_configs()
    seen = []
    with pytest.raises(SimulationError):
        run_matrix_parallel(
            [good_a, bad, good_b],
            max_workers=2,
            progress=lambda cfg, res: seen.append(cfg.load),
        )
    assert seen == [good_a.load, good_b.load]
