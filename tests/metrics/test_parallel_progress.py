"""Chunked submission, progress callbacks and labelled worker failures."""

import pytest

from repro.config import tiny_default
from repro.errors import SimulationError
from repro.metrics.parallel import (
    _chunksize,
    run_load_sweep_parallel,
    run_matrix_parallel,
)
from repro.metrics.sweep import run_load_sweep

FAST = dict(measure_cycles=400, warmup_cycles=50)


class TestChunksize:
    def test_few_tasks_never_starve_the_pool(self):
        assert _chunksize(1, 8) == 1
        assert _chunksize(8, 8) == 1
        assert _chunksize(31, 8) == 1

    def test_large_batches_amortize(self):
        assert _chunksize(64, 4) == 4
        assert _chunksize(1000, 8) == 31


class TestProgress:
    def test_sweep_progress_in_load_order(self):
        cfg = tiny_default(**FAST)
        loads = [0.2, 0.4, 0.6]
        seen = []
        sweep = run_load_sweep_parallel(
            cfg,
            loads,
            max_workers=2,
            progress=lambda load, result: seen.append((load, result.delivered)),
        )
        assert [load for load, _ in seen] == loads
        assert [d for _, d in seen] == [r.delivered for r in sweep.results]

    def test_sweep_progress_matches_serial_callback(self):
        """Same callback signature and sequence as the serial sweep."""
        cfg = tiny_default(**FAST)
        loads = [0.3, 0.5]
        serial_seen, parallel_seen = [], []
        run_load_sweep(
            cfg, loads, progress=lambda l, r: serial_seen.append((l, r.delivered))
        )
        run_load_sweep_parallel(
            cfg,
            loads,
            max_workers=2,
            progress=lambda l, r: parallel_seen.append((l, r.delivered)),
        )
        assert parallel_seen == serial_seen

    def test_serial_fallback_progress(self):
        cfg = tiny_default(**FAST)
        seen = []
        run_load_sweep_parallel(
            cfg, [0.3], max_workers=1, progress=lambda l, r: seen.append(l)
        )
        assert seen == [0.3]

    def test_matrix_progress_in_submission_order(self):
        cfgs = [tiny_default(load=l, **FAST) for l in (0.2, 0.4, 0.6)]
        seen = []
        run_matrix_parallel(
            cfgs, max_workers=2, progress=lambda cfg, r: seen.append(cfg.load)
        )
        assert seen == [0.2, 0.4, 0.6]


class TestFailureLabelling:
    def test_worker_failure_names_the_config(self):
        good = tiny_default(**FAST)
        bad = good.replace(num_vcs=0)  # rejected by validate() in the worker
        with pytest.raises(SimulationError) as exc_info:
            run_matrix_parallel([good, bad, good], max_workers=2)
        assert bad.label() in str(exc_info.value)
        assert "num_vcs" in str(exc_info.value)  # original cause included

    def test_serial_failure_names_the_config(self):
        bad = tiny_default(**FAST).replace(num_vcs=0)
        with pytest.raises(SimulationError) as exc_info:
            run_matrix_parallel([bad], max_workers=1)
        assert bad.label() in str(exc_info.value)
