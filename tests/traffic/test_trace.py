"""Tests for trace-driven workloads."""

import random

import pytest

from repro.config import tiny_default
from repro.errors import ConfigurationError
from repro.network.simulator import NetworkSimulator
from repro.network.topology import KAryNCube
from repro.traffic.trace import (
    Trace,
    TraceGenerator,
    TraceRecord,
    all_to_all_trace,
    butterfly_trace,
    stencil_trace,
)


@pytest.fixture
def torus():
    return KAryNCube(4, 2)


class TestTraceFormat:
    def test_parse_roundtrip(self):
        text = "# comment\n0 0 1 4\n10 2 3 8\n"
        trace = Trace.parse(text)
        assert len(trace) == 2
        assert trace.records[0] == TraceRecord(0, 0, 1, 4)
        assert trace.total_flits == 12
        assert trace.last_cycle == 10
        reparsed = Trace.parse(trace.dump())
        assert reparsed.records == trace.records

    def test_records_sorted_by_cycle(self):
        trace = Trace([TraceRecord(50, 0, 1, 1), TraceRecord(5, 1, 2, 1)])
        assert [r.cycle for r in trace.records] == [5, 50]

    def test_parse_errors(self):
        with pytest.raises(ConfigurationError):
            Trace.parse("1 2 3\n")  # wrong field count
        with pytest.raises(ConfigurationError):
            Trace.parse("a b c d\n")  # non-integer

    def test_validate_rejects_bad_records(self, torus):
        for rec in (
            TraceRecord(-1, 0, 1, 1),
            TraceRecord(0, 0, 99, 1),
            TraceRecord(0, 3, 3, 1),
            TraceRecord(0, 0, 1, 0),
        ):
            with pytest.raises(ConfigurationError):
                Trace([rec]).validate(torus.num_nodes)

    def test_load_from_file(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("0 0 1 4\n")
        assert len(Trace.load(p)) == 1


class TestTraceGenerator:
    def test_emits_at_correct_cycles(self, torus):
        trace = Trace([TraceRecord(2, 0, 1, 4), TraceRecord(5, 1, 2, 4)])
        gen = TraceGenerator(torus, trace)
        assert gen.tick(0, []) == []
        assert gen.tick(1, []) == []
        (m,) = gen.tick(2, [])
        assert (m.src, m.dest) == (0, 1)
        assert gen.tick(3, []) == []
        (m2,) = gen.tick(5, [])
        assert (m2.src, m2.dest) == (1, 2)
        assert gen.exhausted

    def test_catches_up_after_gap(self, torus):
        trace = Trace([TraceRecord(1, 0, 1, 4), TraceRecord(2, 1, 2, 4)])
        gen = TraceGenerator(torus, trace)
        batch = gen.tick(10, [])  # both records now due
        assert len(batch) == 2

    def test_ids_unique_increasing(self, torus):
        trace = stencil_trace(torus, iterations=2, period=10, length=2)
        gen = TraceGenerator(torus, trace)
        ids = [m.id for c in range(100) for m in gen.tick(c, [])]
        assert ids == sorted(set(ids))


class TestSyntheticTraces:
    def test_stencil_sends_to_every_neighbour(self, torus):
        trace = stencil_trace(torus, iterations=1, length=4)
        # 16 nodes x 4 neighbours
        assert len(trace) == 64
        for r in trace:
            assert torus.min_distance(r.src, r.dest) == 1

    def test_butterfly_stage_structure(self, torus):
        trace = butterfly_trace(torus, period=100)
        stages = {r.cycle for r in trace}
        assert len(stages) == 4  # log2(16)
        for r in trace:
            assert bin(r.src ^ r.dest).count("1") == 1

    def test_butterfly_requires_power_of_two(self):
        odd = KAryNCube(3, 2)
        with pytest.raises(ConfigurationError):
            butterfly_trace(odd)

    def test_all_to_all_covers_every_pair(self, torus):
        trace = all_to_all_trace(torus, period=10)
        pairs = {(r.src, r.dest) for r in trace}
        assert len(pairs) == 16 * 15  # every ordered pair exactly once

    def test_all_to_all_shuffled(self, torus):
        trace = all_to_all_trace(torus, rng=random.Random(0))
        assert len(trace) > 0
        for r in trace:
            assert r.src != r.dest


class TestTraceSimulation:
    def test_stencil_trace_delivers_fully(self, torus):
        cfg = tiny_default(routing="tfar", check_invariants=True)
        trace = stencil_trace(torus, iterations=3, period=150, length=4)
        sim = NetworkSimulator(cfg, trace=trace)
        result = sim.run_to_drain(max_cycles=5_000)
        assert result.delivered == len(trace)

    def test_butterfly_trace_delivers_fully(self, torus):
        cfg = tiny_default(routing="dor", num_vcs=2)
        trace = butterfly_trace(torus, period=200, length=4)
        sim = NetworkSimulator(cfg, trace=trace)
        result = sim.run_to_drain(max_cycles=5_000)
        assert result.delivered == len(trace)

    def test_burst_all_to_all_with_recovery(self, torus):
        """Zero-period all-to-all is maximal correlation: deadlocks may
        form, but recovery must let every message finish (some via the
        recovery lane)."""
        cfg = tiny_default(routing="dor", num_vcs=1, recovery="disha")
        trace = all_to_all_trace(torus, period=0, length=4)
        sim = NetworkSimulator(cfg, trace=trace)
        result = sim.run_to_drain(max_cycles=60_000)
        assert result.delivered + result.recovered == len(trace)

    def test_trace_run_stops_at_max_cycles(self, torus):
        cfg = tiny_default(routing="dor", num_vcs=1, recovery="none")
        trace = all_to_all_trace(torus, period=0, length=4)
        sim = NetworkSimulator(cfg, trace=trace)
        sim.run_to_drain(max_cycles=500)
        assert sim.cycle <= 500
