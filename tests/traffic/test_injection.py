"""Unit tests for the message generator and load normalization."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.network.topology import KAryNCube
from repro.traffic.injection import MessageGenerator
from repro.traffic.patterns import UniformTraffic


@pytest.fixture
def torus():
    return KAryNCube(4, 2)


def make_gen(torus, load=0.5, length=8, cap=None, seed=0):
    return MessageGenerator(
        torus, UniformTraffic(torus), load, length, random.Random(seed), cap
    )


def test_zero_load_generates_nothing(torus):
    gen = make_gen(torus, load=0.0)
    for cycle in range(100):
        assert gen.tick(cycle, [0] * 16) == []


def test_rate_matches_load(torus):
    load, length = 0.5, 8
    gen = make_gen(torus, load=load, length=length)
    cycles = 4000
    total = sum(len(gen.tick(c, [0] * 16)) for c in range(cycles))
    expected = (
        load
        * torus.capacity_flits_per_node_cycle
        / length
        * cycles
        * torus.num_nodes
    )
    assert total == pytest.approx(expected, rel=0.1)


def test_message_fields(torus):
    gen = make_gen(torus, load=1.0)
    msgs = []
    cycle = 0
    while len(msgs) < 20:
        msgs.extend(gen.tick(cycle, [0] * 16))
        cycle += 1
    ids = [m.id for m in msgs]
    assert ids == sorted(set(ids))  # unique, increasing
    for m in msgs:
        assert m.src != m.dest
        assert m.length == 8
        assert 0 <= m.src < 16 and 0 <= m.dest < 16


def test_queue_cap_suppresses(torus):
    gen = make_gen(torus, load=2.0, cap=0)
    out = [gen.tick(c, [1] * 16) for c in range(50)]
    assert all(batch == [] for batch in out)
    assert gen.suppressed > 0


def test_probability_clamped_at_one(torus):
    gen = make_gen(torus, load=100.0, length=1)
    assert gen.message_probability == 1.0
    batch = gen.tick(0, [0] * 16)
    assert len(batch) == 16  # every node generated


def test_invalid_parameters(torus):
    with pytest.raises(ConfigurationError):
        make_gen(torus, load=-0.5)
    with pytest.raises(ConfigurationError):
        MessageGenerator(
            torus, UniformTraffic(torus), 0.5, 0, random.Random(0), None
        )


def test_deterministic_given_seed(torus):
    a = make_gen(torus, seed=7)
    b = make_gen(torus, seed=7)
    for cycle in range(200):
        batch_a = a.tick(cycle, [0] * 16)
        batch_b = b.tick(cycle, [0] * 16)
        assert [(m.src, m.dest) for m in batch_a] == [
            (m.src, m.dest) for m in batch_b
        ]
