"""Unit tests for message-length distributions (hybrid message lengths)."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.traffic.lengths import FixedLength, LengthMix, UniformLengthRange


class TestFixed:
    def test_constant(self):
        f = FixedLength(7)
        rng = random.Random(0)
        assert all(f(rng) == 7 for _ in range(20))
        assert f.mean == 7.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            FixedLength(0)


class TestMix:
    def test_mean(self):
        mix = LengthMix([(4, 0.5), (12, 0.5)])
        assert mix.mean == pytest.approx(8.0)

    def test_weights_normalized(self):
        mix = LengthMix([(4, 2), (12, 2)])
        assert mix.mean == pytest.approx(8.0)

    def test_only_listed_lengths_drawn(self):
        mix = LengthMix([(2, 0.3), (8, 0.7)])
        rng = random.Random(1)
        drawn = {mix(rng) for _ in range(500)}
        assert drawn == {2, 8}

    def test_frequencies_respect_weights(self):
        mix = LengthMix([(2, 0.8), (32, 0.2)])
        rng = random.Random(2)
        n = 8000
        short = sum(1 for _ in range(n) if mix(rng) == 2)
        assert short / n == pytest.approx(0.8, abs=0.03)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            LengthMix([])
        with pytest.raises(ConfigurationError):
            LengthMix([(0, 1.0)])
        with pytest.raises(ConfigurationError):
            LengthMix([(4, 0.0)])


class TestRange:
    def test_bounds_inclusive(self):
        r = UniformLengthRange(3, 5)
        rng = random.Random(3)
        drawn = {r(rng) for _ in range(500)}
        assert drawn == {3, 4, 5}
        assert r.mean == 4.0

    def test_degenerate_range(self):
        r = UniformLengthRange(4, 4)
        assert r(random.Random(0)) == 4

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            UniformLengthRange(0, 5)
        with pytest.raises(ConfigurationError):
            UniformLengthRange(5, 3)


class TestGeneratorIntegration:
    def test_flit_rate_invariant_under_mix(self):
        """A hybrid mix offers the same flit rate as fixed-length traffic."""
        from repro.network.topology import KAryNCube
        from repro.traffic.injection import MessageGenerator
        from repro.traffic.patterns import UniformTraffic

        topo = KAryNCube(4, 2)
        fixed = MessageGenerator(
            topo, UniformTraffic(topo), 0.5, 8, random.Random(0)
        )
        mixed = MessageGenerator(
            topo,
            UniformTraffic(topo),
            0.5,
            8,
            random.Random(0),
            lengths=LengthMix([(4, 0.5), (12, 0.5)]),  # mean 8
        )
        assert mixed.message_probability == pytest.approx(
            fixed.message_probability
        )
        cycles = 3000
        fixed_flits = sum(
            m.length for c in range(cycles) for m in fixed.tick(c, [0] * 16)
        )
        mixed_flits = sum(
            m.length for c in range(cycles) for m in mixed.tick(c, [0] * 16)
        )
        assert mixed_flits == pytest.approx(fixed_flits, rel=0.1)

    def test_simulation_with_hybrid_lengths(self):
        from repro.config import tiny_default
        from repro.network.simulator import NetworkSimulator

        cfg = tiny_default(
            length_mix=((2, 0.7), (16, 0.3)),
            load=0.5,
            measure_cycles=600,
            check_invariants=True,
        )
        result = NetworkSimulator(cfg).run()
        assert result.delivered > 0

    def test_invalid_length_mix_config(self):
        from repro.config import tiny_default
        from repro.errors import ConfigurationError as CE

        with pytest.raises(CE):
            tiny_default(length_mix=((0, 1.0),)).validate()
