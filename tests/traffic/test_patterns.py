"""Unit tests for traffic patterns."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.network.topology import KAryNCube
from repro.traffic.patterns import (
    BitComplementTraffic,
    BitReversalTraffic,
    HotSpotTraffic,
    PerfectShuffleTraffic,
    TornadoTraffic,
    TransposeTraffic,
    UniformTraffic,
    make_pattern,
)


@pytest.fixture
def torus():
    return KAryNCube(4, 2)  # 16 nodes, 4 address bits


class TestUniform:
    def test_never_self(self, torus):
        p = UniformTraffic(torus)
        rng = random.Random(1)
        for src in range(torus.num_nodes):
            for _ in range(50):
                assert p.dest_for(src, rng) != src

    def test_covers_all_destinations(self, torus):
        p = UniformTraffic(torus)
        rng = random.Random(2)
        seen = {p.dest_for(0, rng) for _ in range(2000)}
        assert seen == set(range(1, 16))

    def test_roughly_uniform(self, torus):
        p = UniformTraffic(torus)
        rng = random.Random(3)
        counts = [0] * 16
        n = 6000
        for _ in range(n):
            counts[p.dest_for(5, rng)] += 1
        expected = n / 15
        for dest, c in enumerate(counts):
            if dest == 5:
                assert c == 0
            else:
                assert abs(c - expected) < 5 * expected**0.5


class TestPermutations:
    def test_bit_reversal_fixed_points_return_none(self, torus):
        p = BitReversalTraffic(torus)
        rng = random.Random(0)
        # 0b0000 and 0b1001 etc. are palindromic: no traffic
        assert p.dest_for(0, rng) is None
        assert p.dest_for(0b1001, rng) is None

    def test_bit_reversal_mapping(self, torus):
        p = BitReversalTraffic(torus)
        rng = random.Random(0)
        assert p.dest_for(0b0001, rng) == 0b1000
        assert p.dest_for(0b0011, rng) == 0b1100

    def test_bit_reversal_is_involution(self, torus):
        p = BitReversalTraffic(torus)
        rng = random.Random(0)
        for src in range(16):
            dest = p.dest_for(src, rng)
            if dest is not None:
                assert p.dest_for(dest, rng) == src

    def test_transpose_swaps_coordinates(self, torus):
        p = TransposeTraffic(torus)
        rng = random.Random(0)
        for src in range(16):
            dest = p.dest_for(src, rng)
            x, y = torus.coords(src)
            if x == y:
                assert dest is None
            else:
                assert torus.coords(dest) == (y, x)

    def test_perfect_shuffle_rotates_bits(self, torus):
        p = PerfectShuffleTraffic(torus)
        rng = random.Random(0)
        assert p.dest_for(0b0001, rng) == 0b0010
        assert p.dest_for(0b1000, rng) == 0b0001
        assert p.dest_for(0b1111, rng) is None  # fixed point

    def test_bit_complement(self, torus):
        p = BitComplementTraffic(torus)
        rng = random.Random(0)
        assert p.dest_for(0, rng) == 15
        assert p.dest_for(0b0101, rng) == 0b1010

    def test_power_of_two_required(self):
        odd = KAryNCube(3, 2)  # 9 nodes
        with pytest.raises(ConfigurationError):
            BitReversalTraffic(odd)

    def test_transpose_needs_even_bits(self):
        t = KAryNCube(8, 1)  # 8 nodes, 3 bits
        with pytest.raises(ConfigurationError):
            TransposeTraffic(t)


class TestTornado:
    def test_halfway_shift(self, torus):
        p = TornadoTraffic(torus)
        rng = random.Random(0)
        dest = p.dest_for(0, rng)
        # k=4: shift (k-1)//2 = 1 in each dimension
        assert torus.coords(dest) == (1, 1)

    def test_constant_distance(self, torus):
        p = TornadoTraffic(torus)
        rng = random.Random(0)
        dists = {
            torus.min_distance(s, p.dest_for(s, rng))
            for s in range(torus.num_nodes)
        }
        assert len(dists) == 1


class TestHotSpot:
    def test_hotspot_receives_excess_traffic(self, torus):
        p = HotSpotTraffic(torus, hotspot=5, fraction=0.3)
        rng = random.Random(4)
        counts = [0] * 16
        for _ in range(4000):
            counts[p.dest_for(0, rng)] += 1
        others = [c for i, c in enumerate(counts) if i not in (0, 5)]
        assert counts[5] > 3 * max(others)

    def test_hotspot_node_itself_sends_uniform(self, torus):
        p = HotSpotTraffic(torus, hotspot=5, fraction=1.0)
        rng = random.Random(4)
        for _ in range(100):
            assert p.dest_for(5, rng) != 5

    def test_invalid_fraction(self, torus):
        with pytest.raises(ConfigurationError):
            HotSpotTraffic(torus, fraction=0.0)
        with pytest.raises(ConfigurationError):
            HotSpotTraffic(torus, fraction=1.5)

    def test_invalid_hotspot_node(self, torus):
        with pytest.raises(ConfigurationError):
            HotSpotTraffic(torus, hotspot=99)


class TestFactory:
    def test_all_names(self, torus):
        for name in (
            "uniform",
            "bit-reversal",
            "transpose",
            "perfect-shuffle",
            "bit-complement",
            "tornado",
            "hot-spot",
        ):
            assert make_pattern(name, torus).name == name

    def test_unknown(self, torus):
        with pytest.raises(ConfigurationError):
            make_pattern("mystery", torus)

    def test_kwargs_passed(self, torus):
        p = make_pattern("hot-spot", torus, fraction=0.5)
        assert p.fraction == 0.5
