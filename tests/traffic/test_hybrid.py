"""Unit tests for hybrid (mixture) traffic patterns."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.network.topology import KAryNCube
from repro.traffic.patterns import HybridTraffic, TransposeTraffic, make_pattern


@pytest.fixture
def torus():
    return KAryNCube(4, 2)


def test_components_by_name(torus):
    h = HybridTraffic(torus, [("uniform", 0.5), ("transpose", 0.5)])
    assert len(h.components) == 2


def test_components_by_instance(torus):
    h = HybridTraffic(torus, [(TransposeTraffic(torus), 1.0)])
    rng = random.Random(0)
    # pure transpose through the hybrid wrapper
    for src in range(16):
        x, y = torus.coords(src)
        expected = None if x == y else torus.node_at((y, x))
        assert h.dest_for(src, rng) == expected


def test_mixture_draws_from_both(torus):
    h = HybridTraffic(torus, [("uniform", 0.5), ("bit-complement", 0.5)])
    rng = random.Random(1)
    complement_hits = 0
    trials = 2000
    for _ in range(trials):
        dest = h.dest_for(3, rng)
        if dest == 12:  # ~(3) in 4 bits
            complement_hits += 1
    # bit-complement contributes ~50%, uniform adds ~1/15 of the rest
    assert complement_hits / trials == pytest.approx(0.53, abs=0.06)


def test_weights_respected(torus):
    h = HybridTraffic(torus, [("uniform", 0.9), ("bit-complement", 0.1)])
    rng = random.Random(2)
    hits = sum(1 for _ in range(4000) if h.dest_for(3, rng) == 12)
    assert hits / 4000 < 0.25


def test_empty_components_rejected(torus):
    with pytest.raises(ConfigurationError):
        HybridTraffic(torus, [])
    with pytest.raises(ConfigurationError):
        HybridTraffic(torus, None)


def test_nested_hybrid_rejected(torus):
    inner = HybridTraffic(torus, [("uniform", 1.0)])
    with pytest.raises(ConfigurationError):
        HybridTraffic(torus, [(inner, 1.0)])


def test_nonpositive_weight_rejected(torus):
    with pytest.raises(ConfigurationError):
        HybridTraffic(torus, [("uniform", 0.0)])


def test_factory_integration(torus):
    h = make_pattern("hybrid", torus, components=[("uniform", 1.0)])
    assert isinstance(h, HybridTraffic)


def test_simulation_with_hybrid_traffic():
    from repro.config import tiny_default
    from repro.network.simulator import NetworkSimulator

    cfg = tiny_default(
        traffic="hybrid",
        traffic_mix=(("uniform", 0.6), ("hot-spot", 0.4)),
        load=0.4,
        measure_cycles=600,
    )
    result = NetworkSimulator(cfg).run()
    assert result.delivered > 0


def test_hybrid_without_mix_rejected():
    from repro.config import tiny_default

    with pytest.raises(ConfigurationError):
        tiny_default(traffic="hybrid").validate()
