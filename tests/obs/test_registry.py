"""Unit tests for the metrics registry (counters/gauges/histograms)."""

import json
import random

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    merge_snapshots,
)


class TestHistogramBucketing:
    def test_value_lands_in_first_bucket_with_bound_gte_value(self):
        h = Histogram(bounds=(1, 5, 10))
        h.observe(0)  # <= 1  -> bin 0
        h.observe(1)  # == 1  -> bin 0 (bounds are inclusive upper bounds)
        h.observe(2)  # <= 5  -> bin 1
        h.observe(5)  # == 5  -> bin 1
        h.observe(7)  # <= 10 -> bin 2
        h.observe(11)  # overflow bin
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.total == 26
        assert h.mean == pytest.approx(26 / 6)

    def test_overflow_bin_exists_beyond_last_bound(self):
        h = Histogram(bounds=(10,))
        assert len(h.counts) == 2
        h.observe(1e9)
        assert h.counts == [0, 1]

    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(5, 5))
        with pytest.raises(ValueError):
            Histogram(bounds=(5, 1))

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0


class TestInstruments:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_set_and_set_max(self):
        g = Gauge()
        g.set(3.0)
        g.set_max(2.0)
        assert g.value == 3.0
        g.set_max(7.0)
        assert g.value == 7.0

    def test_registry_instruments_are_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_set_counters_bulk_load_with_prefix(self):
        reg = MetricsRegistry()
        reg.set_counters({"hits": 3, "misses": 1}, prefix="cache/")
        snap = reg.snapshot()
        assert snap["counters"] == {"cache/hits": 3, "cache/misses": 1}

    def test_snapshot_is_json_able(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2.5)
        reg.histogram("h").observe(3)
        text = json.dumps(reg.snapshot())
        restored = json.loads(text)
        assert restored["counters"] == {"c": 1}
        assert restored["gauges"] == {"g": 2.5}
        assert restored["histograms"]["h"]["count"] == 1


class TestNullRegistry:
    def test_shared_noop_instruments(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.counter("x") is NULL_REGISTRY.counter("y")
        NULL_REGISTRY.counter("x").inc(100)
        assert NULL_REGISTRY.counter("x").value == 0
        NULL_REGISTRY.gauge("g").set(9)
        NULL_REGISTRY.gauge("g").set_max(9)
        assert NULL_REGISTRY.gauge("g").value == 0.0
        NULL_REGISTRY.histogram("h").observe(5)
        assert NULL_REGISTRY.histogram("h").count == 0
        NULL_REGISTRY.set_counters({"a": 1})
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_null_registry_is_a_registry(self):
        assert isinstance(NULL_REGISTRY, MetricsRegistry)
        assert isinstance(NullRegistry(), MetricsRegistry)


def _random_snapshot(rng):
    reg = MetricsRegistry()
    for name in ("a", "b", "c"):
        if rng.random() < 0.8:
            reg.counter(name).inc(rng.randrange(10))
    for name in ("g1", "g2"):
        if rng.random() < 0.8:
            reg.gauge(name).set(rng.randrange(100))
    h = reg.histogram("h", bounds=(1, 5, 10))
    for _ in range(rng.randrange(6)):
        h.observe(rng.randrange(15))
    snap = reg.snapshot()
    snap["phases"] = {
        "engine/allocate": {
            # dyadic fractions add exactly in binary floating point, keeping
            # the associativity assertion exact rather than approximate
            "total_s": rng.randrange(40) / 8,
            "calls": rng.randrange(1, 50),
        }
    }
    snap["trace"] = {"events": rng.randrange(100), "dropped": rng.randrange(3)}
    return snap


class TestMergeSnapshots:
    def test_counters_sum_gauges_max_bins_sum(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(5)
        a.histogram("h", bounds=(1, 5)).observe(3)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.counter("only_b").inc(1)
        b.gauge("g").set(4)
        b.histogram("h", bounds=(1, 5)).observe(7)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {"c": 5, "only_b": 1}
        assert merged["gauges"] == {"g": 5}
        assert merged["histograms"]["h"]["counts"] == [0, 1, 1]
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["total"] == 10

    def test_none_entries_skipped_and_all_none_is_none(self):
        assert merge_snapshots([None, None]) is None
        reg = MetricsRegistry()
        reg.counter("c").inc()
        merged = merge_snapshots([None, reg.snapshot(), None])
        assert merged["counters"] == {"c": 1}

    def test_merge_does_not_mutate_inputs(self):
        a = MetricsRegistry()
        a.counter("c").inc(1)
        b = MetricsRegistry()
        b.counter("c").inc(2)
        sa, sb = a.snapshot(), b.snapshot()
        merge_snapshots([sa, sb])
        assert sa["counters"] == {"c": 1}
        assert sb["counters"] == {"c": 2}

    def test_mismatched_histogram_bounds_rejected(self):
        a = MetricsRegistry()
        a.histogram("h", bounds=(1, 2)).observe(1)
        b = MetricsRegistry()
        b.histogram("h", bounds=(1, 3)).observe(1)
        with pytest.raises(ValueError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_is_associative(self):
        """(a+b)+c == a+(b+c) over randomized snapshots — the property that
        makes pool-order-independent sweep rollups correct."""
        rng = random.Random(42)
        for _ in range(25):
            a, b, c = (_random_snapshot(rng) for _ in range(3))
            left = merge_snapshots([merge_snapshots([a, b]), c])
            right = merge_snapshots([a, merge_snapshots([b, c])])
            assert left == right

    def test_merge_is_commutative_up_to_float_ordering(self):
        rng = random.Random(7)
        a, b = _random_snapshot(rng), _random_snapshot(rng)
        ab = merge_snapshots([a, b])
        ba = merge_snapshots([b, a])
        assert ab["counters"] == ba["counters"]
        assert ab["gauges"] == ba["gauges"]
        assert ab["histograms"] == ba["histograms"]
        assert ab["trace"] == ba["trace"]
        for name in ab["phases"]:
            assert ab["phases"][name]["calls"] == ba["phases"][name]["calls"]
            assert ab["phases"][name]["total_s"] == pytest.approx(
                ba["phases"][name]["total_s"]
            )
