"""Unit tests for the phase profiler and its trace-span emission."""

from repro.obs.profiler import PhaseProfiler, PhaseTimer
from repro.obs.trace import TraceRecorder


def test_timer_accumulates_time_and_calls():
    prof = PhaseProfiler()
    t = prof.timer("engine/generate")
    assert isinstance(t, PhaseTimer)
    for _ in range(3):
        with t:
            pass
    assert t.calls == 3
    assert t.total >= 0.0
    assert prof.timer("engine/generate") is t


def test_add_manual_accounting():
    prof = PhaseProfiler()
    prof.add("detect/census", 0.25)
    prof.add("detect/census", 0.25, calls=4)
    snap = prof.snapshot()
    assert snap["detect/census"]["total_s"] == 0.5
    assert snap["detect/census"]["calls"] == 5


def test_reset_zeroes_but_keeps_timer_objects():
    prof = PhaseProfiler()
    t = prof.timer("engine/move")
    with t:
        pass
    prof.add("detect/knots", 1.0)
    prof.reset()
    assert prof.timer("engine/move") is t
    assert t.total == 0.0 and t.calls == 0
    assert prof.snapshot()["detect/knots"] == {"total_s": 0.0, "calls": 0}


def test_timer_exit_emits_trace_span():
    tracer = TraceRecorder(capacity=16)
    prof = PhaseProfiler(tracer)
    tracer.cycle = 42
    with prof.timer("engine/allocate"):
        pass
    assert len(tracer) == 1
    kind, name, cycle, _ts, _dur, _args = tracer.events[0]
    assert (kind, name, cycle) == ("X", "engine/allocate", 42)


def test_add_does_not_emit_span():
    tracer = TraceRecorder(capacity=16)
    prof = PhaseProfiler(tracer)
    prof.add("detect/partition", 0.1)
    assert len(tracer) == 0


def test_table_renders_every_recorded_phase():
    prof = PhaseProfiler()
    prof.add("engine/allocate", 0.3, calls=10)
    prof.add("engine/move", 0.1, calls=10)
    text = prof.table("phase profile")
    assert "phase profile" in text
    assert "engine/allocate" in text and "engine/move" in text
    # widest share first
    assert text.index("engine/allocate") < text.index("engine/move")
    assert PhaseProfiler().table().endswith("(no phases recorded)")
