"""Unit tests for the trace ring buffer and its Chrome/JSONL exports."""

import json

import pytest

from repro.obs.trace import TraceRecorder


def test_ring_buffer_bounds_and_dropped_counter():
    tr = TraceRecorder(capacity=4)
    for i in range(7):
        tr.instant("block", msg=i)
    assert len(tr) == 4
    assert tr.dropped == 3
    assert tr.stats() == {"events": 4, "dropped": 3}
    # oldest events fell off the front: the survivors are the last four
    kept = [ev[5]["msg"] for ev in tr.events]
    assert kept == [3, 4, 5, 6]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)


def test_chrome_export_schema():
    """The export must carry the fields chrome://tracing / Perfetto parse:
    ``traceEvents`` array, ``ph`` in {"X","i"}, numeric ``ts`` (µs),
    ``dur`` on duration events, ``s`` scope on instants."""
    tr = TraceRecorder(capacity=16)
    tr.cycle = 5
    tr.span("engine/allocate", start_s=tr._t0 + 0.001, dur_s=0.002)
    tr.instant("deadlock", size=3)
    doc = tr.to_chrome()
    json.dumps(doc)  # JSON-serializable end to end

    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["otherData"]["recorded_events"] == 2
    assert doc["otherData"]["dropped_events"] == 0
    span, instant = doc["traceEvents"]

    assert span["ph"] == "X"
    assert span["name"] == "engine/allocate"
    assert span["ts"] == pytest.approx(1000, abs=1)  # µs
    assert span["dur"] == pytest.approx(2000, abs=1)
    assert span["cat"] == "phase"
    assert span["args"]["cycle"] == 5
    assert isinstance(span["pid"], int) and isinstance(span["tid"], int)

    assert instant["ph"] == "i"
    assert instant["s"] == "t"
    assert instant["cat"] == "event"
    assert instant["args"] == {"cycle": 5, "size": 3}
    assert "dur" not in instant


def test_jsonl_export_round_trips(tmp_path):
    tr = TraceRecorder(capacity=8)
    tr.instant("wake", msg=1)
    tr.cycle = 3
    tr.instant("recovery", victim=9)
    path = tmp_path / "t.jsonl"
    tr.write_jsonl(path)
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["name"] for r in rows] == ["wake", "recovery"]
    assert rows[1]["args"] == {"cycle": 3, "victim": 9}


def test_write_chrome_file_parses(tmp_path):
    tr = TraceRecorder(capacity=8)
    tr.span("engine/move", start_s=tr._t0, dur_s=0.001)
    path = tmp_path / "t.json"
    tr.write_chrome(path)
    doc = json.loads(path.read_text())
    assert doc["traceEvents"][0]["name"] == "engine/move"
