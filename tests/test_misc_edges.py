"""Edge-case tests across small utility surfaces."""

import pytest

from repro.errors import (
    ConfigurationError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, TopologyError, RoutingError,
                    SimulationError):
            assert issubclass(exc, ReproError)
        assert issubclass(ReproError, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise RoutingError("x")


class TestFormatTableEdges:
    def test_empty_rows(self):
        from repro.experiments.base import format_table

        table = format_table("T", ("a", "b"), [])
        assert "T" in table and "a" in table

    def test_inf_rendering(self):
        from repro.experiments.base import format_table

        table = format_table("T", ("x",), [(float("inf"),)])
        assert "inf" in table

    def test_large_float_compact(self):
        from repro.experiments.base import format_table

        table = format_table("T", ("x",), [(12345.678,)])
        assert "12345.7" in table


class TestSweepEdges:
    def test_at_load_missing_raises(self):
        from repro.config import tiny_default
        from repro.metrics.stats import RunResult
        from repro.metrics.sweep import SweepResult

        r = RunResult(config=tiny_default(), measured_cycles=10)
        sweep = SweepResult("t", [0.5], [r], capacity=1.0)
        with pytest.raises(ValueError):
            sweep.at_load(0.9)

    def test_empty_sweep_properties(self):
        from repro.metrics.sweep import SweepResult

        sweep = SweepResult("t", [], [], capacity=1.0)
        assert sweep.saturation_load is None
        assert sweep.throughputs == []
        assert sweep.rows() == []


class TestSummaryEdges:
    def test_summary_with_inf_normalized(self):
        from repro.config import tiny_default
        from repro.metrics.stats import RunResult

        r = RunResult(config=tiny_default(), measured_cycles=10)
        r.deadlocks = 3  # deadlocks but zero deliveries
        assert "inf" in r.summary()

    def test_label_uni_and_mesh(self):
        from repro.config import SimulationConfig

        uni = SimulationConfig(k=4, n=2, bidirectional=False)
        assert "uni" in uni.label()
        mesh = SimulationConfig(k=4, n=2, mesh=True, routing="negative-first")
        assert "mesh" in mesh.label()


class TestDescribeEventEdges:
    def test_dependents_rendered(self):
        from repro.core.detector import DeadlockEvent
        from repro.viz import describe_event

        event = DeadlockEvent(
            cycle=100,
            knot=frozenset({1, 2}),
            deadlock_set=frozenset({10, 11}),
            resource_set=frozenset({1, 2, 3}),
            knot_cycle_density=2,
            density_saturated=True,
            dependent=frozenset({20}),
            transient_dependent=frozenset({30}),
        )
        text = describe_event(event)
        assert "multi-cycle" in text
        assert "(capped)" in text
        assert "[20]" in text and "[30]" in text


class TestCycleCountRepr:
    def test_dataclass_equality(self):
        from repro.core.cycles import CycleCount

        assert CycleCount(3, False) == CycleCount(3, False)
        assert CycleCount(3, False) != CycleCount(3, True)
