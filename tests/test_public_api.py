"""Public-API surface stability: everything README/API.md promises exists."""

import repro


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_headline_names_importable():
    from repro import (
        ChannelWaitForGraph,
        DeadlockDetector,
        IrregularTorus,
        KAryNCube,
        Mesh,
        NetworkSimulator,
        SimulationConfig,
        bench_default,
        build_topology,
        count_simple_cycles,
        find_knots,
        make_pattern,
        make_routing,
        make_selection,
        paper_default,
        run_load_sweep,
        tiny_default,
    )

    headline = [
        ChannelWaitForGraph, DeadlockDetector, IrregularTorus, KAryNCube,
        Mesh, NetworkSimulator, SimulationConfig, bench_default,
        build_topology, count_simple_cycles, find_knots, make_pattern,
        make_routing, make_selection, paper_default, run_load_sweep,
        tiny_default,
    ]
    for obj in headline:
        name = getattr(obj, "__name__", None)
        assert name in repro.__all__, f"{name} imported but not in __all__"
        assert getattr(repro, name) is obj, f"repro.{name} rebound"
    assert callable(make_routing) and callable(build_topology)


def test_subpackage_api():
    from repro.core import IncrementalCWG, packet_wait_for_graph  # noqa: F401
    from repro.experiments import ALL_EXPERIMENTS
    from repro.metrics import analyze_records, replicate  # noqa: F401
    from repro.obs import Observer, TraceRecorder, merge_snapshots  # noqa: F401
    from repro.routing import certify_deadlock_free  # noqa: F401
    from repro.traffic.trace import Trace  # noqa: F401
    from repro.viz import render_occupancy  # noqa: F401

    assert len(ALL_EXPERIMENTS) == 17


def test_version():
    assert repro.__version__ == "1.0.0"


def test_cli_registry_coherent():
    from repro.cli import build_parser
    from repro.experiments import ALL_EXPERIMENTS, EXPERIMENT_ALIASES

    # every alias must resolve to a registered experiment id
    for alias, target in EXPERIMENT_ALIASES.items():
        assert target in ALL_EXPERIMENTS
        assert alias not in ALL_EXPERIMENTS

    parser = build_parser()
    sub = parser._subparsers._group_actions[0]
    for action in sub.choices["experiment"]._actions:
        if action.dest == "id":
            choices = set(action.choices) - {"all"} - set(EXPERIMENT_ALIASES)
            assert choices == set(ALL_EXPERIMENTS)
