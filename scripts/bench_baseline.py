#!/usr/bin/env python3
"""Deterministic performance baseline: writes ``BENCH_core.json``.

Runs the core engine/detector scenarios from ``benchmarks/`` in a quick,
seed-fixed mode and records:

* **cycles/sec** for each engine scenario across all four engines
  (legacy, fast path, vectorized, kernels), reps interleaved across
  engines so a background-load transient slows every engine's
  same-numbered rep instead of skewing one engine's whole measurement,
* the fast/vectorized/kernels-vs-legacy **speedups** on the saturated
  acceptance scenario (16-ary 2-cube, TFAR, load 0.9 — the
  configuration every figure sweep spends its time in); the kernel
  engine is gated at ≥ 10×, the vectorized engine at ≥ 5×, the fast
  path keeps its ≥ 2× bar,
* the **cumulative ablation** of the same scenario (``--ablation``
  prints it standalone and merges the record into the baseline):
  legacy → +fast-path → +detector-caching → +vectorized → +kernels,
* **detector µs/pass** with and without the blocked-epoch short-circuit,
* **detector-census µs/pass** (the same saturated 16-ary with
  ``count_cycles=True``, passes driven by the engine itself so dirty sets
  are realistic) with dirty-region caching on and off — the cached/uncached
  ratio is an acceptance criterion (≥ 2×),
* the **per-phase breakdown** of the acceptance scenario (``obs_level=1``
  profiler): where the engine's time goes, recorded for diagnosis and
  printed by ``--check`` when the gate fails,
* the **campaign overhead**: wall-clock of a checkpointed
  :class:`repro.campaign.CampaignRunner` sweep vs the direct parallel
  sweep it wraps, gated at <5% — durability must be close to free
  (``--campaign-only`` re-measures just this record and merges it into
  the committed baseline).

The committed ``BENCH_core.json`` is this repo's perf trajectory: regenerate
it with ``python scripts/bench_baseline.py`` after engine work, and gate
regressions with ``python scripts/bench_baseline.py --check`` (used by
``scripts/ci_check.sh``), which re-times the scenarios and fails on a >20%
cycles/sec drop against the committed numbers.

Timings are wall-clock and machine-dependent; *speedups* and the check
tolerance are ratios, so they transfer across machines.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import bench_default, paper_default  # noqa: E402
from repro.network.simulator import NetworkSimulator  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_core.json"

#: engine scenarios: name -> (config factory kwargs, warmup cycles, timed cycles)
ENGINE_SCENARIOS = {
    "engine_saturated_16ary": dict(
        factory=paper_default,
        overrides=dict(
            routing="tfar",
            num_vcs=1,
            load=0.9,
            cwg_maintenance="incremental",
            count_cycles=False,
        ),
        # The scenario's name is the *saturated steady state*: at load 0.9
        # the 16-ary network saturates around cycle ~300 but keeps deepening
        # (longer blocked chains, bigger knots, higher parked fractions)
        # until per-window rates flatten out around cycle ~2500.  Paper
        # campaigns run tens of thousands of cycles, so >95% of their
        # wall-clock is spent in that deep regime — warm past the transient
        # so the recorded rates (and speedup ratios) describe the state a
        # sweep actually pays for.  The transient itself is covered by the
        # two moderate scenarios below.
        warm=2550,
        cycles=400,
    ),
    "engine_moderate_8ary": dict(
        factory=bench_default,
        overrides=dict(routing="dor", num_vcs=1, load=0.4),
        warm=300,
        cycles=1500,
    ),
    "engine_four_vcs_8ary": dict(
        factory=bench_default,
        overrides=dict(routing="tfar", num_vcs=4, load=0.8),
        warm=300,
        cycles=1500,
    ),
}

#: the scenario whose fast/legacy ratio is the acceptance criterion
ACCEPTANCE_SCENARIO = "engine_saturated_16ary"

#: engine name -> config flag overrides
ENGINE_FLAGS = {
    "legacy": dict(engine_fast_path=False, engine_vectorized=False),
    "fast": dict(engine_fast_path=True, engine_vectorized=False),
    "vectorized": dict(engine_fast_path=True, engine_vectorized=True),
    "kernels": dict(
        engine_fast_path=True, engine_vectorized=True, engine_kernels=True
    ),
}


def _timed_engines(
    spec: dict, engines: dict | None = None, reps: int = 3
) -> dict[str, float]:
    """Best-of-``reps`` cycles/sec per engine, reps interleaved.

    All sims are constructed and warmed first; then rep *k* times every
    engine back to back before rep *k+1* starts.  A background-load
    transient therefore slows the same-numbered rep of every engine
    instead of polluting one engine's entire measurement, and the
    best-of minimum for each engine comes from the same quiet window —
    which is what makes the recorded *ratios* machine-transferable.
    """
    if engines is None:
        engines = ENGINE_FLAGS
    sims = {}
    for name, flags in engines.items():
        cfg = spec["factory"](
            warmup_cycles=0,
            measure_cycles=1,
            seed=1,
            # benchmarks time the engine, never the correctness net: pin
            # the runtime invariant checker off even if the project
            # default changes
            validation_level=0,
            **{**spec["overrides"], **flags},
        )
        sims[name] = NetworkSimulator(cfg)
    for sim in sims.values():
        for _ in range(spec["warm"]):
            sim.step()
    cycles = spec["cycles"]
    best = {name: float("inf") for name in sims}
    for _ in range(reps):
        for name, sim in sims.items():
            t0 = time.perf_counter()
            for _ in range(cycles):
                sim.step()
            best[name] = min(best[name], time.perf_counter() - t0)
    return {name: cycles / dt for name, dt in best.items()}


def _ablation() -> dict:
    """Cumulative optimization ablation on the acceptance scenario.

    Each level adds one optimization layer on top of the previous:
    plain legacy engine, + fast-path activity tracking, + detector
    caching (dirty-region/knot tracking), + the vectorized SoA core,
    + the batched array kernels on top of it.
    """
    levels = {
        "legacy": dict(
            engine_fast_path=False,
            engine_vectorized=False,
            detector_caching=False,
        ),
        "+fast-path": dict(
            engine_fast_path=True,
            engine_vectorized=False,
            detector_caching=False,
        ),
        "+detector-caching": dict(
            engine_fast_path=True,
            engine_vectorized=False,
            detector_caching=True,
        ),
        "+vectorized": dict(
            engine_fast_path=True,
            engine_vectorized=True,
            detector_caching=True,
        ),
        "+kernels": dict(
            engine_fast_path=True,
            engine_vectorized=True,
            engine_kernels=True,
            detector_caching=True,
        ),
    }
    spec = ENGINE_SCENARIOS[ACCEPTANCE_SCENARIO]
    rates = _timed_engines(spec, engines=levels)
    base = rates["legacy"]
    return {
        "scenario": ACCEPTANCE_SCENARIO,
        "levels": {
            name: {
                "cycles_per_sec": round(rate, 1),
                "speedup_vs_legacy": round(rate / base, 3),
            }
            for name, rate in rates.items()
        },
    }


def format_ablation(record: dict) -> str:
    """Printable table of an ``ablation`` record."""
    lines = [f"ablation ({record['scenario']}):"]
    for name, row in record["levels"].items():
        lines.append(
            f"  {name:<19} {row['cycles_per_sec']:>9.1f} cycles/sec  "
            f"{row['speedup_vs_legacy']:>6.2f}x"
        )
    return "\n".join(lines)


def _detector_us_per_pass(engine_fast_path: bool) -> float:
    """Mean detector cost per pass on a warmed saturated network.

    With the fast path, passes where the blocked epoch did not advance are
    short-circuited — the number reported is the realized average, which is
    what a sweep actually pays.
    """
    cfg = paper_default(
        warmup_cycles=0,
        measure_cycles=1,
        seed=1,
        routing="tfar",
        num_vcs=1,
        load=0.9,
        cwg_maintenance="incremental",
        count_cycles=False,
        engine_fast_path=engine_fast_path,
        validation_level=0,
    )
    sim = NetworkSimulator(cfg)
    for _ in range(200):
        sim.step()
    passes = 40
    t0 = time.perf_counter()
    for _ in range(passes):
        sim.detector.detect(sim)
        sim.blocked_epoch += 1  # force a fresh pass every other call
        sim.detector.detect(sim)
    elapsed = time.perf_counter() - t0
    return 1e6 * elapsed / (2 * passes)


def _detector_census_us_per_pass(detector_caching: bool) -> float:
    """Mean census-enabled detector cost per pass, engine-driven.

    The detector is exercised by the engine's own ``detection_interval``
    cadence (not back-to-back manual calls) so the dirty-vertex sets and
    region churn between passes are exactly what a real sweep produces.
    Both modes yield bit-identical records, hence identical trajectories —
    the realized averages are directly comparable.
    """
    cfg = paper_default(
        warmup_cycles=0,
        measure_cycles=1,
        seed=1,
        routing="tfar",
        num_vcs=1,
        load=0.9,
        cwg_maintenance="incremental",
        count_cycles=True,
        detector_caching=detector_caching,
        validation_level=0,
    )
    sim = NetworkSimulator(cfg)
    for _ in range(1200):
        sim.step()
    state = [0.0, 0]
    orig = sim.detector.detect

    def timed(s):
        t0 = time.perf_counter()
        record = orig(s)
        state[0] += time.perf_counter() - t0
        state[1] += 1
        return record

    sim.detector.detect = timed
    passes = 20
    for _ in range(passes * cfg.detection_interval):
        sim.step()
    return 1e6 * state[0] / state[1]


def _campaign_overhead(reps: int = 3) -> dict:
    """Campaign wrapper cost vs the direct parallel sweep it wraps.

    Runs the same seeded 4-point tiny sweep through
    :func:`~repro.metrics.parallel.run_load_sweep_parallel` and through a
    fresh-store :class:`~repro.campaign.CampaignRunner` (per-point worker
    processes + atomic artifact writes + manifest updates), best-of-``reps``
    each.  The overhead is a ratio and transfers across machines; the
    acceptance bar is <5% — durability must be close to free.
    """
    import tempfile

    from repro.campaign import CampaignRunner
    from repro.config import tiny_default
    from repro.metrics.parallel import run_load_sweep_parallel

    # points must be long enough to be representative: real sweep points run
    # seconds-to-minutes, so per-point fixed costs (worker spawn, artifact
    # write, manifest update — tens of ms) are measured against ~1 s points,
    # not against sub-100 ms toys where fixed costs dominate by construction
    loads = [0.3, 0.6, 0.9, 1.2]
    cfg = tiny_default(
        warmup_cycles=200, measure_cycles=12_000, seed=1, validation_level=0
    )
    # both paths resolve workers the same way (cores - 1, floor 1), so the
    # comparison measures the durability wrapper, not a concurrency delta
    from repro.metrics.parallel import _resolve_workers

    workers = _resolve_workers(None)

    # interleave the reps: a background-load transient then slows a
    # direct/campaign pair together instead of skewing one phase
    pairs: list[tuple[float, float]] = []
    for _ in range(reps):
        t0 = time.perf_counter()
        direct = run_load_sweep_parallel(cfg, loads, max_workers=workers)
        rep_direct = time.perf_counter() - t0

        with tempfile.TemporaryDirectory(prefix="bench_campaign_") as tmp:
            runner = CampaignRunner(tmp, max_workers=workers)
            t0 = time.perf_counter()
            out = runner.run_sweep(cfg, loads)
            pairs.append((rep_direct, time.perf_counter() - t0))
    assert out.sweep == direct, "campaign sweep diverged from direct sweep"

    # machine noise only ever ADDS time, so two estimators bracket the
    # true ratio from above: the ratio of the best-of mins (robust to
    # sustained noise that slows whole reps) and the best same-rep paired
    # ratio (robust to spotty noise that hits one phase of one rep).  The
    # smaller of the two is the least noise-contaminated estimate.
    direct_s = min(d for d, _ in pairs)
    campaign_s = min(c for _, c in pairs)
    # clamped at 1.0: a sub-unity ratio just means the overhead is below
    # the noise floor, not that durability speeds the sweep up
    ratio = max(
        1.0, min(campaign_s / direct_s, min(c / d for d, c in pairs))
    )

    return {
        "scenario": "campaign_tiny_parallel_sweep",
        "points": len(loads),
        "workers": workers,
        "direct_s": round(direct_s, 3),
        "campaign_s": round(campaign_s, 3),
        "overhead_pct": round(100.0 * (ratio - 1.0), 1),
        "required_max_pct": 5.0,
    }


def _share_pct(part_s: float, total_s: float) -> float:
    """Percentage share rounded to 1 decimal, never collapsed to zero.

    Sub-permille phases (a cheap stage inside a heavy engine total) used
    to round to 0.0%, which reads as "never ran"; instead keep adding a
    decimal until the share survives rounding, so a 0.004% phase reports
    as 0.004 rather than 0.0.
    """
    if part_s <= 0.0 or total_s <= 0.0:
        return 0.0
    pct = 100.0 * part_s / total_s
    for decimals in range(1, 10):
        rounded = round(pct, decimals)
        if rounded:
            return rounded
    return pct


#: nested phase-name prefix -> the enclosing top-level phase.  The detector
#: accounts its region pipeline under ``detect/*`` while it runs *inside*
#: the engine's ``engine/detect`` timer, so a child's wall-clock is counted
#: twice in a raw snapshot.
_NESTED_UNDER = {"detect/": "engine/detect"}


def _exclusive_times(snap: dict) -> dict[str, float]:
    """Exclusive (self) seconds per phase: parents minus their nested children.

    The raw profiler snapshot is inclusive — ``engine/detect`` contains the
    time the detector also books under ``detect/*`` — so summing shares over
    a raw snapshot exceeds 100%.  Subtracting each child group from its
    parent makes the rows disjoint: they add up to the engine total (and
    their shares to at most 100%).  Clamped at zero so timer jitter on a
    near-empty parent can't go negative.
    """
    exclusive = {name: rec["total_s"] for name, rec in snap.items()}
    for prefix, parent in _NESTED_UNDER.items():
        if parent not in exclusive:
            continue
        nested = sum(
            rec["total_s"]
            for name, rec in snap.items()
            if name.startswith(prefix)
        )
        exclusive[parent] = max(0.0, exclusive[parent] - nested)
    return exclusive


def _phase_breakdown() -> dict:
    """Per-phase wall-clock split of the acceptance scenario.

    Runs the saturated 16-ary scenario once with ``obs_level=1`` (phase
    profiler on), discards the warmup cycles, and records where the engine's
    time goes — generate / allocate / move / detect, plus the detector's
    region pipeline when caching kicks in.  Each row reports its *exclusive*
    self-time (``self_ms``: nested ``detect/*`` children subtracted from
    ``engine/detect``) next to the raw inclusive total; shares are computed
    from the exclusive times so they sum to at most 100%.  Shares are ratios
    and transfer across machines; they are recorded for diagnosis (printed
    when the benchmark gate fails), not gated themselves.
    """
    spec = ENGINE_SCENARIOS[ACCEPTANCE_SCENARIO]
    cfg = spec["factory"](
        warmup_cycles=0,
        measure_cycles=1,
        seed=1,
        validation_level=0,
        obs_level=1,
        **spec["overrides"],
    )
    sim = NetworkSimulator(cfg)
    for _ in range(spec["warm"]):
        sim.step()
    sim.obs.profiler.reset()
    for _ in range(spec["cycles"]):
        sim.step()
    snap = sim.obs.profiler.snapshot()
    exclusive = _exclusive_times(snap)
    engine_total = sum(
        rec["total_s"] for name, rec in snap.items()
        if name.startswith("engine/")
    )
    phases = {
        name: {
            "total_ms": round(1e3 * rec["total_s"], 2),
            "self_ms": round(1e3 * exclusive[name], 2),
            "calls": rec["calls"],
            "share_pct": (
                _share_pct(exclusive[name], engine_total)
                if engine_total
                else 0.0
            ),
        }
        for name, rec in snap.items()
        if rec["calls"]
    }
    return {
        "scenario": ACCEPTANCE_SCENARIO,
        "timed_cycles": spec["cycles"],
        "phases": phases,
    }


def format_phase_breakdown(breakdown: dict) -> str:
    """Printable view of a ``phase_breakdown`` record."""
    lines = [
        f"phase breakdown ({breakdown['scenario']}, "
        f"{breakdown['timed_cycles']} cycles):"
    ]
    phases = breakdown["phases"]
    for name in sorted(phases, key=lambda n: -phases[n]["total_ms"]):
        rec = phases[name]
        # records written before the exclusive-time fix lack self_ms
        self_ms = rec.get("self_ms", rec["total_ms"])
        lines.append(
            f"  {name:<22} {self_ms:>9.2f} ms self  "
            f"({rec['total_ms']:>9.2f} ms incl)  "
            f"{rec['calls']:>7} calls  {rec['share_pct']:>5.1f}%"
        )
    return "\n".join(lines)


def measure() -> dict:
    results: dict = {"scenarios": {}}
    for name, spec in ENGINE_SCENARIOS.items():
        rates = _timed_engines(spec)
        legacy = rates["legacy"]
        results["scenarios"][name] = {
            "cycles_per_sec_fast": round(rates["fast"], 1),
            "cycles_per_sec_kernels": round(rates["kernels"], 1),
            "cycles_per_sec_legacy": round(legacy, 1),
            "cycles_per_sec_vectorized": round(rates["vectorized"], 1),
            "speedup": round(rates["fast"] / legacy, 3),
            "speedup_kernels": round(rates["kernels"] / legacy, 3),
            "speedup_vectorized": round(rates["vectorized"] / legacy, 3),
        }
    results["detector_us_per_pass_fast"] = round(
        _detector_us_per_pass(engine_fast_path=True), 1
    )
    results["detector_us_per_pass_legacy"] = round(
        _detector_us_per_pass(engine_fast_path=False), 1
    )
    census_cached = _detector_census_us_per_pass(detector_caching=True)
    census_uncached = _detector_census_us_per_pass(detector_caching=False)
    results["detector_census"] = {
        "scenario": "detector_census_16ary",
        "us_per_pass_cached": round(census_cached, 1),
        "us_per_pass_uncached": round(census_uncached, 1),
        "speedup": round(census_uncached / census_cached, 3),
    }
    results["acceptance"] = {
        "scenario": ACCEPTANCE_SCENARIO,
        "required_speedup": 2.0,
        "speedup": results["scenarios"][ACCEPTANCE_SCENARIO]["speedup"],
    }
    results["acceptance_vectorized"] = {
        "scenario": ACCEPTANCE_SCENARIO,
        "required_speedup": 5.0,
        "speedup": results["scenarios"][ACCEPTANCE_SCENARIO][
            "speedup_vectorized"
        ],
    }
    results["acceptance_kernels"] = {
        "scenario": ACCEPTANCE_SCENARIO,
        "required_speedup": 10.0,
        "speedup": results["scenarios"][ACCEPTANCE_SCENARIO][
            "speedup_kernels"
        ],
    }
    results["acceptance_detector"] = {
        "scenario": "detector_census_16ary",
        "required_speedup": 2.0,
        "speedup": results["detector_census"]["speedup"],
    }
    results["ablation"] = _ablation()
    results["phase_breakdown"] = _phase_breakdown()
    results["campaign_overhead"] = _campaign_overhead()
    return results


def check(baseline: dict, fresh: dict, tolerance: float = 0.20) -> list[str]:
    """Regression messages comparing a fresh run against the baseline."""
    problems = []
    for name, base in baseline.get("scenarios", {}).items():
        now = fresh["scenarios"].get(name)
        if now is None:
            problems.append(f"{name}: scenario missing from fresh run")
            continue
        floor = base["cycles_per_sec_fast"] * (1.0 - tolerance)
        if now["cycles_per_sec_fast"] < floor:
            problems.append(
                f"{name}: fast path regressed to "
                f"{now['cycles_per_sec_fast']:.0f} cycles/sec "
                f"(baseline {base['cycles_per_sec_fast']:.0f}, "
                f"floor {floor:.0f})"
            )
        base_vec = base.get("cycles_per_sec_vectorized")
        if base_vec is not None:
            floor = base_vec * (1.0 - tolerance)
            if now["cycles_per_sec_vectorized"] < floor:
                problems.append(
                    f"{name}: vectorized engine regressed to "
                    f"{now['cycles_per_sec_vectorized']:.0f} cycles/sec "
                    f"(baseline {base_vec:.0f}, floor {floor:.0f})"
                )
        base_kern = base.get("cycles_per_sec_kernels")
        if base_kern is not None:
            floor = base_kern * (1.0 - tolerance)
            if now["cycles_per_sec_kernels"] < floor:
                problems.append(
                    f"{name}: kernel engine regressed to "
                    f"{now['cycles_per_sec_kernels']:.0f} cycles/sec "
                    f"(baseline {base_kern:.0f}, floor {floor:.0f})"
                )
    base_census = baseline.get("detector_census")
    if base_census is not None:
        now_census = fresh["detector_census"]
        # µs/pass is an inverse metric: regression means growing, not shrinking
        ceiling = base_census["us_per_pass_cached"] * (1.0 + tolerance)
        if now_census["us_per_pass_cached"] > ceiling:
            problems.append(
                "detector_census_16ary: cached pass regressed to "
                f"{now_census['us_per_pass_cached']:.0f} us "
                f"(baseline {base_census['us_per_pass_cached']:.0f}, "
                f"ceiling {ceiling:.0f})"
            )
    req = baseline.get("acceptance", {}).get("required_speedup", 2.0)
    got = fresh["acceptance"]["speedup"]
    if got < req:
        problems.append(
            f"acceptance speedup {got:.2f}x below required {req:.1f}x "
            f"on {fresh['acceptance']['scenario']}"
        )
    req = baseline.get("acceptance_vectorized", {}).get(
        "required_speedup", 5.0
    )
    got = fresh.get("acceptance_vectorized", {}).get("speedup")
    if got is not None and got < req:
        problems.append(
            f"vectorized speedup {got:.2f}x below required {req:.1f}x "
            f"on {fresh['acceptance_vectorized']['scenario']}"
        )
    req = baseline.get("acceptance_kernels", {}).get("required_speedup", 10.0)
    got = fresh.get("acceptance_kernels", {}).get("speedup")
    if got is not None and got < req:
        problems.append(
            f"kernel speedup {got:.2f}x below required {req:.1f}x "
            f"on {fresh['acceptance_kernels']['scenario']}"
        )
    req = baseline.get("acceptance_detector", {}).get("required_speedup", 2.0)
    got = fresh.get("acceptance_detector", {}).get("speedup")
    if got is not None and got < req:
        problems.append(
            f"detector caching speedup {got:.2f}x below required {req:.1f}x "
            f"on {fresh['acceptance_detector']['scenario']}"
        )
    overhead = fresh.get("campaign_overhead")
    if overhead is not None:
        max_pct = baseline.get("campaign_overhead", {}).get(
            "required_max_pct", overhead["required_max_pct"]
        )
        if overhead["overhead_pct"] > max_pct:
            problems.append(
                f"campaign overhead {overhead['overhead_pct']:.1f}% above "
                f"the {max_pct:.0f}% bar on {overhead['scenario']} "
                f"(direct {overhead['direct_s']:.2f}s, campaign "
                f"{overhead['campaign_s']:.2f}s)"
            )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare a fresh quick run against the committed baseline "
        "instead of rewriting it; exit 1 on a >20%% regression",
    )
    parser.add_argument(
        "--campaign-only",
        action="store_true",
        help="re-measure only the campaign_overhead record and merge it "
        "into the existing baseline (the full baseline takes minutes; "
        "the campaign wrapper does not affect the other numbers)",
    )
    parser.add_argument(
        "--ablation",
        action="store_true",
        help="re-measure only the cumulative optimization ablation "
        "(legacy / +fast-path / +detector-caching / +vectorized / "
        "+kernels) on the acceptance scenario, print the table and merge "
        "the record into the existing baseline",
    )
    parser.add_argument(
        "--out", type=Path, default=BASELINE_PATH, help="baseline path"
    )
    args = parser.parse_args()

    if args.ablation:
        record = _ablation()
        print(format_ablation(record))
        if args.out.exists():
            baseline = json.loads(args.out.read_text())
            baseline["ablation"] = record
            args.out.write_text(
                json.dumps(baseline, indent=2, sort_keys=True) + "\n"
            )
            print(f"merged ablation into {args.out}")
        else:
            print(f"no baseline at {args.out}; table printed only")
        return 0

    if args.campaign_only:
        if not args.out.exists():
            print(f"no baseline at {args.out}; run a full measure first")
            return 1
        overhead = _campaign_overhead()
        print(
            f"campaign overhead: {overhead['overhead_pct']:.1f}% "
            f"(direct {overhead['direct_s']:.2f}s, campaign "
            f"{overhead['campaign_s']:.2f}s, bar "
            f"{overhead['required_max_pct']:.0f}%)"
        )
        baseline = json.loads(args.out.read_text())
        baseline["campaign_overhead"] = overhead
        args.out.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"merged campaign_overhead into {args.out}")
        return (
            1 if overhead["overhead_pct"] > overhead["required_max_pct"] else 0
        )

    fresh = measure()
    for name, row in fresh["scenarios"].items():
        print(
            f"{name}: legacy={row['cycles_per_sec_legacy']:.0f} "
            f"fast={row['cycles_per_sec_fast']:.0f} "
            f"vec={row['cycles_per_sec_vectorized']:.0f} "
            f"kern={row['cycles_per_sec_kernels']:.0f} cycles/sec "
            f"(fast {row['speedup']:.2f}x, "
            f"vec {row['speedup_vectorized']:.2f}x, "
            f"kern {row['speedup_kernels']:.2f}x)"
        )
    print(format_ablation(fresh["ablation"]))
    print(
        f"detector: fast={fresh['detector_us_per_pass_fast']:.0f} "
        f"legacy={fresh['detector_us_per_pass_legacy']:.0f} us/pass"
    )
    census = fresh["detector_census"]
    print(
        f"detector census: cached={census['us_per_pass_cached']:.0f} "
        f"uncached={census['us_per_pass_uncached']:.0f} us/pass "
        f"({census['speedup']:.2f}x)"
    )
    overhead = fresh["campaign_overhead"]
    print(
        f"campaign overhead: {overhead['overhead_pct']:.1f}% "
        f"(direct {overhead['direct_s']:.2f}s, campaign "
        f"{overhead['campaign_s']:.2f}s)"
    )

    if args.check:
        if not args.out.exists():
            print(f"no baseline at {args.out}; run without --check first")
            return 1
        baseline = json.loads(args.out.read_text())
        problems = check(baseline, fresh)
        if problems:
            for p in problems:
                print(f"REGRESSION: {p}")
            # the fresh split says *where* the regression lives; the
            # committed one is the shape to compare against
            print()
            print("fresh " + format_phase_breakdown(fresh["phase_breakdown"]))
            committed = baseline.get("phase_breakdown")
            if committed is not None:
                print()
                print("committed " + format_phase_breakdown(committed))
            return 1
        print("benchmark check passed (within 20% of committed baseline)")
        return 0

    args.out.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    failed = False
    for key in (
        "acceptance",
        "acceptance_vectorized",
        "acceptance_kernels",
        "acceptance_detector",
    ):
        if fresh[key]["speedup"] < fresh[key]["required_speedup"]:
            print(
                f"WARNING: {fresh[key]['scenario']} speedup below "
                f"{fresh[key]['required_speedup']}x"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
