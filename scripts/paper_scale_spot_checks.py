#!/usr/bin/env python3
"""Paper-scale spot checks for EXPERIMENTS.md.

Runs the paper's actual 16-ary 2-cube (256 nodes, 32-flit messages) at
selected points of each experiment and prints one line per run.  Pure
Python at this scale manages ~1-3k cycles/second, so this script uses
8,000 measured cycles per point rather than the paper's 30,000 — enough
to estimate deadlock rates to within the comparisons the paper draws.
Expect a total runtime of roughly 5-15 minutes (the deep-saturation
virtual cut-through point dominates).

Usage::

    python scripts/paper_scale_spot_checks.py [output.txt]
"""

from __future__ import annotations

import sys
import time

from repro import NetworkSimulator, paper_default

RUN = dict(warmup_cycles=1_000, measure_cycles=8_000)

POINTS = [
    # (tag, config overrides)
    # -- below-saturation points (the paper's primary operating regime) --
    ("FIG5 bi  DOR1 L=0.10", dict(routing="dor", num_vcs=1, load=0.10)),
    ("FIG5 bi  DOR1 L=0.15", dict(routing="dor", num_vcs=1, load=0.15)),
    ("FIG5 uni DOR1 L=0.10", dict(routing="dor", num_vcs=1, load=0.10, bidirectional=False)),
    ("FIG5 uni DOR1 L=0.15", dict(routing="dor", num_vcs=1, load=0.15, bidirectional=False)),
    ("FIG6 TFAR1 L=0.10", dict(routing="tfar", num_vcs=1, load=0.10)),
    ("FIG6 TFAR1 L=0.15", dict(routing="tfar", num_vcs=1, load=0.15)),
    ("FIG7 DOR2  L=0.15", dict(routing="dor", num_vcs=2, load=0.15)),
    ("FIG7 DOR2  L=0.30", dict(routing="dor", num_vcs=2, load=0.30)),
    ("FIG8 buf=32 TFAR1 L=0.15", dict(routing="tfar", num_vcs=1, load=0.15, buffer_depth=32)),
    ("SEC3.5 4ary4cube TFAR1 L=0.15", dict(routing="tfar", num_vcs=1, load=0.15, k=4, n=4)),
    # -- saturation / deep-saturation points --
    ("FIG5 bi  DOR1 L=0.3", dict(routing="dor", num_vcs=1, load=0.3)),
    ("FIG5 bi  DOR1 L=0.6", dict(routing="dor", num_vcs=1, load=0.6)),
    ("FIG5 uni DOR1 L=0.3", dict(routing="dor", num_vcs=1, load=0.3, bidirectional=False)),
    ("FIG5 uni DOR1 L=0.6", dict(routing="dor", num_vcs=1, load=0.6, bidirectional=False)),
    ("FIG6 TFAR1 L=0.4", dict(routing="tfar", num_vcs=1, load=0.4)),
    ("FIG6 TFAR1 L=0.8", dict(routing="tfar", num_vcs=1, load=0.8)),
    ("FIG7 DOR2  L=0.8", dict(routing="dor", num_vcs=2, load=0.8)),
    ("FIG7 DOR3  L=1.0", dict(routing="dor", num_vcs=3, load=1.0)),
    ("FIG7 TFAR2 L=1.0", dict(routing="tfar", num_vcs=2, load=1.0)),
    ("FIG8 buf=32 (VCT) TFAR1 L=0.8", dict(routing="tfar", num_vcs=1, load=0.8, buffer_depth=32)),
    ("SEC3.5 4-ary 4-cube TFAR1 L=0.8", dict(routing="tfar", num_vcs=1, load=0.8, k=4, n=4)),
]


def main() -> None:
    out = open(sys.argv[1], "w") if len(sys.argv) > 1 else sys.stdout
    for tag, overrides in POINTS:
        cfg = paper_default(**RUN, **overrides)
        t0 = time.time()
        sim = NetworkSimulator(cfg)
        r = sim.run()
        line = (
            f"{tag:34s} delivered={r.delivered_total:6d} "
            f"deadlocks={r.deadlocks:4d} norm={r.normalized_deadlocks:.4f} "
            f"dset={r.avg_deadlock_set_size:5.1f} rset={r.avg_resource_set_size:5.1f} "
            f"knotcyc={r.avg_knot_cycle_density:5.1f} "
            f"multi={r.multi_cycle_deadlocks:3d} "
            f"cycles={r.avg_cycle_count:8.1f} blocked%={100*r.avg_blocked_fraction:5.1f} "
            f"[{time.time()-t0:.0f}s]"
        )
        print(line, file=out, flush=True)
    if out is not sys.stdout:
        out.close()


if __name__ == "__main__":
    main()
