#!/usr/bin/env python3
"""Campaign smoke gate: interrupt a 2-point campaign, resume, verify.

The end-to-end resumability contract, run as part of
``scripts/ci_check.sh``:

1. start a 2-point tiny campaign interrupted after one fresh point
   (``max_points=1`` — the runner's deterministic interruption hook);
2. verify the store manifest recorded exactly the completed point;
3. re-invoke the campaign: the completed point must be *resumed* (loaded
   from the store, not re-run) and the remaining point executed;
4. the merged sweep must be bit-identical to an uninterrupted serial
   sweep of the same configs — resumption may not perturb results.

Everything is seeded and deterministic: a CI failure replays locally with
``python scripts/campaign_smoke.py``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import CampaignRunner, ResultStore  # noqa: E402
from repro.config import tiny_default  # noqa: E402
from repro.metrics.sweep import run_load_sweep  # noqa: E402

LOADS = [0.3, 0.6]


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 typing literal
    print(f"campaign_smoke: FAIL — {message}")
    raise SystemExit(1)


def main() -> int:
    cfg = tiny_default(measure_cycles=400, warmup_cycles=50)
    with tempfile.TemporaryDirectory(prefix="campaign_smoke_") as tmp:
        store = ResultStore(Path(tmp) / "store")

        interrupted = CampaignRunner(store, max_workers=1, max_points=1)
        out1 = interrupted.run_sweep(cfg, LOADS)
        if out1.executed != 1 or out1.remaining != 1 or out1.failures:
            fail(
                f"interrupted run: executed={out1.executed} "
                f"remaining={out1.remaining} failures={out1.failures}"
            )
        manifest = store.load_manifest()
        done = [
            d for d, p in manifest["points"].items() if p["status"] == "done"
        ]
        if len(done) != 1 or manifest["counters"].get("executed") != 1:
            fail(f"manifest after interruption: {manifest}")
        print(
            f"campaign_smoke: interrupted after 1/{len(LOADS)} points, "
            f"manifest consistent"
        )

        resumed = CampaignRunner(store, max_workers=2)
        out2 = resumed.run_sweep(cfg, LOADS)
        if out2.resumed != 1 or out2.executed != 1 or out2.failures:
            fail(
                f"resumed run: resumed={out2.resumed} "
                f"executed={out2.executed} failures={out2.failures}"
            )
        stats = resumed.registry.snapshot()["counters"]
        if stats.get("campaign/points_resumed") != 1:
            fail(f"resume counters: {stats}")
        manifest = store.load_manifest()
        done = [
            d for d, p in manifest["points"].items() if p["status"] == "done"
        ]
        if len(done) != len(LOADS):
            fail(f"manifest after resume: {manifest}")
        print("campaign_smoke: resume skipped the stored point, ran the rest")

        reference = run_load_sweep(cfg, LOADS)
        if out2.sweep != reference:
            fail("resumed sweep is not bit-identical to the direct sweep")
        print("campaign_smoke: merged sweep bit-identical to direct sweep")

    print("campaign_smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
