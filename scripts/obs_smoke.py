#!/usr/bin/env python3
"""Observability smoke gate (used by ``scripts/ci_check.sh``).

Two checks, both deterministic apart from wall-clock noise:

1. **Trace validity** — runs a pinned small scenario (4-ary 2-cube, DOR,
   saturated) at ``obs_level=2``, exports the cycle-level trace as both
   Chrome-trace JSON and JSONL, and validates that the files parse, that
   the Chrome events carry the schema ``chrome://tracing`` / Perfetto
   expect (``ph`` in ``X``/``i``, numeric ``ts``/``dur``, string names),
   and that the expected span/instant names are present (the four engine
   phases plus ``block``/``wake`` instants at saturation).

2. **Overhead gate** — times the bench smoke scenario (8-ary 2-cube,
   moderate load) at ``obs_level=0`` and ``obs_level=1`` with interleaved
   best-of-reps timing, and fails when enabled observability costs more
   than 10% in cycles/sec.  This is the bound that keeps ``--obs-level 1``
   safe to leave on for real sweeps.

3. **Phase-share sanity** — recomputes the benchmark's ``phase_breakdown``
   record and fails if the per-phase shares sum above 100%.  The profiler
   nests the detector's ``detect/*`` accounting inside ``engine/detect``,
   so a naive (inclusive) share split double-counts that time — this check
   pins the exclusive-self-time accounting that keeps the rollup honest.

Exit status 0 = all checks pass.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import bench_default, tiny_default  # noqa: E402
from repro.network.simulator import NetworkSimulator  # noqa: E402

#: span names every traced run of the pinned scenario must contain
REQUIRED_SPANS = {
    "engine/generate",
    "engine/allocate",
    "engine/move",
    "engine/detect",
}
#: instant names the saturated pinned scenario must produce
REQUIRED_INSTANTS = {"block", "wake"}

OVERHEAD_LIMIT = 0.10  #: max fractional slowdown allowed for obs_level=1


def _trace_scenario():
    return tiny_default(
        routing="dor",
        num_vcs=1,
        load=1.0,
        warmup_cycles=100,
        measure_cycles=600,
        seed=7,
        obs_level=2,
        validation_level=0,
    )


def check_trace(verbose: bool = True) -> list[str]:
    """Run the pinned scenario and validate the exported traces."""
    problems: list[str] = []
    sim = NetworkSimulator(_trace_scenario())
    sim.run()
    tracer = sim.obs.tracer
    with tempfile.TemporaryDirectory() as tmp:
        chrome_path = Path(tmp) / "trace.json"
        jsonl_path = Path(tmp) / "trace.jsonl"
        tracer.write_chrome(chrome_path)
        tracer.write_jsonl(jsonl_path)

        doc = json.loads(chrome_path.read_text())
        events = doc.get("traceEvents")
        if not isinstance(events, list) or not events:
            return [f"chrome trace has no traceEvents list: {chrome_path}"]
        names = set()
        for ev in events:
            if not isinstance(ev.get("name"), str):
                problems.append(f"trace event without string name: {ev!r}")
                break
            if ev.get("ph") not in ("X", "i"):
                problems.append(f"unexpected event phase type: {ev!r}")
                break
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"trace event without numeric ts: {ev!r}")
                break
            if ev["ph"] == "X" and not isinstance(ev.get("dur"), (int, float)):
                problems.append(f"duration event without dur: {ev!r}")
                break
            names.add(ev["name"])
        missing = (REQUIRED_SPANS | REQUIRED_INSTANTS) - names
        if missing:
            problems.append(
                f"trace is missing expected event names: {sorted(missing)} "
                f"(got {sorted(names)})"
            )

        jsonl_rows = [
            json.loads(line)
            for line in jsonl_path.read_text().splitlines()
            if line
        ]
        if len(jsonl_rows) != len(events):
            problems.append(
                f"JSONL row count {len(jsonl_rows)} != chrome event "
                f"count {len(events)}"
            )
    if verbose and not problems:
        print(
            f"trace check: {len(events)} events, "
            f"{len(names)} distinct names, chrome+jsonl parse OK"
        )
    return problems


def _bench_sim(obs_level: int, warm: int) -> NetworkSimulator:
    cfg = bench_default(
        routing="dor",
        num_vcs=1,
        load=0.4,
        warmup_cycles=0,
        measure_cycles=1,
        seed=1,
        obs_level=obs_level,
        validation_level=0,
    )
    sim = NetworkSimulator(cfg)
    for _ in range(warm):
        sim.step()
    return sim


def check_overhead(
    warm: int = 200, cycles: int = 600, reps: int = 4, verbose: bool = True
) -> list[str]:
    """Gate: obs_level=1 may cost at most ``OVERHEAD_LIMIT`` in cycles/sec.

    The two configurations are timed in *interleaved* best-of reps — a
    back-to-back off-block/on-block layout turns any monotonic drift in
    machine speed (turbo decay after a hot CI stage, background load
    ramping) into phantom overhead on whichever side ran second.
    """
    sims = {lvl: _bench_sim(lvl, warm) for lvl in (0, 1)}
    best = {0: float("inf"), 1: float("inf")}
    for _ in range(reps):
        for lvl, sim in sims.items():
            t0 = time.perf_counter()
            for _ in range(cycles):
                sim.step()
            best[lvl] = min(best[lvl], time.perf_counter() - t0)
    off = cycles / best[0]
    on = cycles / best[1]
    overhead = off / on - 1.0
    if verbose:
        print(
            f"overhead check: obs off {off:.0f} c/s, obs_level=1 {on:.0f} c/s "
            f"-> {100 * overhead:+.1f}% (limit {100 * OVERHEAD_LIMIT:.0f}%)"
        )
    if overhead > OVERHEAD_LIMIT:
        return [
            f"obs_level=1 overhead {100 * overhead:.1f}% exceeds "
            f"{100 * OVERHEAD_LIMIT:.0f}% limit "
            f"({off:.0f} -> {on:.0f} cycles/sec)"
        ]
    return []


def check_phase_shares(verbose: bool = True) -> list[str]:
    """Gate: the benchmark phase rollup's shares must sum to at most 100%.

    The detector books its region pipeline under ``detect/*`` while running
    inside the engine's ``engine/detect`` timer; the breakdown must report
    exclusive self-times or the shares double-count that nesting (a rollup
    that "sums to 122%" reads as free speedup hiding somewhere).
    """
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from bench_baseline import _phase_breakdown

    breakdown = _phase_breakdown()
    phases = breakdown["phases"]
    total = sum(rec["share_pct"] for rec in phases.values())
    if verbose:
        print(
            f"phase-share check: {len(phases)} phases, "
            f"shares sum to {total:.1f}%"
        )
    # each share_pct row is rounded to 1 decimal, so the sum can honestly
    # exceed 100 by up to 0.05 per row — anything beyond that is real
    # double-counting
    if total > 100.0 + 0.05 * len(phases):
        return [
            f"phase_breakdown shares sum to {total:.1f}% (> 100%): "
            "nested phases are being double-counted instead of reported "
            "as exclusive self-time"
        ]
    if not any(rec["share_pct"] for rec in phases.values()):
        return ["phase_breakdown recorded no nonzero phase shares"]
    return []


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-overhead",
        action="store_true",
        help="only validate the exported trace (no timing gate)",
    )
    args = parser.parse_args()
    problems = check_trace()
    if not args.skip_overhead:
        problems += check_overhead()
    problems += check_phase_shares()
    for p in problems:
        print(f"OBS SMOKE FAILURE: {p}")
    if not problems:
        print("obs smoke: OK")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
