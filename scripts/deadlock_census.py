#!/usr/bin/env python3
"""Long-horizon deadlock-frequency census with periodic checkpoints.

Deadlock frequencies below saturation are rare-event estimates: the paper
ran 30,000 cycles per point; tighter confidence needs longer.  This script
runs one configuration for a wall-clock budget, checkpointing cumulative
statistics to CSV every ``--checkpoint`` simulated cycles so partial runs
are never wasted, and prints a final rate with a Poisson 95% interval.

Example::

    python scripts/deadlock_census.py --minutes 10 --k 16 --routing dor \
        --vcs 1 --load 0.15 --out census.csv
"""

from __future__ import annotations

import argparse
import csv
import math
import time

from repro import NetworkSimulator, SimulationConfig


def poisson_ci95(events: int, exposure: float) -> tuple[float, float]:
    """Approximate 95% CI for an event rate (per unit exposure)."""
    if exposure <= 0:
        return (0.0, float("inf"))
    if events == 0:
        return (0.0, 3.0 / exposure)  # rule of three
    half = 1.96 * math.sqrt(events)
    return (max(0.0, events - half) / exposure, (events + half) / exposure)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--minutes", type=float, default=5.0)
    parser.add_argument("--k", type=int, default=16)
    parser.add_argument("--n", type=int, default=2)
    parser.add_argument("--routing", default="dor")
    parser.add_argument("--vcs", type=int, default=1)
    parser.add_argument("--buffer", type=int, default=2)
    parser.add_argument("--length", type=int, default=32)
    parser.add_argument("--load", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--unidirectional", action="store_true")
    parser.add_argument("--checkpoint", type=int, default=5_000,
                        help="simulated cycles between CSV checkpoints")
    parser.add_argument("--out", default="census.csv")
    args = parser.parse_args()

    config = SimulationConfig(
        k=args.k,
        n=args.n,
        bidirectional=not args.unidirectional,
        routing=args.routing,
        num_vcs=args.vcs,
        buffer_depth=args.buffer,
        message_length=args.length,
        load=args.load,
        seed=args.seed,
        warmup_cycles=0,
        measure_cycles=1,  # unused: we drive step() ourselves
        cwg_maintenance="incremental",
    )
    sim = NetworkSimulator(config)
    sim.stats.measure_start = 0
    deadline = time.time() + args.minutes * 60

    with open(args.out, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["cycle", "wall_s", "delivered", "deadlocks", "norm_deadlocks",
             "rate_lo95", "rate_hi95", "avg_dset", "avg_cycles",
             "blocked_pct"]
        )
        started = time.time()
        next_checkpoint = args.checkpoint
        print(f"census: {config.label()} for {args.minutes:.1f} minutes")
        while time.time() < deadline:
            sim.step()
            if sim.cycle >= next_checkpoint:
                next_checkpoint += args.checkpoint
                r = sim.stats._result
                delivered = r.delivered + r.recovered
                lo, hi = poisson_ci95(r.deadlocks, max(1, delivered))
                writer.writerow(
                    [
                        sim.cycle,
                        f"{time.time() - started:.1f}",
                        delivered,
                        r.deadlocks,
                        f"{r.deadlocks / delivered:.6f}" if delivered else "",
                        f"{lo:.6f}",
                        f"{hi:.6f}",
                        f"{(sum(r.deadlock_set_sizes) / len(r.deadlock_set_sizes)):.2f}"
                        if r.deadlock_set_sizes
                        else "",
                        f"{(sum(r.cycle_counts) / len(r.cycle_counts)):.2f}"
                        if r.cycle_counts
                        else "",
                        f"{100 * (sum(r.blocked_fraction_samples) / len(r.blocked_fraction_samples)):.2f}"
                        if r.blocked_fraction_samples
                        else "",
                    ]
                )
                fh.flush()
                print(
                    f"  cycle {sim.cycle}: {r.deadlocks} deadlocks / "
                    f"{delivered} delivered "
                    f"({time.time() - started:.0f}s elapsed)"
                )
    r = sim.stats._result
    delivered = r.delivered + r.recovered
    lo, hi = poisson_ci95(r.deadlocks, max(1, delivered))
    rate = r.deadlocks / delivered if delivered else float("nan")
    print(
        f"final: {r.deadlocks} deadlocks over {delivered} deliveries in "
        f"{sim.cycle} cycles -> {rate:.6f} per message "
        f"[95% CI {lo:.6f}, {hi:.6f}]"
    )
    print(f"checkpoints written to {args.out}")


if __name__ == "__main__":
    main()
