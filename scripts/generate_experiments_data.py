#!/usr/bin/env python3
"""Regenerate every experiment table/chart backing EXPERIMENTS.md.

Runs all registered experiments at the chosen scale, prints the tables,
and writes one consolidated CSV — the reproducible pipeline behind the
bench-scale numbers quoted in EXPERIMENTS.md.  (The paper-scale rows come
from ``scripts/paper_scale_spot_checks.py``.)

Usage::

    python scripts/generate_experiments_data.py [--scale bench] [--csv out.csv]
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.report import render_figure, sweep_csv


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="bench",
                        choices=["tiny", "bench", "paper"])
    parser.add_argument("--csv", default="experiments_data.csv")
    parser.add_argument("--charts", action="store_true")
    parser.add_argument("--only", default=None,
                        help="comma-separated experiment ids")
    args = parser.parse_args()

    wanted = args.only.split(",") if args.only else list(ALL_EXPERIMENTS)
    csv_parts = []
    grand_start = time.time()
    for exp_id in wanted:
        t0 = time.time()
        result = ALL_EXPERIMENTS[exp_id](scale=args.scale)
        print("#" * 72)
        print(result.format_tables())
        if args.charts:
            print()
            print(render_figure(result, "norm_deadlocks"))
        csv_parts.append(sweep_csv(result))
        print(f"[{exp_id}: {time.time() - t0:.1f}s]")
        print()
    if csv_parts:
        header = csv_parts[0].splitlines()[0]
        body = [ln for part in csv_parts for ln in part.splitlines()[1:]]
        with open(args.csv, "w") as fh:
            fh.write("\n".join([header, *body]) + "\n")
        print(f"consolidated CSV: {args.csv}")
    print(f"total: {time.time() - grand_start:.0f}s at scale={args.scale}")


if __name__ == "__main__":
    main()
