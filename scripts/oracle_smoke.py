#!/usr/bin/env python3
"""Model-checking oracle CI gate — exhaustive detector verification.

Enumerates every configuration class of the oracle grid
(:data:`repro.validation.oracle.ORACLE_GRID`) to full closure, derives
ground-truth deadlock labels by reachability, and cross-checks the knot
detector's verdict at **every reachable state**; then runs the teeth
battery, which arms the ``skip-wake`` and ``skip-dirty-block`` bookkeeping
faults and demands each produces a replayable counterexample on the
production (fast-path + incremental + cached) engine.

The gate fails when:

* any state shows a detector/ground-truth disagreement (a witness artifact
  is written under ``oracle_artifacts/`` for replay);
* any closure drifts from its pinned state/terminal/deadlock counts — a
  changed branch point or RNG draw silently reshapes the verified space,
  and that must be a loud, reviewed event;
* any armed teeth fault goes uncaught (the oracle has lost its teeth);
* the whole run exceeds its wall-clock budget (the grid is sized for CI).

Usage:

    python scripts/oracle_smoke.py            # the CI gate
    python scripts/oracle_smoke.py --verbose  # per-frontier progress

A failure replays locally with the same command, or per case with
``python -m repro oracle check <case>``.

See ``docs/TESTING.md`` for where this sits in the test pyramid.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.validation.oracle import (  # noqa: E402
    ORACLE_GRID,
    TEETH_FAULTS,
    build_witness,
    check_case,
    dump_witness,
    get_case,
    run_teeth,
)

BUDGET_SECONDS = 90.0
TEETH_CASE = "ring-deadlock"  # smallest closure containing a true deadlock
ARTIFACT_DIR = REPO_ROOT / "oracle_artifacts"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="exhaustive model-checking oracle smoke gate"
    )
    parser.add_argument("--verbose", action="store_true",
                        help="print per-frontier exploration progress")
    args = parser.parse_args(argv)
    log = print if args.verbose else None

    started = time.monotonic()
    failures = 0

    for case in ORACLE_GRID:
        report = check_case(case, log=log, keep_graph=True)
        print(report.summary())
        for violation in report.violations:
            failures += 1
            print(f"  {violation.kind} @ state {violation.state_index}: "
                  f"{violation.detail}")
            if violation.state_index >= 0:
                path = dump_witness(
                    build_witness(
                        report.graph, violation.state_index,
                        kind=violation.kind, detail=violation.detail,
                    ),
                    ARTIFACT_DIR
                    / f"{case.name}-{violation.kind}"
                      f"-{violation.state_index}.json",
                )
                print(f"  witness: {path}")

    print(f"teeth battery on {TEETH_CASE!r} "
          f"(faults: {', '.join(TEETH_FAULTS)})")
    for outcome in run_teeth(get_case(TEETH_CASE)):
        if outcome.caught:
            print(f"  {outcome.fault}: caught by the "
                  f"{outcome.witness_kind!r} witness "
                  f"({outcome.divergence} divergence at step "
                  f"{outcome.diverged_at})")
        else:
            failures += 1
            print(f"  {outcome.fault}: MISSED — the oracle has no teeth "
                  f"({outcome.detail})")

    elapsed = time.monotonic() - started
    print(f"oracle smoke: {len(ORACLE_GRID)} cases, {elapsed:.1f}s")
    if elapsed > BUDGET_SECONDS:
        failures += 1
        print(f"FAIL: exceeded the {BUDGET_SECONDS:.0f}s budget — shrink "
              f"the grid or speed up enumeration")
    if failures:
        print(f"oracle smoke: FAILED ({failures} problem(s))")
        return 1
    print("oracle smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
