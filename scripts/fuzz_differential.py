#!/usr/bin/env python3
"""Differential fuzz harness CLI — cross-check the optimized paths.

Draws seeded random configurations and verifies, for each one, that

* the engine fast path is bit-identical to the legacy engine,
* the vectorized SoA core is bit-identical to the legacy engine,
* the batched kernel engine is bit-identical to the vectorized core,
* dirty-region cached detection is bit-identical to uncached detection,
* the incrementally-maintained CWG equals a from-scratch rebuild at every
  detection instant.

Any mismatch is shrunk to a minimal reproducing configuration and dumped
as a replayable JSON artifact under ``fuzz_artifacts/``.

Usage:

    python scripts/fuzz_differential.py                  # 50 configs, seed 1
    python scripts/fuzz_differential.py --configs 200 --seed 7
    python scripts/fuzz_differential.py --smoke          # the CI gate
    python scripts/fuzz_differential.py --replay fuzz_artifacts/<file>.json

``--smoke`` runs the fixed CI sweep: 25 configs from a pinned seed under a
60-second budget — deterministic, so a CI failure replays locally with the
same command.  Exit status is non-zero when any mismatch was found.

See ``docs/TESTING.md`` for where this sits in the test pyramid and how to
file a minimized mismatch.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.validation.differential import (  # noqa: E402
    AXES,
    check_config,
    dump_artifact,
    load_artifact,
    run_fuzz,
    shrink_config,
)

SMOKE_CONFIGS = 25
SMOKE_SEED = 20260806
SMOKE_BUDGET_SECONDS = 90.0


def _artifact_name(axis: str, seed: int, index: int) -> str:
    return f"mismatch_{axis}_seed{seed}_{index}.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="differential fuzzing of engine/vectorized/detector/CWG equivalence"
    )
    parser.add_argument("--configs", type=int, default=50, help="configs to draw")
    parser.add_argument("--seed", type=int, default=1, help="fuzz RNG seed")
    parser.add_argument(
        "--axes",
        default=",".join(AXES),
        help=f"comma-separated axes to check (default: {','.join(AXES)})",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="wall-clock budget in seconds (stops drawing configs after)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI gate: {SMOKE_CONFIGS} configs, seed {SMOKE_SEED}, "
        f"{SMOKE_BUDGET_SECONDS:.0f}s budget",
    )
    parser.add_argument(
        "--no-shrink", action="store_true", help="skip mismatch minimization"
    )
    parser.add_argument(
        "--artifact-dir",
        type=Path,
        default=REPO_ROOT / "fuzz_artifacts",
        help="where mismatch artifacts are written",
    )
    parser.add_argument(
        "--replay",
        type=Path,
        default=None,
        help="re-check a previously dumped mismatch artifact and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-config progress"
    )
    args = parser.parse_args(argv)

    if args.replay is not None:
        path = args.replay
        if not path.exists() and (args.artifact_dir / path.name).exists():
            path = args.artifact_dir / path.name
        axis, config = load_artifact(path)
        print(f"replaying {path} on axis {axis!r}: {config.label()}")
        mismatches = check_config(config, axes=(axis,))
        if mismatches:
            print(f"REPRODUCED: {mismatches[0].detail}")
            return 1
        print("did not reproduce (fixed, or environment-dependent)")
        return 0

    if args.smoke:
        args.configs = SMOKE_CONFIGS
        args.seed = SMOKE_SEED
        args.budget = SMOKE_BUDGET_SECONDS

    axes = tuple(a.strip() for a in args.axes.split(",") if a.strip())
    unknown = [a for a in axes if a not in AXES]
    if unknown:
        parser.error(f"unknown axes {unknown}; choose from {list(AXES)}")

    log = None if args.quiet else print
    mismatches, checked = run_fuzz(
        num_configs=args.configs,
        seed=args.seed,
        axes=axes,
        shrink=not args.no_shrink,
        time_budget=args.budget,
        log=log,
    )

    print(
        f"\nfuzz_differential: {checked} configs checked on axes "
        f"{'/'.join(axes)} (seed {args.seed}), "
        f"{len(mismatches)} mismatch(es)"
    )
    if not mismatches:
        return 0
    for i, mismatch in enumerate(mismatches):
        path = dump_artifact(
            mismatch,
            args.artifact_dir / _artifact_name(mismatch.axis, args.seed, i),
        )
        print(f"  [{mismatch.axis}] {mismatch.detail}")
        print(f"    minimized config: {mismatch.config.label()} "
              f"seed={mismatch.config.seed}")
        print(f"    artifact: {path}")
        print(f"    replay:   python scripts/fuzz_differential.py --replay {path}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
