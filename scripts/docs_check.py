#!/usr/bin/env python3
"""Documentation drift gate: API symbols must import, links must resolve.

Documentation rots in two characteristic ways: an API reference keeps
naming a symbol that was renamed or removed, and a markdown link keeps
pointing at a file that moved.  Both are mechanical to detect, so this
script does — it is part of ``scripts/ci_check.sh``:

1. every dotted ``repro.*`` path mentioned in ``docs/API.md`` is resolved
   against the live package (import the longest importable module prefix,
   then walk attributes), so the reference cannot drift from the code;
2. every relative link in the repo's markdown files must point at a file
   that exists;
3. every public ``Topology`` subclass and every CLI ``--topology`` choice
   must be documented in ``docs/TOPOLOGIES.md`` — a new topology class
   cannot land without its reference entry.

Exit status is the number of problems (0 = clean).
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

API_DOC = REPO_ROOT / "docs" / "API.md"
TOPOLOGY_DOC = REPO_ROOT / "docs" / "TOPOLOGIES.md"

#: a dotted repro.* path: the package name plus at least one attribute
SYMBOL_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

#: markdown inline links — [text](target); images share the syntax
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: directories never scanned for markdown
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}


def iter_markdown_files() -> list[Path]:
    out = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            out.append(path)
    return out


def resolve_symbol(dotted: str) -> None:
    """Import the longest module prefix of ``dotted``, then walk attributes.

    Raises on any failure; the caller turns that into a problem report.
    """
    parts = dotted.split(".")
    module = None
    index = len(parts)
    last_error: Exception | None = None
    while index > 0:
        try:
            module = importlib.import_module(".".join(parts[:index]))
            break
        except ImportError as exc:
            last_error = exc
            index -= 1
    if module is None:
        raise ImportError(f"no importable prefix of {dotted!r}: {last_error}")
    obj = module
    for attr in parts[index:]:
        obj = getattr(obj, attr)  # AttributeError names the missing piece


def check_api_symbols() -> list[str]:
    problems = []
    if not API_DOC.exists():
        return [f"{API_DOC.relative_to(REPO_ROOT)}: missing"]
    seen = sorted(set(SYMBOL_RE.findall(API_DOC.read_text())))
    for dotted in seen:
        try:
            resolve_symbol(dotted)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            problems.append(
                f"docs/API.md: `{dotted}` does not resolve "
                f"({type(exc).__name__}: {exc})"
            )
    print(f"docs_check: {len(seen)} API symbols resolved against the package")
    return problems


def check_markdown_links() -> list[str]:
    problems = []
    checked = 0
    for md in iter_markdown_files():
        for match in LINK_RE.finditer(md.read_text()):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            checked += 1
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    print(f"docs_check: {checked} intra-repo links checked")
    return problems


def check_topology_docs() -> list[str]:
    """Every topology class and CLI choice must appear in TOPOLOGIES.md."""
    if not TOPOLOGY_DOC.exists():
        return [f"{TOPOLOGY_DOC.relative_to(REPO_ROOT)}: missing"]
    text = TOPOLOGY_DOC.read_text()
    problems = []

    from repro.network import topology as topo_mod

    def subclasses(cls):
        for sub in cls.__subclasses__():
            yield sub
            yield from subclasses(sub)

    classes = sorted(
        {c.__name__ for c in subclasses(topo_mod.Topology)
         if not c.__name__.startswith("_")}
    )
    for name in classes:
        if name not in text:
            problems.append(
                f"docs/TOPOLOGIES.md: Topology subclass `{name}` is "
                f"undocumented"
            )

    from repro.cli import build_parser

    parser = build_parser()
    choices: list[str] = []
    for action in parser._subparsers._group_actions[0].choices["simulate"]._actions:
        if "--topology" in action.option_strings:
            choices = list(action.choices)
    if not choices:
        problems.append("docs/TOPOLOGIES.md: simulate has no --topology flag")
    for choice in choices:
        if f"`{choice}`" not in text:
            problems.append(
                f"docs/TOPOLOGIES.md: CLI --topology choice `{choice}` is "
                f"undocumented"
            )
    print(
        f"docs_check: {len(classes)} topology classes and {len(choices)} "
        f"CLI choices covered by docs/TOPOLOGIES.md"
    )
    return problems


def main() -> int:
    problems = (
        check_api_symbols() + check_markdown_links() + check_topology_docs()
    )
    for problem in problems:
        print(f"DOCS: {problem}")
    if not problems:
        print("docs_check: OK")
    return len(problems)


if __name__ == "__main__":
    raise SystemExit(main())
