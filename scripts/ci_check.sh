#!/usr/bin/env bash
# Tier-1 gate: full test suite plus a quick benchmark smoke.
#
#   scripts/ci_check.sh
#
# 1. runs the test suite exactly as the roadmap's tier-1 command does;
# 2. regenerates the benchmark numbers in quick mode and fails when
#    cycles/sec regressed >20% against the committed BENCH_core.json
#    (or when the fast-path speedup fell below the 2x acceptance bar).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q

echo "== benchmark smoke (vs committed BENCH_core.json) =="
python scripts/bench_baseline.py --check

echo "ci_check: OK"
