#!/usr/bin/env bash
# Tier-1 gate: full test suite, benchmark smoke, differential fuzz smoke.
#
#   scripts/ci_check.sh
#
# 1. runs the fast test set (everything not marked `slow`) for quick signal;
# 2. runs the `slow`-marked tests in a separate pass;
# 3. regenerates the benchmark numbers in quick mode and fails when
#    cycles/sec regressed >20% against the committed BENCH_core.json
#    (or when the fast-path speedup fell below its 2x acceptance bar, or
#    the kernel engine below its 10x bar on the saturated scenario);
#    on failure the per-phase time breakdown is printed alongside the
#    committed one so the regressing phase is visible at a glance;
# 4. runs the observability smoke gate: a pinned traced scenario whose
#    exported Chrome/JSONL traces must parse with the expected span names,
#    plus the <=10% overhead bound for obs_level=1 (scripts/obs_smoke.py);
# 5. runs the engine equivalence gate: the A/B/C/D bit-identity suite
#    (legacy / fast path / vectorized / kernels), the SoA mirror property
#    and array-projection tests and the golden-trace digests, all of which
#    every optimized engine tier must reproduce verbatim;
# 6. runs the differential fuzz smoke sweep: 25 seeded random configs
#    cross-checked on the engine/vectorized/kernels/detector/CWG axes
#    under a 90 s budget (deterministic — a CI failure replays locally
#    with the same command);
# 7. runs the model-checking oracle smoke gate: every configuration class
#    of the oracle grid enumerated to full closure, the knot detector
#    cross-checked against reachability ground truth at every reachable
#    state, closure sizes pinned against drift, and the fault-injection
#    teeth battery proven to bite (scripts/oracle_smoke.py);
# 8. runs the campaign smoke gate: a 2-point campaign interrupted after one
#    point, resumed, and checked bit-identical against a direct sweep with
#    a consistent store manifest (scripts/campaign_smoke.py);
# 9. runs the distributed campaign smoke gate: a localhost scheduler, two
#    TCP worker subprocesses, one SIGKILLed mid-point — the lease must be
#    requeued and finished by the survivor, the manifest must stay
#    consistent and rebuildable, and the drained store must be
#    bit-identical to a single-host run (scripts/serve_smoke.py);
# 10. runs the documentation drift gate: every repro.* symbol named in
#    docs/API.md must resolve against the live package, every relative
#    markdown link in the repo must point at an existing file, and every
#    Topology subclass / CLI --topology choice must be documented in
#    docs/TOPOLOGIES.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1 tests (fast set) =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q -m "not slow"

echo "== tier-1 tests (slow set) =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q -m slow

echo "== benchmark smoke (vs committed BENCH_core.json) =="
python scripts/bench_baseline.py --check

echo "== observability smoke (trace schema + overhead gate) =="
python scripts/obs_smoke.py

echo "== engine equivalence (A/B/C/D bit-identity + SoA mirrors) =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q \
    tests/integration/test_fast_path_equivalence.py \
    tests/properties/test_soa_mirrors.py \
    tests/network/test_soa_arrays.py \
    tests/golden

echo "== differential fuzz smoke (see docs/TESTING.md) =="
python scripts/fuzz_differential.py --smoke --quiet

echo "== model-checking oracle smoke (exhaustive detector verification) =="
python scripts/oracle_smoke.py

echo "== campaign smoke (interrupt / resume / bit-identical merge) =="
python scripts/campaign_smoke.py

echo "== distributed serve smoke (2 workers, 1 crash, bit-identical drain) =="
python scripts/serve_smoke.py

echo "== docs drift (API symbols, markdown links, topology coverage) =="
python scripts/docs_check.py

echo "ci_check: OK"
