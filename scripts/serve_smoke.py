#!/usr/bin/env python3
"""Distributed campaign smoke gate: 2 workers, 1 crash, bit-identical drain.

The end-to-end contract of the campaign service, run as part of
``scripts/ci_check.sh``:

1. start a :class:`CampaignService` scheduler on localhost and submit a
   4-point tiny campaign;
2. connect two *real* worker subprocesses over TCP; the first carries an
   injected ``hang-point`` fault matched to the first submitted point, so
   it claims that point and hangs on it;
3. SIGKILL the hung worker mid-point (its whole process group, so forked
   point children die too): the scheduler must see the disconnect,
   requeue the lease, and the surviving worker must finish the campaign;
4. verify the compacted store manifest recorded all points done with
   per-point worker attribution, and that ``manifest_rebuild`` reproduces
   the same point set from artifacts + journal alone;
5. verify the drained store is **bit-identical**, artifact for artifact,
   to the same campaign run by the single-host ``CampaignRunner``, and
   that a resumed single-host sweep over the store equals the plain
   serial sweep.

Everything is deterministic modulo scheduling interleave; the budget is
well under the 90 s CI bound.  A failure replays locally with
``python scripts/serve_smoke.py``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import CampaignRunner, ResultStore  # noqa: E402
from repro.campaign.service import CampaignService  # noqa: E402
from repro.config import tiny_default  # noqa: E402
from repro.metrics.sweep import run_load_sweep  # noqa: E402

LOADS = [0.3, 0.6, 0.9, 1.2]
FAST = dict(measure_cycles=300, warmup_cycles=50)


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 typing literal
    print(f"serve_smoke: FAIL — {message}")
    raise SystemExit(1)


def spawn_worker(port: int, name: str, extra_env: dict | None = None):
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(extra_env or {})
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "worker",
            "--connect", f"127.0.0.1:{port}", "--id", name,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        start_new_session=True,  # killpg reaches forked point workers too
    )


def kill_worker(proc) -> None:
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    proc.wait(timeout=10)


def wait_for(predicate, what: str, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    fail(f"timed out waiting for {what}")


def artifact_bytes(store: ResultStore) -> dict[str, bytes]:
    return {
        p.name: p.read_bytes()
        for p in store.points_dir.glob("*.json")
        if not p.name.endswith(".err.json")
    }


def main() -> int:
    started = time.monotonic()
    cfg = tiny_default(**FAST)
    configs = [cfg.replace(load=load) for load in LOADS]
    with tempfile.TemporaryDirectory(prefix="serve_smoke_") as tmp:
        reference = ResultStore(Path(tmp) / "reference")
        CampaignRunner(reference, max_workers=2).run_points(configs)

        store_root = Path(tmp) / "store"
        victim = survivor = None
        (Path(tmp) / "faults").mkdir()
        with CampaignService(
            store_root, local_workers=0, lease_ttl=30.0
        ) as svc:
            try:
                submitted = svc.submit_points(configs)
                hang_digest = submitted["digests"][0]
                print(
                    f"serve_smoke: scheduler on 127.0.0.1:{svc.port}, "
                    f"{len(LOADS)} points submitted"
                )
                victim = spawn_worker(
                    svc.port,
                    "victim",
                    extra_env={
                        "REPRO_INJECT_FAULT": "hang-point",
                        "REPRO_FAULT_MATCH": configs[0].label(),
                        "REPRO_FAULT_DIR": str(Path(tmp) / "faults"),
                    },
                )
                # FIFO order: the victim's first claim is the hang point
                wait_for(
                    lambda: svc.status_snapshot()["scheduler"]["leases"]
                    .get(hang_digest, {})
                    .get("worker")
                    == "victim",
                    "victim to claim the hang point",
                )
                survivor = spawn_worker(svc.port, "survivor")
                wait_for(
                    lambda: svc.status_snapshot()["scheduler"]["points"][
                        "done"
                    ]
                    >= len(LOADS) - 1,
                    "survivor to drain the live points",
                    timeout_s=60.0,
                )
                kill_worker(victim)
                print("serve_smoke: victim worker SIGKILLed mid-point")
                statuses = svc.wait_points(submitted["digests"], timeout=60)
                bad = {
                    d: s for d, s in statuses.items() if s["status"] != "done"
                }
                if bad:
                    fail(f"points not completed after crash: {bad}")
                counters = svc.status_snapshot()["scheduler"]["counters"]
                if counters.get("worker_disconnects", 0) < 1:
                    fail(f"no disconnect seen: {counters}")
                if counters.get("points_requeued", 0) < 1:
                    fail(f"crashed lease never requeued: {counters}")
                finisher = svc.scheduler.points[hang_digest].worker
                if finisher != "survivor":
                    fail(f"hang point finished by {finisher!r}")
                svc.seal()
            finally:
                for proc in (victim, survivor):
                    if proc is not None and proc.poll() is None:
                        kill_worker(proc)
        print(
            "serve_smoke: crashed lease requeued and completed by survivor"
        )

        store = ResultStore(store_root)
        manifest = store.load_manifest()
        done = [
            d for d, p in manifest["points"].items() if p["status"] == "done"
        ]
        if len(done) != len(LOADS):
            fail(f"manifest after drain: {manifest}")
        workers_used = {manifest["points"][d].get("worker") for d in done}
        if not workers_used <= {"victim", "survivor"}:
            fail(f"unattributed workers in manifest: {workers_used}")
        rebuilt = store.manifest_rebuild()
        if set(rebuilt["points"]) != set(manifest["points"]):
            fail("manifest_rebuild lost or invented points")
        print(
            "serve_smoke: manifest consistent and rebuildable "
            f"(workers: {sorted(workers_used)})"
        )

        ours, theirs = artifact_bytes(store), artifact_bytes(reference)
        if ours.keys() != theirs.keys():
            fail(
                f"artifact sets differ: {sorted(ours)} vs {sorted(theirs)}"
            )
        for name in theirs:
            if ours[name] != theirs[name]:
                fail(f"artifact {name} differs from single-host run")
        print("serve_smoke: store bit-identical to single-host campaign")

        resumed = CampaignRunner(store, max_workers=1).run_sweep(cfg, LOADS)
        if resumed.resumed != len(LOADS) or resumed.executed != 0:
            fail(
                f"resume over drained store: resumed={resumed.resumed} "
                f"executed={resumed.executed}"
            )
        if resumed.sweep != run_load_sweep(cfg, LOADS):
            fail("resumed sweep is not bit-identical to the direct sweep")
        print("serve_smoke: resumed sweep bit-identical to direct sweep")

    elapsed = time.monotonic() - started
    print(f"serve_smoke: OK ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
