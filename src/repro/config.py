"""Simulation configuration.

:class:`SimulationConfig` captures every knob the paper's study turns:
topology radix/dimension, link directionality, routing algorithm, virtual
channels per physical channel, edge-buffer depth, message length, traffic
pattern, offered load, deadlock-detection interval and recovery policy.

The paper's default configuration is a 16-ary 2-cube bidirectional torus,
32-flit messages, 2-flit edge buffers, one injection and one reception
channel per node, detection every 50 cycles, and straight-through-preferring
channel selection — see :func:`paper_default`.  Because a pure-Python
flit-level simulation of 256 nodes is slow, :func:`bench_default` scales the
radix down while preserving every behavioural ratio the experiments measure.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["SimulationConfig", "paper_default", "bench_default", "tiny_default"]


@dataclass(frozen=True)
class SimulationConfig:
    """Full description of one simulation run."""

    # -- topology ---------------------------------------------------------------
    k: int = 16  #: radix (nodes per dimension)
    n: int = 2  #: dimensions
    bidirectional: bool = True  #: physical channel in each direction?
    mesh: bool = False  #: mesh instead of torus (for turn-model baselines)
    failed_links: tuple[tuple[int, int], ...] = ()  #: removed (src, dst) pairs
    #: topology class: "torus" (the paper's k-ary n-cube family, shaped by
    #: ``k``/``n``/``mesh``/``failed_links`` above) or one of the zoo
    #: classes — "mesh3d" / "torus3d" (mixed-radix 3D grids, ``dims`` =
    #: 3 radices), "dragonfly" (``dims`` = (a, p, h)) or "fullmesh"
    #: (``dims`` = (num_nodes,)).  See docs/TOPOLOGIES.md.
    topology: str = "torus"
    #: shape parameters for the zoo topologies (must stay () for "torus")
    dims: tuple[int, ...] = ()
    #: per-class link latencies in cycles/flit: per-dimension for grid
    #: topologies (a TSV vertical-link penalty on "mesh3d"/"torus3d"),
    #: (local, global) for "dragonfly", (latency,) for "fullmesh".
    #: Empty = 1 everywhere, the paper's model.
    link_latencies: tuple[int, ...] = ()

    # -- router -----------------------------------------------------------------
    num_vcs: int = 1  #: virtual channels per physical channel
    buffer_depth: int = 2  #: edge-buffer depth in flits
    router_delay: int = 0  #: cycles between header arrival and routing
    rx_channels: int = 1  #: reception (ejection) channels per node
    routing: str = "tfar"  #: routing algorithm short name
    selection: str = "straight"  #: channel-selection policy short name
    arbitration: str = "random"  #: service order: "random"|"oldest-first"|"round-robin"

    # -- workload ----------------------------------------------------------------
    message_length: int = 32  #: flits per message
    #: optional hybrid lengths: ((length, weight), ...); empty = fixed length
    length_mix: tuple[tuple[int, float], ...] = ()
    traffic: str = "uniform"  #: traffic pattern short name
    #: components for traffic="hybrid": ((pattern_name, weight), ...)
    traffic_mix: tuple[tuple[str, float], ...] = ()
    load: float = 0.5  #: normalized offered load (1.0 = capacity)
    hotspot_fraction: float = 0.1  #: only used by hot-spot traffic
    max_queued_per_node: Optional[int] = 64  #: source-queue cap (None = unbounded)
    #: total-generation cap: the Bernoulli sources stop creating messages
    #: once this many exist (None = unbounded).  Bounds the reachable state
    #: space for the exhaustive model-checking oracle
    #: (:mod:`repro.validation.oracle`); honoured identically by every
    #: engine tier.
    max_messages: Optional[int] = None

    # -- deadlock handling --------------------------------------------------------
    detection_interval: int = 50  #: cycles between detector invocations
    detection_mode: str = "knot"  #: "knot" (true detection) or "timeout"
    cwg_maintenance: str = "rebuild"  #: "rebuild" per detection or "incremental"
    timeout_threshold: int = 500  #: blocked-cycles threshold for timeout mode
    recovery: str = "disha"  #: recovery policy short name
    recovery_teardown: str = "instant"  #: "instant" or "flit-by-flit"
    count_cycles: bool = True  #: enumerate CWG cycles at each detection?
    max_cycles_counted: int = 50_000  #: cap on cycle enumeration per detection
    #: dirty-region detector caching: partition the CWG into weakly-connected
    #: regions and re-run SCC/knot/census analysis only on regions touched
    #: since the last pass (needs ``cwg_maintenance="incremental"``; a no-op
    #: otherwise).  Bit-identical records to the uncached full pass; off
    #: selects the legacy per-pass global analysis for A/B tests.
    detector_caching: bool = True
    record_blocked_durations: bool = False  #: keep per-message blocked times

    # -- run control ----------------------------------------------------------------
    warmup_cycles: int = 1_000  #: cycles before statistics collection starts
    measure_cycles: int = 30_000  #: measured cycles (paper: 30,000 past steady state)
    seed: int = 1  #: RNG seed (runs are fully deterministic given the seed)
    check_invariants: bool = False  #: run conservation checks every cycle (slow)
    #: runtime invariant checker (:mod:`repro.validation.invariants`):
    #: 0 = off (the default — benchmarks and production sweeps must not pay
    #: for validation), 1 = run the full check battery every
    #: ``validation_interval`` cycles, 2 = run it every cycle.  Levels 1–2
    #: also verify every detector-reported deadlock against the knot
    #: definition at each detection, before recovery acts on it.
    validation_level: int = 0
    validation_interval: int = 100  #: sampling period for validation_level=1
    #: incremental activity tracking in the engine hot path plus detection
    #: short-circuiting.  Bit-identical to the legacy full-rescan path (same
    #: seed -> same RunResult); off selects the legacy path for A/B tests.
    engine_fast_path: bool = True
    #: vectorized structure-of-arrays engine core
    #: (:class:`repro.network.vectorized.VectorizedEngine`): index-mapped
    #: numpy/array mirrors of channel and message state, precomputed batch
    #: candidate tables, and an inline C-backed arbitration stream.  Builds
    #: on the fast path's activity flags, so it requires
    #: ``engine_fast_path=True``.  Bit-identical to both other engines
    #: (same seed -> same RunResult and deadlock-event stream); off selects
    #: the object-model engines for A/B/C tests.
    engine_vectorized: bool = False
    #: NumPy array-kernel engine tier
    #: (:class:`repro.network.kernels.KernelEngine`): batch head-of-line
    #: eligibility, free-slot availability and phase order construction as
    #: masked array ops over the SoA mirrors, with a word-buffered traffic
    #: stream for the generate phase.  Builds on the vectorized engine's
    #: SoA state, so it requires ``engine_vectorized=True`` (and numpy).
    #: Bit-identical to the other three engines (same seed -> same
    #: RunResult and deadlock-event stream); off selects the vectorized
    #: engine for A/B/C/D tests.
    engine_kernels: bool = False
    #: observability (:mod:`repro.obs`): 0 = off (the default — instrumented
    #: call sites cost one attribute lookup against a no-op singleton),
    #: 1 = metrics registry + per-phase profiler, 2 = level 1 plus the
    #: cycle-level trace ring buffer (exportable as JSONL / Chrome trace).
    #: Pure observation at every level: simulation results are bit-identical
    #: across levels (same seed -> same RunResult and event stream).
    obs_level: int = 0
    obs_trace_capacity: int = 65_536  #: trace ring-buffer bound (events)

    #: latency count expected from ``link_latencies`` per topology class
    #: (None = per-dimension, derived from the grid shape)
    _TOPOLOGIES = ("torus", "mesh3d", "torus3d", "dragonfly", "fullmesh")

    def _validate_topology(self) -> None:
        if self.topology not in self._TOPOLOGIES:
            raise ConfigurationError(
                f"topology must be one of {self._TOPOLOGIES}, got {self.topology!r}"
            )
        if any(lat < 1 for lat in self.link_latencies):
            raise ConfigurationError(
                f"link latencies must be >= 1, got {self.link_latencies}"
            )
        if self.topology == "torus":
            if self.dims:
                raise ConfigurationError(
                    "dims shapes the zoo topologies only; the 'torus' family "
                    "is shaped by k and n"
                )
            if self.k < 2:
                raise ConfigurationError(f"k must be >= 2, got {self.k}")
            if self.n < 1:
                raise ConfigurationError(f"n must be >= 1, got {self.n}")
            if self.link_latencies and len(self.link_latencies) != self.n:
                raise ConfigurationError(
                    f"expected {self.n} per-dimension link latencies, "
                    f"got {len(self.link_latencies)}"
                )
            if self.link_latencies and self.failed_links:
                raise ConfigurationError(
                    "link_latencies and failed_links cannot be combined"
                )
            return
        if self.mesh:
            raise ConfigurationError(
                "the mesh flag applies to the 'torus' family only; "
                "use topology='mesh3d' for a 3D mesh"
            )
        if self.failed_links:
            raise ConfigurationError(
                "failed links are modelled on the 'torus' family only"
            )
        if not self.bidirectional and self.topology != "torus3d":
            raise ConfigurationError(
                f"topology {self.topology!r} is always bidirectional"
            )
        expected_lat = {"mesh3d": 3, "torus3d": 3, "dragonfly": 2, "fullmesh": 1}
        want = expected_lat[self.topology]
        if self.link_latencies and len(self.link_latencies) != want:
            raise ConfigurationError(
                f"topology {self.topology!r} takes {want} link latencies "
                f"({'per dimension' if want == 3 else 'see docs/TOPOLOGIES.md'}), "
                f"got {len(self.link_latencies)}"
            )
        if self.topology in ("mesh3d", "torus3d"):
            if len(self.dims) != 3 or any(d < 2 for d in self.dims):
                raise ConfigurationError(
                    f"topology {self.topology!r} needs dims = 3 radices >= 2, "
                    f"got {self.dims}"
                )
        elif self.topology == "dragonfly":
            if len(self.dims) != 3:
                raise ConfigurationError(
                    f"dragonfly needs dims = (a, p, h), got {self.dims}"
                )
            a, p, h = self.dims
            if a < 2 or p < 1 or h < 1:
                raise ConfigurationError(
                    f"dragonfly needs a >= 2, p >= 1, h >= 1, got {self.dims}"
                )
        else:  # fullmesh
            if len(self.dims) != 1 or self.dims[0] < 2:
                raise ConfigurationError(
                    f"fullmesh needs dims = (num_nodes >= 2,), got {self.dims}"
                )

    def validate(self) -> None:
        self._validate_topology()
        if self.num_vcs < 1:
            raise ConfigurationError(f"num_vcs must be >= 1, got {self.num_vcs}")
        if self.buffer_depth < 1:
            raise ConfigurationError(
                f"buffer_depth must be >= 1, got {self.buffer_depth}"
            )
        if self.router_delay < 0:
            raise ConfigurationError(
                f"router_delay must be >= 0, got {self.router_delay}"
            )
        if self.rx_channels < 1:
            raise ConfigurationError(
                f"rx_channels must be >= 1, got {self.rx_channels}"
            )
        if self.message_length < 1:
            raise ConfigurationError(
                f"message_length must be >= 1, got {self.message_length}"
            )
        if self.load < 0:
            raise ConfigurationError(f"load must be >= 0, got {self.load}")
        if self.max_messages is not None and self.max_messages < 1:
            raise ConfigurationError(
                f"max_messages must be >= 1 or None, got {self.max_messages}"
            )
        if self.detection_interval < 1:
            raise ConfigurationError(
                f"detection_interval must be >= 1, got {self.detection_interval}"
            )
        if self.warmup_cycles < 0 or self.measure_cycles < 1:
            raise ConfigurationError("invalid warmup/measure cycle counts")
        if self.validation_level not in (0, 1, 2):
            raise ConfigurationError(
                f"validation_level must be 0, 1 or 2, got {self.validation_level}"
            )
        if self.validation_interval < 1:
            raise ConfigurationError(
                f"validation_interval must be >= 1, got {self.validation_interval}"
            )
        if self.obs_level not in (0, 1, 2):
            raise ConfigurationError(
                f"obs_level must be 0, 1 or 2, got {self.obs_level}"
            )
        if self.obs_trace_capacity < 1:
            raise ConfigurationError(
                f"obs_trace_capacity must be >= 1, got {self.obs_trace_capacity}"
            )
        if self.engine_vectorized and not self.engine_fast_path:
            raise ConfigurationError(
                "engine_vectorized builds on the fast path's activity "
                "flags; it requires engine_fast_path=True"
            )
        if self.engine_kernels:
            if not self.engine_vectorized:
                raise ConfigurationError(
                    "engine_kernels batches over the vectorized engine's "
                    "SoA arrays; it requires engine_vectorized=True"
                )
            try:
                import numpy  # noqa: F401
            except ImportError as exc:
                raise ConfigurationError(
                    "engine_kernels requires numpy (declared in "
                    "pyproject.toml as numpy>=1.23); install it or drop "
                    "the engine_kernels flag"
                ) from exc
        if self.engine_vectorized and (
            self.topology != "torus" or any(l != 1 for l in self.link_latencies)
        ):
            raise ConfigurationError(
                "the vectorized/kernel engine tiers currently support "
                "unit-latency k-ary n-cube ('torus' family) configs only; "
                "run topology-zoo or heterogeneous-latency configs on the "
                "legacy or fast-path engine (engine_vectorized=False)"
            )
        if self.mesh and not self.bidirectional:
            raise ConfigurationError("meshes are always bidirectional")
        if self.mesh and self.failed_links:
            raise ConfigurationError("failed links are modelled on tori only")
        if self.arbitration not in ("random", "oldest-first", "round-robin"):
            raise ConfigurationError(
                "arbitration must be 'random', 'oldest-first' or "
                f"'round-robin', got {self.arbitration!r}"
            )
        if self.cwg_maintenance not in ("rebuild", "incremental"):
            raise ConfigurationError(
                "cwg_maintenance must be 'rebuild' or 'incremental', "
                f"got {self.cwg_maintenance!r}"
            )
        if self.detection_mode not in ("knot", "timeout"):
            raise ConfigurationError(
                f"detection_mode must be 'knot' or 'timeout', got {self.detection_mode!r}"
            )
        if self.timeout_threshold < 1:
            raise ConfigurationError(
                f"timeout_threshold must be >= 1, got {self.timeout_threshold}"
            )
        if self.recovery_teardown not in ("instant", "flit-by-flit"):
            raise ConfigurationError(
                "recovery_teardown must be 'instant' or 'flit-by-flit', "
                f"got {self.recovery_teardown!r}"
            )
        if self.traffic == "hybrid" and not self.traffic_mix:
            raise ConfigurationError("hybrid traffic requires traffic_mix")
        for length, weight in self.length_mix:
            if length < 1 or weight <= 0:
                raise ConfigurationError(
                    f"invalid length_mix entry ({length}, {weight})"
                )

    def replace(self, **changes) -> "SimulationConfig":
        """A copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    @property
    def num_nodes(self) -> int:
        if self.topology in ("mesh3d", "torus3d"):
            out = 1
            for d in self.dims:
                out *= d
            return out
        if self.topology == "dragonfly":
            a, _p, h = self.dims
            return a * (a * h + 1)
        if self.topology == "fullmesh":
            return self.dims[0]
        return self.k**self.n

    @property
    def is_cut_through(self) -> bool:
        """Virtual cut-through: a buffer can hold an entire message."""
        return self.buffer_depth >= self.message_length

    def label(self) -> str:
        """Short human-readable tag used in experiment tables."""
        if self.topology in ("mesh3d", "torus3d"):
            shape = "x".join(str(d) for d in self.dims)
            head = f"{self.topology}({shape})"
            if self.link_latencies:
                head += "/lat" + ",".join(str(l) for l in self.link_latencies)
        elif self.topology == "dragonfly":
            a, p, h = self.dims
            head = f"dragonfly(a{a} p{p} h{h})"
        elif self.topology == "fullmesh":
            head = f"fullmesh({self.dims[0]})"
        else:
            kind = "mesh" if self.mesh else ("bi" if self.bidirectional else "uni")
            head = f"{self.k}-ary {self.n}-cube/{kind}"
        return (
            f"{head} {self.routing.upper()}"
            f"{self.num_vcs} buf={self.buffer_depth} L={self.load:.2f}"
        )


def paper_default(**overrides) -> SimulationConfig:
    """The paper's default configuration (Section 3): 16-ary 2-cube."""
    return SimulationConfig().replace(**overrides)


def bench_default(**overrides) -> SimulationConfig:
    """Scaled-down configuration used by the benchmark harness.

    An 8-ary 2-cube with 16-flit messages: every structural property the
    experiments exercise (wraparound rings, even radix, minimal-path
    multiplicity) is preserved while a load-sweep point runs in seconds
    rather than hours of pure-Python simulation.
    """
    cfg = SimulationConfig(
        k=8,
        n=2,
        message_length=16,
        warmup_cycles=500,
        measure_cycles=4_000,
    )
    return cfg.replace(**overrides)


def tiny_default(**overrides) -> SimulationConfig:
    """Minimal configuration for unit/integration tests."""
    cfg = SimulationConfig(
        k=4,
        n=2,
        message_length=8,
        warmup_cycles=100,
        measure_cycles=1_000,
        max_queued_per_node=16,
    )
    return cfg.replace(**overrides)
