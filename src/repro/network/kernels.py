"""The NumPy array-kernel engine tier.

:class:`KernelEngine` is the fourth engine variant
(``config.engine_kernels``, requires ``engine_vectorized``).  Where the
vectorized engine still *walks* every queue and every active message per
cycle in Python to build phase orders and skip parked work, this tier
derives those decisions from the SoA mirrors with masked array kernels:

* **request construction** — the allocate-phase request list is a cached
  queue-head list (maintained ``head_slot`` array, node order, rebuilt
  only when a head changes) concatenated with the maintained
  insertion-ordered active-slot array filtered by the ``routable`` mask
  — no per-cycle walk over all queues and actives;
* **dequeue scanning** — completed queue heads are popped only at nodes
  whose head's ``at_source`` hit zero since the last cycle (an explicit
  dirty set fed by the move phase and victim removal), not by probing
  every queue every cycle;
* **head-of-line eligibility** — the stalled-park skip of the serve loop
  becomes one ``stalled[slots] == 0`` gather *before* the arbitration
  shuffle (exact because during the allocate phase a message's
  ``stalled`` flag is only ever written by its own serve), so a cycle in
  which every request is parked — the common case in a saturated,
  deadlocking network — skips the per-request Python loop entirely;
* **generate** — the private traffic RNG is consumed through a buffered
  word stream (:class:`_TrafficStream`) that precomputes the positions
  of all sub-threshold Bernoulli uniforms per refill; per cycle the
  generate kernel locates injections with a ``searchsorted`` window
  probe instead of drawing one uniform per node.

What deliberately stays sequential (measured, not guessed — see
``docs/PERFORMANCE.md``): the Fisher-Yates arbitration shuffle and the
per-winner selection draws, whose word consumption depends on every
earlier decision in the same cycle, and the move-phase bodies, where
link arbitration is order-dependent and a gathered mobility mask costs
more than the flag check it replaces at realistic active counts.

**Bit-identical by construction.**  The RNG word stream is unchanged:
arbitration reuses the inline MT19937-compatible Fisher-Yates of the
vectorized tier verbatim, the serve/move bodies are the vectorized
bodies applied to exactly the messages the scalar loops would have
served, and the traffic stream reproduces CPython's ``Random.random`` /
``_randbelow`` word consumption bit for bit (``random()`` is
``((a >> 5) * 2**26 + (b >> 6)) * 2**-53`` over two consecutive raw
words — exact in float64).  Equivalence is enforced by the A/B/C/D
suite (``tests/integration/test_fast_path_equivalence.py``), the golden
trace digests and the differential fuzzer's ``kernels`` axis.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.config import SimulationConfig
from repro.errors import ConfigurationError, SimulationError
from repro.faults import active_faults
from repro.network.message import Message, MessageStatus
from repro.network.simulator import _PHASE_ALLOC, _PHASE_MOVE
from repro.network.vectorized import _NO_QLENS, VectorizedEngine, _by_index
from repro.traffic.injection import MessageGenerator
from repro.traffic.lengths import FixedLength
from repro.traffic.patterns import UniformTraffic

__all__ = ["KernelEngine"]

#: traffic word-buffer refill granularity (words); large enough that the
#: big-int -> bytes -> ndarray conversion amortizes to ~noise per cycle
_FETCH_WORDS = 1 << 14
_U53 = 2.0 ** -53


class _TrafficStream:
    """Word-buffered, bit-exact stand-in for the private traffic RNG.

    Fetches raw MT19937 output words in blocks via
    ``Random.getrandbits(32 * n)`` (which yields exactly ``n``
    consecutive ``genrand_uint32`` words, little-endian) and replays
    CPython's consumption patterns on top of the buffer:

    * ``random()``  — two words: ``((a >> 5) * 67108864 + (b >> 6)) * 2**-53``;
    * ``getrandbits(k)`` — ``ceil(k/32)`` words, low word first, the top
      word right-shifted to its remaining width;
    * ``_randbelow`` / ``randrange`` / ``randint`` / ``choice`` — the
      ``getrandbits(bit_length)`` rejection loop.

    Over-fetching is safe *only* because the generator's RNG is private
    to traffic: every consumer (the batch Bernoulli scan and the
    pattern/length samplers, which receive this object as their ``rng``)
    reads through this buffer, so buffered words are never skipped.

    Two derived tables make the generate kernel cheap:

    * ``_u`` holds ``random()``'s value for the word pair starting at
      *every* offset, so uniforms stay addressable no matter how many
      extra words earlier injections consumed (the stride-2 mapping can
      shift by an odd delta);
    * ``_hits`` holds the sorted offsets where ``_u < threshold`` — the
      only positions where an injection can start — so a whole cycle of
      Bernoulli draws reduces to one ``searchsorted`` window probe.
    """

    __slots__ = ("_rng", "_w", "_u", "_hits", "_threshold", "_hits_only", "pos")

    def __init__(
        self, rng, threshold: float = 0.0, hits_only: bool = False
    ) -> None:
        self._rng = rng
        self._threshold = threshold
        #: hits-only streams (uniform destinations, fixed lengths) never
        #: read a paired uniform's *value* — only word draws and the hit
        #: positions — so refills can prefilter on integer top bits and
        #: skip building the full float table
        self._hits_only = hits_only
        self._w = np.empty(0, dtype=np.uint32)
        self._u: np.ndarray | None = np.empty(0, dtype=np.float64)
        self._hits: list[int] = []
        self.pos = 0

    def ensure(self, need: int) -> None:
        if len(self._w) - self.pos < need:
            self._refill(need)

    def _refill(self, need: int) -> None:
        blk = max(_FETCH_WORDS, need)
        raw = self._rng.getrandbits(32 * blk)
        fresh = np.frombuffer(raw.to_bytes(4 * blk, "little"), dtype="<u4")
        self._w = w = np.concatenate([self._w[self.pos :], fresh])
        self.pos = 0
        if self._hits_only:
            # a hit needs a*2^26 + b < p*2^53 with b < 2^26, so the first
            # word must satisfy a < p*2^27 + 1 — an integer compare that
            # discards ~99% of positions before any float math
            aa = w[:-1] >> np.uint32(5)
            pre = np.flatnonzero(
                aa < np.uint32(int(self._threshold * 134217728.0) + 1)
            )
            if pre.size:
                af = aa[pre].astype(np.float64)
                bf = (w[pre + 1] >> np.uint32(6)).astype(np.float64)
                u = (af * 67108864.0 + bf) * _U53
                self._hits = pre[u < self._threshold].tolist()
            else:
                self._hits = []
            self._u = None  # rebuilt lazily if random() is ever called
            return
        a = (w[:-1] >> np.uint32(5)).astype(np.float64)
        b = (w[1:] >> np.uint32(6)).astype(np.float64)
        self._u = (a * 67108864.0 + b) * _U53
        # sorted Python list: the generate kernel probes it with bisect,
        # whose per-call overhead beats np.searchsorted at these sizes
        self._hits = np.flatnonzero(self._u < self._threshold).tolist()

    # -- CPython Random replay -----------------------------------------------------
    def random(self) -> float:
        self.ensure(2)
        u = self._u
        if u is None:
            w = self._w
            a = (w[:-1] >> np.uint32(5)).astype(np.float64)
            b = (w[1:] >> np.uint32(6)).astype(np.float64)
            self._u = u = (a * 67108864.0 + b) * _U53
        val = u[self.pos]
        self.pos += 2
        return float(val)

    def getrandbits(self, k: int) -> int:
        if k <= 32:
            self.ensure(1)
            w = int(self._w[self.pos])
            self.pos += 1
            return w >> (32 - k)
        words = (k + 31) // 32
        self.ensure(words)
        r = 0
        top = k % 32
        for i in range(words):
            w = int(self._w[self.pos + i])
            if i == words - 1 and top:
                w >>= 32 - top
            r |= w << (32 * i)
        self.pos += words
        return r

    def _randbelow(self, n: int) -> int:
        if n <= 0:
            return 0
        k = n.bit_length()
        r = self.getrandbits(k)
        while r >= n:
            r = self.getrandbits(k)
        return r

    def randrange(self, start: int, stop: int | None = None) -> int:
        if stop is None:
            if start > 0:
                return self._randbelow(start)
            raise ValueError(f"empty range for randrange({start})")
        width = stop - start
        if width > 0:
            return start + self._randbelow(width)
        raise ValueError(f"empty range for randrange({start}, {stop})")

    def randint(self, a: int, b: int) -> int:
        return self.randrange(a, b + 1)

    def choice(self, seq):
        return seq[self._randbelow(len(seq))]


class KernelEngine(VectorizedEngine):
    """Masked-batch engine over SoA state; see the module docstring."""

    def __init__(self, config: SimulationConfig, trace=None) -> None:
        super().__init__(config, trace)
        if not config.engine_kernels or not config.engine_vectorized:
            raise ConfigurationError(
                "KernelEngine requires engine_kernels=True and "
                "engine_vectorized=True"
            )
        n = self.topology.num_nodes
        self._num_nodes = n
        #: slot of each source queue's head iff that head is QUEUED, else -1
        self._head_slot = np.full(n, -1, dtype=np.int64)
        #: lazily rebuilt (array, list) projections of the >=0 entries of
        #: ``head_slot`` in node order; stale after any head change
        self._heads_arr = np.empty(0, dtype=np.int64)
        self._heads_list: list[int] = []
        self._heads_stale = False
        #: nodes whose queue head is live but no longer QUEUED (injecting
        #: or done-but-unpopped); only these can ever need a dequeue scan
        self._busy_heads: set[int] = set()
        #: busy nodes whose head's at_source hit zero since the last
        #: allocate phase — the only heads that can have become poppable
        self._head_dirty: set[int] = set()
        # insertion-ordered active-message slots (mirrors the `active`
        # dict order exactly); removals tombstone to -1 and compact lazily
        self._act_arr = np.empty(256, dtype=np.int64)
        self._act_len = 0
        self._act_dead = 0
        self._act_pos: dict[int, int] = {}  # message id -> position
        #: memoized dead-filtered view of the act array (None = stale)
        self._act_cache: np.ndarray | None = None
        #: True only while every active message is provably immobile and
        #: nothing has cleared an immobile flag since that was verified —
        #: the only clear sites are the two serve acquisitions and victim
        #: removal (messages only *become* immobile inside the move loop,
        #: which runs just when this flag is down)
        self._all_immobile = False
        #: True while the allocate request list and its (empty) eligible
        #: subset are provably unchanged since the last all-parked cycle,
        #: with the surviving request count cached in ``_q_nreq``.  Guarded
        #: at use by the dirty/stale/delay checks; invalidated by active-set
        #: changes, victim removal, and any move cycle that ran its loop
        #: (the only paths that can set ``routable`` or clear ``stalled``).
        self._alloc_quiescent = False
        self._q_nreq = 0
        self._arb_rr = config.arbitration == "round-robin"
        # test-only (repro.faults): leave _all_immobile stale after wake-ups
        # so the differential net can prove it catches a lying flag
        self._fault_skip_immobile_clear = (
            "skip-immobile-clear" in active_faults()
        )
        gen = self.generator
        #: the batch generate kernel replays the *unbounded*
        #: MessageGenerator.tick exactly; any other generator type (trace
        #: replay, subclasses) or a total-generation cap (max_messages,
        #: which silences the sources mid-cycle) keeps the scalar path
        self._kgen_batch = (
            type(gen) is MessageGenerator and gen.max_messages is None
        )
        #: paper-default traffic shape: uniform destinations draw exactly
        #: one ``_randbelow(n - 1)`` and fixed lengths draw nothing, so the
        #: generate kernel can read the destination word straight out of
        #: the stream buffer instead of taking four shim frames per
        #: injection.  Exact-type gates: a subclass may override the draw.
        self._kgen_uniform = self._kgen_batch and (
            type(gen.pattern) is UniformTraffic
        )
        self._kgen_fixed_len = (
            gen.lengths.length
            if self._kgen_batch and type(gen.lengths) is FixedLength
            else None
        )
        self._tstream = (
            _TrafficStream(
                gen.rng,
                gen.message_probability,
                # uniform + fixed-length never reads a uniform's value
                hits_only=self._kgen_uniform
                and self._kgen_fixed_len is not None,
            )
            if self._kgen_batch
            else None
        )

    # -- active-slot order maintenance -----------------------------------------------
    def _act_append(self, mid: int, slot: int) -> None:
        self._alloc_quiescent = False
        pos = self._act_len
        arr = self._act_arr
        if pos == arr.shape[0]:
            grown = np.empty(2 * pos, dtype=np.int64)
            grown[:pos] = arr
            self._act_arr = arr = grown
        arr[pos] = slot
        self._act_pos[mid] = pos
        self._act_len = pos + 1
        self._act_cache = None

    def _act_remove(self, mid: int) -> None:
        self._alloc_quiescent = False
        self._act_cache = None
        self._act_arr[self._act_pos.pop(mid)] = -1
        self._act_dead += 1
        if self._act_dead * 4 > self._act_len:
            self._act_compact()

    def _act_compact(self) -> None:
        arr = self._act_arr[: self._act_len]
        keep = arr[arr >= 0]
        self._act_arr[: keep.size] = keep
        self._act_len = int(keep.size)
        self._act_dead = 0
        self._act_cache = None
        slot_msgs = self.soa.slot_msgs
        self._act_pos = {
            slot_msgs[s].id: i for i, s in enumerate(keep.tolist())
        }

    def _act_view(self) -> np.ndarray:
        if not self._act_dead:
            return self._act_arr[: self._act_len]
        # the dead-entry filter is the costly branch: reuse it until the
        # next append/remove perturbs the array
        acts = self._act_cache
        if acts is None:
            acts = self._act_arr[: self._act_len]
            self._act_cache = acts = acts[acts >= 0]
        return acts

    # -- victim removal ---------------------------------------------------------------
    def _remove_victim(self, victim: Message) -> None:
        super()._remove_victim(victim)
        if not self._fault_skip_immobile_clear:
            self._all_immobile = False
        self._alloc_quiescent = False
        # both teardown styles zero at_source, so the source queue head
        # (the victim itself, or unchanged) may now be poppable
        self._head_dirty.add(victim.src)
        if victim.id not in self.active:  # instant teardown left the network
            self._act_remove(victim.id)

    # -- the hot phases ----------------------------------------------------------------
    def _phase_generate(self) -> None:
        gen = self.generator
        if not self._kgen_batch:
            # scalar path (trace replay / subclassed generators), plus
            # head-slot upkeep
            on_created = self.soa.on_created
            qlens = self._qlens
            head_slot = self._head_slot
            snapshot = qlens if self._gen_needs_qlens else _NO_QLENS
            for msg in gen.tick(self.cycle, snapshot):
                q = self.queues[msg.src]
                q.append(msg)
                qlens[msg.src] += 1
                self._live[msg.id] = msg
                on_created(msg)
                if len(q) == 1:
                    head_slot[msg.src] = msg.slot
                    self._heads_stale = True
                self.stats.on_generated(self.cycle)
            return
        p = gen.message_probability
        if p <= 0.0:
            return
        ts = self._tstream
        n = self._num_nodes
        cap = gen.max_queued_per_node
        qlens = self._qlens
        cycle = self.cycle
        pattern = gen.pattern
        lengths = gen.lengths
        queues = self.queues
        live = self._live
        head_slot = self._head_slot
        on_generated = self.stats.on_generated
        uni = self._kgen_uniform
        fixed_len = self._kgen_fixed_len
        n1 = n - 1
        dshift = 32 - n1.bit_length()
        node = 0
        # The precomputed hit table gives every buffer offset whose
        # paired uniform is below the injection threshold, so a segment
        # of nodes is tested with one sorted-window probe.  Only hits on
        # the segment's stride-2 parity are real Bernoulli draws; each
        # actual injection consumes extra words (dest/length draws),
        # shifting the mapping for later nodes, so the scan restarts just
        # past it.  Suppressed hits and pattern self-addresses consume
        # nothing beyond their uniform and continue within the window.
        while node < n:
            m = n - node
            if len(ts._w) - ts.pos < 2 * m:
                ts._refill(2 * m)
            w = ts._w
            wlen = len(w)
            pos = ts.pos
            end = pos + 2 * m
            hits = ts._hits
            lo = bisect_left(hits, pos)
            restart = False
            for h in hits[lo : bisect_left(hits, end, lo)]:
                if (h - pos) & 1:
                    continue  # other parity: not a uniform under this mapping
                nd = node + ((h - pos) >> 1)
                if cap is not None and qlens[nd] >= cap:
                    gen.suppressed += 1
                    continue
                pp = h + 2
                ts.pos = pp
                if uni and pp < wlen and (r := int(w[pp]) >> dshift) < n1:
                    # inline UniformTraffic.dest_for + _randbelow: one
                    # accepted top-bits draw from the buffered word.  The
                    # rare cases — rejection (draw >= n-1) or the word
                    # falling past the buffer — replay through the shim,
                    # which refills and rejects identically.
                    dest = r + 1 if r >= nd else r
                    ts.pos = pp + 1
                else:
                    dest = pattern.dest_for(nd, ts)
                if dest is not None:
                    length = fixed_len if fixed_len is not None else lengths(ts)
                    msg = Message(gen._next_id, nd, dest, length, cycle)
                    gen._next_id += 1
                    gen.generated += 1
                    q = queues[nd]
                    q.append(msg)
                    qlens[nd] += 1
                    live[msg.id] = msg
                    self.soa.on_created(msg)
                    if len(q) == 1:
                        head_slot[nd] = msg.slot
                        self._heads_stale = True
                    on_generated(cycle)
                node = nd + 1
                restart = True
                break
            if not restart:
                ts.pos = end
                node = n

    def _phase_allocate(self) -> None:
        soa = self.soa
        head_slot = self._head_slot
        busy = self._busy_heads
        dirty = self._head_dirty
        if (
            self._alloc_quiescent
            and not dirty
            and not self._heads_stale
            and not self._delay_due
        ):
            # Nothing that could alter the request list or wake a parked
            # message has happened since the last all-parked cycle: replay
            # that cycle's (empty-serve) side effects from the cached
            # request count alone.
            n_req = self._q_nreq
            if self._arb_random:
                self._consume_shuffle_draws(n_req)
            elif self._arb_rr and n_req:
                self._rr_counters[_PHASE_ALLOC] += 1
            self.vec_alloc_requests += n_req
            self.vec_stall_skips += n_req
            if self._vec_reg is not None:
                self._vec_reg.histogram("engine/alloc_requests").observe(
                    n_req
                )
                self._vec_reg.histogram("engine/alloc_serves").observe(0)
            return
        if dirty:
            queued = MessageStatus.QUEUED
            live_pop = self._live.pop
            qlens = self._qlens
            queues = self.queues
            for node in dirty:
                if node not in busy:
                    continue
                q = queues[node]
                while q and q[0].at_source == 0:
                    done = q.popleft()
                    qlens[node] -= 1
                    if done.is_done:
                        live_pop(done.id, None)
                if not q:
                    busy.discard(node)
                else:
                    head = q[0]
                    if head.status is queued:
                        head_slot[node] = head.slot
                        self._heads_stale = True
                        busy.discard(node)
            dirty.clear()
        if self._delay_due:
            self._release_due_headers()
        if self._heads_stale:
            self._heads_arr = harr = head_slot[head_slot >= 0]
            self._heads_list = harr.tolist()
            self._heads_stale = False
        else:
            harr = self._heads_arr
        acts = self._act_view()
        if acts.size:
            racts = acts[soa.routable[acts] == 1]
            req_arr = np.concatenate((harr, racts)) if harr.size else racts
        else:
            racts = None
            req_arr = harr
        # head-of-line eligibility BEFORE arbitration: `stalled` is
        # phase-static during allocate (only ever written by a message's
        # own serve), so the surviving set equals what the scalar serve
        # loop's per-message skip would leave — and an all-parked cycle
        # (the saturated steady state) skips the serve loop entirely
        eligible = (
            set(req_arr[soa.stalled[req_arr] == 0].tolist())
            if req_arr.size
            else ()
        )
        n_req = int(req_arr.size)
        serves = 0
        if eligible:
            requests = (
                self._heads_list + racts.tolist()
                if racts is not None
                else list(self._heads_list)
            )
            if self._arb_random:
                self._shuffle_inline(requests)
            elif requests:
                requests = self._order_slots(requests, _PHASE_ALLOC)
            serves = len(eligible)
            slot_msgs = soa.slot_msgs
            serve_one = self._alloc_serve_one
            tracker = self.tracker
            tracer = self._obs_tracer
            cycle = self.cycle
            getrandbits = self.rng.getrandbits
            for s in requests:
                if s in eligible:
                    serve_one(
                        slot_msgs[s], soa, tracker, tracer, cycle, getrandbits
                    )
        elif n_req:
            # Every request is parked, so the arbitration permutation is
            # unobservable — but its RNG/counter side effects are not.
            # Consume exactly what ordering would have consumed without
            # building or permuting the request list: Fisher-Yates word
            # counts depend only on the list length, round-robin bumps
            # its counter once per non-empty phase, oldest-first draws
            # nothing.
            if self._arb_random:
                self._consume_shuffle_draws(n_req)
            elif self._arb_rr:
                self._rr_counters[_PHASE_ALLOC] += 1
        self._alloc_quiescent = serves == 0
        self._q_nreq = n_req
        self.vec_alloc_requests += n_req
        self.vec_alloc_serves += serves
        self.vec_stall_skips += n_req - serves
        if self._vec_reg is not None:
            self._vec_reg.histogram("engine/alloc_requests").observe(n_req)
            self._vec_reg.histogram("engine/alloc_serves").observe(serves)

    def _alloc_serve_one(
        self, msg, soa, tracker, tracer, cycle, getrandbits
    ) -> None:
        """Serve one eligible request: the vectorized serve body verbatim."""
        vcs = msg.vcs
        if vcs and vcs[-1].dst == msg.dest:
            # -- reception branch (routable active at destination) --------
            dest = msg.dest
            rx = self.pool.free_reception(dest)
            if rx is not None:
                if tracer is not None and msg.blocked_since is not None:
                    tracer.instant("wake", msg=msg.id)
                msg.acquire_reception(rx)
                self.blocked_epoch += 1
                if tracker is not None:
                    tracker.on_acquire(msg.id, ("rx", dest, rx.index))
                slot = msg.slot
                soa.rx_owner[dest * soa.rx_channels + rx.index] = msg.id
                soa.blocked[slot] = 0
                soa.routable[slot] = 0
                soa.immobile[slot] = 0
                if not self._fault_skip_immobile_clear:
                    self._all_immobile = False
                msg.routable = False
                msg.immobile = False
                self._waiting.pop(msg.id, None)
                self._drop_wait_keys(msg)
            else:
                if msg.blocked_since is None:
                    msg.blocked_since = cycle
                    soa.blocked[msg.slot] = 1
                    self.blocked_epoch += 1
                    if tracer is not None:
                        tracer.instant("block", msg=msg.id, node=dest)
                if tracker is not None:
                    tracker.on_block(
                        msg.id, self.pool.reception_request_keys(dest)
                    )
                self._begin_wait(msg, (("rx", dest),))
            return
        # -- VC branch (routable active mid-route, or queue head) ---------
        node = vcs[-1].dst if vcs else msg.src
        routing = self.routing
        key = routing.cache_key(msg, node)
        if key is None:
            self._uncacheable_routing = True
            cands = routing.candidates(msg, node, self.topology, self.pool)
            idxs = None
        else:
            cand_table = self._cands._table
            entry = cand_table.get(key)
            if entry is None:
                cands = routing.candidates(
                    msg, node, self.topology, self.pool
                )
                idxs = tuple(vc.index for vc in cands)
                cand_table[key] = (cands, idxs)
            else:
                cands, idxs = entry
        free = [vc for vc in cands if vc.owner is None]
        if not free:
            choice = None
        elif self._sel_straight:
            pick = free
            if vcs:
                vc_dim = self._vc_dim
                cur = vc_dim[vcs[-1].index]
                straight = [vc for vc in free if vc_dim[vc.index] == cur]
                if straight:
                    pick = straight
            n = len(pick)
            k = n.bit_length()
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            choice = pick[r]
        elif self._sel_random:
            n = len(free)
            k = n.bit_length()
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            choice = free[r]
        elif self._sel_lowest:
            choice = min(free, key=_by_index)
        else:
            choice = self.selection.choose(msg, free, self.rng)
        if choice is not None:
            was_queued = msg.status is MessageStatus.QUEUED
            if tracer is not None and msg.blocked_since is not None:
                tracer.instant("wake", msg=msg.id)
            msg.acquire_vc(choice, cycle)
            self.blocked_epoch += 1
            if tracker is not None:
                tracker.on_acquire(msg.id, choice.index)
            slot = msg.slot
            ci = choice.index
            soa.vc_owner[ci] = msg.id
            soa.head_vc[slot] = ci
            if soa.tail_vc[slot] < 0:
                soa.tail_vc[slot] = ci
            soa.blocked[slot] = 0
            soa.routable[slot] = 0
            soa.immobile[slot] = 0
            if not self._fault_skip_immobile_clear:
                self._all_immobile = False
            msg.routable = False
            msg.immobile = False
            self._waiting.pop(msg.id, None)
            self._drop_wait_keys(msg)
            if was_queued:
                self.active[msg.id] = msg
                self.stats.on_injected(cycle)
                self._act_append(msg.id, slot)
                self._head_slot[msg.src] = -1
                self._heads_stale = True
                self._busy_heads.add(msg.src)
        elif vcs:
            if msg.blocked_since is None:
                msg.blocked_since = cycle
                soa.blocked[msg.slot] = 1
                self.blocked_epoch += 1
                if tracer is not None:
                    tracer.instant("block", msg=msg.id, node=node)
            if tracker is not None:
                tracker.on_block(
                    msg.id,
                    idxs if idxs is not None else [vc.index for vc in cands],
                )
            keys = None
            if msg.wait_keys is None and not self._uncacheable_routing:
                keys = idxs
            self._begin_wait(msg, keys)
        else:
            # queue-head injection failed with every candidate owned:
            # park it in the wake index (consumes no RNG, mutates nothing)
            if msg.wait_keys is not None:
                msg.stalled = True
                soa.stalled[msg.slot] = 1
            elif idxs is not None and not self._uncacheable_routing:
                msg.wait_keys = idxs
                wake_index = self._wake_index
                for wkey in idxs:
                    waiters = wake_index.get(wkey)
                    if waiters is None:
                        wake_index[wkey] = waiters = set()
                    waiters.add(msg.id)
                msg.stalled = True
                soa.stalled[msg.slot] = 1

    def _phase_move(self) -> None:
        # The move bodies stay per-message on purpose: link arbitration
        # is order-dependent, and at realistic active counts a gathered
        # immobile mask measures slower than the maintained flag check
        # (the gather + index round-trip costs more than it saves).  The
        # kernel tier's contribution here is the head-dirty feed for the
        # allocate scan and the candidate-table detect feed.
        link_used = self._link_used
        link_used[:] = self._zero_links
        if self._all_immobile:
            # The maintained flag proves the active set is unchanged since
            # an all-immobile cycle (any wake-up or removal lowers it), so
            # skip even the act-array gather: the count is the dict size.
            n_act = len(self.active)
            if self._arb_random:
                self._consume_shuffle_draws(n_act)
            elif self._arb_rr:
                self._rr_counters[_PHASE_MOVE] += 1
            self.vec_immobile_skips += n_act
            if self._vec_reg is not None:
                self._vec_reg.histogram("engine/move_mobile").observe(0)
            return
        soa = self.soa
        immobile_arr = soa.immobile
        acts = self._act_view()
        if acts.size and int(immobile_arr[acts].min()) == 1:
            # Every active message is immobile: the loop below would skip
            # all of them and mutate nothing, so the service order is
            # unobservable.  Consume its RNG/counter side effects without
            # building or permuting the message list (same trick as the
            # all-parked allocate cycle).
            self._all_immobile = True
            if self._arb_random:
                self._consume_shuffle_draws(int(acts.size))
            elif self._arb_rr:
                self._rr_counters[_PHASE_MOVE] += 1
            self.vec_immobile_skips += int(acts.size)
            if self._vec_reg is not None:
                self._vec_reg.histogram("engine/move_mobile").observe(0)
            return
        tracker = self.tracker
        cycle = self.cycle
        delay = self._router_delay
        occ = soa.vc_occupancy
        at_src = soa.at_source
        eject = soa.ejected
        routable_arr = soa.routable
        head_dirty = self._head_dirty
        cand_table = self._cands._table
        cache_key = self.routing.cache_key
        # the loop below can set `routable`, release buffers and wake
        # parked messages — all of which change the next allocate cycle
        self._alloc_quiescent = False
        order = list(self.active.values())
        if self._arb_random:
            self._shuffle_inline(order)
        else:
            order = self._service_order(order, _PHASE_MOVE)
        finished: list[Message] = []
        torn_down: list[Message] = []
        mobile = 0
        for msg in order:
            if msg.immobile:
                continue
            mobile += 1
            vcs = msg.vcs
            slot = msg.slot
            moved = False
            if msg.recovering:
                if msg.teardown_step():  # one flit into the recovery lane
                    head = vcs[-1]
                    occ[head.index] = head.occupancy
                    eject[slot] += 1
            elif msg.is_draining and vcs and vcs[-1].occupancy > 0:
                head = vcs[-1]
                head.occupancy -= 1
                occ[head.index] -= 1
                msg.ejected += 1
                eject[slot] += 1
                moved = True
            # Head-to-tail boundary pass: each flit advances at most one hop.
            for i in range(len(vcs) - 1, -1, -1):
                dst = vcs[i]
                if dst.occupancy >= dst.capacity:
                    continue
                li = dst.link_index
                if link_used[li]:
                    continue
                if i > 0:
                    src = vcs[i - 1]
                    if src.occupancy == 0:
                        continue
                    src.occupancy -= 1
                    occ[src.index] -= 1
                else:
                    if msg.at_source == 0:
                        continue
                    msg.at_source -= 1
                    at_src[slot] -= 1
                    if msg.at_source == 0:
                        # the source-queue head (this message) is now
                        # poppable; schedule its node for the dequeue scan
                        head_dirty.add(msg.src)
                dst.occupancy += 1
                occ[dst.index] += 1
                link_used[li] = 1
                moved = True
                if i == len(vcs) - 1 and msg.head_arrival is None:
                    msg.head_arrival = cycle  # header reached a new node
                    if not msg.recovering:
                        if delay == 0:
                            msg.routable = True
                            routable_arr[slot] = 1
                        else:
                            self._delay_due.append((cycle + delay, msg))
            released = msg.release_drained_tail()
            if released:
                self.blocked_epoch += 1
                soa.on_released(msg, [vc.index for vc in released])
                for vc in released:
                    if tracker is not None:
                        tracker.on_release(msg.id, vc.index)
                    self._wake(vc.index)
                if msg.wait_keys is not None:
                    # the chain shortened: candidate keys that include the
                    # hop count (misrouting budgets) may now differ, so the
                    # next attempt must re-derive the awaited set
                    self._drop_wait_keys(msg)
                if (
                    tracker is not None
                    and msg.blocked_since is not None
                    and msg.needs_next_vc
                    and tracker.requests.get(msg.id) is not None
                ):
                    # keep the maintained CWG equal to a rebuild; the
                    # batch candidate table already holds the re-derived
                    # request set, so feed it from there instead of
                    # re-running the routing query
                    node = vcs[-1].dst if vcs else msg.src
                    key = cache_key(msg, node)
                    entry = (
                        cand_table.get(key) if key is not None else None
                    )
                    if entry is not None:
                        tracker.on_block(msg.id, entry[1])
                    else:
                        tracker.on_block(
                            msg.id,
                            [vc.index for vc in self.route_candidates(msg)],
                        )
            if msg.recovering:
                if msg.teardown_complete and not msg.vcs:
                    torn_down.append(msg)
            elif msg.ejected == msg.length and msg.is_draining:
                finished.append(msg)
            elif not moved and not msg.is_draining and vcs:
                # Nothing moved: if every owned buffer is also full, the
                # worm is fully compressed and provably immobile until it
                # acquires a new resource (which clears the flag).
                for vc in vcs:
                    if vc.occupancy < vc.capacity:
                        break
                else:
                    msg.immobile = True
                    immobile_arr[slot] = 1
        rx_width = soa.rx_channels
        for msg in finished:
            rx_node = msg.dest
            rx = msg.reception
            soa.rx_owner[rx_node * rx_width + rx.index] = -1
            msg.finish_delivery(cycle)
            self.active.pop(msg.id)
            self._live.pop(msg.id, None)
            self.blocked_epoch += 1
            if tracker is not None:
                tracker.on_done(msg.id)
            self._end_wait(msg)
            self._wake(("rx", rx_node))
            self._act_remove(msg.id)
            soa.on_done(msg)
            self.stats.on_delivered(msg, cycle)
        for msg in torn_down:
            msg.remove_from_network(
                cycle, delivered=self.recovery.delivers_victim
            )
            self.active.pop(msg.id)
            self._live.pop(msg.id, None)
            self.blocked_epoch += 1
            if tracker is not None:
                tracker.on_done(msg.id)
            self._end_wait(msg)
            self._act_remove(msg.id)
            soa.on_done(msg)
            self.stats.on_recovered(msg, cycle)
        self.vec_move_mobile += mobile
        self.vec_immobile_skips += len(order) - mobile
        if self._vec_reg is not None:
            self._vec_reg.histogram("engine/move_mobile").observe(mobile)

    def _consume_shuffle_draws(self, n: int) -> None:
        """Advance ``self.rng`` exactly as ``_shuffle_inline`` on a list of
        length ``n`` would — the same ``getrandbits`` widths and rejection
        redraws, minus the swaps (and minus building the list at all).

        The draw width ``k`` equals ``m.bit_length()`` for every rejection
        threshold ``m`` in ``n .. 2``, so the descent is run per constant-k
        block with ``range`` supplying the thresholds — no per-draw
        boundary check or decrement.  This is the engine's hottest loop in
        the deep saturated regime (every quiescent-allocate and
        all-immobile-move cycle lands here), where shaving two bytecodes
        per draw is measurable.
        """
        hi = n
        k = n.bit_length()
        getrandbits = self.rng.getrandbits
        while hi > 1:
            # hi > 1 forces k >= 2, so lo - 1 >= 1 and the range never
            # descends past the final threshold m == 2
            lo = 1 << (k - 1)
            for m in range(hi, lo - 1, -1):
                r = getrandbits(k)
                while r >= m:
                    r = getrandbits(k)
            hi = lo - 1
            k -= 1

    # -- deterministic service orders over slots ---------------------------------------
    def _order_slots(self, slots: list[int], phase: int) -> list[int]:
        """``_service_order`` applied to slot ids (non-random arbitration).

        Message ids are unique, so sorting slots by the SoA ``msg_id``
        column reproduces the scalar ``sorted(messages, key=m.id)``
        order exactly; round-robin advances the same per-phase counter.
        """
        policy = self.config.arbitration
        arr = np.fromiter(slots, dtype=np.int64, count=len(slots))
        ordered = arr[np.argsort(self.soa.msg_id[arr])].tolist()
        if policy == "round-robin":
            self._rr_counters[phase] += 1
            offset = self._rr_counters[phase] % len(ordered)
            ordered = ordered[offset:] + ordered[:offset]
        return ordered

    # -- invariants --------------------------------------------------------------------
    def check_invariants(self) -> None:
        super().check_invariants()
        queued = MessageStatus.QUEUED
        head_slot = self._head_slot
        busy = self._busy_heads
        for node, q in enumerate(self.queues):
            if q and q[0].status is queued:
                if head_slot[node] != q[0].slot:
                    raise SimulationError(
                        f"head_slot[{node}] = {head_slot[node]} but queue "
                        f"head is slot {q[0].slot}"
                    )
                if node in busy:
                    raise SimulationError(
                        f"node {node} busy with a QUEUED head"
                    )
            else:
                if head_slot[node] != -1:
                    raise SimulationError(
                        f"head_slot[{node}] = {head_slot[node]} but queue "
                        "head is not QUEUED"
                    )
                if q and node not in busy:
                    raise SimulationError(
                        f"node {node} has a non-QUEUED head but is not "
                        "tracked as busy"
                    )
        if not self._heads_stale:
            expect = self._head_slot[self._head_slot >= 0].tolist()
            if self._heads_list != expect:
                raise SimulationError(
                    "cached heads list diverged from head_slot: "
                    f"{self._heads_list} != {expect}"
                )
        slot_msgs = self.soa.slot_msgs
        act = [
            slot_msgs[s].id
            for s in self._act_arr[: self._act_len].tolist()
            if s >= 0
        ]
        if act != list(self.active):
            raise SimulationError(
                "active-slot array diverged from the active dict: "
                f"{act} != {list(self.active)}"
            )
        if self._act_pos.keys() != self.active.keys():
            raise SimulationError("active-slot position map diverged")
