"""Network topologies: k-ary n-cube tori/meshes plus a small topology zoo.

The paper studies wormhole and virtual cut-through k-ary n-cube networks:
a 16-ary 2-cube torus (256 nodes) by default, a 4-ary 4-cube for the node
degree experiment, and both uni- and bidirectional variants for the physical
links experiment.  This module provides the static structure only — nodes,
physical channels, coordinates and distance geometry.  Dynamic channel state
(virtual channels, buffers, ownership) lives in :mod:`repro.network.channels`.

A *physical channel* is a unidirectional link ``src -> dst``.  A
"bidirectional" network simply has a physical channel in each direction
between adjacent nodes, as in the paper.

Beyond the paper's grids, the zoo adds (ROADMAP item 1):

* :class:`Torus3D` / :class:`Mesh3D` — mixed-radix 3D grids with a
  per-dimension link latency, modelling the TSV (through-silicon via)
  penalty of stacked 3D NoCs: vertical hops are fewer but slower.
* :class:`Dragonfly` — the ``(a, p, h)`` hierarchical fabric: groups of
  ``a`` routers joined by an intra-group full mesh, with ``h`` global
  ports per router wired in the consecutive ("palmtree") arrangement.
* :class:`FullMesh` — a direct network with a dedicated channel between
  every ordered node pair.

Every link carries a :attr:`PhysicalLink.latency` (cycles per flit).  The
paper's topologies use latency 1 everywhere, which keeps the engine hot
path and all existing results bit-identical; heterogeneous latencies are
modelled as link *occupancy* (a flit crossing a latency-``L`` link keeps
it busy for ``L`` cycles) in the scalar engines.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import cached_property
from math import prod
from typing import Iterable, Optional, Sequence

from repro.errors import TopologyError

__all__ = [
    "PhysicalLink",
    "Topology",
    "KAryNCube",
    "Mesh",
    "IrregularTorus",
    "Torus3D",
    "Mesh3D",
    "Dragonfly",
    "FullMesh",
]


@dataclass(frozen=True)
class PhysicalLink:
    """A unidirectional physical channel between two adjacent routers.

    Attributes
    ----------
    index:
        Dense integer id, unique within a topology.
    src, dst:
        Node ids of the upstream and downstream routers.
    dim:
        The dimension this link travels in (``-1`` for non-grid links;
        the Dragonfly uses ``0`` for local and ``1`` for global links).
    direction:
        ``+1`` or ``-1`` within ``dim`` (``0`` for non-grid links).
    latency:
        Cycles a flit occupies this channel while crossing it.  Latency 1
        (the default, and the paper's model) transfers one flit per cycle;
        latency ``L > 1`` models a slower channel that stays busy for
        ``L`` cycles per flit.
    """

    index: int
    src: int
    dst: int
    dim: int
    direction: int
    latency: int = 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        arrow = {1: "+", -1: "-", 0: "?"}[self.direction]
        lat = f", lat={self.latency}" if self.latency != 1 else ""
        return f"Link#{self.index}({self.src}->{self.dst}, d{self.dim}{arrow}{lat})"


class Topology:
    """Base class for static network structure.

    Subclasses populate :attr:`links` and implement coordinate geometry.
    """

    num_nodes: int
    links: list[PhysicalLink]

    def __init__(self) -> None:
        self.links = []
        self._out: dict[int, list[PhysicalLink]] = {}
        self._in: dict[int, list[PhysicalLink]] = {}
        self._by_pair: dict[tuple[int, int], PhysicalLink] = {}

    # -- construction helpers -------------------------------------------------
    def _add_link(
        self, src: int, dst: int, dim: int, direction: int, latency: int = 1
    ) -> PhysicalLink:
        if (src, dst) in self._by_pair:
            raise TopologyError(f"duplicate link {src}->{dst}")
        if latency < 1:
            raise TopologyError(f"link latency must be >= 1, got {latency}")
        link = PhysicalLink(len(self.links), src, dst, dim, direction, latency)
        self.links.append(link)
        self._out.setdefault(src, []).append(link)
        self._in.setdefault(dst, []).append(link)
        self._by_pair[(src, dst)] = link
        return link

    # -- queries ---------------------------------------------------------------
    @property
    def num_links(self) -> int:
        return len(self.links)

    def out_links(self, node: int) -> list[PhysicalLink]:
        """Physical channels leaving ``node``."""
        self._check_node(node)
        return self._out.get(node, [])

    def in_links(self, node: int) -> list[PhysicalLink]:
        """Physical channels entering ``node``."""
        self._check_node(node)
        return self._in.get(node, [])

    def link_between(self, src: int, dst: int) -> PhysicalLink:
        try:
            return self._by_pair[(src, dst)]
        except KeyError:
            raise TopologyError(f"no physical channel {src}->{dst}") from None

    def has_link(self, src: int, dst: int) -> bool:
        return (src, dst) in self._by_pair

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(f"node {node} out of range [0, {self.num_nodes})")

    # -- geometry (implemented by subclasses) -----------------------------------
    def coords(self, node: int) -> tuple[int, ...]:
        raise NotImplementedError

    def node_at(self, coords: Sequence[int]) -> int:
        raise NotImplementedError

    def min_distance(self, a: int, b: int) -> int:
        """Length of a shortest path from ``a`` to ``b`` in hops."""
        raise NotImplementedError

    def productive_links(self, node: int, dest: int) -> list[PhysicalLink]:
        """Outgoing links of ``node`` that lie on some minimal path to ``dest``.

        This is the geometric core of minimal routing: a link is *productive*
        when taking it strictly reduces the remaining hop distance to
        ``dest``.
        """
        raise NotImplementedError

    # -- latency-aware geometry ---------------------------------------------------
    @cached_property
    def uniform_latency(self) -> bool:
        """True when every physical channel has latency 1 (the paper's model)."""
        return all(link.latency == 1 for link in self.links)

    @cached_property
    def max_link_latency(self) -> int:
        return max((link.latency for link in self.links), default=1)

    def min_latency(self, a: int, b: int) -> int:
        """Latency of a cheapest path from ``a`` to ``b`` in cycles.

        Each hop costs its link's :attr:`PhysicalLink.latency`.  With
        uniform unit latency this equals :meth:`min_distance`.  The generic
        implementation runs Dijkstra over the link graph; grid subclasses
        override it with a closed form.
        """
        if self.uniform_latency:
            return self.min_distance(a, b)
        return self._weighted_distances(a)[b]

    def _weighted_distances(self, start: int) -> list[int]:
        """Single-source latency-weighted shortest paths (Dijkstra)."""
        self._check_node(start)
        cache = getattr(self, "_wdist_cache", None)
        if cache is None:
            cache = self._wdist_cache = {}
        row = cache.get(start)
        if row is not None:
            return row
        inf = sum(link.latency for link in self.links) + 1
        dist = [inf] * self.num_nodes
        dist[start] = 0
        heap = [(0, start)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for link in self.out_links(u):
                nd = d + link.latency
                if nd < dist[link.dst]:
                    dist[link.dst] = nd
                    heapq.heappush(heap, (nd, link.dst))
        if max(dist) >= inf:
            raise TopologyError("network is not strongly connected")
        cache[start] = dist
        return dist

    # -- derived metrics ---------------------------------------------------------
    @cached_property
    def average_internode_distance(self) -> float:
        """Mean :meth:`min_distance` over all ordered pairs of distinct nodes.

        This is a *hop* count: link latencies do not enter (see
        :attr:`average_internode_latency` for the latency-weighted mean).
        The paper normalizes offered load "based on total link bandwidth
        and average internode distance"; both quantities are combined in
        :attr:`capacity_flits_per_node_cycle`.
        """
        n = self.num_nodes
        total = sum(
            self.min_distance(a, b) for a in range(n) for b in range(n) if a != b
        )
        return total / (n * (n - 1))

    @cached_property
    def average_internode_latency(self) -> float:
        """Mean :meth:`min_latency` over all ordered pairs of distinct nodes.

        Equals :attr:`average_internode_distance` when every link has unit
        latency; with a per-dimension latency model (e.g. a TSV penalty)
        it is the latency-weighted mean path cost — the average number of
        link-busy cycles a flit's journey consumes, which is what the
        engine's channel-occupancy model charges for it.
        """
        if self.uniform_latency:
            return self.average_internode_distance
        n = self.num_nodes
        total = 0
        for a in range(n):
            row = self._weighted_distances(a)
            total += sum(row) - row[a]
        return total / (n * (n - 1))

    @cached_property
    def effective_link_bandwidth(self) -> float:
        """Aggregate flit bandwidth of all physical channels, flits per cycle.

        A latency-``L`` channel moves one flit every ``L`` cycles, so it
        contributes ``1/L``; with uniform unit latency this is simply
        :attr:`num_links`.
        """
        return sum(1.0 / link.latency for link in self.links)

    @cached_property
    def capacity_flits_per_node_cycle(self) -> float:
        """Network capacity in flits per node per cycle.

        A latency-``L`` physical channel carries one flit every ``L``
        cycles, so the aggregate bandwidth is ``sum(1/latency)`` flit-hops
        per cycle (:attr:`effective_link_bandwidth`; ``num_links`` in the
        paper's uniform unit-latency model).  Each delivered flit consumes
        ``average_internode_distance`` flit-hops on average, so full
        capacity corresponds to ``bandwidth / (N * avg_distance)`` flits
        accepted per node per cycle.  A *normalized load* of ``L``
        therefore means each node injects ``L * capacity`` flits per cycle
        on average.
        """
        return self.effective_link_bandwidth / (
            self.num_nodes * self.average_internode_distance
        )


class KAryNCube(Topology):
    """A k-ary n-cube torus with uni- or bidirectional physical channels.

    Parameters
    ----------
    k:
        Radix (nodes per dimension), ``k >= 2``.  Pass ``None`` with
        ``dims`` for a mixed-radix grid.
    n:
        Number of dimensions, ``n >= 1``.  Pass ``None`` with ``dims``.
    bidirectional:
        When True (paper default) each pair of adjacent nodes is joined by a
        physical channel in each direction.  When False only the ``+``
        direction rings exist, as in the unidirectional torus of Figure 5.
    dims:
        Optional per-dimension radices for a mixed-radix torus (used by
        :class:`Torus3D`).  When given, ``k``/``n`` are derived:
        ``n = len(dims)`` and ``k`` is the common radix, or ``None`` when
        the radices differ (uniform-radix-only consumers such as the
        dateline routing guard on this).
    link_latencies:
        Optional per-dimension link latency (cycles per flit); defaults to
        1 everywhere, the paper's model.

    Node ids are the mixed-radix encoding of coordinates with dimension 0 as
    the least significant digit.
    """

    def __init__(
        self,
        k: Optional[int],
        n: Optional[int],
        *,
        bidirectional: bool = True,
        dims: Optional[Sequence[int]] = None,
        link_latencies: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__()
        if dims is None:
            if k is None or n is None:
                raise TopologyError("either k and n or dims must be given")
            if k < 2:
                raise TopologyError(f"radix k must be >= 2, got {k}")
            if n < 1:
                raise TopologyError(f"dimension count n must be >= 1, got {n}")
            dims = (k,) * n
        else:
            dims = tuple(int(d) for d in dims)
            if not dims:
                raise TopologyError("dims must name at least one dimension")
            if any(d < 2 for d in dims):
                raise TopologyError(f"every radix must be >= 2, got {dims}")
            n = len(dims)
            k = dims[0] if all(d == dims[0] for d in dims) else None
        if k == 2 and bidirectional:
            # In a 2-ary torus the +1 and -1 neighbours coincide; we keep a
            # single physical channel per ordered pair to avoid duplicates.
            pass
        self.k = k
        self.n = n
        self.dims = dims
        self.dim_latencies = self._check_latencies(link_latencies, n)
        self.bidirectional = bidirectional
        self.num_nodes = prod(dims)
        self._coords = [self._compute_coords(node) for node in range(self.num_nodes)]
        self._build_links()

    @staticmethod
    def _check_latencies(
        link_latencies: Optional[Sequence[int]], n: int
    ) -> tuple[int, ...]:
        if link_latencies is None:
            return (1,) * n
        lat = tuple(int(x) for x in link_latencies)
        if len(lat) != n:
            raise TopologyError(
                f"expected {n} per-dimension latencies, got {len(lat)}"
            )
        if any(x < 1 for x in lat):
            raise TopologyError(f"link latencies must be >= 1, got {lat}")
        return lat

    def _build_links(self) -> None:
        for node in range(self.num_nodes):
            c = self.coords(node)
            for dim in range(self.n):
                kd = self.dims[dim]
                lat = self.dim_latencies[dim]
                fwd = list(c)
                fwd[dim] = (fwd[dim] + 1) % kd
                dst = self.node_at(fwd)
                if not self.has_link(node, dst):
                    self._add_link(node, dst, dim, +1, lat)
                if self.bidirectional:
                    bwd = list(c)
                    bwd[dim] = (bwd[dim] - 1) % kd
                    dst = self.node_at(bwd)
                    if not self.has_link(node, dst):
                        self._add_link(node, dst, dim, -1, lat)

    # -- geometry ---------------------------------------------------------------
    def _compute_coords(self, node: int) -> tuple[int, ...]:
        out = []
        for dim in range(self.n):
            out.append(node % self.dims[dim])
            node //= self.dims[dim]
        return tuple(out)

    def coords(self, node: int) -> tuple[int, ...]:
        if 0 <= node < self.num_nodes:
            return self._coords[node]
        self._check_node(node)
        raise AssertionError  # pragma: no cover - _check_node always raises

    def node_at(self, coords: Sequence[int]) -> int:
        if len(coords) != self.n:
            raise TopologyError(f"expected {self.n} coordinates, got {len(coords)}")
        node = 0
        for dim in reversed(range(self.n)):
            c = coords[dim] % self.dims[dim]
            node = node * self.dims[dim] + c
        return node

    def _dim_distance(self, a: int, b: int, dim: int) -> int:
        """Hop distance from coordinate ``a`` to ``b`` within ring ``dim``."""
        kd = self.dims[dim]
        fwd = (b - a) % kd
        if not self.bidirectional:
            return fwd
        return min(fwd, kd - fwd)

    def min_distance(self, a: int, b: int) -> int:
        ca, cb = self.coords(a), self.coords(b)
        return sum(
            self._dim_distance(x, y, dim) for dim, (x, y) in enumerate(zip(ca, cb))
        )

    def min_latency(self, a: int, b: int) -> int:
        # Per-dimension latencies: minimal-hop paths are also
        # latency-minimal (every dimension must be traversed its own
        # minimal number of hops regardless of the cost of the others).
        ca, cb = self.coords(a), self.coords(b)
        return sum(
            self._dim_distance(x, y, dim) * self.dim_latencies[dim]
            for dim, (x, y) in enumerate(zip(ca, cb))
        )

    def productive_directions(self, node: int, dest: int) -> list[tuple[int, int]]:
        """``(dim, direction)`` pairs that reduce the distance to ``dest``.

        In a bidirectional torus with an even radix, a coordinate offset of
        exactly ``k/2`` makes *both* directions minimal; both are returned.
        """
        cn, cd = self.coords(node), self.coords(dest)
        out: list[tuple[int, int]] = []
        for dim in range(self.n):
            kd = self.dims[dim]
            off = (cd[dim] - cn[dim]) % kd
            if off == 0:
                continue
            if not self.bidirectional:
                out.append((dim, +1))
                continue
            back = kd - off
            if off < back:
                out.append((dim, +1))
            elif back < off:
                out.append((dim, -1))
            elif kd == 2:
                # radix 2: the two directions reach the same neighbour over
                # the same physical channel, so report it once
                out.append((dim, +1))
            else:  # off == k/2: both directions are minimal
                out.append((dim, +1))
                out.append((dim, -1))
        return out

    def productive_links(self, node: int, dest: int) -> list[PhysicalLink]:
        c = self.coords(node)
        out = []
        for dim, direction in self.productive_directions(node, dest):
            nxt = list(c)
            nxt[dim] = (nxt[dim] + direction) % self.dims[dim]
            out.append(self.link_between(node, self.node_at(nxt)))
        return out

    def neighbour(self, node: int, dim: int, direction: int) -> int:
        """Node one hop from ``node`` in ``(dim, direction)``."""
        c = list(self.coords(node))
        c[dim] = (c[dim] + direction) % self.dims[dim]
        return self.node_at(c)

    def _per_ring_mean(self, kd: int) -> float:
        """Mean per-ring hop distance over all ordered coordinate pairs."""
        if self.bidirectional:
            return sum(min(d, kd - d) for d in range(kd)) / kd
        return (kd - 1) / 2

    @cached_property
    def average_internode_distance(self) -> float:
        # Closed form: coordinates are independent, so the mean distance is
        # the sum over dimensions of the mean per-ring distance over all
        # ordered pairs (including equal coordinates), corrected to exclude
        # the zero self-pair.
        ring_sum = sum(self._per_ring_mean(kd) for kd in self.dims)
        total_pairs = self.num_nodes * (self.num_nodes - 1)
        # Sum over ordered node pairs including self-pairs is N^2 * ring_sum.
        return (self.num_nodes**2 * ring_sum) / total_pairs

    @cached_property
    def average_internode_latency(self) -> float:
        ring_sum = sum(
            self._per_ring_mean(kd) * lat
            for kd, lat in zip(self.dims, self.dim_latencies)
        )
        total_pairs = self.num_nodes * (self.num_nodes - 1)
        return (self.num_nodes**2 * ring_sum) / total_pairs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "bi" if self.bidirectional else "uni"
        if self.k is not None:
            return f"KAryNCube(k={self.k}, n={self.n}, {kind})"
        return f"KAryNCube(dims={self.dims}, {kind})"


class Mesh(KAryNCube):
    """A k-ary n-mesh (torus without wraparound links); always bidirectional.

    Not used by the paper's headline experiments but needed by the turn-model
    avoidance baseline, which is defined for meshes.
    """

    def __init__(
        self,
        k: Optional[int],
        n: Optional[int],
        *,
        dims: Optional[Sequence[int]] = None,
        link_latencies: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(
            k, n, bidirectional=True, dims=dims, link_latencies=link_latencies
        )

    def _build_links(self) -> None:
        for node in range(self.num_nodes):
            c = self.coords(node)
            for dim in range(self.n):
                lat = self.dim_latencies[dim]
                if c[dim] + 1 < self.dims[dim]:
                    fwd = list(c)
                    fwd[dim] += 1
                    self._add_link(node, self.node_at(fwd), dim, +1, lat)
                if c[dim] - 1 >= 0:
                    bwd = list(c)
                    bwd[dim] -= 1
                    self._add_link(node, self.node_at(bwd), dim, -1, lat)

    def _dim_distance(self, a: int, b: int, dim: int) -> int:
        return abs(b - a)

    def productive_directions(self, node: int, dest: int) -> list[tuple[int, int]]:
        cn, cd = self.coords(node), self.coords(dest)
        out = []
        for dim in range(self.n):
            if cd[dim] > cn[dim]:
                out.append((dim, +1))
            elif cd[dim] < cn[dim]:
                out.append((dim, -1))
        return out

    def _per_ring_mean(self, kd: int) -> float:
        return sum(abs(a - b) for a in range(kd) for b in range(kd)) / (kd * kd)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.k is not None:
            return f"Mesh(k={self.k}, n={self.n})"
        return f"Mesh(dims={self.dims})"


class Torus3D(KAryNCube):
    """A mixed-radix 3D torus with a per-dimension link-latency model.

    ``dims = (kx, ky, kz)`` gives the radix of each dimension and
    ``link_latencies = (lx, ly, lz)`` the cycles per flit on each
    dimension's channels.  Stacked 3D NoCs typically use ``kz`` much
    smaller than ``kx``/``ky`` with ``lz > 1`` — the TSV vertical-link
    penalty knob.
    """

    def __init__(
        self,
        dims: Sequence[int],
        *,
        link_latencies: Optional[Sequence[int]] = None,
        bidirectional: bool = True,
    ) -> None:
        dims = tuple(int(d) for d in dims)
        if len(dims) != 3:
            raise TopologyError(f"Torus3D needs exactly 3 radices, got {dims}")
        super().__init__(
            None,
            None,
            bidirectional=bidirectional,
            dims=dims,
            link_latencies=link_latencies,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "bi" if self.bidirectional else "uni"
        return f"Torus3D(dims={self.dims}, lat={self.dim_latencies}, {kind})"


class Mesh3D(Mesh):
    """A mixed-radix 3D mesh with a per-dimension link-latency model.

    The mesh variant of :class:`Torus3D` — no wraparound channels, always
    bidirectional, same TSV-penalty latency knob.
    """

    def __init__(
        self,
        dims: Sequence[int],
        *,
        link_latencies: Optional[Sequence[int]] = None,
    ) -> None:
        dims = tuple(int(d) for d in dims)
        if len(dims) != 3:
            raise TopologyError(f"Mesh3D needs exactly 3 radices, got {dims}")
        super().__init__(None, None, dims=dims, link_latencies=link_latencies)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mesh3D(dims={self.dims}, lat={self.dim_latencies})"


class _TableGeometry(Topology):
    """Mixin for graph topologies whose geometry comes from a BFS table.

    Subclasses call :meth:`_build_distance_table` after adding their links;
    :meth:`min_distance` and :meth:`productive_links` (links that strictly
    decrease the tabulated distance) then come for free.
    """

    _dist: list[list[int]]

    def _build_distance_table(self) -> None:
        n = self.num_nodes
        inf = n + 1
        dist = [[inf] * n for _ in range(n)]
        for start in range(n):
            row = dist[start]
            row[start] = 0
            frontier = [start]
            d = 0
            while frontier:
                d += 1
                nxt = []
                for u in frontier:
                    for link in self.out_links(u):
                        if row[link.dst] > d:
                            row[link.dst] = d
                            nxt.append(link.dst)
                frontier = nxt
        for start in range(n):
            if max(dist[start]) >= inf:
                raise TopologyError("topology is not strongly connected")
        self._dist = dist

    def min_distance(self, a: int, b: int) -> int:
        self._check_node(a)
        self._check_node(b)
        return self._dist[a][b]

    def productive_links(self, node: int, dest: int) -> list[PhysicalLink]:
        if node == dest:
            return []
        d = self._dist[node][dest]
        return [
            link for link in self.out_links(node) if self._dist[link.dst][dest] == d - 1
        ]

    # Shadow any closed-form grid overrides further down the MRO: table
    # geometries must derive latency metrics from the actual link graph.
    def min_latency(self, a: int, b: int) -> int:
        if self.uniform_latency:
            return self.min_distance(a, b)
        return self._weighted_distances(a)[b]

    @cached_property
    def average_internode_latency(self) -> float:
        return Topology.average_internode_latency.func(self)  # type: ignore[attr-defined]


class IrregularTorus(_TableGeometry, KAryNCube):
    """A bidirectional torus with a set of failed (removed) links.

    The paper's future-work section proposes studying irregular topologies and
    faulty links; faulty links are also how minimal adaptive routing loses its
    adaptivity in the Figure 2 example.  Removing a link removes the physical
    channel in *one* direction only (the reverse channel survives unless also
    listed).  Minimal-path geometry falls back to a BFS over surviving links.
    """

    def __init__(
        self, k: int, n: int, failed: Iterable[tuple[int, int]] = ()
    ) -> None:
        KAryNCube.__init__(self, k, n, bidirectional=True)
        failed = set(failed)
        if failed:
            keep = [l for l in self.links if (l.src, l.dst) not in failed]
            removed = len(self.links) - len(keep)
            if removed != len(failed):
                missing = {
                    (s, d) for (s, d) in failed if (s, d) not in self._by_pair
                }
                raise TopologyError(f"failed links not present: {sorted(missing)}")
            self.links = []
            self._out.clear()
            self._in.clear()
            self._by_pair.clear()
            for l in keep:
                self._add_link(l.src, l.dst, l.dim, l.direction, l.latency)
        self.failed = failed
        self._build_distance_table()

    @cached_property
    def average_internode_distance(self) -> float:
        return Topology.average_internode_distance.func(self)  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IrregularTorus(k={self.k}, n={self.n}, failed={len(self.failed)})"


class Dragonfly(_TableGeometry):
    """A ``(a, p, h)`` dragonfly: full-mesh groups joined by global links.

    Parameters
    ----------
    a:
        Routers per group (``>= 2``); every router pair within a group is
        joined by a local channel in each direction.
    p:
        Terminals per router.  Terminals are not modelled as separate
        graph nodes — each router is one simulation node with the usual
        single injection/reception interface — but ``p`` is part of the
        canonical signature because it fixes the balanced-dragonfly sizing
        ``a = 2p = 2h``.
    h:
        Global channels per router (``>= 1``).
    groups:
        Number of groups; defaults to the balanced maximum ``a*h + 1``
        where every group pair is joined by exactly one global channel
        pair.  Must satisfy ``2 <= groups <= a*h + 1``.
    local_latency / global_latency:
        Cycles per flit on intra-group and global channels.

    Global links use the *consecutive* (palmtree) arrangement: group ``g``'s
    ``q``-th global port (owned by router ``q // h``) connects to group
    ``(g + q + 1) mod groups``.  Node ``g * a + i`` is router ``i`` of
    group ``g``; local links are ``dim`` 0, global links ``dim`` 1.
    """

    def __init__(
        self,
        a: int,
        p: int,
        h: int,
        *,
        groups: Optional[int] = None,
        local_latency: int = 1,
        global_latency: int = 1,
    ) -> None:
        super().__init__()
        if a < 2:
            raise TopologyError(f"dragonfly needs a >= 2 routers/group, got {a}")
        if p < 1:
            raise TopologyError(f"dragonfly needs p >= 1 terminals/router, got {p}")
        if h < 1:
            raise TopologyError(f"dragonfly needs h >= 1 global ports, got {h}")
        max_groups = a * h + 1
        if groups is None:
            groups = max_groups
        if not 2 <= groups <= max_groups:
            raise TopologyError(
                f"dragonfly groups must be in [2, a*h+1] = [2, {max_groups}], "
                f"got {groups}"
            )
        self.a = a
        self.p = p
        self.h = h
        self.groups = groups
        self.num_nodes = groups * a
        # Local channels first: every ordered router pair within a group.
        for g in range(groups):
            base = g * a
            for i in range(a):
                for j in range(a):
                    if i != j:
                        self._add_link(base + i, base + j, 0, 0, local_latency)
        # Global channels: consecutive arrangement, one ordered link per
        # (group, offset); the reverse direction is added when the peer
        # group iterates its own offset groups - offset.
        for g in range(groups):
            for offset in range(1, groups):
                q = offset - 1  # global port index within the group
                src_router = q // h
                peer = (g + offset) % groups
                q_back = groups - 1 - offset
                dst_router = q_back // h
                self._add_link(
                    g * a + src_router,
                    peer * a + dst_router,
                    1,
                    0,
                    global_latency,
                )
        self._build_distance_table()

    # -- geometry ---------------------------------------------------------------
    def group_of(self, node: int) -> int:
        self._check_node(node)
        return node // self.a

    def coords(self, node: int) -> tuple[int, ...]:
        """``(group, router_within_group)``."""
        self._check_node(node)
        return (node // self.a, node % self.a)

    def node_at(self, coords: Sequence[int]) -> int:
        if len(coords) != 2:
            raise TopologyError(f"expected (group, router), got {tuple(coords)}")
        g, i = coords
        if not (0 <= g < self.groups and 0 <= i < self.a):
            raise TopologyError(f"coords {tuple(coords)} out of range")
        return g * self.a + i

    def global_links(self, node: int) -> list[PhysicalLink]:
        """Outgoing global (inter-group) channels of ``node``."""
        return [link for link in self.out_links(node) if link.dim == 1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dragonfly(a={self.a}, p={self.p}, h={self.h}, "
            f"groups={self.groups})"
        )


class FullMesh(_TableGeometry):
    """A direct network: a dedicated channel between every ordered node pair.

    Every message can reach its destination in one hop, so minimal (direct)
    routing holds at most one virtual channel per message and is deadlock
    free without any virtual-channel discipline; misrouting through an
    intermediate node (see ``fm-2hop``) reintroduces hold-and-wait chains.
    """

    def __init__(self, num_nodes: int, *, latency: int = 1) -> None:
        super().__init__()
        if num_nodes < 2:
            raise TopologyError(f"full mesh needs >= 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes
        for src in range(num_nodes):
            for dst in range(num_nodes):
                if src != dst:
                    self._add_link(src, dst, 0, 0, latency)
        self._build_distance_table()

    def coords(self, node: int) -> tuple[int, ...]:
        self._check_node(node)
        return (node,)

    def node_at(self, coords: Sequence[int]) -> int:
        if len(coords) != 1:
            raise TopologyError(f"expected (node,), got {tuple(coords)}")
        self._check_node(coords[0])
        return coords[0]

    def min_distance(self, a: int, b: int) -> int:
        self._check_node(a)
        self._check_node(b)
        return 0 if a == b else 1

    @cached_property
    def average_internode_distance(self) -> float:
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FullMesh(n={self.num_nodes})"
