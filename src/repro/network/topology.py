"""Network topologies: k-ary n-cube tori (uni/bidirectional) and meshes.

The paper studies wormhole and virtual cut-through k-ary n-cube networks:
a 16-ary 2-cube torus (256 nodes) by default, a 4-ary 4-cube for the node
degree experiment, and both uni- and bidirectional variants for the physical
links experiment.  This module provides the static structure only — nodes,
physical channels, coordinates and distance geometry.  Dynamic channel state
(virtual channels, buffers, ownership) lives in :mod:`repro.network.channels`.

A *physical channel* is a unidirectional link ``src -> dst``.  A
"bidirectional" network simply has a physical channel in each direction
between adjacent nodes, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

from repro.errors import TopologyError

__all__ = [
    "PhysicalLink",
    "Topology",
    "KAryNCube",
    "Mesh",
    "IrregularTorus",
]


@dataclass(frozen=True)
class PhysicalLink:
    """A unidirectional physical channel between two adjacent routers.

    Attributes
    ----------
    index:
        Dense integer id, unique within a topology.
    src, dst:
        Node ids of the upstream and downstream routers.
    dim:
        The dimension this link travels in (``-1`` for non-grid links).
    direction:
        ``+1`` or ``-1`` within ``dim`` (``0`` for non-grid links).
    """

    index: int
    src: int
    dst: int
    dim: int
    direction: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        arrow = {1: "+", -1: "-", 0: "?"}[self.direction]
        return f"Link#{self.index}({self.src}->{self.dst}, d{self.dim}{arrow})"


class Topology:
    """Base class for static network structure.

    Subclasses populate :attr:`links` and implement coordinate geometry.
    """

    num_nodes: int
    links: list[PhysicalLink]

    def __init__(self) -> None:
        self.links = []
        self._out: dict[int, list[PhysicalLink]] = {}
        self._in: dict[int, list[PhysicalLink]] = {}
        self._by_pair: dict[tuple[int, int], PhysicalLink] = {}

    # -- construction helpers -------------------------------------------------
    def _add_link(self, src: int, dst: int, dim: int, direction: int) -> PhysicalLink:
        if (src, dst) in self._by_pair:
            raise TopologyError(f"duplicate link {src}->{dst}")
        link = PhysicalLink(len(self.links), src, dst, dim, direction)
        self.links.append(link)
        self._out.setdefault(src, []).append(link)
        self._in.setdefault(dst, []).append(link)
        self._by_pair[(src, dst)] = link
        return link

    # -- queries ---------------------------------------------------------------
    @property
    def num_links(self) -> int:
        return len(self.links)

    def out_links(self, node: int) -> list[PhysicalLink]:
        """Physical channels leaving ``node``."""
        self._check_node(node)
        return self._out.get(node, [])

    def in_links(self, node: int) -> list[PhysicalLink]:
        """Physical channels entering ``node``."""
        self._check_node(node)
        return self._in.get(node, [])

    def link_between(self, src: int, dst: int) -> PhysicalLink:
        try:
            return self._by_pair[(src, dst)]
        except KeyError:
            raise TopologyError(f"no physical channel {src}->{dst}") from None

    def has_link(self, src: int, dst: int) -> bool:
        return (src, dst) in self._by_pair

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(f"node {node} out of range [0, {self.num_nodes})")

    # -- geometry (implemented by subclasses) -----------------------------------
    def coords(self, node: int) -> tuple[int, ...]:
        raise NotImplementedError

    def node_at(self, coords: Sequence[int]) -> int:
        raise NotImplementedError

    def min_distance(self, a: int, b: int) -> int:
        """Length of a shortest path from ``a`` to ``b`` in hops."""
        raise NotImplementedError

    def productive_links(self, node: int, dest: int) -> list[PhysicalLink]:
        """Outgoing links of ``node`` that lie on some minimal path to ``dest``.

        This is the geometric core of minimal routing: a link is *productive*
        when taking it strictly reduces the remaining distance to ``dest``.
        """
        raise NotImplementedError

    # -- derived metrics ---------------------------------------------------------
    @cached_property
    def average_internode_distance(self) -> float:
        """Mean :meth:`min_distance` over all ordered pairs of distinct nodes.

        Used to normalize the offered load: the paper computes load rates
        "based on total link bandwidth and average internode distance".
        """
        n = self.num_nodes
        total = sum(
            self.min_distance(a, b) for a in range(n) for b in range(n) if a != b
        )
        return total / (n * (n - 1))

    @cached_property
    def capacity_flits_per_node_cycle(self) -> float:
        """Network capacity in flits per node per cycle.

        With every physical link carrying one flit per cycle, the aggregate
        bandwidth is ``num_links`` flit-hops per cycle.  Each delivered flit
        consumes ``average_internode_distance`` flit-hops on average, so full
        capacity corresponds to ``num_links / (N * avg_distance)`` flits
        accepted per node per cycle.  A *normalized load* of ``L`` therefore
        means each node injects ``L * capacity`` flits per cycle on average.
        """
        return self.num_links / (self.num_nodes * self.average_internode_distance)


class KAryNCube(Topology):
    """A k-ary n-cube torus with uni- or bidirectional physical channels.

    Parameters
    ----------
    k:
        Radix (nodes per dimension), ``k >= 2``.
    n:
        Number of dimensions, ``n >= 1``.
    bidirectional:
        When True (paper default) each pair of adjacent nodes is joined by a
        physical channel in each direction.  When False only the ``+``
        direction rings exist, as in the unidirectional torus of Figure 5.

    Node ids are the mixed-radix encoding of coordinates with dimension 0 as
    the least significant digit.
    """

    def __init__(self, k: int, n: int, *, bidirectional: bool = True) -> None:
        super().__init__()
        if k < 2:
            raise TopologyError(f"radix k must be >= 2, got {k}")
        if n < 1:
            raise TopologyError(f"dimension count n must be >= 1, got {n}")
        if k == 2 and bidirectional:
            # In a 2-ary torus the +1 and -1 neighbours coincide; we keep a
            # single physical channel per ordered pair to avoid duplicates.
            pass
        self.k = k
        self.n = n
        self.bidirectional = bidirectional
        self.num_nodes = k**n
        self._coords = [self._compute_coords(node) for node in range(self.num_nodes)]
        for node in range(self.num_nodes):
            c = self.coords(node)
            for dim in range(n):
                fwd = list(c)
                fwd[dim] = (fwd[dim] + 1) % k
                dst = self.node_at(fwd)
                if not self.has_link(node, dst):
                    self._add_link(node, dst, dim, +1)
                if bidirectional:
                    bwd = list(c)
                    bwd[dim] = (bwd[dim] - 1) % k
                    dst = self.node_at(bwd)
                    if not self.has_link(node, dst):
                        self._add_link(node, dst, dim, -1)

    # -- geometry ---------------------------------------------------------------
    def _compute_coords(self, node: int) -> tuple[int, ...]:
        out = []
        for _ in range(self.n):
            out.append(node % self.k)
            node //= self.k
        return tuple(out)

    def coords(self, node: int) -> tuple[int, ...]:
        if 0 <= node < self.num_nodes:
            return self._coords[node]
        self._check_node(node)
        raise AssertionError  # pragma: no cover - _check_node always raises

    def node_at(self, coords: Sequence[int]) -> int:
        if len(coords) != self.n:
            raise TopologyError(f"expected {self.n} coordinates, got {len(coords)}")
        node = 0
        for dim in reversed(range(self.n)):
            c = coords[dim] % self.k
            node = node * self.k + c
        return node

    def _dim_distance(self, a: int, b: int) -> int:
        """Hop distance from coordinate ``a`` to ``b`` within one ring."""
        fwd = (b - a) % self.k
        if not self.bidirectional:
            return fwd
        return min(fwd, self.k - fwd)

    def min_distance(self, a: int, b: int) -> int:
        ca, cb = self.coords(a), self.coords(b)
        return sum(self._dim_distance(x, y) for x, y in zip(ca, cb))

    def productive_directions(self, node: int, dest: int) -> list[tuple[int, int]]:
        """``(dim, direction)`` pairs that reduce the distance to ``dest``.

        In a bidirectional torus with an even radix, a coordinate offset of
        exactly ``k/2`` makes *both* directions minimal; both are returned.
        """
        cn, cd = self.coords(node), self.coords(dest)
        out: list[tuple[int, int]] = []
        for dim in range(self.n):
            off = (cd[dim] - cn[dim]) % self.k
            if off == 0:
                continue
            if not self.bidirectional:
                out.append((dim, +1))
                continue
            back = self.k - off
            if off < back:
                out.append((dim, +1))
            elif back < off:
                out.append((dim, -1))
            elif self.k == 2:
                # radix 2: the two directions reach the same neighbour over
                # the same physical channel, so report it once
                out.append((dim, +1))
            else:  # off == k/2: both directions are minimal
                out.append((dim, +1))
                out.append((dim, -1))
        return out

    def productive_links(self, node: int, dest: int) -> list[PhysicalLink]:
        c = self.coords(node)
        out = []
        for dim, direction in self.productive_directions(node, dest):
            nxt = list(c)
            nxt[dim] = (nxt[dim] + direction) % self.k
            out.append(self.link_between(node, self.node_at(nxt)))
        return out

    def neighbour(self, node: int, dim: int, direction: int) -> int:
        """Node one hop from ``node`` in ``(dim, direction)``."""
        c = list(self.coords(node))
        c[dim] = (c[dim] + direction) % self.k
        return self.node_at(c)

    @cached_property
    def average_internode_distance(self) -> float:
        # Closed form: coordinates are independent, so the mean distance is n
        # times the mean per-ring distance over all ordered pairs (including
        # equal coordinates), corrected to exclude the zero self-pair.
        k, n = self.k, self.n
        if self.bidirectional:
            per_ring = sum(min(d, k - d) for d in range(k)) / k
        else:
            per_ring = (k - 1) / 2
        total_pairs = self.num_nodes * (self.num_nodes - 1)
        # Sum over ordered node pairs including self-pairs is N^2 * n * per_ring.
        return (self.num_nodes**2 * n * per_ring) / total_pairs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "bi" if self.bidirectional else "uni"
        return f"KAryNCube(k={self.k}, n={self.n}, {kind})"


class Mesh(KAryNCube):
    """A k-ary n-mesh (torus without wraparound links); always bidirectional.

    Not used by the paper's headline experiments but needed by the turn-model
    avoidance baseline, which is defined for meshes.
    """

    def __init__(self, k: int, n: int) -> None:
        Topology.__init__(self)
        if k < 2:
            raise TopologyError(f"radix k must be >= 2, got {k}")
        if n < 1:
            raise TopologyError(f"dimension count n must be >= 1, got {n}")
        self.k = k
        self.n = n
        self.bidirectional = True
        self.num_nodes = k**n
        self._coords = [self._compute_coords(node) for node in range(self.num_nodes)]
        for node in range(self.num_nodes):
            c = self.coords(node)
            for dim in range(n):
                if c[dim] + 1 < k:
                    fwd = list(c)
                    fwd[dim] += 1
                    self._add_link(node, self.node_at(fwd), dim, +1)
                if c[dim] - 1 >= 0:
                    bwd = list(c)
                    bwd[dim] -= 1
                    self._add_link(node, self.node_at(bwd), dim, -1)

    def _dim_distance(self, a: int, b: int) -> int:
        return abs(b - a)

    def productive_directions(self, node: int, dest: int) -> list[tuple[int, int]]:
        cn, cd = self.coords(node), self.coords(dest)
        out = []
        for dim in range(self.n):
            if cd[dim] > cn[dim]:
                out.append((dim, +1))
            elif cd[dim] < cn[dim]:
                out.append((dim, -1))
        return out

    @cached_property
    def average_internode_distance(self) -> float:
        k, n = self.k, self.n
        per_ring = sum(abs(a - b) for a in range(k) for b in range(k)) / (k * k)
        total_pairs = self.num_nodes * (self.num_nodes - 1)
        return (self.num_nodes**2 * n * per_ring) / total_pairs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mesh(k={self.k}, n={self.n})"


class IrregularTorus(KAryNCube):
    """A bidirectional torus with a set of failed (removed) links.

    The paper's future-work section proposes studying irregular topologies and
    faulty links; faulty links are also how minimal adaptive routing loses its
    adaptivity in the Figure 2 example.  Removing a link removes the physical
    channel in *one* direction only (the reverse channel survives unless also
    listed).  Minimal-path geometry falls back to a BFS over surviving links.
    """

    def __init__(
        self, k: int, n: int, failed: Iterable[tuple[int, int]] = ()
    ) -> None:
        super().__init__(k, n, bidirectional=True)
        failed = set(failed)
        if failed:
            keep = [l for l in self.links if (l.src, l.dst) not in failed]
            removed = len(self.links) - len(keep)
            if removed != len(failed):
                missing = {
                    (s, d) for (s, d) in failed if (s, d) not in self._by_pair
                }
                raise TopologyError(f"failed links not present: {sorted(missing)}")
            self.links = []
            self._out.clear()
            self._in.clear()
            self._by_pair.clear()
            for l in keep:
                self._add_link(l.src, l.dst, l.dim, l.direction)
        self.failed = failed
        self._dist = self._all_pairs_distances()

    def _all_pairs_distances(self) -> list[list[int]]:
        """BFS from every node over surviving links."""
        n = self.num_nodes
        inf = n + 1
        dist = [[inf] * n for _ in range(n)]
        for start in range(n):
            row = dist[start]
            row[start] = 0
            frontier = [start]
            d = 0
            while frontier:
                d += 1
                nxt = []
                for u in frontier:
                    for link in self.out_links(u):
                        if row[link.dst] > d:
                            row[link.dst] = d
                            nxt.append(link.dst)
                frontier = nxt
        for start in range(n):
            if max(dist[start]) >= inf:
                raise TopologyError("failed links disconnect the network")
        return dist

    def min_distance(self, a: int, b: int) -> int:
        self._check_node(a)
        self._check_node(b)
        return self._dist[a][b]

    def productive_links(self, node: int, dest: int) -> list[PhysicalLink]:
        if node == dest:
            return []
        d = self._dist[node][dest]
        return [
            link for link in self.out_links(node) if self._dist[link.dst][dest] == d - 1
        ]

    @cached_property
    def average_internode_distance(self) -> float:
        return Topology.average_internode_distance.func(self)  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IrregularTorus(k={self.k}, n={self.n}, failed={len(self.failed)})"
