"""Network substrate: topology, channels, messages, and the flit engine."""

from repro.network.channels import ChannelPool, ReceptionChannel, VirtualChannel
from repro.network.message import Message, MessageStatus
from repro.network.simulator import NetworkSimulator, build_topology
from repro.network.topology import (
    IrregularTorus,
    KAryNCube,
    Mesh,
    PhysicalLink,
    Topology,
)

__all__ = [
    "Topology",
    "KAryNCube",
    "Mesh",
    "IrregularTorus",
    "PhysicalLink",
    "ChannelPool",
    "VirtualChannel",
    "ReceptionChannel",
    "Message",
    "MessageStatus",
    "NetworkSimulator",
    "build_topology",
]
