"""The vectorized structure-of-arrays engine core.

:class:`VectorizedEngine` replaces the per-message dict/object traversal
of the scalar engine's hot phases with work over index-mapped
structure-of-arrays state (:class:`~repro.network.soa.SoAState`),
precomputed batch candidate tables
(:class:`~repro.routing.batch.CandidateTable`) and an inline arbitration
stream that drives the C-backed ``Random.getrandbits`` directly.  It is
selected by ``config.engine_vectorized`` (dispatched inside
``NetworkSimulator.__new__``, so call sites construct
:class:`~repro.network.simulator.NetworkSimulator` as always).

**Bit-identical by construction.**  Every RNG draw, service order,
tie-break, wake transition and detector interleaving matches the other
two engines exactly:

* ``_shuffle_inline`` replays CPython's ``Random.shuffle``
  (Fisher-Yates over ``_randbelow_with_getrandbits``, including the
  rejection loop and its word-consumption pattern) while hoisting the
  per-step ``bit_length`` behind a descending power-of-two boundary —
  the bound drops by one per step, so it crosses at most one boundary
  per iteration;
* the flattened serve loop preserves the scalar phase order: queue heads
  by node, then routable actives in ``active``-dict insertion order,
  then one shuffle of the whole request list;
* the inlined selection replays ``StraightThroughFirst`` /
  ``RandomSelection`` draw for draw (``rng.choice`` =
  ``seq[_randbelow(len(seq))]``, whose ``n == 1`` case still consumes
  words until a zero arrives);
* for a *routable* active message, ``needs_reception`` reduces to
  ``vcs[-1].dst == dest`` (the routable invariant rules out draining,
  recovering and done states and guarantees the header has arrived), and
  a queue head always takes the VC branch — so the per-message property
  cascade disappears from the loop;
* a queue head whose candidate VCs are all owned consumes **no** RNG and
  mutates nothing, so it is parked in the wake index (``stalled``) and
  skipped verbatim until an awaited VC frees — ``blocked_since`` and the
  waiting set stay untouched, since those belong to *active* messages
  and the legacy engine never sets them for queued heads;
* queue depths feed the traffic generator from maintained counters
  (``+1`` on append, ``-1`` on dequeue) instead of a per-cycle list
  comprehension, and the dequeue scan pops on ``at_source == 0`` alone —
  every completion path zeroes ``at_source``, making the ``is_done``
  check redundant.

Equivalence is enforced three ways: the A/B/C suite
(``tests/integration/test_fast_path_equivalence.py``), the golden trace
digests (``tests/golden``) and the differential fuzzer's ``vectorized``
axis (``repro.validation.differential``).
"""

from __future__ import annotations

from typing import Optional

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.network.message import Message, MessageStatus
from repro.network.simulator import (
    _PHASE_ALLOC,
    _PHASE_MOVE,
    NetworkSimulator,
)
from repro.network.soa import SoAState
from repro.routing.batch import CandidateTable
from repro.routing.selection import (
    LowestIndexFirst,
    RandomSelection,
    StraightThroughFirst,
)

__all__ = ["VectorizedEngine"]

#: shared empty snapshot handed to generators that never read queue depths
_NO_QLENS: list[int] = []


class VectorizedEngine(NetworkSimulator):
    """Structure-of-arrays engine; see the module docstring."""

    def __init__(self, config: SimulationConfig, trace=None) -> None:
        super().__init__(config, trace)
        if not self.fast_path:
            raise ConfigurationError(
                "VectorizedEngine requires engine_fast_path=True"
            )
        self.soa = SoAState(self.pool)
        self._cands = CandidateTable(self.routing, self.topology, self.pool)
        self._vc_dim = self._cands.vc_dim
        self._arb_random = config.arbitration == "random"
        # exact-type checks: the inlined draws replay these specific
        # policies; any other (or subclassed) policy goes through its own
        # choose() unmodified
        self._sel_straight = type(self.selection) is StraightThroughFirst
        self._sel_random = type(self.selection) is RandomSelection
        self._sel_lowest = type(self.selection) is LowestIndexFirst
        reg = self.obs.registry if self.obs.enabled else None
        self._vec_reg = reg
        # generate-phase qlens snapshot is only read by capped generators
        from repro.traffic.injection import MessageGenerator

        self._gen_needs_qlens = not (
            type(self.generator) is MessageGenerator
            and self.generator.max_queued_per_node is None
        )
        # maintained queue-depth snapshot: every read happens inside
        # generator.tick() before any queue mutation of the cycle, so a
        # live-maintained copy equals the scalar engines' per-cycle listcomp
        self._qlens = [0] * len(self.queues)
        # cumulative phase counters (cheap ints; see vec_stats())
        self.vec_alloc_requests = 0
        self.vec_alloc_serves = 0
        self.vec_stall_skips = 0
        self.vec_move_mobile = 0
        self.vec_immobile_skips = 0

    def vec_stats(self) -> dict[str, int]:
        """Cumulative engine counters plus SoA slot-allocator accounting."""
        return {
            "alloc_requests": self.vec_alloc_requests,
            "alloc_serves": self.vec_alloc_serves,
            "stall_skips": self.vec_stall_skips,
            "move_mobile": self.vec_move_mobile,
            "immobile_skips": self.vec_immobile_skips,
            "candidate_table_entries": len(self._cands),
            "slots_total": len(self.soa.slot_msgs),
            "slots_recycled": self.soa.slots_recycled,
            "slots_high_water": self.soa.high_water,
        }

    # -- inline arbitration stream ---------------------------------------------------
    def _shuffle_inline(self, x: list) -> None:
        """Bit-exact ``self.rng.shuffle(x)`` via direct getrandbits calls.

        Identical word stream: ``_randbelow(m)`` draws ``getrandbits(k)``
        with ``k = m.bit_length()`` and rejects until ``r < m``.  ``m``
        descends by one per step, so ``k`` is maintained against a falling
        power-of-two boundary instead of recomputed.
        """
        n = len(x)
        hi = n
        k = n.bit_length()
        getrandbits = self.rng.getrandbits
        # k == m.bit_length() for every threshold m in n..2, so the descent
        # runs per constant-k block with range supplying the thresholds —
        # no per-draw boundary check or decrement (m == i + 1 throughout)
        while hi > 1:
            # hi > 1 forces k >= 2, so lo - 1 >= 1 and the range never
            # descends past the final threshold m == 2
            lo = 1 << (k - 1)
            for m in range(hi, lo - 1, -1):
                r = getrandbits(k)
                while r >= m:
                    r = getrandbits(k)
                i = m - 1
                x[i], x[r] = x[r], x[i]
            hi = lo - 1
            k -= 1

    # -- fast-path bookkeeping overrides (flag mirrors) -------------------------------
    def _begin_wait(self, msg: Message, keys: Optional[tuple]) -> None:
        super()._begin_wait(msg, keys)
        slot = msg.slot
        if slot is not None and msg.stalled:
            self.soa.stalled[slot] = 1

    def _drop_wait_keys(self, msg: Message) -> None:
        super()._drop_wait_keys(msg)
        slot = msg.slot
        if slot is not None:
            self.soa.stalled[slot] = 0

    def _wake(self, key) -> None:
        if self._fault_skip_wake:
            return
        waiters = self._wake_index.get(key)
        if waiters:
            live = self._live
            stalled = self.soa.stalled
            for mid in waiters:
                m = live.get(mid)
                if m is not None:
                    m.stalled = False
                    if m.slot is not None:
                        stalled[m.slot] = 0

    def _release_due_headers(self) -> None:
        due = self._delay_due
        cycle = self.cycle
        routable = self.soa.routable
        while due and due[0][0] <= cycle:
            _, msg = due.popleft()
            if (
                msg.is_done
                or msg.recovering
                or msg.is_draining
                or msg.head_arrival is None
            ):
                continue
            msg.routable = True
            routable[msg.slot] = 1

    def _remove_victim(self, victim: Message) -> None:
        owned = tuple(vc.index for vc in victim.vcs)
        held_rx = victim.reception
        super()._remove_victim(victim)
        soa = self.soa
        if held_rx is not None:
            soa.rx_owner[soa.rx_index(held_rx.node, held_rx.index)] = -1
        if victim.is_done:
            soa.on_done(victim, owned)
        else:
            # flit-by-flit teardown: the slot stays live while the worm
            # drains through the recovery lane
            soa.sync_message(victim)

    # -- the four phases ---------------------------------------------------------------
    def _phase_generate(self) -> None:
        on_created = self.soa.on_created
        qlens = self._qlens
        # an uncapped MessageGenerator never reads queue_lengths, so hand
        # it the shared empty snapshot instead of the maintained one
        snapshot = qlens if self._gen_needs_qlens else _NO_QLENS
        for msg in self.generator.tick(self.cycle, snapshot):
            self.queues[msg.src].append(msg)
            qlens[msg.src] += 1
            self._live[msg.id] = msg
            on_created(msg)
            self.stats.on_generated(self.cycle)

    def _phase_allocate(self) -> None:
        queued = MessageStatus.QUEUED
        requests: list[Message] = []
        append = requests.append
        live_pop = self._live.pop
        qlens = self._qlens
        for q in self.queues:
            if not q:
                continue
            head = q[0]
            if head.status is queued:
                append(head)
                continue
            # done implies at_source == 0 (every completion path zeroes
            # it), so the cheap counter alone decides the pop and the
            # is_done property cascade runs only for popped messages
            while q and q[0].at_source == 0:
                done = q.popleft()
                qlens[done.src] -= 1
                if done.is_done:
                    live_pop(done.id, None)
            if q and q[0].status is queued:
                append(q[0])
        if self._delay_due:
            self._release_due_headers()
        for m in self.active.values():
            if m.routable:
                append(m)
        if self._arb_random:
            self._shuffle_inline(requests)
        else:
            requests = self._service_order(requests, _PHASE_ALLOC)

        tracker = self.tracker
        tracer = self._obs_tracer
        cycle = self.cycle
        soa = self.soa
        blocked_arr = soa.blocked
        routable_arr = soa.routable
        immobile_arr = soa.immobile
        stalled_arr = soa.stalled
        wake_index = self._wake_index
        vc_owner = soa.vc_owner
        head_vc = soa.head_vc
        tail_vc = soa.tail_vc
        rx_owner = soa.rx_owner
        rx_width = soa.rx_channels
        pool = self.pool
        routing = self.routing
        topology = self.topology
        cand_table = self._cands._table
        cache_key = routing.cache_key
        vc_dim = self._vc_dim
        sel_straight = self._sel_straight
        sel_inline_random = self._sel_random
        sel_lowest = self._sel_lowest
        getrandbits = self.rng.getrandbits
        waiting_pop = self._waiting.pop
        serves = 0
        for msg in requests:
            if msg.stalled:
                continue
            serves += 1
            vcs = msg.vcs
            if vcs and vcs[-1].dst == msg.dest:
                # -- reception branch (routable active at destination) ----
                dest = msg.dest
                rx = pool.free_reception(dest)
                if rx is not None:
                    if tracer is not None and msg.blocked_since is not None:
                        tracer.instant("wake", msg=msg.id)
                    msg.acquire_reception(rx)
                    self.blocked_epoch += 1
                    if tracker is not None:
                        tracker.on_acquire(msg.id, ("rx", dest, rx.index))
                    slot = msg.slot
                    rx_owner[dest * rx_width + rx.index] = msg.id
                    blocked_arr[slot] = 0
                    routable_arr[slot] = 0
                    immobile_arr[slot] = 0
                    msg.routable = False
                    msg.immobile = False
                    waiting_pop(msg.id, None)
                    self._drop_wait_keys(msg)
                else:
                    if msg.blocked_since is None:
                        msg.blocked_since = cycle
                        blocked_arr[msg.slot] = 1
                        self.blocked_epoch += 1
                        if tracer is not None:
                            tracer.instant("block", msg=msg.id, node=dest)
                    if tracker is not None:
                        tracker.on_block(
                            msg.id, pool.reception_request_keys(dest)
                        )
                    self._begin_wait(msg, (("rx", dest),))
                continue
            # -- VC branch (routable active mid-route, or queue head) -----
            node = vcs[-1].dst if vcs else msg.src
            key = cache_key(msg, node)
            if key is None:
                self._uncacheable_routing = True
                cands = routing.candidates(msg, node, topology, pool)
                idxs = None
            else:
                entry = cand_table.get(key)
                if entry is None:
                    cands = routing.candidates(msg, node, topology, pool)
                    idxs = tuple(vc.index for vc in cands)
                    cand_table[key] = (cands, idxs)
                else:
                    cands, idxs = entry
            free = [vc for vc in cands if vc.owner is None]
            if not free:
                choice = None
            elif sel_straight:
                pick = free
                if vcs:
                    cur = vc_dim[vcs[-1].index]
                    straight = [vc for vc in free if vc_dim[vc.index] == cur]
                    if straight:
                        pick = straight
                n = len(pick)
                k = n.bit_length()
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                choice = pick[r]
            elif sel_inline_random:
                n = len(free)
                k = n.bit_length()
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                choice = free[r]
            elif sel_lowest:
                choice = min(free, key=_by_index)
            else:
                choice = self.selection.choose(msg, free, self.rng)
            if choice is not None:
                was_queued = msg.status is queued
                if tracer is not None and msg.blocked_since is not None:
                    tracer.instant("wake", msg=msg.id)
                msg.acquire_vc(choice, cycle)
                self.blocked_epoch += 1
                if tracker is not None:
                    tracker.on_acquire(msg.id, choice.index)
                slot = msg.slot
                ci = choice.index
                vc_owner[ci] = msg.id
                head_vc[slot] = ci
                if tail_vc[slot] < 0:
                    tail_vc[slot] = ci
                blocked_arr[slot] = 0
                routable_arr[slot] = 0
                immobile_arr[slot] = 0
                msg.routable = False
                msg.immobile = False
                waiting_pop(msg.id, None)
                self._drop_wait_keys(msg)
                if was_queued:
                    self.active[msg.id] = msg
                    self.stats.on_injected(cycle)
            elif vcs:
                if msg.blocked_since is None:
                    msg.blocked_since = cycle
                    blocked_arr[msg.slot] = 1
                    self.blocked_epoch += 1
                    if tracer is not None:
                        tracer.instant("block", msg=msg.id, node=node)
                if tracker is not None:
                    tracker.on_block(
                        msg.id,
                        idxs
                        if idxs is not None
                        else [vc.index for vc in cands],
                    )
                keys = None
                if msg.wait_keys is None and not self._uncacheable_routing:
                    keys = idxs
                self._begin_wait(msg, keys)
            else:
                # Queue-head injection failed: every candidate VC at the
                # source is owned.  The attempt consumed no RNG and mutated
                # nothing, so it is skippable verbatim until one awaited VC
                # frees — register the head in the wake index only
                # (blocked_since and the waiting set stay untouched: those
                # are active-message state the scalar engines never set for
                # queue heads).
                if msg.wait_keys is not None:
                    msg.stalled = True
                    stalled_arr[msg.slot] = 1
                elif idxs is not None and not self._uncacheable_routing:
                    msg.wait_keys = idxs
                    for wkey in idxs:
                        waiters = wake_index.get(wkey)
                        if waiters is None:
                            wake_index[wkey] = waiters = set()
                        waiters.add(msg.id)
                    msg.stalled = True
                    stalled_arr[msg.slot] = 1
        self.vec_alloc_requests += len(requests)
        self.vec_alloc_serves += serves
        self.vec_stall_skips += len(requests) - serves
        if self._vec_reg is not None:
            self._vec_reg.histogram("engine/alloc_requests").observe(
                len(requests)
            )
            self._vec_reg.histogram("engine/alloc_serves").observe(serves)

    def _phase_move(self) -> None:
        link_used = self._link_used
        link_used[:] = self._zero_links
        tracker = self.tracker
        cycle = self.cycle
        delay = self._router_delay
        soa = self.soa
        occ = soa.vc_occupancy
        at_src = soa.at_source
        eject = soa.ejected
        routable_arr = soa.routable
        immobile_arr = soa.immobile
        order = list(self.active.values())
        if self._arb_random:
            self._shuffle_inline(order)
        else:
            order = self._service_order(order, _PHASE_MOVE)
        finished: list[Message] = []
        torn_down: list[Message] = []
        mobile = 0
        for msg in order:
            if msg.immobile:
                continue
            mobile += 1
            vcs = msg.vcs
            slot = msg.slot
            moved = False
            if msg.recovering:
                if msg.teardown_step():  # one flit into the recovery lane
                    head = vcs[-1]
                    occ[head.index] = head.occupancy
                    eject[slot] += 1
            elif msg.is_draining and vcs and vcs[-1].occupancy > 0:
                head = vcs[-1]
                head.occupancy -= 1
                occ[head.index] -= 1
                msg.ejected += 1
                eject[slot] += 1
                moved = True
            # Head-to-tail boundary pass: each flit advances at most one hop.
            for i in range(len(vcs) - 1, -1, -1):
                dst = vcs[i]
                if dst.occupancy >= dst.capacity:
                    continue
                li = dst.link_index
                if link_used[li]:
                    continue
                if i > 0:
                    src = vcs[i - 1]
                    if src.occupancy == 0:
                        continue
                    src.occupancy -= 1
                    occ[src.index] -= 1
                else:
                    if msg.at_source == 0:
                        continue
                    msg.at_source -= 1
                    at_src[slot] -= 1
                dst.occupancy += 1
                occ[dst.index] += 1
                link_used[li] = 1
                moved = True
                if i == len(vcs) - 1 and msg.head_arrival is None:
                    msg.head_arrival = cycle  # header reached a new node
                    if not msg.recovering:
                        if delay == 0:
                            msg.routable = True
                            routable_arr[slot] = 1
                        else:
                            self._delay_due.append((cycle + delay, msg))
            released = msg.release_drained_tail()
            if released:
                self.blocked_epoch += 1
                soa.on_released(msg, [vc.index for vc in released])
                for vc in released:
                    if tracker is not None:
                        tracker.on_release(msg.id, vc.index)
                    self._wake(vc.index)
                if msg.wait_keys is not None:
                    # the chain shortened: candidate keys that include the
                    # hop count (misrouting budgets) may now differ, so the
                    # next attempt must re-derive the awaited set
                    self._drop_wait_keys(msg)
                if (
                    tracker is not None
                    and msg.blocked_since is not None
                    and msg.needs_next_vc
                    and tracker.requests.get(msg.id) is not None
                ):
                    # keep the maintained CWG equal to a rebuild: relations
                    # with chain-length-dependent candidates may offer a
                    # different set now that the tail drained
                    tracker.on_block(
                        msg.id,
                        [vc.index for vc in self.route_candidates(msg)],
                    )
            if msg.recovering:
                if msg.teardown_complete and not msg.vcs:
                    torn_down.append(msg)
            elif msg.ejected == msg.length and msg.is_draining:
                finished.append(msg)
            elif not moved and not msg.is_draining and vcs:
                # Nothing moved: if every owned buffer is also full, the
                # worm is fully compressed and provably immobile until it
                # acquires a new resource (which clears the flag).
                for vc in vcs:
                    if vc.occupancy < vc.capacity:
                        break
                else:
                    msg.immobile = True
                    immobile_arr[slot] = 1
        rx_width = soa.rx_channels
        for msg in finished:
            rx_node = msg.dest
            rx = msg.reception
            soa.rx_owner[rx_node * rx_width + rx.index] = -1
            msg.finish_delivery(cycle)
            self.active.pop(msg.id)
            self._live.pop(msg.id, None)
            self.blocked_epoch += 1
            if tracker is not None:
                tracker.on_done(msg.id)
            self._end_wait(msg)
            self._wake(("rx", rx_node))
            soa.on_done(msg)
            self.stats.on_delivered(msg, cycle)
        for msg in torn_down:
            msg.remove_from_network(
                cycle, delivered=self.recovery.delivers_victim
            )
            self.active.pop(msg.id)
            self._live.pop(msg.id, None)
            self.blocked_epoch += 1
            if tracker is not None:
                tracker.on_done(msg.id)
            self._end_wait(msg)
            soa.on_done(msg)
            self.stats.on_recovered(msg, cycle)
        self.vec_move_mobile += mobile
        self.vec_immobile_skips += len(order) - mobile
        if self._vec_reg is not None:
            self._vec_reg.histogram("engine/move_mobile").observe(mobile)

    # -- invariants ------------------------------------------------------------------
    def check_invariants(self) -> None:
        super().check_invariants()
        self.soa.verify(self)


def _by_index(vc) -> int:
    return vc.index
