"""Dynamic channel resources: virtual channels and consumption channels.

A physical channel carries one flit per cycle and multiplexes ``num_vcs``
virtual channels (VCs).  Each VC owns a FIFO *edge buffer* of configurable
depth at the downstream router (2 flits by default in the paper; a depth
equal to the message length yields virtual cut-through switching).

Messages acquire **exclusive ownership** of a VC before sending flits over
it and release it when their tail flit has drained out of its buffer — the
hold-and-wait discipline from which deadlock arises.

Two further resource types complete the router model:

* an **injection channel** per node (host -> router), modelled implicitly by
  the message's source stage, and
* a **reception channel** per node (router -> host), modelled explicitly by
  :class:`ReceptionChannel` since messages can block waiting for it.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.network.topology import PhysicalLink, Topology

__all__ = ["VirtualChannel", "ReceptionChannel", "ChannelPool"]


class VirtualChannel:
    """One virtual channel of a physical link, with its edge buffer.

    Buffer contents are tracked as a flit *count* rather than per-flit
    objects: flits of a message are interchangeable and always drain in FIFO
    order, so the count plus the owning message's stage bookkeeping fully
    determines behaviour.  This keeps the flit-level inner loop cheap, per
    the HPC guidance of minimizing per-event allocation.
    """

    __slots__ = (
        "index",
        "link",
        "link_index",
        "vc_index",
        "capacity",
        "occupancy",
        "owner",
    )

    def __init__(
        self, index: int, link: PhysicalLink, vc_index: int, capacity: int
    ) -> None:
        self.index = index  # dense global id across the network
        self.link = link
        self.link_index = link.index  # denormalized for the movement hot loop
        self.vc_index = vc_index  # 0..num_vcs-1 within the physical link
        self.capacity = capacity
        self.occupancy = 0  # flits currently queued in the edge buffer
        self.owner: Optional[int] = None  # owning message id, or None if free

    @property
    def is_free(self) -> bool:
        return self.owner is None

    @property
    def src(self) -> int:
        return self.link.src

    @property
    def dst(self) -> int:
        return self.link.dst

    def acquire(self, message_id: int) -> None:
        if self.owner is not None:
            raise SimulationError(
                f"VC {self.index} already owned by message {self.owner}; "
                f"message {message_id} cannot acquire it"
            )
        self.owner = message_id

    def release(self, message_id: int) -> None:
        if self.owner != message_id:
            raise SimulationError(
                f"message {message_id} releasing VC {self.index} owned by {self.owner}"
            )
        if self.occupancy != 0:
            raise SimulationError(
                f"VC {self.index} released with {self.occupancy} flits buffered"
            )
        self.owner = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        own = "free" if self.owner is None else f"m{self.owner}"
        return (
            f"VC#{self.index}(link {self.link.src}->{self.link.dst}."
            f"{self.vc_index}, {self.occupancy}/{self.capacity}, {own})"
        )


class ReceptionChannel:
    """One reception (ejection) channel of a node.

    A message whose header has reached its destination must acquire the
    reception channel before draining; it holds it until its tail drains.
    The reception channel always makes progress (the consumption assumption),
    so it can never participate in a knot — but messages *waiting* for it do
    appear blocked, and their wait-for arcs are represented in the CWG.
    """

    __slots__ = ("node", "index", "owner")

    def __init__(self, node: int, index: int = 0) -> None:
        self.node = node
        self.index = index
        self.owner: Optional[int] = None

    @property
    def is_free(self) -> bool:
        return self.owner is None

    def acquire(self, message_id: int) -> None:
        if self.owner is not None:
            raise SimulationError(
                f"reception channel at node {self.node} already owned by "
                f"message {self.owner}"
            )
        self.owner = message_id

    def release(self, message_id: int) -> None:
        if self.owner != message_id:
            raise SimulationError(
                f"message {message_id} releasing reception channel owned by {self.owner}"
            )
        self.owner = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        own = "free" if self.owner is None else f"m{self.owner}"
        return f"RX@{self.node}.{self.index}({own})"


class ChannelPool:
    """All virtual channels and reception channels of a network instance."""

    def __init__(
        self,
        topology: Topology,
        num_vcs: int,
        buffer_depth: int,
        rx_channels: int = 1,
    ) -> None:
        if num_vcs < 1:
            raise SimulationError(f"num_vcs must be >= 1, got {num_vcs}")
        if buffer_depth < 1:
            raise SimulationError(f"buffer_depth must be >= 1, got {buffer_depth}")
        if rx_channels < 1:
            raise SimulationError(f"rx_channels must be >= 1, got {rx_channels}")
        self.topology = topology
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.rx_channels = rx_channels
        self.vcs: list[VirtualChannel] = []
        self._link_vcs: list[list[VirtualChannel]] = []
        for link in topology.links:
            group = [
                VirtualChannel(len(self.vcs) + i, link, i, buffer_depth)
                for i in range(num_vcs)
            ]
            self.vcs.extend(group)
            self._link_vcs.append(group)
        self.reception_groups: list[list[ReceptionChannel]] = [
            [ReceptionChannel(node, i) for i in range(rx_channels)]
            for node in range(topology.num_nodes)
        ]
        # CWG vertex keys of each node's reception channels, precomputed so
        # the engine and detector do not rebuild them on every blocked wait.
        self._rx_request_keys: list[list[tuple]] = [
            [("rx", node, i) for i in range(rx_channels)]
            for node in range(topology.num_nodes)
        ]
        self._static_arrays = None

    def static_arrays(self):
        """Index-mapped numpy views of the immutable per-VC attributes.

        One row per global VC index: ``capacity``, ``link_index``, ``src``,
        ``dst`` and ``dim`` — the structural columns the vectorized engine's
        candidate tables and the SoA state mirrors are built over.  Computed
        on first use and cached (the pool's structure never changes).
        """
        if self._static_arrays is None:
            import numpy as np

            vcs = self.vcs
            self._static_arrays = {
                "capacity": np.array([vc.capacity for vc in vcs], dtype=np.int32),
                "link_index": np.array(
                    [vc.link_index for vc in vcs], dtype=np.int32
                ),
                "src": np.array([vc.src for vc in vcs], dtype=np.int32),
                "dst": np.array([vc.dst for vc in vcs], dtype=np.int32),
                "dim": np.array([vc.link.dim for vc in vcs], dtype=np.int32),
            }
        return self._static_arrays

    @property
    def reception(self) -> list[ReceptionChannel]:
        """First reception channel per node (the common 1-channel view)."""
        return [group[0] for group in self.reception_groups]

    def free_reception(self, node: int) -> Optional[ReceptionChannel]:
        """A free reception channel at ``node``, if any."""
        for rx in self.reception_groups[node]:
            if rx.owner is None:
                return rx
        return None

    def reception_request_keys(self, node: int) -> list[tuple]:
        """CWG request targets for a message waiting on ``node``'s reception.

        The returned list is shared — callers must not mutate it.
        """
        return self._rx_request_keys[node]

    def vcs_of_link(self, link: PhysicalLink) -> list[VirtualChannel]:
        return self._link_vcs[link.index]

    def free_vcs_of_link(self, link: PhysicalLink) -> list[VirtualChannel]:
        return [vc for vc in self._link_vcs[link.index] if vc.is_free]

    @property
    def total_vcs(self) -> int:
        return len(self.vcs)

    def owned_vcs(self) -> list[VirtualChannel]:
        """All VCs currently owned by some message (CWG vertex set)."""
        return [vc for vc in self.vcs if vc.owner is not None]

    def assert_consistent(self) -> None:
        """Cheap structural sanity checks used by tests and debug runs."""
        for vc in self.vcs:
            if not 0 <= vc.occupancy <= vc.capacity:
                raise SimulationError(f"occupancy out of range on {vc!r}")
            if vc.owner is None and vc.occupancy != 0:
                raise SimulationError(f"unowned VC holds flits: {vc!r}")
