"""The flit-level network simulation engine (the paper's "FlexSim").

A cycle-driven wormhole / virtual cut-through simulator.  Each cycle has
four phases:

1. **Generation** — Bernoulli message sources enqueue new messages.
2. **Allocation** — headers ready to route request an output VC from their
   routing function; a selection policy picks among the free candidates.
   Headers that arrived at their destination request the reception channel.
   Requests are served in randomized order for fairness.
3. **Movement** — flits advance one hop.  Every physical link carries at
   most one flit per cycle (VC multiplexing); every reception channel
   consumes at most one flit per cycle.  Within a message, boundaries are
   processed head-to-tail so a worm advances in lockstep.  Tails release
   VCs as they drain past.
4. **Detection** — every ``detection_interval`` cycles the deadlock detector
   snapshots the CWG, finds knots, and the recovery policy removes victims.

The engine enforces exclusive VC ownership and flit conservation; with
``check_invariants`` enabled these are asserted every cycle.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Iterable, Optional

from repro.config import SimulationConfig
from repro.core.detector import DeadlockDetector, DeadlockEvent, DetectionRecord
from repro.core.incremental import IncrementalCWG
from repro.core.recovery import RecoveryPolicy, make_recovery
from repro.errors import SimulationError
from repro.metrics.stats import RunResult, StatsCollector
from repro.network.channels import ChannelPool, VirtualChannel
from repro.network.message import Message, MessageStatus
from repro.network.topology import IrregularTorus, KAryNCube, Mesh, Topology
from repro.routing import make_routing, make_selection
from repro.traffic import LengthMix, MessageGenerator, make_pattern

__all__ = ["NetworkSimulator", "build_topology"]


def build_topology(config: SimulationConfig) -> Topology:
    """Construct the topology a configuration describes."""
    if config.mesh:
        return Mesh(config.k, config.n)
    if config.failed_links:
        return IrregularTorus(config.k, config.n, config.failed_links)
    return KAryNCube(config.k, config.n, bidirectional=config.bidirectional)


class NetworkSimulator:
    """One network instance plus its workload, detector and recovery.

    ``trace`` substitutes a :class:`~repro.traffic.trace.TraceGenerator`
    replaying the given trace for the default Bernoulli source (the
    paper's "program-driven simulation" extension); ``config.load`` and
    ``config.traffic`` are then ignored.
    """

    def __init__(self, config: SimulationConfig, trace=None) -> None:
        config.validate()
        self.config = config
        self.topology = build_topology(config)
        self.pool = ChannelPool(
            self.topology,
            config.num_vcs,
            config.buffer_depth,
            rx_channels=config.rx_channels,
        )
        self.routing = make_routing(config.routing)
        self.routing.validate(self.topology, self.pool)
        self.selection = make_selection(config.selection)
        self.recovery: RecoveryPolicy = make_recovery(config.recovery)
        self.rng = random.Random(config.seed)
        # Traffic uses an independent stream so two simulations that differ
        # only in routing/recovery see the *same* offered workload.
        traffic_rng = random.Random(config.seed + 0x5EED)
        pattern_kwargs = {}
        if config.traffic == "hot-spot":
            pattern_kwargs["fraction"] = config.hotspot_fraction
        elif config.traffic == "hybrid":
            pattern_kwargs["components"] = list(config.traffic_mix)
        if trace is not None:
            from repro.traffic.trace import TraceGenerator

            self.pattern = None
            self.generator = TraceGenerator(self.topology, trace)
        else:
            self.pattern = make_pattern(
                config.traffic, self.topology, **pattern_kwargs
            )
            lengths = LengthMix(config.length_mix) if config.length_mix else None
            self.generator = MessageGenerator(
                self.topology,
                self.pattern,
                config.load,
                config.message_length,
                traffic_rng,
                config.max_queued_per_node,
                lengths=lengths,
            )
        self.detector = DeadlockDetector(
            count_cycles=config.count_cycles,
            max_cycles_counted=config.max_cycles_counted,
            record_blocked_durations=config.record_blocked_durations,
        )
        self.stats = StatsCollector(config, self.topology)
        self.tracker = (
            IncrementalCWG() if config.cwg_maintenance == "incremental" else None
        )

        self.cycle = 0
        self.queues: list[deque[Message]] = [
            deque() for _ in range(self.topology.num_nodes)
        ]
        self.active: dict[int, Message] = {}
        self._live: dict[int, Message] = {}  # queued + active, by id
        self._link_used = bytearray(self.topology.num_links)
        self._rr_offset = 0  # rotating start for round-robin arbitration
        self._candidate_cache: dict = {}

    # -- queries used by the detector and tests -----------------------------------
    def active_messages(self) -> Iterable[Message]:
        return self.active.values()

    def message_by_id(self, message_id: int) -> Message:
        return self._live[message_id]

    def cwg_snapshot(self):
        """The current channel wait-for graph.

        With incremental maintenance this is an O(state) materialization of
        the event-maintained graph; otherwise it is rebuilt from scratch by
        :meth:`DeadlockDetector.build_cwg`.
        """
        if self.tracker is not None:
            return self.tracker.snapshot()
        return DeadlockDetector.build_cwg(self)

    def route_candidates(self, message: Message) -> list[VirtualChannel]:
        """The routing relation's candidate VCs for a message's next hop.

        Memoized by the relation's :meth:`cache_key`: a blocked header
        requests the same set every cycle, and the candidate set is a pure
        function of position for every built-in relation (the profile
        showed candidate recomputation dominating saturated runs).
        """
        node = message.head_node
        key = self.routing.cache_key(message, node)
        if key is None:
            return self.routing.candidates(message, node, self.topology, self.pool)
        cached = self._candidate_cache.get(key)
        if cached is None:
            cached = self.routing.candidates(
                message, node, self.topology, self.pool
            )
            self._candidate_cache[key] = cached
        return cached

    @property
    def messages_in_network(self) -> int:
        return len(self.active)

    @property
    def flits_in_network(self) -> int:
        return sum(m.flits_in_network for m in self.active.values())

    def routing_eligible(self, message: Message) -> bool:
        """Header ready to request its next resource (pipeline delay served).

        With ``router_delay`` > 0 a header that just arrived at a node is
        still in the router pipeline (route computation / VC allocation
        stages) and neither requests resources nor counts as blocked.
        """
        if not (message.needs_next_vc or message.needs_reception):
            return False
        if not message.header_in_newest_vc and message.vcs:
            return False
        delay = self.config.router_delay
        if delay and message.vcs:
            arrived = message.head_arrival
            if arrived is None or self.cycle - arrived < delay:
                return False
        return True

    def blocked_messages(self) -> list[Message]:
        """Active messages whose header is blocked awaiting a resource."""
        out = []
        for m in self.active.values():
            if not m.vcs or not self.routing_eligible(m):
                continue
            if m.needs_next_vc:
                out.append(m)
            elif m.needs_reception and self.pool.free_reception(m.dest) is None:
                out.append(m)
        return out

    def _service_order(self, messages: list[Message]) -> list[Message]:
        """Order in which competing messages are served this cycle.

        ``random`` (default) draws a fresh permutation per cycle — fair in
        expectation.  ``oldest-first`` gives strict age priority (smallest
        id first), which bounds starvation but can convoy.  ``round-robin``
        rotates the starting message each cycle.
        """
        policy = self.config.arbitration
        if policy == "oldest-first":
            return sorted(messages, key=lambda m: m.id)
        if policy == "round-robin":
            if not messages:
                return messages
            ordered = sorted(messages, key=lambda m: m.id)
            self._rr_offset = (self._rr_offset + 1) % len(ordered)
            return ordered[self._rr_offset:] + ordered[: self._rr_offset]
        self.rng.shuffle(messages)
        return messages

    # -- the four phases -------------------------------------------------------------
    def _phase_generate(self) -> None:
        qlens = [len(q) for q in self.queues]
        for msg in self.generator.tick(self.cycle, qlens):
            self.queues[msg.src].append(msg)
            self._live[msg.id] = msg
            self.stats.on_generated(self.cycle)

    def _phase_allocate(self) -> None:
        requests: list[Message] = []
        for q in self.queues:
            # Let the next queued message start once its predecessor has
            # fully left the source (one injection channel per node).
            while q and (q[0].is_done or q[0].at_source == 0):
                done = q.popleft()
                if done.is_done:
                    self._live.pop(done.id, None)
            if q and q[0].status is MessageStatus.QUEUED:
                requests.append(q[0])
        for m in self.active.values():
            if self.routing_eligible(m):
                requests.append(m)
        requests = self._service_order(requests)
        tracker = self.tracker
        for msg in requests:
            if msg.needs_reception:
                rx = self.pool.free_reception(msg.dest)
                if rx is not None:
                    msg.acquire_reception(rx)
                    if tracker is not None:
                        tracker.on_acquire(msg.id, ("rx", msg.dest, rx.index))
                else:
                    if msg.blocked_since is None:
                        msg.blocked_since = self.cycle
                    if tracker is not None:
                        tracker.on_block(
                            msg.id,
                            [
                                ("rx", msg.dest, i)
                                for i in range(self.pool.rx_channels)
                            ],
                        )
                continue
            candidates = self.route_candidates(msg)
            free = [vc for vc in candidates if vc.is_free]
            choice = self.selection.choose(msg, free, self.rng)
            if choice is not None:
                was_queued = msg.status is MessageStatus.QUEUED
                msg.acquire_vc(choice, self.cycle)
                if tracker is not None:
                    tracker.on_acquire(msg.id, choice.index)
                if was_queued:
                    self.active[msg.id] = msg
                    self.stats.on_injected(self.cycle)
            elif msg.vcs:
                if msg.blocked_since is None:
                    msg.blocked_since = self.cycle
                if tracker is not None:
                    tracker.on_block(msg.id, [vc.index for vc in candidates])

    def _phase_move(self) -> None:
        link_used = self._link_used
        for i in range(len(link_used)):
            link_used[i] = 0
        order = self._service_order(list(self.active.values()))
        finished: list[Message] = []
        torn_down: list[Message] = []
        for msg in order:
            vcs = msg.vcs
            if msg.recovering:
                msg.teardown_step()  # one flit into the recovery lane
            elif msg.is_draining and vcs and vcs[-1].occupancy > 0:
                vcs[-1].occupancy -= 1
                msg.ejected += 1
            # Head-to-tail boundary pass: each flit advances at most one hop.
            for i in range(len(vcs) - 1, -1, -1):
                dst = vcs[i]
                if dst.occupancy >= dst.capacity:
                    continue
                li = dst.link.index
                if link_used[li]:
                    continue
                if i > 0:
                    src = vcs[i - 1]
                    if src.occupancy == 0:
                        continue
                    src.occupancy -= 1
                else:
                    if msg.at_source == 0:
                        continue
                    msg.at_source -= 1
                dst.occupancy += 1
                link_used[li] = 1
                if i == len(vcs) - 1 and msg.head_arrival is None:
                    msg.head_arrival = self.cycle  # header reached a new node
            released = msg.release_drained_tail()
            if self.tracker is not None:
                for vc in released:
                    self.tracker.on_release(msg.id, vc.index)
            if msg.recovering:
                if msg.teardown_complete and not msg.vcs:
                    torn_down.append(msg)
            elif msg.ejected == msg.length and msg.is_draining:
                finished.append(msg)
        for msg in finished:
            msg.finish_delivery(self.cycle)
            self.active.pop(msg.id)
            self._live.pop(msg.id, None)
            if self.tracker is not None:
                self.tracker.on_done(msg.id)
            self.stats.on_delivered(msg, self.cycle)
        for msg in torn_down:
            msg.remove_from_network(
                self.cycle, delivered=self.recovery.delivers_victim
            )
            self.active.pop(msg.id)
            self._live.pop(msg.id, None)
            if self.tracker is not None:
                self.tracker.on_done(msg.id)
            self.stats.on_recovered(msg, self.cycle)

    def _phase_detect(self) -> Optional[DetectionRecord]:
        if self.cycle % self.config.detection_interval != 0:
            return None
        # True (knot) detection always runs: in timeout mode it provides the
        # ground truth against which the heuristic's recoveries are judged.
        record = self.detector.detect(self)
        if self.config.detection_mode == "timeout":
            self._recover_by_timeout(record)
        else:
            for event in record.events:
                self._recover(event)
        self.stats.on_detection(record, self)
        return record

    def _recover(self, event: DeadlockEvent) -> None:
        members = [self._live[mid] for mid in sorted(event.deadlock_set)]
        for msg in members:
            msg.deadlock_count += 1
        victims = self.recovery.victims(members, self.rng)
        for victim in victims:
            self._remove_victim(victim)

    def _recover_by_timeout(self, record: DetectionRecord) -> None:
        """Heuristic recovery: presume the longest-blocked message deadlocked.

        Models timeout-based recovery schemes (Disha's presumed deadlock,
        compressionless routing): one victim per detection — the message
        blocked beyond ``timeout_threshold`` the longest — is recovered
        regardless of whether a knot actually exists.  The true detector's
        concurrent record lets the statistics count how many of these
        recoveries were unnecessary (victim not in any real deadlock set).
        """
        for event in record.events:
            for mid in event.deadlock_set:
                self._live[mid].deadlock_count += 1
        threshold = self.config.timeout_threshold
        candidates = [
            m
            for m in self.blocked_messages()
            if m.blocked_since is not None
            and self.cycle - m.blocked_since >= threshold
        ]
        if not candidates:
            return
        victim = min(candidates, key=lambda m: (m.blocked_since, m.id))
        truly_deadlocked = set()
        for event in record.events:
            truly_deadlocked |= event.deadlock_set
        self.stats.on_timeout_recovery(
            self.cycle, necessary=victim.id in truly_deadlocked
        )
        self._remove_victim(victim)

    def _remove_victim(self, victim: Message) -> None:
        if self.config.recovery_teardown == "flit-by-flit":
            victim.begin_teardown()
            if self.tracker is not None:
                # a draining victim no longer requests anything; its owned
                # channels release progressively via the movement phase
                self.tracker.on_unblock(victim.id)
            # completion (and stats) happen in the movement phase as the
            # message drains through the recovery lane
            return
        victim.remove_from_network(
            self.cycle, delivered=self.recovery.delivers_victim
        )
        self.active.pop(victim.id)
        self._live.pop(victim.id, None)
        if self.tracker is not None:
            self.tracker.on_done(victim.id)
        self.stats.on_recovered(victim, self.cycle)

    # -- driving ------------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by one cycle."""
        self.cycle += 1
        self._phase_generate()
        self._phase_allocate()
        self._phase_move()
        self._phase_detect()
        if self.config.check_invariants:
            self.check_invariants()

    def run(self, progress_every: int = 0) -> RunResult:
        """Run warmup + measurement and return the collected results."""
        cfg = self.config
        total = cfg.warmup_cycles + cfg.measure_cycles
        self.stats.measure_start = cfg.warmup_cycles
        while self.cycle < total:
            self.step()
            if progress_every and self.cycle % progress_every == 0:
                print(
                    f"  cycle {self.cycle}/{total}: "
                    f"{self.messages_in_network} msgs in flight, "
                    f"{len(self.detector.events)} deadlocks"
                )
        return self.stats.finalize(self)

    def run_to_drain(self, max_cycles: int = 100_000) -> RunResult:
        """Run until every generated message has completed (trace replay).

        Stops early at ``max_cycles`` — e.g. when an unrecovered deadlock
        wedges part of the trace permanently.
        """
        self.stats.measure_start = 0
        while self.cycle < max_cycles:
            self.step()
            if (
                getattr(self.generator, "exhausted", False)
                and not self.active
                and all(not q for q in self.queues)
            ):
                break
        return self.stats.finalize(self)

    # -- invariants ------------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Conservation and exclusivity checks (expensive; for tests/debug)."""
        self.pool.assert_consistent()
        owners: dict[int, int] = {}
        for msg in self.active.values():
            msg.check_conservation()
            for vc in msg.vcs:
                if vc.owner != msg.id:
                    raise SimulationError(
                        f"message {msg.id} lists VC {vc.index} it does not own"
                    )
                if vc.index in owners:
                    raise SimulationError(
                        f"VC {vc.index} claimed by messages "
                        f"{owners[vc.index]} and {msg.id}"
                    )
                owners[vc.index] = msg.id
        for vc in self.pool.vcs:
            if vc.owner is not None and vc.owner not in self.active:
                raise SimulationError(
                    f"VC {vc.index} owned by non-active message {vc.owner}"
                )
