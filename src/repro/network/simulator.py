"""The flit-level network simulation engine (the paper's "FlexSim").

A cycle-driven wormhole / virtual cut-through simulator.  Each cycle has
four phases:

1. **Generation** — Bernoulli message sources enqueue new messages.
2. **Allocation** — headers ready to route request an output VC from their
   routing function; a selection policy picks among the free candidates.
   Headers that arrived at their destination request the reception channel.
   Requests are served in randomized order for fairness.
3. **Movement** — flits advance one hop.  Every physical link carries at
   most one flit per cycle (VC multiplexing); every reception channel
   consumes at most one flit per cycle.  Within a message, boundaries are
   processed head-to-tail so a worm advances in lockstep.  Tails release
   VCs as they drain past.
4. **Detection** — every ``detection_interval`` cycles the deadlock detector
   snapshots the CWG, finds knots, and the recovery policy removes victims.

The engine enforces exclusive VC ownership and flit conservation; with
``check_invariants`` enabled these are asserted every cycle.

Activity-tracked hot path
-------------------------

With ``engine_fast_path`` (the default) the engine maintains live activity
state at resource transitions instead of rescanning ``self.active`` every
cycle:

* every message carries a ``routable`` flag mirroring
  :meth:`routing_eligible`, updated when its header crosses into a new VC,
  when it acquires a resource, and when recovery touches it — the
  allocation phase builds its request list from the flag instead of
  re-deriving eligibility per message per cycle;
* a blocked header whose candidate set is position-pure registers in a
  *wake index* (resource key → waiting message ids) and is marked
  ``stalled``; its allocation attempt is skipped entirely until one of the
  awaited resources is released, which provably cannot change the outcome
  (an all-owned candidate set yields no free VC and consumes no RNG);
* a fully-compressed worm (every owned edge buffer full, header blocked)
  is marked ``immobile`` and skipped by the movement phase until it
  acquires a new resource — no flit of such a worm can move;
* a monotone ``blocked_epoch`` counts ownership and blocked-set
  transitions, letting :class:`~repro.core.detector.DeadlockDetector`
  short-circuit a detection pass when nothing the CWG depends on changed.

With ``cwg_maintenance="incremental"`` the engine additionally drives an
:class:`~repro.core.incremental.IncrementalCWG` tracker from the same
resource events; its dirty-vertex feed powers the detector's dirty-region
caching (``detector_caching``, see :mod:`repro.core.detector`), which
re-analyzes only the weakly-connected CWG regions touched since the
previous pass.

The fast path is bit-identical to the legacy path: the same seed produces
the same :class:`~repro.metrics.stats.RunResult` and the same deadlock
event sequence (asserted by ``tests/integration/
test_fast_path_equivalence.py``).  Messages skipped by either flag are
still placed in the per-phase service-order lists, so arbitration consumes
an identical RNG stream.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Iterable, Optional

from repro.config import SimulationConfig
from repro.core.detector import DeadlockDetector, DeadlockEvent, DetectionRecord
from repro.core.incremental import IncrementalCWG
from repro.core.recovery import RecoveryPolicy, make_recovery
from repro.errors import SimulationError
from repro.faults import active_faults
from repro.metrics.stats import RunResult, StatsCollector
from repro.network.channels import ChannelPool, VirtualChannel
from repro.obs import Observer
from repro.network.message import Message, MessageStatus
from repro.network.topology import (
    Dragonfly,
    FullMesh,
    IrregularTorus,
    KAryNCube,
    Mesh,
    Mesh3D,
    Topology,
    Torus3D,
)
from repro.routing import make_routing, make_selection
from repro.traffic import LengthMix, MessageGenerator, make_pattern

__all__ = ["NetworkSimulator", "build_topology"]

# phase indices for per-phase round-robin arbitration state
_PHASE_ALLOC = 0
_PHASE_MOVE = 1


def build_topology(config: SimulationConfig) -> Topology:
    """Construct the topology a configuration describes."""
    lat = config.link_latencies or None
    if config.topology == "mesh3d":
        return Mesh3D(config.dims, link_latencies=lat)
    if config.topology == "torus3d":
        return Torus3D(
            config.dims, link_latencies=lat, bidirectional=config.bidirectional
        )
    if config.topology == "dragonfly":
        a, p, h = config.dims
        local, global_ = lat if lat else (1, 1)
        return Dragonfly(a, p, h, local_latency=local, global_latency=global_)
    if config.topology == "fullmesh":
        return FullMesh(config.dims[0], latency=lat[0] if lat else 1)
    if config.mesh:
        return Mesh(config.k, config.n, link_latencies=lat)
    if config.failed_links:
        return IrregularTorus(config.k, config.n, config.failed_links)
    return KAryNCube(
        config.k, config.n, bidirectional=config.bidirectional, link_latencies=lat
    )


class NetworkSimulator:
    """One network instance plus its workload, detector and recovery.

    ``trace`` substitutes a :class:`~repro.traffic.trace.TraceGenerator`
    replaying the given trace for the default Bernoulli source (the
    paper's "program-driven simulation" extension); ``config.load`` and
    ``config.traffic`` are then ignored.

    With ``config.engine_vectorized`` construction dispatches to
    :class:`~repro.network.vectorized.VectorizedEngine` (a subclass
    working over structure-of-arrays state mirrors), so call sites keep
    instantiating ``NetworkSimulator`` regardless of engine choice.  All
    three engine variants are bit-identical given the same seed.
    """

    def __new__(cls, config: SimulationConfig = None, trace=None):
        if cls is NetworkSimulator:
            if getattr(config, "engine_kernels", False):
                from repro.network.kernels import KernelEngine

                return object.__new__(KernelEngine)
            if getattr(config, "engine_vectorized", False):
                from repro.network.vectorized import VectorizedEngine

                return object.__new__(VectorizedEngine)
        return object.__new__(cls)

    def __init__(self, config: SimulationConfig, trace=None) -> None:
        config.validate()
        self.config = config
        self.topology = build_topology(config)
        self.pool = ChannelPool(
            self.topology,
            config.num_vcs,
            config.buffer_depth,
            rx_channels=config.rx_channels,
        )
        self.routing = make_routing(config.routing)
        self.routing.validate(self.topology, self.pool)
        self.selection = make_selection(config.selection)
        self.recovery: RecoveryPolicy = make_recovery(config.recovery)
        self.rng = random.Random(config.seed)
        # Traffic uses an independent stream so two simulations that differ
        # only in routing/recovery see the *same* offered workload.
        traffic_rng = random.Random(config.seed + 0x5EED)
        pattern_kwargs = {}
        if config.traffic == "hot-spot":
            pattern_kwargs["fraction"] = config.hotspot_fraction
        elif config.traffic == "hybrid":
            pattern_kwargs["components"] = list(config.traffic_mix)
        if trace is not None:
            from repro.traffic.trace import TraceGenerator

            self.pattern = None
            self.generator = TraceGenerator(self.topology, trace)
        else:
            self.pattern = make_pattern(
                config.traffic, self.topology, **pattern_kwargs
            )
            lengths = LengthMix(config.length_mix) if config.length_mix else None
            self.generator = MessageGenerator(
                self.topology,
                self.pattern,
                config.load,
                config.message_length,
                traffic_rng,
                config.max_queued_per_node,
                lengths=lengths,
                max_messages=config.max_messages,
            )
        self.detector = DeadlockDetector(
            count_cycles=config.count_cycles,
            max_cycles_counted=config.max_cycles_counted,
            record_blocked_durations=config.record_blocked_durations,
            caching=config.detector_caching,
        )
        self.stats = StatsCollector(config, self.topology)
        self.tracker = (
            IncrementalCWG() if config.cwg_maintenance == "incremental" else None
        )
        # runtime invariant checker (repro.validation); None at level 0
        from repro.validation.invariants import InvariantChecker

        self.validation = InvariantChecker.from_config(config)
        # observability (repro.obs): NULL_OBSERVER at obs_level=0, so the
        # per-cycle instrumentation below reduces to None-checks
        self.obs = Observer.from_config(config)
        self._obs_tracer = self.obs.tracer
        prof = self.obs.profiler
        if prof is not None:
            self._t_generate = prof.timer("engine/generate")
            self._t_allocate = prof.timer("engine/allocate")
            self._t_move = prof.timer("engine/move")
            self._t_detect = prof.timer("engine/detect")
            self._t_recover = prof.timer("engine/recover")
        else:
            self._t_generate = None
            self._t_recover = None
        # test-only fault injection (repro.faults), sampled once
        self._fault_skip_wake = "skip-wake" in active_faults()

        self.cycle = 0
        self.queues: list[deque[Message]] = [
            deque() for _ in range(self.topology.num_nodes)
        ]
        self.active: dict[int, Message] = {}
        self._live: dict[int, Message] = {}  # queued + active, by id
        self._link_used = bytearray(self.topology.num_links)
        self._zero_links = bytes(self.topology.num_links)
        # Heterogeneous link latency (topology zoo): a flit crossing a
        # latency-L link keeps it busy until cycle + L.  None on the
        # paper's uniform unit-latency topologies, where the per-cycle
        # ``_link_used`` bytearray alone is exact (and the hot path pays
        # nothing for the feature).
        if self.topology.uniform_latency:
            self._link_free_at = None
            self._link_latency = None
        else:
            self._link_free_at = [0] * self.topology.num_links
            self._link_latency = [link.latency for link in self.topology.links]
        # per-phase monotone round-robin counters (allocation, movement)
        self._rr_counters = [0, 0]
        self._candidate_cache: dict = {}
        self._router_delay = config.router_delay

        # -- fast-path activity state -----------------------------------------
        self.fast_path = bool(config.engine_fast_path)
        #: monotone counter of ownership / blocked-set transitions; the
        #: detector short-circuits a pass when it has not advanced
        self.blocked_epoch = 0
        self._waiting: dict[int, Message] = {}  # blocked_since set, by id
        self._wake_index: dict = {}  # resource key -> set of waiting ids
        self._delay_due: deque[tuple[int, Message]] = deque()  # router_delay
        #: set True the first time the routing relation declines memoization
        #: (cache_key None); disables stall-skipping and detector
        #: short-circuiting, whose proofs rely on position-pure candidates
        self._uncacheable_routing = False

    # -- queries used by the detector and tests -----------------------------------
    def active_messages(self) -> Iterable[Message]:
        return self.active.values()

    def message_by_id(self, message_id: int) -> Message:
        return self._live[message_id]

    def cwg_snapshot(self):
        """The current channel wait-for graph.

        With incremental maintenance this is an O(state) materialization of
        the event-maintained graph; otherwise it is rebuilt from scratch by
        :meth:`DeadlockDetector.build_cwg`.
        """
        if self.tracker is not None:
            return self.tracker.snapshot()
        return DeadlockDetector.build_cwg(self)

    def cwg_view(self):
        """Wait-graph *queries* for the detector.

        With the fast path and incremental maintenance this returns the
        live :class:`~repro.core.incremental.IncrementalCWG` itself — it
        answers every query the detector needs (adjacency, ownership,
        blocked set) without materializing a snapshot graph.  Otherwise it
        falls back to :meth:`cwg_snapshot`.
        """
        if self.tracker is not None and self.fast_path:
            return self.tracker
        return self.cwg_snapshot()

    def route_candidates(self, message: Message) -> list[VirtualChannel]:
        """The routing relation's candidate VCs for a message's next hop.

        Memoized by the relation's :meth:`cache_key`: a blocked header
        requests the same set every cycle, and the candidate set is a pure
        function of position for every built-in relation (the profile
        showed candidate recomputation dominating saturated runs).
        """
        node = message.head_node
        key = self.routing.cache_key(message, node)
        if key is None:
            self._uncacheable_routing = True
            return self.routing.candidates(message, node, self.topology, self.pool)
        cached = self._candidate_cache.get(key)
        if cached is None:
            cached = self.routing.candidates(
                message, node, self.topology, self.pool
            )
            self._candidate_cache[key] = cached
        return cached

    @property
    def messages_in_network(self) -> int:
        return len(self.active)

    @property
    def flits_in_network(self) -> int:
        return sum(m.flits_in_network for m in self.active.values())

    def routing_eligible(self, message: Message) -> bool:
        """Header ready to request its next resource (pipeline delay served).

        With ``router_delay`` > 0 a header that just arrived at a node is
        still in the router pipeline (route computation / VC allocation
        stages) and neither requests resources nor counts as blocked.
        """
        if not (message.needs_next_vc or message.needs_reception):
            return False
        if not message.header_in_newest_vc and message.vcs:
            return False
        delay = self._router_delay
        if delay and message.vcs:
            arrived = message.head_arrival
            if arrived is None or self.cycle - arrived < delay:
                return False
        return True

    def blocked_messages(self) -> list[Message]:
        """Active messages whose header is blocked awaiting a resource."""
        out = []
        for m in self.active.values():
            if not m.vcs or not self.routing_eligible(m):
                continue
            if m.needs_next_vc:
                out.append(m)
            elif m.needs_reception and self.pool.free_reception(m.dest) is None:
                out.append(m)
        return out

    def waiting_messages(self) -> Iterable[Message]:
        """Active messages with a failed allocation outstanding.

        Exactly the messages whose ``blocked_since`` is set.  The fast path
        maintains this set at state transitions; the legacy path derives it
        by scanning.  Used by statistics (starvation tracking) so the
        per-detection full-population scan disappears from the fast path.
        """
        if self.fast_path:
            return self._waiting.values()
        return [m for m in self.active.values() if m.blocked_since is not None]

    def _service_order(
        self, messages: list[Message], phase: int = _PHASE_ALLOC
    ) -> list[Message]:
        """Order in which competing messages are served this cycle.

        ``random`` (default) draws a fresh permutation per cycle — fair in
        expectation.  ``oldest-first`` gives strict age priority (smallest
        id first), which bounds starvation but can convoy.  ``round-robin``
        rotates the starting message each cycle, independently per phase:
        each phase advances its own monotone counter exactly once per cycle,
        so rotation is fair regardless of how the two phases' list lengths
        differ.
        """
        policy = self.config.arbitration
        if policy == "oldest-first":
            return sorted(messages, key=lambda m: m.id)
        if policy == "round-robin":
            if not messages:
                return messages
            ordered = sorted(messages, key=lambda m: m.id)
            self._rr_counters[phase] += 1
            offset = self._rr_counters[phase] % len(ordered)
            return ordered[offset:] + ordered[:offset]
        self.rng.shuffle(messages)
        return messages

    # -- fast-path bookkeeping -----------------------------------------------------
    def _begin_wait(self, msg: Message, keys: Optional[tuple]) -> None:
        """Record a failed allocation attempt in the activity state.

        ``keys`` carries the awaited resource keys on the *first* failure at
        this position (None when the candidate set is not position-pure);
        later failures find the registration already in place.  A message
        with registered keys is marked ``stalled`` and skipped by the
        allocation phase until one of them is released.
        """
        self._waiting[msg.id] = msg
        if keys is not None and msg.wait_keys is None:
            msg.wait_keys = keys
            index = self._wake_index
            for key in keys:
                waiters = index.get(key)
                if waiters is None:
                    index[key] = waiters = set()
                waiters.add(msg.id)
        if msg.wait_keys is not None:
            msg.stalled = True

    def _end_wait(self, msg: Message) -> None:
        """Drop the message from the waiting set and the wake index."""
        self._waiting.pop(msg.id, None)
        self._drop_wait_keys(msg)

    def _drop_wait_keys(self, msg: Message) -> None:
        """Invalidate the stall registration (the message stays blocked).

        Used on its own when a blocked message's *tail* releases a VC: the
        chain length enters some relations' candidate keys (misrouting
        budgets), so the awaited set must be recomputed at the next attempt.
        """
        keys = msg.wait_keys
        if keys is not None:
            index = self._wake_index
            for key in keys:
                waiters = index.get(key)
                if waiters is not None:
                    waiters.discard(msg.id)
                    if not waiters:
                        del index[key]
            msg.wait_keys = None
        msg.stalled = False

    def _wake(self, key) -> None:
        """A resource was released: unstall every message waiting on it."""
        if self._fault_skip_wake:
            return
        waiters = self._wake_index.get(key)
        if waiters:
            live = self._live
            for mid in waiters:
                m = live.get(mid)
                if m is not None:
                    m.stalled = False

    def _on_acquired(self, msg: Message) -> None:
        """Common fast-path bookkeeping after any resource acquisition."""
        msg.routable = False
        msg.immobile = False
        self._end_wait(msg)

    def _release_due_headers(self) -> None:
        """Mark headers routable once their router pipeline delay is served."""
        due = self._delay_due
        cycle = self.cycle
        while due and due[0][0] <= cycle:
            _, msg = due.popleft()
            if (
                msg.is_done
                or msg.recovering
                or msg.is_draining
                or msg.head_arrival is None
            ):
                continue
            msg.routable = True

    # -- the four phases -------------------------------------------------------------
    def _phase_generate(self) -> None:
        qlens = [len(q) for q in self.queues]
        for msg in self.generator.tick(self.cycle, qlens):
            self.queues[msg.src].append(msg)
            self._live[msg.id] = msg
            self.stats.on_generated(self.cycle)

    def _phase_allocate(self) -> None:
        fast = self.fast_path
        queued = MessageStatus.QUEUED
        requests: list[Message] = []
        for q in self.queues:
            if not q:
                continue
            head = q[0]
            # Common case: the head is still waiting to inject — a queued
            # message is never done and always has flits at the source.
            if head.status is queued:
                requests.append(head)
                continue
            # Let the next queued message start once its predecessor has
            # fully left the source (one injection channel per node).
            while q and (q[0].is_done or q[0].at_source == 0):
                done = q.popleft()
                if done.is_done:
                    self._live.pop(done.id, None)
            if q and q[0].status is queued:
                requests.append(q[0])
        if fast:
            if self._delay_due:
                self._release_due_headers()
            for m in self.active.values():
                if m.routable:
                    requests.append(m)
        else:
            for m in self.active.values():
                if self.routing_eligible(m):
                    requests.append(m)
        requests = self._service_order(requests, _PHASE_ALLOC)
        tracker = self.tracker
        tracer = self._obs_tracer
        cycle = self.cycle
        for msg in requests:
            if msg.stalled:
                # nothing this header waits on has freed since it last
                # failed: the attempt would fail identically (and consume
                # no RNG), so skip it
                continue
            if msg.needs_reception:
                rx = self.pool.free_reception(msg.dest)
                if rx is not None:
                    if tracer is not None and msg.blocked_since is not None:
                        tracer.instant("wake", msg=msg.id)
                    msg.acquire_reception(rx)
                    self.blocked_epoch += 1
                    if tracker is not None:
                        tracker.on_acquire(msg.id, ("rx", msg.dest, rx.index))
                    if fast:
                        self._on_acquired(msg)
                else:
                    if msg.blocked_since is None:
                        msg.blocked_since = cycle
                        self.blocked_epoch += 1
                        if tracer is not None:
                            tracer.instant("block", msg=msg.id, node=msg.dest)
                    if tracker is not None:
                        tracker.on_block(
                            msg.id, self.pool.reception_request_keys(msg.dest)
                        )
                    if fast:
                        self._begin_wait(msg, (("rx", msg.dest),))
                continue
            candidates = self.route_candidates(msg)
            free = [vc for vc in candidates if vc.owner is None]
            choice = self.selection.choose(msg, free, self.rng)
            if choice is not None:
                was_queued = msg.status is MessageStatus.QUEUED
                if tracer is not None and msg.blocked_since is not None:
                    tracer.instant("wake", msg=msg.id)
                msg.acquire_vc(choice, cycle)
                self.blocked_epoch += 1
                if tracker is not None:
                    tracker.on_acquire(msg.id, choice.index)
                if fast:
                    self._on_acquired(msg)
                if was_queued:
                    self.active[msg.id] = msg
                    self.stats.on_injected(cycle)
            elif msg.vcs:
                if msg.blocked_since is None:
                    msg.blocked_since = cycle
                    self.blocked_epoch += 1
                    if tracer is not None:
                        tracer.instant(
                            "block", msg=msg.id, node=msg.head_node
                        )
                if tracker is not None:
                    tracker.on_block(msg.id, [vc.index for vc in candidates])
                if fast:
                    keys = None
                    if msg.wait_keys is None and not self._uncacheable_routing:
                        keys = tuple(vc.index for vc in candidates)
                    self._begin_wait(msg, keys)

    def _phase_move(self) -> None:
        link_used = self._link_used
        link_used[:] = self._zero_links
        free_at = self._link_free_at  # None on uniform unit-latency topologies
        latency = self._link_latency
        fast = self.fast_path
        tracker = self.tracker
        cycle = self.cycle
        delay = self._router_delay
        order = self._service_order(list(self.active.values()), _PHASE_MOVE)
        finished: list[Message] = []
        torn_down: list[Message] = []
        for msg in order:
            if msg.immobile:
                # fully-compressed blocked worm: every owned buffer is full,
                # so no boundary can advance until a new resource is acquired
                continue
            vcs = msg.vcs
            moved = False
            if msg.recovering:
                msg.teardown_step()  # one flit into the recovery lane
            elif msg.is_draining and vcs and vcs[-1].occupancy > 0:
                vcs[-1].occupancy -= 1
                msg.ejected += 1
                moved = True
            # Head-to-tail boundary pass: each flit advances at most one hop.
            for i in range(len(vcs) - 1, -1, -1):
                dst = vcs[i]
                if dst.occupancy >= dst.capacity:
                    continue
                li = dst.link_index
                if link_used[li]:
                    continue
                if free_at is not None and free_at[li] > cycle:
                    # latency-L channel still busy with an earlier flit
                    continue
                if i > 0:
                    src = vcs[i - 1]
                    if src.occupancy == 0:
                        continue
                    src.occupancy -= 1
                else:
                    if msg.at_source == 0:
                        continue
                    msg.at_source -= 1
                dst.occupancy += 1
                link_used[li] = 1
                if free_at is not None:
                    free_at[li] = cycle + latency[li]
                moved = True
                if i == len(vcs) - 1 and msg.head_arrival is None:
                    msg.head_arrival = cycle  # header reached a new node
                    if fast and not msg.recovering:
                        if delay == 0:
                            msg.routable = True
                        else:
                            self._delay_due.append((cycle + delay, msg))
            released = msg.release_drained_tail()
            if released:
                self.blocked_epoch += 1
                for vc in released:
                    if tracker is not None:
                        tracker.on_release(msg.id, vc.index)
                    if fast:
                        self._wake(vc.index)
                if fast and msg.wait_keys is not None:
                    # the chain shortened: candidate keys that include the
                    # hop count (misrouting budgets) may now differ, so the
                    # next attempt must re-derive the awaited set
                    self._drop_wait_keys(msg)
                if (
                    tracker is not None
                    and msg.blocked_since is not None
                    and msg.needs_next_vc
                    and tracker.requests.get(msg.id) is not None
                ):
                    # same staleness on the maintained CWG: relations whose
                    # candidates depend on chain length (misrouting budgets)
                    # may offer a different set now that the tail drained;
                    # refresh the dashed arcs so the tracker stays equal to
                    # a from-scratch rebuild (position-pure relations hit
                    # the memoized set and the tracker dedupes the no-op)
                    tracker.on_block(
                        msg.id,
                        [vc.index for vc in self.route_candidates(msg)],
                    )
            if msg.recovering:
                if msg.teardown_complete and not msg.vcs:
                    torn_down.append(msg)
            elif msg.ejected == msg.length and msg.is_draining:
                finished.append(msg)
            elif fast and not moved and not msg.is_draining and vcs:
                # Nothing moved: if every owned buffer is also full, the worm
                # is fully compressed and provably immobile until it acquires
                # a new resource (which clears the flag).
                for vc in vcs:
                    if vc.occupancy < vc.capacity:
                        break
                else:
                    msg.immobile = True
        for msg in finished:
            rx_node = msg.dest
            msg.finish_delivery(cycle)
            self.active.pop(msg.id)
            self._live.pop(msg.id, None)
            self.blocked_epoch += 1
            if tracker is not None:
                tracker.on_done(msg.id)
            if fast:
                self._end_wait(msg)
                self._wake(("rx", rx_node))
            self.stats.on_delivered(msg, cycle)
        for msg in torn_down:
            msg.remove_from_network(
                cycle, delivered=self.recovery.delivers_victim
            )
            self.active.pop(msg.id)
            self._live.pop(msg.id, None)
            self.blocked_epoch += 1
            if tracker is not None:
                tracker.on_done(msg.id)
            if fast:
                self._end_wait(msg)
            self.stats.on_recovered(msg, cycle)

    def _phase_detect(self) -> Optional[DetectionRecord]:
        if self.cycle % self.config.detection_interval != 0:
            return None
        # True (knot) detection always runs: in timeout mode it provides the
        # ground truth against which the heuristic's recoveries are judged.
        record = self.detector.detect(self)
        if self.validation is not None:
            # verify reported knots against the definition while the state
            # they describe is still intact (recovery runs next)
            self.validation.on_detection(self, record)
        tracer = self._obs_tracer
        if tracer is not None:
            tracer.instant(
                "detection",
                knots=len(record.events),
                blocked=record.blocked_messages,
                vertices=record.cwg_vertices,
            )
            for event in record.events:
                tracer.instant(
                    "deadlock",
                    size=event.deadlock_set_size,
                    resources=event.resource_set_size,
                    density=event.knot_cycle_density,
                )
        t_recover = self._t_recover
        if t_recover is None:
            self._apply_recovery(record)
        else:
            with t_recover:
                self._apply_recovery(record)
        self.stats.on_detection(record, self)
        return record

    def _apply_recovery(self, record: DetectionRecord) -> None:
        if self.config.detection_mode == "timeout":
            self._recover_by_timeout(record)
        else:
            for event in record.events:
                self._recover(event)

    def _recover(self, event: DeadlockEvent) -> None:
        members = [self._live[mid] for mid in sorted(event.deadlock_set)]
        for msg in members:
            msg.deadlock_count += 1
        victims = self.recovery.victims(members, self.rng)
        for victim in victims:
            self._remove_victim(victim)

    def _recover_by_timeout(self, record: DetectionRecord) -> None:
        """Heuristic recovery: presume the longest-blocked message deadlocked.

        Models timeout-based recovery schemes (Disha's presumed deadlock,
        compressionless routing): one victim per detection — the message
        blocked beyond ``timeout_threshold`` the longest — is recovered
        regardless of whether a knot actually exists.  The true detector's
        concurrent record lets the statistics count how many of these
        recoveries were unnecessary (victim not in any real deadlock set).
        """
        for event in record.events:
            for mid in event.deadlock_set:
                self._live[mid].deadlock_count += 1
        threshold = self.config.timeout_threshold
        if record.blocked_ids is not None:
            # the detector enumerated the blocked set this same pass —
            # reuse it instead of rescanning the population
            pool = [self._live[mid] for mid in record.blocked_ids]
        else:
            pool = self.blocked_messages()
        candidates = [
            m
            for m in pool
            if m.blocked_since is not None
            and self.cycle - m.blocked_since >= threshold
        ]
        if not candidates:
            return
        victim = min(candidates, key=lambda m: (m.blocked_since, m.id))
        truly_deadlocked = set()
        for event in record.events:
            truly_deadlocked |= event.deadlock_set
        self.stats.on_timeout_recovery(
            self.cycle, necessary=victim.id in truly_deadlocked
        )
        self._remove_victim(victim)

    def _remove_victim(self, victim: Message) -> None:
        fast = self.fast_path
        if self._obs_tracer is not None:
            self._obs_tracer.instant(
                "recovery",
                victim=victim.id,
                teardown=self.config.recovery_teardown,
            )
        if self.config.recovery_teardown == "flit-by-flit":
            held_rx = victim.reception  # released inside begin_teardown
            victim.begin_teardown()
            self.blocked_epoch += 1
            if self.tracker is not None:
                # a draining victim no longer requests anything; its owned
                # channels release progressively via the movement phase
                self.tracker.on_unblock(victim.id)
            if fast:
                victim.routable = False
                victim.immobile = False
                self._end_wait(victim)
                if held_rx is not None:
                    self._wake(("rx", held_rx.node))
            # completion (and stats) happen in the movement phase as the
            # message drains through the recovery lane
            return
        owned = [vc.index for vc in victim.vcs]
        held_rx = victim.reception
        victim.remove_from_network(
            self.cycle, delivered=self.recovery.delivers_victim
        )
        self.active.pop(victim.id)
        self._live.pop(victim.id, None)
        self.blocked_epoch += 1
        if self.tracker is not None:
            self.tracker.on_done(victim.id)
        if fast:
            self._end_wait(victim)
            for index in owned:
                self._wake(index)
            if held_rx is not None:
                self._wake(("rx", held_rx.node))
        self.stats.on_recovered(victim, self.cycle)

    # -- driving ------------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by one cycle."""
        self.cycle += 1
        if self._t_generate is None:
            self._phase_generate()
            self._phase_allocate()
            self._phase_move()
            self._phase_detect()
        else:
            # profiled path: identical phase sequence, each stage wrapped in
            # its pre-bound scoped timer (pure observation — see repro.obs)
            tracer = self._obs_tracer
            if tracer is not None:
                tracer.cycle = self.cycle
            with self._t_generate:
                self._phase_generate()
            with self._t_allocate:
                self._phase_allocate()
            with self._t_move:
                self._phase_move()
            with self._t_detect:
                self._phase_detect()
        if self.config.check_invariants:
            self.check_invariants()
        if self.validation is not None:
            self.validation.maybe_check(self)

    def run(self, progress_every: int = 0) -> RunResult:
        """Run warmup + measurement and return the collected results."""
        cfg = self.config
        total = cfg.warmup_cycles + cfg.measure_cycles
        self.stats.measure_start = cfg.warmup_cycles
        while self.cycle < total:
            self.step()
            if progress_every and self.cycle % progress_every == 0:
                print(
                    f"  cycle {self.cycle}/{total}: "
                    f"{self.messages_in_network} msgs in flight, "
                    f"{len(self.detector.events)} deadlocks"
                )
        self.obs.finalize(self)
        return self.stats.finalize(self)

    def run_to_drain(self, max_cycles: int = 100_000) -> RunResult:
        """Run until every generated message has completed (trace replay).

        Stops early at ``max_cycles`` — e.g. when an unrecovered deadlock
        wedges part of the trace permanently.
        """
        self.stats.measure_start = 0
        while self.cycle < max_cycles:
            self.step()
            if (
                getattr(self.generator, "exhausted", False)
                and not self.active
                and all(not q for q in self.queues)
            ):
                break
        self.obs.finalize(self)
        return self.stats.finalize(self)

    # -- invariants ------------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Conservation and exclusivity checks (expensive; for tests/debug)."""
        self.pool.assert_consistent()
        owners: dict[int, int] = {}
        for msg in self.active.values():
            msg.check_conservation()
            for vc in msg.vcs:
                if vc.owner != msg.id:
                    raise SimulationError(
                        f"message {msg.id} lists VC {vc.index} it does not own"
                    )
                if vc.index in owners:
                    raise SimulationError(
                        f"VC {vc.index} claimed by messages "
                        f"{owners[vc.index]} and {msg.id}"
                    )
                owners[vc.index] = msg.id
        for vc in self.pool.vcs:
            if vc.owner is not None and vc.owner not in self.active:
                raise SimulationError(
                    f"VC {vc.index} owned by non-active message {vc.owner}"
                )
        if self.fast_path:
            self._check_activity_state()

    def _check_activity_state(self) -> None:
        """Fast-path flags must agree with the predicates they cache."""
        for msg in self.active.values():
            if msg.routable != self.routing_eligible(msg):
                raise SimulationError(
                    f"message {msg.id}: routable flag {msg.routable} "
                    f"disagrees with routing_eligible"
                )
            if (msg.blocked_since is not None) != (msg.id in self._waiting):
                raise SimulationError(
                    f"message {msg.id}: waiting-set membership disagrees "
                    f"with blocked_since={msg.blocked_since}"
                )
            if msg.stalled:
                keys = msg.wait_keys
                if keys is None:
                    raise SimulationError(
                        f"message {msg.id} stalled without wait keys"
                    )
                for key in keys:
                    if isinstance(key, tuple):  # ("rx", node)
                        if self.pool.free_reception(key[1]) is not None:
                            raise SimulationError(
                                f"message {msg.id} stalled on free "
                                f"reception at node {key[1]}"
                            )
                    elif self.pool.vcs[key].owner is None:
                        raise SimulationError(
                            f"message {msg.id} stalled on free VC {key}"
                        )
            if msg.immobile:
                if msg.is_draining or msg.recovering:
                    raise SimulationError(
                        f"message {msg.id} immobile while draining/recovering"
                    )
                for vc in msg.vcs:
                    if vc.occupancy < vc.capacity:
                        raise SimulationError(
                            f"message {msg.id} immobile with slack in "
                            f"VC {vc.index}"
                        )
        for mid in self._waiting:
            if mid not in self.active:
                raise SimulationError(
                    f"waiting set retains non-active message {mid}"
                )
