"""Messages: the unit of communication, pipelined flit-by-flit.

A message of ``length`` flits occupies a *chain* of virtual channels from
its tail to its head.  We exploit exclusive VC ownership to avoid per-flit
objects entirely: the flits a message holds in a VC's edge buffer are exactly
that VC's ``occupancy``, and the header flit is always the leading flit of
the chain.  A message therefore carries only:

* ``at_source``  — flits not yet injected (the source-queue stage),
* ``vcs``        — the owned VC chain in acquisition order (tail .. head),
* ``ejected``    — flits already consumed at the destination.

Conservation invariant::

    at_source + sum(vc.occupancy for vc in vcs) + ejected == length
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import SimulationError
from repro.network.channels import ReceptionChannel, VirtualChannel

__all__ = ["MessageStatus", "Message"]


class MessageStatus(enum.Enum):
    QUEUED = "queued"  # waiting in the source queue, owns nothing
    ACTIVE = "active"  # owns at least one network resource
    DELIVERED = "delivered"  # every flit consumed at the destination
    RECOVERED = "recovered"  # removed from the network by deadlock recovery
    ABORTED = "aborted"  # removed by a non-delivering recovery policy


class Message:
    """A single message in flight (or queued / completed)."""

    __slots__ = (
        "id",
        "src",
        "dest",
        "length",
        "created_cycle",
        "injected_cycle",
        "completed_cycle",
        "status",
        "at_source",
        "vcs",
        "ejected",
        "reception",
        "deadlock_count",
        "blocked_since",
        "recovering",
        "head_arrival",
        "routable",
        "stalled",
        "immobile",
        "wait_keys",
        "slot",
    )

    def __init__(
        self, message_id: int, src: int, dest: int, length: int, created_cycle: int
    ) -> None:
        if length < 1:
            raise SimulationError(f"message length must be >= 1, got {length}")
        if src == dest:
            raise SimulationError("self-addressed messages are not modelled")
        self.id = message_id
        self.src = src
        self.dest = dest
        self.length = length
        self.created_cycle = created_cycle
        self.injected_cycle: Optional[int] = None  # first flit entered network
        self.completed_cycle: Optional[int] = None
        self.status = MessageStatus.QUEUED
        self.at_source = length
        self.vcs: list[VirtualChannel] = []
        self.ejected = 0
        self.reception: Optional[ReceptionChannel] = None
        self.deadlock_count = 0  # how many detected deadlocks this message joined
        self.blocked_since: Optional[int] = None  # cycle the header last blocked
        self.recovering = False  # being torn out of the network flit-by-flit
        self.head_arrival: Optional[int] = None  # cycle header entered newest VC
        # -- engine fast-path activity flags (maintained by the simulator) --
        # ``routable`` mirrors NetworkSimulator.routing_eligible at phase
        # boundaries; ``stalled`` marks a blocked header none of whose awaited
        # resources has freed since its last failed allocation attempt;
        # ``immobile`` marks a fully-compressed worm that provably cannot
        # move a flit until it acquires a new resource; ``wait_keys`` lists
        # the resource keys this message is registered as waiting on.
        self.routable = False
        self.stalled = False
        self.immobile = False
        self.wait_keys: Optional[tuple] = None
        # -- vectorized-engine index mapping ------------------------------------
        # dense row index into the structure-of-arrays state mirrors
        # (:class:`repro.network.soa.SoAState`); None outside the vectorized
        # engine.  Slots are recycled through a free list when messages leave
        # the system (delivery, recovery, abort), so the arrays stay compact.
        self.slot: Optional[int] = None

    # -- position & status queries ------------------------------------------------
    @property
    def in_network(self) -> bool:
        return self.status is MessageStatus.ACTIVE

    @property
    def is_done(self) -> bool:
        return self.status in (
            MessageStatus.DELIVERED,
            MessageStatus.RECOVERED,
            MessageStatus.ABORTED,
        )

    @property
    def head_node(self) -> int:
        """The router at which the header flit currently resides.

        If the header has not yet left the source queue this is the source
        node; otherwise it is the downstream node of the newest owned VC.
        """
        if not self.vcs:
            return self.src
        return self.vcs[-1].dst

    @property
    def header_in_newest_vc(self) -> bool:
        """True when the header flit has entered the newest owned VC's buffer.

        Routing for the next hop may only occur once the header has physically
        arrived at :attr:`head_node`.
        """
        return bool(self.vcs) and self.vcs[-1].occupancy > 0

    @property
    def is_draining(self) -> bool:
        return self.reception is not None

    @property
    def at_destination(self) -> bool:
        return self.header_in_newest_vc and self.vcs[-1].dst == self.dest

    @property
    def needs_next_vc(self) -> bool:
        """Header is ready to route and no onward resource is allocated yet."""
        if self.is_draining or self.is_done or self.recovering:
            return False
        if not self.vcs:
            return self.status is MessageStatus.QUEUED or self.at_source > 0
        return self.header_in_newest_vc and self.vcs[-1].dst != self.dest

    @property
    def needs_reception(self) -> bool:
        return self.at_destination and not self.is_draining and not self.recovering

    @property
    def flits_in_network(self) -> int:
        return sum(vc.occupancy for vc in self.vcs)

    def check_conservation(self) -> None:
        total = self.at_source + self.flits_in_network + self.ejected
        if total != self.length:
            raise SimulationError(
                f"message {self.id}: flit conservation violated "
                f"({self.at_source} + {self.flits_in_network} + {self.ejected} "
                f"!= {self.length})"
            )

    # -- resource transitions -------------------------------------------------------
    def acquire_vc(self, vc: VirtualChannel, cycle: int) -> None:
        """Take exclusive ownership of ``vc`` and append it to the chain."""
        vc.acquire(self.id)
        self.vcs.append(vc)
        self.blocked_since = None
        self.head_arrival = None  # header has not yet crossed into vc
        if self.status is MessageStatus.QUEUED:
            self.status = MessageStatus.ACTIVE
            self.injected_cycle = cycle

    def acquire_reception(self, rx: ReceptionChannel) -> None:
        rx.acquire(self.id)
        self.reception = rx
        self.blocked_since = None

    def release_drained_tail(self) -> list[VirtualChannel]:
        """Release the leading prefix of now-empty VCs at the tail end.

        A VC may be released once the tail flit has left it: all flits behind
        it are gone (``at_source == 0``) and its buffer is empty.  Interior
        bubbles (an empty VC with flits still upstream) are *not* released —
        the worm still needs them.  Returns the released VCs (oldest first)
        so callers maintaining incremental state can observe them.
        """
        released: list[VirtualChannel] = []
        if self.at_source > 0:
            return released
        while self.vcs and self.vcs[0].occupancy == 0:
            # Never release the newest VC while the message is mid-route: the
            # header still needs it (occupancy 0 there means the header has
            # not yet crossed its link).
            if len(self.vcs) == 1 and not self.is_draining and self.ejected == 0:
                break
            vc = self.vcs.pop(0)
            vc.release(self.id)
            released.append(vc)
        return released

    def finish_delivery(self, cycle: int) -> None:
        if self.ejected != self.length:
            raise SimulationError(
                f"message {self.id} finishing with {self.ejected}/{self.length} flits"
            )
        if self.vcs:
            raise SimulationError(f"message {self.id} finishing while owning VCs")
        if self.reception is not None:
            self.reception.release(self.id)
            self.reception = None
        self.status = MessageStatus.DELIVERED
        self.completed_cycle = cycle

    def begin_teardown(self) -> None:
        """Start removing this message from the network flit-by-flit.

        Synthesizes Disha recovery faithfully: flits still at the source are
        discarded immediately (they never entered the network), in-flight
        flits drain out of the header end at one flit per cycle through the
        recovery lane, and owned VCs are released as the tail passes — so
        other blocked messages resume progressively, exactly as the paper's
        "removing a message (flit-by-flit) from the network" describes.
        """
        self.ejected += self.at_source  # source flits vanish instantly
        self.at_source = 0
        self.recovering = True
        self.blocked_since = None
        if self.reception is not None:
            self.reception.release(self.id)
            self.reception = None

    def teardown_step(self) -> int:
        """Drain one flit into the recovery lane; returns flits drained."""
        if not self.vcs:
            return 0
        head = self.vcs[-1]
        if head.occupancy == 0:
            return 0
        head.occupancy -= 1
        self.ejected += 1
        return 1

    @property
    def teardown_complete(self) -> bool:
        return self.recovering and self.ejected == self.length

    def remove_from_network(self, cycle: int, *, delivered: bool) -> None:
        """Tear the message out of the network flit-by-flit (recovery).

        Synthesizes the paper's Disha-style recovery: every owned VC is
        emptied and released, the reception channel (if held) is released,
        and the message is marked RECOVERED (Disha delivers the recovered
        message over its deadlock-free recovery lane) or ABORTED.
        """
        for vc in self.vcs:
            vc.occupancy = 0
            vc.release(self.id)
        self.vcs.clear()
        if self.reception is not None:
            self.reception.release(self.id)
            self.reception = None
        self.at_source = 0
        self.ejected = self.length
        self.status = MessageStatus.RECOVERED if delivered else MessageStatus.ABORTED
        self.completed_cycle = cycle

    @property
    def latency(self) -> Optional[int]:
        """Cycles from creation to completion, if completed."""
        if self.completed_cycle is None:
            return None
        return self.completed_cycle - self.created_cycle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message(m{self.id}, {self.src}->{self.dest}, len={self.length}, "
            f"{self.status.value}, src={self.at_source}, "
            f"net={self.flits_in_network}, out={self.ejected})"
        )
