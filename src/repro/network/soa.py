"""Structure-of-arrays mirrors of the live network state.

:class:`SoAState` keeps index-mapped array mirrors of the object-model
state the vectorized engine (:mod:`repro.network.vectorized`) works over:

* **per-VC columns** — ``vc_owner`` (owning message id, -1 free) and
  ``vc_occupancy`` (buffered flits), parallel to the static columns of
  :meth:`~repro.network.channels.ChannelPool.static_arrays`;
* **per-reception-channel column** — ``rx_owner``, flat-indexed
  ``node * rx_channels + index``;
* **per-message rows** — a dense slot table holding message id, flit
  position counters (``at_source`` / ``ejected``; in-network flits are the
  difference from ``length``), head/tail channel indices of the owned VC
  chain, and the engine activity flags (``routable`` / ``stalled`` /
  ``immobile`` / ``blocked``).

Slots are recycled through a LIFO free list when messages leave the system
(delivery, recovery, abort) — victim removal compacts into the free list
rather than shifting rows, so ``Message.slot`` stays stable for a
message's whole lifetime.  The table grows geometrically.

The mirrors are *push*-maintained: the engine updates them inline at every
state transition (the columns for the highest-frequency counters are plain
Python lists, which take scalar stores ~3x faster than numpy arrays; the
transition-level columns are numpy arrays directly).  :meth:`as_arrays`
exposes everything uniformly as numpy arrays, and :meth:`verify`
cross-checks every mirror against the object model — randomized property
tests (``tests/properties/test_soa_mirrors.py``) and
``check_invariants`` runs drive it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.channels import ChannelPool
    from repro.network.message import Message
    from repro.network.simulator import NetworkSimulator

__all__ = ["SoAState"]

_GROW = 2  # geometric slot-table growth factor


class SoAState:
    """Index-mapped array mirrors of channels, receptions and messages."""

    def __init__(self, pool: "ChannelPool", capacity: int = 256) -> None:
        self.pool = pool
        num_vcs = len(pool.vcs)
        self.rx_channels = pool.rx_channels
        # -- per-VC columns (owner transitions are numpy; the occupancy
        # counter mutates on every flit hop, so it stays a Python list) --
        self.vc_owner = np.full(num_vcs, -1, dtype=np.int64)
        self.vc_occupancy: list[int] = [0] * num_vcs
        self.static = pool.static_arrays()
        # -- per-reception-channel column ---------------------------------
        num_rx = len(pool.reception_groups) * pool.rx_channels
        self.rx_owner = np.full(num_rx, -1, dtype=np.int64)
        # -- per-message slot table ---------------------------------------
        n = max(capacity, 16)
        self.msg_id = np.full(n, -1, dtype=np.int64)
        self.length = np.zeros(n, dtype=np.int32)
        self.head_vc = np.full(n, -1, dtype=np.int32)
        self.tail_vc = np.full(n, -1, dtype=np.int32)
        self.routable = np.zeros(n, dtype=np.uint8)
        self.stalled = np.zeros(n, dtype=np.uint8)
        self.immobile = np.zeros(n, dtype=np.uint8)
        self.blocked = np.zeros(n, dtype=np.uint8)
        self.live = np.zeros(n, dtype=np.uint8)
        self.at_source: list[int] = [0] * n
        self.ejected: list[int] = [0] * n
        self.slot_msgs: list[Optional["Message"]] = [None] * n
        self._free: list[int] = list(range(n - 1, -1, -1))  # LIFO, 0 first
        self.slots_recycled = 0  #: total slots returned to the free list
        self.high_water = 0  #: max simultaneously-live slots

    # -- slot allocation ------------------------------------------------------------
    def _grow(self) -> None:
        old = len(self.slot_msgs)
        new = old * _GROW

        def ext(arr, fill):
            out = np.full(new, fill, dtype=arr.dtype)
            out[:old] = arr
            return out

        self.msg_id = ext(self.msg_id, -1)
        self.length = ext(self.length, 0)
        self.head_vc = ext(self.head_vc, -1)
        self.tail_vc = ext(self.tail_vc, -1)
        self.routable = ext(self.routable, 0)
        self.stalled = ext(self.stalled, 0)
        self.immobile = ext(self.immobile, 0)
        self.blocked = ext(self.blocked, 0)
        self.live = ext(self.live, 0)
        self.at_source.extend([0] * (new - old))
        self.ejected.extend([0] * (new - old))
        self.slot_msgs.extend([None] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))

    def on_created(self, msg: "Message") -> None:
        """Assign a slot to a newly generated (source-queued) message."""
        if not self._free:
            self._grow()
        slot = self._free.pop()
        msg.slot = slot
        self.slot_msgs[slot] = msg
        self.msg_id[slot] = msg.id
        self.length[slot] = msg.length
        self.at_source[slot] = msg.length
        self.ejected[slot] = 0
        self.head_vc[slot] = -1
        self.tail_vc[slot] = -1
        self.routable[slot] = 0
        self.stalled[slot] = 0
        self.immobile[slot] = 0
        self.blocked[slot] = 0
        self.live[slot] = 1
        used = len(self.slot_msgs) - len(self._free)
        if used > self.high_water:
            self.high_water = used

    def on_done(self, msg: "Message", owned: tuple = ()) -> None:
        """Recycle a completed/recovered message's slot.

        ``owned`` carries the VC indices the message still held when an
        instant teardown released them (their mirrors are cleared here);
        normal delivery releases VCs one by one through
        :meth:`on_released` first, so it passes nothing.
        """
        slot = msg.slot
        if slot is None:
            return
        for idx in owned:
            self.vc_owner[idx] = -1
            self.vc_occupancy[idx] = 0
        msg.slot = None
        self.slot_msgs[slot] = None
        self.msg_id[slot] = -1
        self.head_vc[slot] = -1
        self.tail_vc[slot] = -1
        self.routable[slot] = 0
        self.stalled[slot] = 0
        self.immobile[slot] = 0
        self.blocked[slot] = 0
        self.live[slot] = 0
        self._free.append(slot)
        self.slots_recycled += 1

    # -- transition mirrors ---------------------------------------------------------
    def on_acquired_vc(self, msg: "Message", vc_index: int) -> None:
        slot = msg.slot
        self.vc_owner[vc_index] = msg.id
        self.head_vc[slot] = vc_index
        if self.tail_vc[slot] < 0:
            self.tail_vc[slot] = vc_index

    def on_released(self, msg: "Message", released_indices) -> None:
        """Tail VCs drained and released; recompute the chain's tail end."""
        for idx in released_indices:
            self.vc_owner[idx] = -1
        slot = msg.slot
        vcs = msg.vcs
        if vcs:
            self.tail_vc[slot] = vcs[0].index
        else:
            self.tail_vc[slot] = -1
            self.head_vc[slot] = -1

    def sync_message(self, msg: "Message") -> None:
        """Re-derive one slot row from the object model (recovery paths).

        Victim teardown mutates several fields at once (source flits
        discarded, reception released, flags cleared); recoveries are rare
        enough that an O(chain) resync beats threading per-field updates
        through the recovery code.
        """
        slot = msg.slot
        if slot is None:
            return
        self.at_source[slot] = msg.at_source
        self.ejected[slot] = msg.ejected
        vcs = msg.vcs
        self.head_vc[slot] = vcs[-1].index if vcs else -1
        self.tail_vc[slot] = vcs[0].index if vcs else -1
        for vc in vcs:
            self.vc_occupancy[vc.index] = vc.occupancy
        self.routable[slot] = 1 if msg.routable else 0
        self.stalled[slot] = 1 if msg.stalled else 0
        self.immobile[slot] = 1 if msg.immobile else 0
        self.blocked[slot] = 1 if msg.blocked_since is not None else 0

    def rx_index(self, node: int, index: int) -> int:
        return node * self.rx_channels + index

    # -- uniform numpy views ----------------------------------------------------------
    def as_arrays(self) -> dict[str, np.ndarray]:
        """Every mirror as a numpy array (list-backed columns are copied)."""
        return {
            "vc_owner": self.vc_owner,
            "vc_occupancy": np.array(self.vc_occupancy, dtype=np.int32),
            "vc_capacity": self.static["capacity"],
            "rx_owner": self.rx_owner,
            "msg_id": self.msg_id,
            "length": self.length,
            "at_source": np.array(self.at_source, dtype=np.int32),
            "ejected": np.array(self.ejected, dtype=np.int32),
            "head_vc": self.head_vc,
            "tail_vc": self.tail_vc,
            "routable": self.routable,
            "stalled": self.stalled,
            "immobile": self.immobile,
            "blocked": self.blocked,
            "live": self.live,
        }

    # -- cross-checks ------------------------------------------------------------------
    def verify(self, sim: "NetworkSimulator") -> None:
        """Assert every mirror equals the object model it shadows."""
        pool = self.pool
        for vc in pool.vcs:
            owner = -1 if vc.owner is None else vc.owner
            if int(self.vc_owner[vc.index]) != owner:
                raise SimulationError(
                    f"SoA vc_owner[{vc.index}]={int(self.vc_owner[vc.index])} "
                    f"but VC owner is {vc.owner}"
                )
            if self.vc_occupancy[vc.index] != vc.occupancy:
                raise SimulationError(
                    f"SoA vc_occupancy[{vc.index}]={self.vc_occupancy[vc.index]} "
                    f"but VC holds {vc.occupancy}"
                )
        for group in pool.reception_groups:
            for rx in group:
                flat = self.rx_index(rx.node, rx.index)
                owner = -1 if rx.owner is None else rx.owner
                if int(self.rx_owner[flat]) != owner:
                    raise SimulationError(
                        f"SoA rx_owner[{flat}] diverges at node "
                        f"{rx.node}.{rx.index}: "
                        f"{int(self.rx_owner[flat])} != {rx.owner}"
                    )
        seen_slots: set[int] = set()
        for msg in sim._live.values():
            slot = msg.slot
            if slot is None:
                raise SimulationError(f"live message {msg.id} has no SoA slot")
            if slot in seen_slots:
                raise SimulationError(f"slot {slot} assigned twice")
            seen_slots.add(slot)
            if self.slot_msgs[slot] is not msg:
                raise SimulationError(
                    f"slot_msgs[{slot}] does not point back at message {msg.id}"
                )
            row = {
                "msg_id": (int(self.msg_id[slot]), msg.id),
                "length": (int(self.length[slot]), msg.length),
                "at_source": (self.at_source[slot], msg.at_source),
                "ejected": (self.ejected[slot], msg.ejected),
                "head_vc": (
                    int(self.head_vc[slot]),
                    msg.vcs[-1].index if msg.vcs else -1,
                ),
                "tail_vc": (
                    int(self.tail_vc[slot]),
                    msg.vcs[0].index if msg.vcs else -1,
                ),
                "routable": (int(self.routable[slot]), int(msg.routable)),
                "stalled": (int(self.stalled[slot]), int(msg.stalled)),
                "immobile": (int(self.immobile[slot]), int(msg.immobile)),
                "blocked": (
                    int(self.blocked[slot]),
                    int(msg.blocked_since is not None),
                ),
                "live": (int(self.live[slot]), 1),
            }
            for name, (mirror, truth) in row.items():
                if mirror != truth:
                    raise SimulationError(
                        f"SoA {name}[{slot}] (message {msg.id}): "
                        f"mirror {mirror} != object {truth}"
                    )
        for slot in range(len(self.slot_msgs)):
            if slot not in seen_slots:
                if self.live[slot]:
                    raise SimulationError(
                        f"slot {slot} live without a backing message"
                    )
        n_free = len(self._free)
        if n_free + len(seen_slots) != len(self.slot_msgs):
            raise SimulationError(
                f"slot accounting: {n_free} free + {len(seen_slots)} live "
                f"!= {len(self.slot_msgs)} total"
            )
