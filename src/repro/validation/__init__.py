"""Correctness net: runtime invariant checking + differential fuzzing.

Two layers defend the simulator's optimized paths (the activity-tracked
engine fast path, dirty-region detector caching, incremental CWG
maintenance) against silent drift from their ground-truth equivalents:

* :mod:`repro.validation.invariants` — a pluggable runtime checker a
  ``validation_level`` config flag attaches to the engine, asserting flit
  conservation, channel exclusivity, worm contiguity, activity-flag
  coherence, incremental-vs-rebuilt CWG equality and knot soundness on a
  sampling schedule;
* :mod:`repro.validation.differential` — a deterministic fuzz harness that
  draws seeded random configurations and cross-checks fast vs legacy
  engine, cached vs uncached detector and incremental vs rebuilt CWG,
  shrinking any mismatch to a minimal reproducing configuration.

``scripts/fuzz_differential.py`` is the command-line front end; see
``docs/TESTING.md`` for the test-pyramid overview.
"""

from repro.validation.differential import (
    AXES,
    FuzzMismatch,
    check_config,
    dump_artifact,
    load_artifact,
    random_config,
    run_fuzz,
    shrink_config,
)
from repro.validation.invariants import InvariantChecker, InvariantViolation

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "AXES",
    "FuzzMismatch",
    "check_config",
    "random_config",
    "run_fuzz",
    "shrink_config",
    "dump_artifact",
    "load_artifact",
]
