"""Correctness net: invariants, differential fuzzing, model checking.

Three layers defend the simulator's optimized paths (the activity-tracked
engine fast path, dirty-region detector caching, incremental CWG
maintenance) against silent drift from their ground-truth equivalents:

* :mod:`repro.validation.invariants` — a pluggable runtime checker a
  ``validation_level`` config flag attaches to the engine, asserting flit
  conservation, channel exclusivity, worm contiguity, activity-flag
  coherence, incremental-vs-rebuilt CWG equality and knot soundness on a
  sampling schedule;
* :mod:`repro.validation.differential` — a deterministic fuzz harness that
  draws seeded random configurations and cross-checks fast vs legacy
  engine, cached vs uncached detector and incremental vs rebuilt CWG,
  shrinking any mismatch to a minimal reproducing configuration;
* :mod:`repro.validation.oracle` (with
  :mod:`repro.validation.statespace`) — an exhaustive model checker that
  enumerates **every reachable state** of tiny generation-capped
  configurations across **all nondeterministic branches**, derives
  ground-truth deadlock labels by reachability, and cross-checks the knot
  detector's verdict at every state — the layer that checks the engines
  against *the definition* rather than against each other.

``scripts/fuzz_differential.py`` and ``scripts/oracle_smoke.py`` are the
command-line front ends (plus ``python -m repro oracle``); see
``docs/TESTING.md`` for the test-pyramid overview.
"""

from repro.validation.differential import (
    AXES,
    FuzzMismatch,
    check_config,
    dump_artifact,
    load_artifact,
    random_config,
    run_fuzz,
    shrink_config,
)
from repro.validation.invariants import InvariantChecker, InvariantViolation
from repro.validation.oracle import (
    ORACLE_GRID,
    OracleCase,
    OracleReport,
    OracleViolation,
    StateGraph,
    analyze,
    check_case,
    cwg_doomed_messages,
    explore,
    get_case,
    make_deadlock_witness,
    make_wake_witness,
    replay_witness,
    run_teeth,
)
from repro.validation.statespace import (
    ORACLE_PINS,
    CanonicalState,
    oracle_config,
    restore_sim,
    snapshot_state,
    successors,
)

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "AXES",
    "FuzzMismatch",
    "check_config",
    "random_config",
    "run_fuzz",
    "shrink_config",
    "dump_artifact",
    "load_artifact",
    "ORACLE_GRID",
    "ORACLE_PINS",
    "OracleCase",
    "OracleReport",
    "OracleViolation",
    "StateGraph",
    "CanonicalState",
    "analyze",
    "check_case",
    "cwg_doomed_messages",
    "explore",
    "get_case",
    "make_deadlock_witness",
    "make_wake_witness",
    "oracle_config",
    "replay_witness",
    "restore_sim",
    "run_teeth",
    "snapshot_state",
    "successors",
]
