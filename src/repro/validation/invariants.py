"""Runtime invariant checker for live simulations.

The engine's optimized paths cache derived state (activity flags, the wake
index, the incrementally-maintained CWG, per-region detector analyses).
Each cache has a ground truth it must agree with; this module re-derives
those ground truths from scratch and asserts agreement, on a sampling
schedule controlled by ``SimulationConfig.validation_level``:

* ``0`` — off (the default; sweeps and benchmarks pay nothing),
* ``1`` — the full battery every ``validation_interval`` cycles,
* ``2`` — the full battery every cycle.

At levels 1–2 every detector-reported deadlock is additionally verified
against the knot *definition* (closed under reachability, strongly
connected, every member message truly blocked) at the detection instant —
before recovery tears the evidence down.

The battery is pluggable: checks live in a named registry so tests can run
a subset, and projects can :meth:`InvariantChecker.register` new ones
without touching the engine.  Every check is a pure observer — running the
battery never mutates simulation state, so a validated run is bit-identical
to an unvalidated one (asserted by ``tests/validation/``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.core.detector import DeadlockDetector, DeadlockEvent, DetectionRecord
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import SimulationConfig
    from repro.network.simulator import NetworkSimulator

__all__ = ["InvariantViolation", "InvariantChecker"]


class InvariantViolation(SimulationError):
    """A runtime invariant check failed.

    Carries the check name and the simulation cycle so a violation in a
    long fuzz run pinpoints itself.
    """

    def __init__(self, check: str, cycle: int, detail: str) -> None:
        self.check = check
        self.cycle = cycle
        self.detail = detail
        super().__init__(f"[{check} @ cycle {cycle}] {detail}")


Check = Callable[["NetworkSimulator"], None]


# -- individual checks --------------------------------------------------------------
def check_flit_conservation(sim: "NetworkSimulator") -> None:
    """Every message's flits sum to its length; no flit leaks or duplicates.

    Cross-checks three independent accountings: per-message stage counters,
    per-VC buffer occupancies, and the pool-level occupancy sum.
    """
    pool_occupancy = 0
    for msg in sim.active_messages():
        msg.check_conservation()
        pool_occupancy += msg.flits_in_network
    total_buffered = sum(vc.occupancy for vc in sim.pool.vcs)
    if pool_occupancy != total_buffered:
        raise SimulationError(
            f"flits owned by active messages ({pool_occupancy}) != flits "
            f"buffered in VCs ({total_buffered}): some buffer holds flits "
            "of a non-active message"
        )
    # a queue's head may already be ACTIVE (mid-injection); messages behind
    # it are strictly QUEUED and must not own anything yet
    from repro.network.message import MessageStatus

    for q in sim.queues:
        for msg in q:
            if msg.status is MessageStatus.QUEUED and (msg.vcs or msg.ejected):
                raise SimulationError(
                    f"source-queued message {msg.id} owns VCs or ejected flits"
                )


def check_channel_exclusivity(sim: "NetworkSimulator") -> None:
    """Exclusive ownership and capacity bounds on every channel resource."""
    sim.pool.assert_consistent()  # occupancy in [0, capacity]; free => empty
    owners: dict[int, int] = {}
    for msg in sim.active_messages():
        for vc in msg.vcs:
            if vc.owner != msg.id:
                raise SimulationError(
                    f"message {msg.id} lists VC {vc.index} owned by {vc.owner}"
                )
            if vc.index in owners:
                raise SimulationError(
                    f"VC {vc.index} appears in the chains of messages "
                    f"{owners[vc.index]} and {msg.id}"
                )
            owners[vc.index] = msg.id
    for vc in sim.pool.vcs:
        if vc.owner is not None and vc.index not in owners:
            raise SimulationError(
                f"VC {vc.index} owned by {vc.owner} but absent from every "
                "active message's chain"
            )
    for group in sim.pool.reception_groups:
        for rx in group:
            if rx.owner is None:
                continue
            holder = sim.active.get(rx.owner)
            if holder is None:
                raise SimulationError(
                    f"reception channel {rx!r} owned by non-active "
                    f"message {rx.owner}"
                )
            if holder.reception is not rx:
                raise SimulationError(
                    f"reception channel {rx!r} not referenced back by its "
                    f"owner message {rx.owner}"
                )


def check_worm_contiguity(sim: "NetworkSimulator") -> None:
    """An owned VC chain is a connected path ending at the header's node.

    Wormhole switching stretches a message over consecutive links; the
    chain recorded in acquisition order must therefore be path-contiguous
    (each VC's downstream node is the next VC's upstream node), must not
    repeat a VC, and the newest VC must sit at :attr:`Message.head_node`.
    A message still holding flits at the source must remain anchored there.
    """
    for msg in sim.active_messages():
        vcs = msg.vcs
        seen: set[int] = set()
        for vc in vcs:
            if vc.index in seen:
                raise SimulationError(
                    f"message {msg.id} owns VC {vc.index} twice"
                )
            seen.add(vc.index)
        for a, b in zip(vcs, vcs[1:]):
            if a.dst != b.src:
                raise SimulationError(
                    f"message {msg.id} chain breaks between VC {a.index} "
                    f"(-> node {a.dst}) and VC {b.index} (from node {b.src})"
                )
        if vcs and msg.at_source > 0 and vcs[0].src != msg.src:
            raise SimulationError(
                f"message {msg.id} still has {msg.at_source} flits at its "
                f"source {msg.src} but its tail VC starts at {vcs[0].src}"
            )
        if vcs and msg.head_node != vcs[-1].dst:
            raise SimulationError(
                f"message {msg.id} head_node {msg.head_node} disagrees with "
                f"newest VC destination {vcs[-1].dst}"
            )
        if msg.is_draining and vcs and vcs[-1].dst != msg.dest:
            raise SimulationError(
                f"message {msg.id} draining at {vcs[-1].dst}, not its "
                f"destination {msg.dest}"
            )


def check_activity_coherence(sim: "NetworkSimulator") -> None:
    """Fast-path flags and the wake index agree with a from-scratch rescan.

    Delegates the flag-vs-predicate comparison to the engine's own
    ``_check_activity_state`` (routable/stalled/immobile/waiting-set), then
    verifies the wake index both ways: every registered ``wait_keys`` entry
    is indexed, and every index entry points back at a live waiting message
    that actually waits on that key.
    """
    if not sim.fast_path:
        return
    sim._check_activity_state()
    index = sim._wake_index
    for msg in sim.active_messages():
        if msg.wait_keys is None:
            continue
        for key in msg.wait_keys:
            if msg.id not in index.get(key, ()):
                raise SimulationError(
                    f"message {msg.id} waits on {key!r} but is missing from "
                    "the wake index"
                )
    for key, waiters in index.items():
        if not waiters:
            raise SimulationError(f"wake index retains empty bucket {key!r}")
        for mid in waiters:
            msg = sim._live.get(mid)
            if msg is None:
                continue  # lazily cleaned on wake; stale ids are permitted
            if msg.wait_keys is not None and key not in msg.wait_keys:
                raise SimulationError(
                    f"wake index lists message {mid} under {key!r} but its "
                    f"wait keys are {msg.wait_keys}"
                )


def check_incremental_cwg(sim: "NetworkSimulator") -> None:
    """The event-maintained CWG equals a from-scratch rebuild.

    Runs :meth:`IncrementalCWG.assert_consistent` (internal coherence) and
    :meth:`IncrementalCWG.assert_matches` against
    :meth:`DeadlockDetector.build_cwg` (external ground truth).  A no-op
    under ``cwg_maintenance="rebuild"``.
    """
    tracker = sim.tracker
    if tracker is None:
        return
    tracker.assert_matches(DeadlockDetector.build_cwg(sim))


#: the default battery, in execution order (cheap structural checks first)
DEFAULT_CHECKS: dict[str, Check] = {
    "flit-conservation": check_flit_conservation,
    "channel-exclusivity": check_channel_exclusivity,
    "worm-contiguity": check_worm_contiguity,
    "activity-coherence": check_activity_coherence,
    "incremental-cwg": check_incremental_cwg,
}


class InvariantChecker:
    """Samples a battery of invariant checks over a running simulation.

    The engine calls :meth:`maybe_check` at the end of every cycle and
    :meth:`on_detection` after every detector pass (before recovery).
    Instances are cheap; all cost is in the checks themselves.
    """

    def __init__(
        self,
        interval: int = 1,
        checks: Optional[Iterable[str]] = None,
        verify_detections: bool = True,
    ) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval
        names = list(DEFAULT_CHECKS) if checks is None else list(checks)
        unknown = [n for n in names if n not in DEFAULT_CHECKS]
        if unknown:
            raise ValueError(
                f"unknown invariant check(s) {unknown}; "
                f"known: {list(DEFAULT_CHECKS)}"
            )
        self.checks: dict[str, Check] = {
            n: DEFAULT_CHECKS[n] for n in names
        }
        self.verify_detections = verify_detections
        #: batteries run / individual checks run / detections verified
        self.passes = 0
        self.checks_run = 0
        self.detections_verified = 0
        self.last_checked_cycle = -1

    @classmethod
    def register(cls, name: str, check: Check) -> None:
        """Add ``check`` to the default battery under ``name``.

        The battery is snapshotted at construction, so registration only
        affects checkers built afterwards.
        """
        if name in DEFAULT_CHECKS:
            raise ValueError(f"invariant check {name!r} already registered")
        DEFAULT_CHECKS[name] = check

    @classmethod
    def from_config(
        cls, config: "SimulationConfig"
    ) -> Optional["InvariantChecker"]:
        """The checker a configuration asks for, or None when disabled."""
        if config.validation_level == 0:
            return None
        interval = 1 if config.validation_level >= 2 else config.validation_interval
        return cls(interval=interval)

    # -- entry points called by the engine -----------------------------------------
    def maybe_check(self, sim: "NetworkSimulator") -> None:
        """Run the battery if this cycle is on the sampling schedule."""
        if sim.cycle % self.interval == 0:
            self.check_now(sim)

    def check_now(self, sim: "NetworkSimulator") -> None:
        """Run every configured check immediately."""
        for name, check in self.checks.items():
            try:
                check(sim)
            except InvariantViolation:
                raise
            except SimulationError as exc:
                raise InvariantViolation(name, sim.cycle, str(exc)) from exc
            self.checks_run += 1
        self.passes += 1
        self.last_checked_cycle = sim.cycle

    def on_detection(
        self, sim: "NetworkSimulator", record: DetectionRecord
    ) -> None:
        """Verify a detector pass's reported deadlocks against the definition.

        Called by the engine between detection and recovery, so the network
        state the events describe is still intact.  Short-circuited passes
        report no events and verify trivially.
        """
        if not self.verify_detections or not record.events:
            return
        graph = DeadlockDetector.build_cwg(sim)
        adjacency = graph.adjacency()
        for event in record.events:
            try:
                self._verify_knot_event(sim, graph, adjacency, event)
            except SimulationError as exc:
                raise InvariantViolation(
                    "knot-soundness", sim.cycle, str(exc)
                ) from exc
        self.detections_verified += 1

    # -- knot soundness ------------------------------------------------------------
    @staticmethod
    def _verify_knot_event(
        sim: "NetworkSimulator",
        graph,
        adjacency,
        event: DeadlockEvent,
    ) -> None:
        """One reported deadlock really is a knot of truly-blocked messages.

        Checks the definition directly on an independently rebuilt CWG:
        (i) no arc leaves the knot and it contains at least one arc,
        (ii) the knot is strongly connected (forward and reverse BFS from
        one member each cover it), (iii) the deadlock set is exactly the
        owners of the knot's vertices, every one of them blocked with all
        requested alternatives owned, and (iv) the resource set is exactly
        the union of the deadlock set's chains.
        """
        knot = event.knot
        if not knot:
            raise SimulationError("reported knot is empty")
        arcs = 0
        for v in knot:
            if v not in adjacency:
                raise SimulationError(
                    f"knot vertex {v!r} is not in the rebuilt CWG"
                )
            succs = adjacency[v]
            for w in succs:
                if w not in knot:
                    raise SimulationError(
                        f"escape arc {v!r} -> {w!r} leaves the reported knot"
                    )
            arcs += len(succs)
        if arcs == 0:
            raise SimulationError("reported knot contains no arc")

        start = next(iter(knot))
        reached = {start}
        frontier = [start]
        while frontier:
            v = frontier.pop()
            for w in adjacency[v]:
                if w not in reached:
                    reached.add(w)
                    frontier.append(w)
        if reached != knot:
            raise SimulationError(
                f"knot not reachability-closed: {len(reached)} of "
                f"{len(knot)} vertices reached from {start!r}"
            )
        reverse: dict = {v: [] for v in knot}
        for v in knot:
            for w in adjacency[v]:
                reverse[w].append(v)
        reached = {start}
        frontier = [start]
        while frontier:
            v = frontier.pop()
            for w in reverse[v]:
                if w not in reached:
                    reached.add(w)
                    frontier.append(w)
        if reached != knot:
            raise SimulationError(
                "knot not strongly connected: reverse reachability from "
                f"{start!r} covers {len(reached)} of {len(knot)} vertices"
            )

        owners = graph.messages_owning(knot)
        if owners != set(event.deadlock_set):
            raise SimulationError(
                f"deadlock set {sorted(event.deadlock_set)} != owners of "
                f"knot vertices {sorted(owners)}"
            )
        for mid in event.deadlock_set:
            msg = sim.message_by_id(mid)
            if msg.blocked_since is None:
                raise SimulationError(
                    f"deadlock-set message {mid} is not blocked"
                )
            targets = graph.requests.get(mid)
            if not targets:
                raise SimulationError(
                    f"deadlock-set message {mid} requests nothing in the CWG"
                )
            for t in targets:
                if graph.owner.get(t) is None:
                    raise SimulationError(
                        f"deadlock-set message {mid} waits on free vertex "
                        f"{t!r} — it has an escape"
                    )
        resources = graph.resources_of(event.deadlock_set)
        if resources != set(event.resource_set):
            raise SimulationError(
                f"resource set diverges from the deadlock set's chains "
                f"(reported {len(event.resource_set)}, "
                f"rebuilt {len(resources)})"
            )
