"""Canonical simulator snapshots and scripted-choice stepping.

The exhaustive model-checking oracle (:mod:`repro.validation.oracle`) needs
two capabilities the engines themselves never expose:

* a **canonical, hashable snapshot** of the full simulator state — message
  positions (source stage, VC chain occupancies, ejected count), VC
  ownership, reception-channel ownership, injection-queue contents and the
  blocked/arrived wait bits — such that two runs reaching the same physical
  state produce *equal* snapshots regardless of the path taken, and any
  snapshot can be **restored** into a live legacy-engine simulator; and

* a way to replace every RNG draw of a simulation step with an explicit
  **branch point**, so the full nondeterministic choice tree of one cycle
  (per-node Bernoulli injections, traffic destination draws, arbitration
  shuffles, selection tie-breaks) can be enumerated or replayed from a
  recorded script.

Canonicality relies on the *oracle pins* (:func:`oracle_config`): knot-mode
detection every cycle, no recovery, no router pipeline delay, and the
legacy scalar engine.  Under those pins the absolute cycle number carries
no behavioural information — only the *None-ness* of ``blocked_since`` and
``head_arrival`` matters — so snapshots store booleans and the reachable
state space of a generation-capped configuration is finite.

Restoration always targets the legacy engine (``engine_fast_path=False``):
it derives eligibility and waiting state by scanning, so a restored
simulator needs no reconstruction of the fast path's wake index or
activity flags.  Because all four engine tiers are bit-identical, successor
sets enumerated on the legacy engine are ground truth for every tier.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.config import SimulationConfig
from repro.errors import ConfigurationError, SimulationError
from repro.network.message import Message, MessageStatus
from repro.network.simulator import NetworkSimulator

__all__ = [
    "ORACLE_PINS",
    "oracle_config",
    "ChoiceController",
    "ChoiceRandom",
    "next_script",
    "CanonicalState",
    "snapshot_state",
    "clear_state",
    "load_state",
    "restore_sim",
    "step_with_script",
    "successors",
]


# -- oracle configuration pins --------------------------------------------------------
#: config fields forced by :func:`oracle_config`.  Each pin removes a source
#: of behavioural dependence on the absolute cycle number or on state the
#: snapshot does not carry:
#:
#: * legacy scalar engine — restoration does not rebuild wake-index /
#:   activity-flag state (and the engines are bit-identical anyway);
#: * ``detection_interval=1`` — the detection phase fires every cycle, so
#:   ``cycle % interval`` carries no information;
#: * ``detection_mode="knot"`` + ``recovery="none"`` — the detector is a
#:   pure observer (blocked *durations* never matter, only blockedness) and
#:   messages leave the system exclusively by delivery, which is what makes
#:   reachability ground truth well-defined;
#: * ``router_delay=0`` — ``head_arrival`` reduces to a boolean.
ORACLE_PINS = dict(
    engine_fast_path=False,
    engine_vectorized=False,
    engine_kernels=False,
    cwg_maintenance="rebuild",
    detector_caching=False,
    recovery="none",
    recovery_teardown="instant",
    detection_mode="knot",
    detection_interval=1,
    router_delay=0,
    count_cycles=False,
    record_blocked_durations=False,
    validation_level=0,
    obs_level=0,
    check_invariants=False,
    warmup_cycles=0,
)


def oracle_config(config: SimulationConfig) -> SimulationConfig:
    """Pin ``config`` into the oracle's canonical form (see ORACLE_PINS).

    Raises :class:`~repro.errors.ConfigurationError` for configurations the
    oracle cannot enumerate: an unbounded message supply (no finite state
    space), round-robin arbitration (its monotone rotation counter is
    unbounded, so states never close), and the stochastic workload mixes
    whose draws a two-way Bernoulli branch cannot cover.
    """
    cfg = config.replace(**ORACLE_PINS)
    if cfg.max_messages is None:
        raise ConfigurationError(
            "the oracle needs max_messages set: an unbounded message "
            "supply has no finite reachable state space"
        )
    if cfg.arbitration == "round-robin":
        raise ConfigurationError(
            "round-robin arbitration carries an unbounded rotation counter; "
            "the oracle supports 'random' and 'oldest-first'"
        )
    if cfg.length_mix or cfg.traffic == "hybrid":
        raise ConfigurationError(
            "length_mix / hybrid traffic draw cumulative-weight uniforms; "
            "the oracle's branch points cover Bernoulli, randrange, choice "
            "and shuffle draws only"
        )
    cfg.validate()
    return cfg


# -- choice branching ----------------------------------------------------------------
class ChoiceController:
    """Records one step's branch decisions, optionally following a script.

    Every nondeterministic decision of width ``n`` calls :meth:`branch`;
    the first ``len(script)`` calls return the scripted choices and any
    further call defaults to alternative 0.  The ``trail`` — a list of
    ``(choice, num_options)`` pairs — is the complete record of the step's
    decision points, from which :func:`next_script` derives the next
    sibling leaf of the choice tree.
    """

    __slots__ = ("script", "trail")

    def __init__(self, script: Sequence[int] = ()) -> None:
        self.script = list(script)
        self.trail: list[tuple[int, int]] = []

    def branch(self, num_options: int) -> int:
        if num_options <= 1:
            return 0  # not a decision point: never recorded
        pos = len(self.trail)
        if pos < len(self.script):
            choice = self.script[pos]
            if not 0 <= choice < num_options:
                raise SimulationError(
                    f"scripted choice {choice} at position {pos} out of "
                    f"range for {num_options} options — the witness script "
                    f"does not match this simulation's decision points"
                )
        else:
            choice = 0
        self.trail.append((choice, num_options))
        return choice

    def choices(self) -> tuple[int, ...]:
        """The decisions actually taken, as a replayable script."""
        return tuple(c for c, _ in self.trail)


def next_script(trail: Sequence[tuple[int, int]]) -> Optional[list[int]]:
    """The next sibling script in depth-first enumeration order.

    Increments the rightmost non-exhausted decision and truncates
    everything after it (the subtree below a changed decision may have a
    completely different shape).  Returns None when ``trail`` was the last
    leaf of the choice tree.
    """
    for i in range(len(trail) - 1, -1, -1):
        choice, n = trail[i]
        if choice + 1 < n:
            return [c for c, _ in trail[:i]] + [choice + 1]
    return None


#: the supremum of random.random(): the largest double below 1.0.  Returned
#: for the "high" Bernoulli branch so that a threshold of exactly 1.0
#: (message_probability saturates at 1.0) still takes the inject path on
#: both branches, matching the real generator which injects always.
_MAX_RANDOM = 1.0 - 2.0**-53


class ChoiceRandom:
    """A ``random.Random`` lookalike that turns draws into branch points.

    Implements exactly the methods the simulator's pinned configurations
    consume — ``random`` (Bernoulli injection), ``randrange`` (uniform
    destinations), ``choice`` (selection tie-breaks) and ``shuffle``
    (random arbitration) — so any *other* draw fails loudly with an
    ``AttributeError`` instead of silently collapsing a branch dimension.

    ``shuffle`` branches per Fisher–Yates step (``n-1`` decisions of widths
    ``n .. 2``) rather than as one ``n!``-way decision, so enumeration
    shares prefixes between permutations and scripts stay short.
    """

    __slots__ = ("_controller",)

    def __init__(self, controller: ChoiceController) -> None:
        self._controller = controller

    def random(self) -> float:
        return _MAX_RANDOM if self._controller.branch(2) else 0.0

    def randrange(self, n: int) -> int:
        if n <= 0:
            raise ValueError(f"empty range for randrange({n})")
        return self._controller.branch(n)

    def choice(self, seq):
        seq = list(seq)
        if not seq:
            raise IndexError("cannot choose from an empty sequence")
        return seq[self._controller.branch(len(seq))]

    def shuffle(self, seq: list) -> None:
        for i in range(len(seq) - 1, 0, -1):
            j = self._controller.branch(i + 1)
            seq[i], seq[j] = seq[j], seq[i]


# -- canonical snapshots -------------------------------------------------------------
#: per-message canonical record:
#: (id, src, dest, length, status, at_source, ejected,
#:  ((vc_index, occupancy), ...), rx_index | None, blocked, head_arrived)
MessageRecord = tuple


@dataclass(frozen=True)
class CanonicalState:
    """A canonical, hashable snapshot of the full simulator state.

    ``messages`` holds one record per live (queued or active) message,
    sorted by id; ``queues`` holds each node's injection queue as a tuple
    of message ids *after* applying the engine's lazy head-pop (entries
    that are done or fully injected), so two states that differ only in
    not-yet-collected queue heads — which behave identically — compare
    equal.  ``next_id`` is the generator's id counter: it determines both
    the ids of future messages and how much of the generation budget
    remains.
    """

    next_id: int
    queues: tuple[tuple[int, ...], ...]
    messages: tuple[MessageRecord, ...]

    # -- derived views ---------------------------------------------------------------
    def live_ids(self) -> tuple[int, ...]:
        return tuple(rec[0] for rec in self.messages)

    def active_ids(self) -> tuple[int, ...]:
        return tuple(
            rec[0] for rec in self.messages if rec[4] == MessageStatus.ACTIVE.value
        )

    def delivered_ids(self) -> tuple[int, ...]:
        """Messages that existed and left the system (delivery-only pins)."""
        live = set(self.live_ids())
        return tuple(i for i in range(self.next_id) if i not in live)

    # -- serialization ---------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "next_id": self.next_id,
            "queues": [list(q) for q in self.queues],
            "messages": [
                [
                    rec[0], rec[1], rec[2], rec[3], rec[4], rec[5], rec[6],
                    [list(pair) for pair in rec[7]], rec[8], rec[9], rec[10],
                ]
                for rec in self.messages
            ],
        }

    @classmethod
    def from_json(cls, data: dict) -> "CanonicalState":
        return cls(
            next_id=int(data["next_id"]),
            queues=tuple(tuple(int(i) for i in q) for q in data["queues"]),
            messages=tuple(
                (
                    int(r[0]), int(r[1]), int(r[2]), int(r[3]), str(r[4]),
                    int(r[5]), int(r[6]),
                    tuple((int(v), int(o)) for v, o in r[7]),
                    None if r[8] is None else int(r[8]),
                    bool(r[9]), bool(r[10]),
                )
                for r in data["messages"]
            ),
        )

    def digest(self) -> str:
        """A short stable content hash, used by witness traces."""
        payload = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def snapshot_state(sim: NetworkSimulator) -> CanonicalState:
    """Snapshot a live simulator into a :class:`CanonicalState`.

    Works on any engine tier — it reads only the object model, which the
    structure-of-arrays engines maintain alongside their mirrors.  Raises
    when the state falls outside the oracle's pinned semantics (a message
    mid-teardown can only exist under flit-by-flit recovery).
    """
    records = []
    for mid in sorted(sim._live):
        msg = sim._live[mid]
        if msg.recovering:
            raise SimulationError(
                f"message {msg.id} is mid-teardown; canonical snapshots "
                "cover the oracle's no-recovery semantics only"
            )
        if msg.status not in (MessageStatus.QUEUED, MessageStatus.ACTIVE):
            raise SimulationError(
                f"live message {msg.id} in unexpected state {msg.status}"
            )
        records.append(
            (
                msg.id, msg.src, msg.dest, msg.length, msg.status.value,
                msg.at_source, msg.ejected,
                tuple((vc.index, vc.occupancy) for vc in msg.vcs),
                None if msg.reception is None else msg.reception.index,
                msg.blocked_since is not None,
                msg.head_arrival is not None,
            )
        )
    queues = []
    for q in sim.queues:
        entries = list(q)
        # canonical form of the engine's lazy queue-head collection: done or
        # fully-injected heads are popped at the next allocation phase
        # before any behavioural effect, so drop them here
        while entries and (entries[0].is_done or entries[0].at_source == 0):
            entries.pop(0)
        queues.append(tuple(m.id for m in entries))
    return CanonicalState(
        next_id=sim.generator._next_id,
        queues=tuple(queues),
        messages=tuple(records),
    )


def clear_state(sim: NetworkSimulator) -> None:
    """Return a legacy-engine simulator to the empty cycle-0 state.

    Together with :func:`load_state` this lets enumeration reuse one
    simulator across thousands of restores instead of reconstructing
    topology, channel pool and routing tables per choice-tree leaf.
    """
    for vc in sim.pool.vcs:
        vc.owner = None
        vc.occupancy = 0
    for group in sim.pool.reception_groups:
        for rx in group:
            rx.owner = None
    for q in sim.queues:
        q.clear()
    sim.active.clear()
    sim._live.clear()
    sim.cycle = 0
    sim._rr_counters = [0, 0]
    gen = sim.generator
    gen._next_id = 0
    gen.generated = 0
    gen.suppressed = 0
    # the detector and statistics accumulate per-pass records; drop them so
    # long enumerations stay flat in memory
    sim.detector.records.clear()
    sim.detector.events.clear()
    from repro.metrics.stats import StatsCollector

    sim.stats = StatsCollector(sim.config, sim.topology)


def load_state(sim: NetworkSimulator, state: CanonicalState) -> None:
    """Populate an empty (freshly built or cleared) simulator with ``state``."""
    gen = sim.generator
    gen._next_id = state.next_id
    gen.generated = state.next_id
    by_id: dict[int, Message] = {}
    for rec in state.messages:
        (mid, src, dest, length, status, at_source, ejected,
         chain, rx_index, blocked, arrived) = rec
        msg = Message(mid, src, dest, length, 0)
        msg.status = MessageStatus(status)
        msg.at_source = at_source
        msg.ejected = ejected
        for vc_index, occupancy in chain:
            vc = sim.pool.vcs[vc_index]
            vc.acquire(mid)
            vc.occupancy = occupancy
            msg.vcs.append(vc)
        if rx_index is not None:
            rx = sim.pool.reception_groups[dest][rx_index]
            rx.acquire(mid)
            msg.reception = rx
        # only None-ness is behavioural under the oracle pins (knot-mode
        # detection, zero router delay): restore the bits as cycle 0
        msg.blocked_since = 0 if blocked else None
        msg.head_arrival = 0 if arrived else None
        if msg.status is MessageStatus.ACTIVE:
            msg.injected_cycle = 0
        by_id[mid] = msg
    for mid in sorted(by_id):  # canonical insertion order for dict iteration
        msg = by_id[mid]
        sim._live[mid] = msg
        if msg.status is MessageStatus.ACTIVE:
            sim.active[mid] = msg
    for node, ids in enumerate(state.queues):
        for mid in ids:
            sim.queues[node].append(by_id[mid])


def restore_sim(
    config: SimulationConfig, state: CanonicalState
) -> NetworkSimulator:
    """Build a live legacy-engine simulator in exactly ``state``.

    ``config`` is pinned through :func:`oracle_config` first, so any
    engine-tier configuration restores onto the (bit-identical) legacy
    scalar engine.  The restored simulator passes ``check_invariants`` and
    satisfies ``snapshot_state(restore_sim(c, s)) == s``.
    """
    sim = NetworkSimulator(oracle_config(config))
    load_state(sim, state)
    sim.check_invariants()
    return sim


# -- scripted stepping ---------------------------------------------------------------
def step_with_script(
    sim: NetworkSimulator, script: Sequence[int] = ()
) -> ChoiceController:
    """Advance ``sim`` one cycle with every RNG draw scripted.

    Both the arbitration/selection stream (``sim.rng``) and the traffic
    stream (``sim.generator.rng``) are pointed at one shared controller:
    the phases run in a fixed order, so a single sequential trail captures
    the step's entire decision sequence.  Returns the controller (its
    ``trail`` records the decision points actually encountered).
    """
    controller = ChoiceController(script)
    rng = ChoiceRandom(controller)
    sim.rng = rng
    sim.generator.rng = rng
    sim.step()
    return controller


def successors(
    config: SimulationConfig,
    state: CanonicalState,
    limit: Optional[int] = None,
    _sim: Optional[NetworkSimulator] = None,
) -> list[tuple[tuple[int, ...], CanonicalState]]:
    """Every one-step successor of ``state``, with its choice script.

    Enumerates the step's full choice tree depth-first: each leaf restores
    the simulator to ``state`` (so enumeration is path-independent),
    replays the script prefix, and extends it with default choices.
    Distinct scripts may reach the same successor state; callers
    deduplicate.  ``limit`` bounds the number of leaves explored (a guard
    against mis-pinned configurations), raising
    :class:`~repro.errors.SimulationError` when exceeded.

    ``_sim`` is the enumeration fast path: a reusable simulator built from
    ``oracle_config(config)`` (the caller keeps it across states; it is
    cleared and reloaded per leaf).
    """
    sim = _sim if _sim is not None else NetworkSimulator(oracle_config(config))
    out: list[tuple[tuple[int, ...], CanonicalState]] = []
    script: Sequence[int] = ()
    while True:
        clear_state(sim)
        load_state(sim, state)
        controller = step_with_script(sim, script)
        out.append((controller.choices(), snapshot_state(sim)))
        if limit is not None and len(out) > limit:
            raise SimulationError(
                f"choice-tree fan-out exceeded {limit} leaves for one state; "
                "the configuration is too branchy for exhaustive enumeration"
            )
        sibling = next_script(controller.trail)
        if sibling is None:
            return out
        script = sibling
