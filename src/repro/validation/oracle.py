"""Exhaustive small-config model-checking oracle for the knot detector.

The differential fuzzer (:mod:`repro.validation.differential`) checks that
the four engine tiers agree with *each other*; nothing yet checks that what
they agree on is *correct*.  This module closes that gap for configurations
small enough to enumerate completely: it explores **every reachable state**
of a generation-capped simulation across **all nondeterministic branches**
(per-node Bernoulli injections, destination draws, arbitration shuffles,
selection tie-breaks — see :mod:`repro.validation.statespace`), derives
ground-truth deadlock labels *by reachability* over the resulting state
graph, and cross-checks the knot detector's verdict at every single state.

Ground truth needs no graph theory: under the oracle pins messages leave
the system only by delivery, so a live message is **doomed** at a state
exactly when *no* reachable state has it delivered.  That is computed by a
backward traversal per message — independent of the CWG/knot machinery
under test.  Two properties tie the detector to this truth:

* **soundness** (no false positives) — at *every* reachable state, each
  message the detector places in a deadlock or dependent set is doomed;
* **completeness** (no false negatives) — at every *terminal* state that
  still holds active messages, the detector reports a deadlock and its
  event sets cover every active message.

The per-state biconditional "knot now ⟺ doomed" is deliberately **not**
asserted: reachability can doom a message a few cycles before the losing
wait materializes as a knot (the detector is an instant-by-instant
instrument, not a prophet), and that lead time is correct behaviour.

Any violation yields a **replayable minimal witness** — the shortest
choice-script path from the empty network, in the same artifact spirit as
the fuzzer — and the *teeth* mode proves the oracle is not vacuous by
arming the ``REPRO_INJECT_FAULT`` bookkeeping faults and demanding each
produces a concrete counterexample.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.cwg import ChannelWaitForGraph
from repro.core.detector import DeadlockDetector, DetectionRecord
from repro.core.knots import knot_of_vertex
from repro.errors import SimulationError
from repro.network.simulator import NetworkSimulator
from repro.validation.statespace import (
    CanonicalState,
    clear_state,
    load_state,
    next_script,
    oracle_config,
    snapshot_state,
    step_with_script,
    successors,
)

__all__ = [
    "OracleCase",
    "ORACLE_GRID",
    "get_case",
    "StateGraph",
    "explore",
    "GroundTruth",
    "analyze",
    "OracleViolation",
    "OracleReport",
    "check_case",
    "build_witness",
    "dump_witness",
    "load_witness",
    "ReplayResult",
    "replay_witness",
    "make_deadlock_witness",
    "make_wake_witness",
    "TeethOutcome",
    "teeth_candidates",
    "run_teeth",
    "TEETH_FAULTS",
    "cwg_doomed_messages",
]


# -- the oracle grid -----------------------------------------------------------------
@dataclass(frozen=True)
class OracleCase:
    """One exhaustively-checkable configuration class.

    The expected counts are **regression pins**: they were measured once at
    full closure and any drift — a changed branch point, a new RNG draw, a
    altered phase order — fails the smoke check loudly instead of silently
    shrinking (or exploding) the verified space.
    """

    name: str
    description: str
    config: SimulationConfig
    expected_states: int
    expected_terminals: int
    expected_deadlocked_terminals: int


def _case(name, description, expected, terminals, deadlocked, **overrides):
    base = dict(
        n=1,
        bidirectional=False,
        num_vcs=1,
        buffer_depth=1,
        routing="dor",
        selection="lowest",
        arbitration="oldest-first",
        traffic="uniform",
        load=1.0,
        message_length=2,
        max_queued_per_node=2,
        seed=0,
    )
    base.update(overrides)
    return OracleCase(
        name=name,
        description=description,
        config=SimulationConfig(**base),
        expected_states=expected,
        expected_terminals=terminals,
        expected_deadlocked_terminals=deadlocked,
    )


#: the verified configuration classes.  Together they cover: a class whose
#: closure *contains* true deadlocks under deterministic arbitration, the
#: same class under random arbitration (shuffle branch points, more
#: terminals), a deadlock-free 2-D torus, a deadlock-free 2-VC ring (the
#: extra VC breaks the 3-cycle), and a deterministic-destination tornado
#: ring (no destination branch points at all).
ORACLE_GRID: tuple[OracleCase, ...] = (
    _case(
        "ring-deadlock",
        "3-ary 1-cube uni ring, 3 two-flit messages, deterministic "
        "arbitration — the minimal wormhole ring deadlock",
        expected=819, terminals=2, deadlocked=1,
        k=3, max_messages=3,
    ),
    _case(
        "ring-random-arb",
        "same ring under random arbitration: shuffle branch points widen "
        "the tree and five distinct deadlocked terminals appear",
        expected=1003, terminals=6, deadlocked=5,
        k=3, max_messages=3, arbitration="random",
    ),
    _case(
        "torus-free",
        "2-ary 2-cube uni torus, 3 two-flit messages — dimension-ordered "
        "routing on this radix cannot close a wait cycle",
        expected=4602, terminals=1, deadlocked=0,
        k=2, n=2, max_messages=3,
    ),
    _case(
        "ring-2vc-free",
        "3-ary ring with 2 virtual channels, 2 messages: the extra VC "
        "gives every blocked header an escape, so the closure is "
        "deadlock-free",
        expected=149, terminals=1, deadlocked=0,
        k=3, num_vcs=2, max_messages=2,
    ),
    _case(
        "tornado-free",
        "4-ary uni ring under tornado traffic (deterministic "
        "destinations): only injection branches remain and 4 messages "
        "drain",
        expected=866, terminals=1, deadlocked=0,
        k=4, max_messages=4, traffic="tornado",
    ),
    _case(
        "dragonfly-min-free",
        "(a=2, h=1) dragonfly (3 groups, 6 routers) under hierarchical "
        "minimal routing, 2 two-flit messages: a local-global-local wait "
        "cycle needs two distinct global channels between one group pair, "
        "which the palmtree arrangement never provides — the closure is "
        "deadlock-free",
        expected=3430, terminals=1, deadlocked=0,
        topology="dragonfly", dims=(2, 1, 1), bidirectional=True,
        routing="df-min", max_messages=2,
    ),
    _case(
        "fullmesh-direct-free",
        "3-node full mesh under direct routing: every message holds at "
        "most one channel and waits only on reception, so no wait cycle "
        "can close at any reachable state",
        expected=24, terminals=1, deadlocked=0,
        topology="fullmesh", dims=(3,), bidirectional=True,
        routing="fm-direct", selection="random", max_messages=3,
    ),
    _case(
        "fullmesh-2hop-deadlock",
        "the same 3-node full mesh with one misroute hop allowed "
        "(fm-2hop): three mutually-misrouted worms close a 3-channel "
        "knot — misrouting provably reintroduces deadlock",
        expected=204, terminals=3, deadlocked=2,
        topology="fullmesh", dims=(3,), bidirectional=True,
        routing="fm-2hop", selection="random", max_messages=3,
    ),
)


def get_case(name: str) -> OracleCase:
    for case in ORACLE_GRID:
        if case.name == name:
            return case
    known = ", ".join(c.name for c in ORACLE_GRID)
    raise KeyError(f"unknown oracle case {name!r}; known cases: {known}")


# -- state-graph exploration ---------------------------------------------------------
class StateGraph:
    """The full reachable state graph of one pinned configuration.

    States are interned to indices in BFS discovery order (index 0 is the
    empty initial state).  ``succ[i]`` is the sorted tuple of distinct
    successor indices; ``scripts[i][j]`` is the first choice script found
    that steps ``i`` to ``j``; ``parent[i]`` is the BFS tree edge
    ``(parent_index, script)``, which makes every state's discovery path a
    *shortest* path — the minimality guarantee behind witness traces.
    """

    __slots__ = ("config", "states", "index", "succ", "scripts", "parent")

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.states: dict[CanonicalState, int] = {}
        self.index: list[CanonicalState] = []
        self.succ: list[tuple[int, ...]] = []
        self.scripts: list[dict[int, tuple[int, ...]]] = []
        self.parent: list[Optional[tuple[int, tuple[int, ...]]]] = []

    def __len__(self) -> int:
        return len(self.index)

    def intern(self, state: CanonicalState) -> tuple[int, bool]:
        idx = self.states.get(state)
        if idx is not None:
            return idx, False
        idx = len(self.index)
        self.states[state] = idx
        self.index.append(state)
        self.succ.append(())
        self.scripts.append({})
        self.parent.append(None)
        return idx, True

    def is_terminal(self, idx: int) -> bool:
        """Only successor is itself: the network can make no further move."""
        return self.succ[idx] == (idx,)

    def terminal_indices(self) -> list[int]:
        return [i for i in range(len(self.index)) if self.is_terminal(i)]

    def deadlocked_terminal_indices(self) -> list[int]:
        return [
            i for i in self.terminal_indices() if self.index[i].active_ids()
        ]

    def path_to(self, idx: int) -> list[tuple[tuple[int, ...], int]]:
        """BFS-tree path from the initial state: ``[(script, state_index)]``.

        The returned scripts, replayed in order from the empty network,
        traverse a shortest path to ``idx``.
        """
        steps: list[tuple[tuple[int, ...], int]] = []
        cur = idx
        while self.parent[cur] is not None:
            parent_idx, script = self.parent[cur]
            steps.append((script, cur))
            cur = parent_idx
        if cur != 0:
            raise SimulationError(f"state {idx} has no path from the root")
        steps.reverse()
        return steps


def explore(
    config: SimulationConfig,
    max_states: int = 500_000,
    max_leaves_per_state: int = 100_000,
    log: Optional[Callable[[str], None]] = None,
) -> StateGraph:
    """Enumerate the configuration's full reachable state graph (BFS).

    Exhausts the state space to closure; ``max_states`` is a safety rail
    against mis-pinned configurations (raises
    :class:`~repro.errors.SimulationError` rather than returning a
    truncated graph — a partial closure would silently weaken every
    downstream guarantee).
    """
    pinned = oracle_config(config)
    graph = StateGraph(pinned)
    sim = NetworkSimulator(pinned)
    initial = snapshot_state(sim)
    graph.intern(initial)
    frontier = [0]
    while frontier:
        next_frontier: list[int] = []
        for idx in frontier:
            state = graph.index[idx]
            first_scripts: dict[int, tuple[int, ...]] = {}
            for script, succ_state in successors(
                config, state, limit=max_leaves_per_state, _sim=sim
            ):
                succ_idx, fresh = graph.intern(succ_state)
                if fresh:
                    graph.parent[succ_idx] = (idx, script)
                    next_frontier.append(succ_idx)
                first_scripts.setdefault(succ_idx, script)
                if len(graph) > max_states:
                    raise SimulationError(
                        f"state space exceeded {max_states} states before "
                        "closure; the configuration is too large for "
                        "exhaustive checking"
                    )
            graph.succ[idx] = tuple(sorted(first_scripts))
            graph.scripts[idx] = first_scripts
        frontier = next_frontier
        if log:
            log(f"  explored {len(graph)} states, frontier {len(frontier)}")
    return graph


# -- ground truth by reachability ----------------------------------------------------
@dataclass
class GroundTruth:
    """Reachability-derived deadlock labels, independent of the detector.

    ``doomed[i]`` is the set of message ids live at state ``i`` for which
    no reachable state has them delivered — the definition of deadlocked
    messages under delivery-only semantics.
    """

    doomed: list[frozenset[int]]
    terminals: tuple[int, ...]
    deadlocked_terminals: tuple[int, ...]


def analyze(graph: StateGraph) -> GroundTruth:
    """Label every state of ``graph`` with its doomed message set.

    One backward traversal per message id: seed with the states where the
    message has been delivered, walk predecessor edges to find every state
    that can still *reach* a delivery, and doom the message everywhere else
    it is live.  Terminal self-loops need no special casing — a terminal
    state reaches only itself.
    """
    n = len(graph)
    preds: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in graph.succ[i]:
            if j != i:
                preds[j].append(i)
    universe = max((s.next_id for s in graph.index), default=0)
    doomed_sets: list[set[int]] = [set() for _ in range(n)]
    for mid in range(universe):
        # seed: states where mid has left the system (delivered)
        can_escape = bytearray(n)
        stack = [
            i
            for i, s in enumerate(graph.index)
            if mid < s.next_id and mid not in s.live_ids()
        ]
        for i in stack:
            can_escape[i] = 1
        while stack:
            j = stack.pop()
            for i in preds[j]:
                if not can_escape[i]:
                    can_escape[i] = 1
                    stack.append(i)
        for i, s in enumerate(graph.index):
            if not can_escape[i] and mid in s.live_ids():
                doomed_sets[i].add(mid)
    terminals = tuple(graph.terminal_indices())
    deadlocked = tuple(graph.deadlocked_terminal_indices())
    return GroundTruth(
        doomed=[frozenset(s) for s in doomed_sets],
        terminals=terminals,
        deadlocked_terminals=deadlocked,
    )


# -- detector cross-check ------------------------------------------------------------
@dataclass(frozen=True)
class OracleViolation:
    """One disagreement between the detector and reachability ground truth."""

    kind: str  #: "false-positive" | "missed-deadlock" | "uncovered-terminal"
    #: | "knot-definition" | "state-count"
    state_index: int
    detail: str


@dataclass
class OracleReport:
    """The outcome of exhaustively checking one oracle case."""

    case: OracleCase
    num_states: int
    num_terminals: int
    num_deadlocked_terminals: int
    violations: list[OracleViolation] = field(default_factory=list)
    elapsed: float = 0.0
    graph: Optional[StateGraph] = None
    truth: Optional[GroundTruth] = None

    @property
    def counts_match(self) -> bool:
        return (
            self.num_states == self.case.expected_states
            and self.num_terminals == self.case.expected_terminals
            and self.num_deadlocked_terminals
            == self.case.expected_deadlocked_terminals
        )

    @property
    def ok(self) -> bool:
        return not self.violations and self.counts_match

    def summary(self) -> str:
        status = "OK" if self.ok else "FAIL"
        return (
            f"[{status}] {self.case.name}: {self.num_states} states, "
            f"{self.num_terminals} terminals "
            f"({self.num_deadlocked_terminals} deadlocked), "
            f"{len(self.violations)} violations, {self.elapsed:.1f}s"
        )


def _fresh_detector() -> DeadlockDetector:
    """An uncached full-pass detector (the *subject under test*)."""
    return DeadlockDetector(count_cycles=False, caching=False)


def _flagged_sets(record: DetectionRecord) -> tuple[set[int], set[int]]:
    """(deadlocked ∪ dependent, transient-dependent) over a record's events."""
    hard: set[int] = set()
    transient: set[int] = set()
    for event in record.events:
        hard.update(event.deadlock_set)
        hard.update(event.dependent)
        transient.update(event.transient_dependent)
    return hard, transient


def check_case(
    case: OracleCase,
    log: Optional[Callable[[str], None]] = None,
    keep_graph: bool = False,
) -> OracleReport:
    """Exhaustively cross-check the detector against ground truth.

    Runs a fresh full detector pass on **every** reachable state and
    verifies, per state: soundness of the deadlock and dependent sets
    against the reachability-doomed set, the knot *definition* for every
    reported knot (each knot vertex's reachable set must be exactly the
    knot and every member must have an out-arc), and — at terminal states
    with active messages — completeness of the reported event coverage.
    """
    started = time.perf_counter()
    graph = explore(case.config, log=log)
    truth = analyze(graph)
    sim = NetworkSimulator(graph.config)
    violations: list[OracleViolation] = []
    for idx, state in enumerate(graph.index):
        clear_state(sim)
        load_state(sim, state)
        record = _fresh_detector().detect(sim)
        hard, transient = _flagged_sets(record)
        doomed = truth.doomed[idx]
        # soundness: everything the detector condemns must really be doomed
        # (transient dependents are excluded — they may still escape, which
        # is exactly what "transient" asserts)
        false_pos = hard - doomed
        if false_pos:
            violations.append(
                OracleViolation(
                    "false-positive",
                    idx,
                    f"detector flags {sorted(false_pos)} as deadlocked/"
                    f"dependent but reachability shows they can still be "
                    f"delivered (doomed set: {sorted(doomed)})",
                )
            )
        # the reported knots must satisfy the knot definition on the CWG
        adjacency = None
        for event in record.events:
            if adjacency is None:
                adjacency = DeadlockDetector.build_cwg(sim).adjacency()
            probe = min(event.knot, key=repr)
            definitional = knot_of_vertex(adjacency, probe)
            if definitional != event.knot:
                violations.append(
                    OracleViolation(
                        "knot-definition",
                        idx,
                        f"event knot {sorted(map(repr, event.knot))} is not "
                        f"the definitional knot of vertex {probe!r}",
                    )
                )
        # completeness at terminal states: stuck active messages must be
        # reported, and the event sets must cover all of them
        if graph.is_terminal(idx):
            active = set(state.active_ids())
            if active:
                if not record.events:
                    violations.append(
                        OracleViolation(
                            "missed-deadlock",
                            idx,
                            f"terminal state holds stuck active messages "
                            f"{sorted(active)} but the detector reports no "
                            f"deadlock",
                        )
                    )
                else:
                    uncovered = active - hard - transient
                    if uncovered:
                        violations.append(
                            OracleViolation(
                                "uncovered-terminal",
                                idx,
                                f"stuck messages {sorted(uncovered)} missing "
                                f"from every event's deadlock/dependent/"
                                f"transient sets",
                            )
                        )
    report = OracleReport(
        case=case,
        num_states=len(graph),
        num_terminals=len(truth.terminals),
        num_deadlocked_terminals=len(truth.deadlocked_terminals),
        violations=violations,
        elapsed=time.perf_counter() - started,
        graph=graph if keep_graph else None,
        truth=truth if keep_graph else None,
    )
    if not report.counts_match:
        report.violations.append(
            OracleViolation(
                "state-count",
                -1,
                f"closure drifted from its regression pin: "
                f"{report.num_states}/{report.num_terminals}/"
                f"{report.num_deadlocked_terminals} states/terminals/"
                f"deadlocked vs expected {case.expected_states}/"
                f"{case.expected_terminals}/"
                f"{case.expected_deadlocked_terminals}",
            )
        )
    if log:
        log(report.summary())
    return report


# -- witnesses -----------------------------------------------------------------------
def _organic_scripts(
    config: SimulationConfig, path_states: Sequence[CanonicalState]
) -> list[list[int]]:
    """Choice scripts that walk a *live* simulator through ``path_states``.

    The state graph's edge scripts are recorded against the canonical
    restoration order (:func:`~repro.validation.statespace.load_state`
    inserts messages by sorted id), but a simulator evolved organically
    from the empty network visits its service lists in *arrival* order —
    the successor **sets** are identical (shuffles cover every
    permutation), the per-script labels are not.  Witnesses must replay on
    organically-evolved simulators (the production fast path cannot be
    re-normalized mid-run), so this search re-derives, per path edge, the
    script that takes the live simulator to the same canonical successor:
    depth-first over the organic choice tree, restarting from the root per
    candidate (paths are shortest, so the quadratic restart cost is tiny).
    """
    pinned = oracle_config(config)
    scripts: list[list[int]] = []
    for depth, target in enumerate(path_states):
        script: Sequence[int] = ()
        while True:
            sim = NetworkSimulator(pinned)
            for s in scripts:
                step_with_script(sim, s)
            controller = step_with_script(sim, script)
            if snapshot_state(sim) == target:
                scripts.append(list(controller.choices()))
                break
            sibling = next_script(controller.trail)
            if sibling is None:
                raise SimulationError(
                    f"no organic script reaches path state {depth}: the "
                    "canonical and organic successor sets diverged "
                    "(canonicalization bug)"
                )
            script = sibling
    return scripts


def _reference_verdict(
    sim: NetworkSimulator, state: CanonicalState
) -> dict:
    """The uncached full-pass verdict at ``state`` (restored canonically)."""
    clear_state(sim)
    load_state(sim, state)
    record = _fresh_detector().detect(sim)
    hard, transient = _flagged_sets(record)
    return {
        "has_deadlock": bool(record.events),
        "flagged": sorted(hard),
        "transient": sorted(transient),
    }


def build_witness(
    graph: StateGraph,
    target: int,
    kind: str,
    detail: str = "",
    path: Optional[list[tuple[tuple[int, ...], int]]] = None,
) -> dict:
    """A replayable artifact for the shortest path to ``graph`` state ``target``.

    Mirrors the fuzzer's artifact shape: the full config for
    reconstruction, the step-by-step choice scripts with per-state digests
    and reference detector verdicts (so replay divergence — state drift
    *or* a stale cached verdict — is localized to a cycle), and the final
    canonical state for end-state comparison.  ``path`` overrides the
    BFS-tree path (for witnesses that must traverse a specific edge).
    """
    if path is None:
        path = graph.path_to(target)
    states = [graph.index[idx] for _, idx in path]
    scripts = _organic_scripts(graph.config, states)
    ref_sim = NetworkSimulator(graph.config)
    steps = [
        {
            "choices": script,
            "digest": state.digest(),
            "verdict": _reference_verdict(ref_sim, state),
        }
        for script, state in zip(scripts, states)
    ]
    final = graph.index[target]
    return {
        "kind": kind,
        "detail": detail,
        "config": dataclasses.asdict(graph.config),
        "steps": steps,
        "final_state": final.to_json(),
        "final_verdict": steps[-1]["verdict"],
        "replay": "python -m repro oracle replay <artifact>",
    }


def dump_witness(payload: dict, path: Path | str) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_witness(path: Path | str) -> dict:
    payload = json.loads(Path(path).read_text())
    fields = dict(payload["config"])
    # JSON turns tuples into lists; restore the tuple-typed config fields
    fields["failed_links"] = tuple(
        tuple(pair) for pair in fields.get("failed_links", ())
    )
    fields["length_mix"] = tuple(
        (int(l), float(w)) for l, w in fields.get("length_mix", ())
    )
    fields["traffic_mix"] = tuple(
        (str(p), float(w)) for p, w in fields.get("traffic_mix", ())
    )
    fields["dims"] = tuple(int(d) for d in fields.get("dims", ()))
    fields["link_latencies"] = tuple(
        int(l) for l in fields.get("link_latencies", ())
    )
    payload["config"] = dataclasses.asdict(SimulationConfig(**fields))
    return payload


#: production-shape overrides for witness replay: the fast scalar engine
#: with incremental CWG maintenance and dirty-region detector caching —
#: the exact machinery the oracle pins *out* of enumeration, exercised
#: here against recorded oracle truth.  (The vectorized/kernel tiers
#: reproduce raw RNG word streams inline and cannot follow a scripted
#: choice stream; their equivalence is covered by the differential
#: fuzzer.)
_PRODUCTION_OVERRIDES = dict(
    engine_fast_path=True,
    cwg_maintenance="incremental",
    detector_caching=True,
)


@dataclass
class ReplayResult:
    """The outcome of replaying a witness path."""

    ok: bool
    diverged_at: Optional[int]  #: step index of the first digest mismatch
    divergence: str  #: "" | "state" | "verdict"
    detail: str
    final_digest: str


def replay_witness(payload: dict, production: bool = False) -> ReplayResult:
    """Replay a witness's choice scripts and compare against its recording.

    ``production=False`` replays on the oracle's pinned legacy engine —
    this must reproduce the recorded digests exactly (it is the engine the
    witness was derived on).  ``production=True`` replays on the fast-path
    scalar engine with incremental CWG maintenance and detector caching:
    the state digests must still match cycle-for-cycle (the tiers are
    bit-identical) and the replay engine's *own* detector verdict must
    match the recorded full-pass reference at every step — this is the
    teeth-mode subject, where an armed bookkeeping fault surfaces as a
    localized state or verdict divergence.
    """
    fields = dict(payload["config"])
    fields["failed_links"] = tuple(tuple(p) for p in fields["failed_links"])
    fields["length_mix"] = tuple(tuple(p) for p in fields["length_mix"])
    fields["traffic_mix"] = tuple(tuple(p) for p in fields["traffic_mix"])
    fields["dims"] = tuple(fields.get("dims", ()))
    fields["link_latencies"] = tuple(fields.get("link_latencies", ()))
    config = oracle_config(SimulationConfig(**fields))
    if production:
        config = config.replace(**_PRODUCTION_OVERRIDES)
        config.validate()
    sim = NetworkSimulator(config)
    digest = ""
    for step_index, step in enumerate(payload["steps"]):
        try:
            step_with_script(sim, step["choices"])
        except SimulationError as exc:
            # an armed fault can change the branch widths mid-step, making
            # the recorded script unreplayable — that *is* a divergence
            return ReplayResult(
                ok=False,
                diverged_at=step_index,
                divergence="state",
                detail=f"script unreplayable at step {step_index}: {exc}",
                final_digest=digest,
            )
        digest = snapshot_state(sim).digest()
        if digest != step["digest"]:
            return ReplayResult(
                ok=False,
                diverged_at=step_index,
                divergence="state",
                detail=(
                    f"state digest diverged at step {step_index}: "
                    f"{digest} != recorded {step['digest']}"
                ),
                final_digest=digest,
            )
        # verdict from the replay engine's own detector (the cached /
        # incremental machinery in production mode) vs the recorded
        # uncached full-pass reference
        record = sim.detector.records[-1] if sim.detector.records else None
        has_deadlock = bool(record.events) if record is not None else False
        hard, transient = (
            _flagged_sets(record) if record is not None else (set(), set())
        )
        recorded = step["verdict"]
        if (
            has_deadlock != recorded["has_deadlock"]
            or sorted(hard) != list(recorded["flagged"])
            or sorted(transient) != list(recorded["transient"])
        ):
            return ReplayResult(
                ok=False,
                diverged_at=step_index,
                divergence="verdict",
                detail=(
                    f"detector verdict diverged at step {step_index}: "
                    f"replay engine flags {sorted(hard)} / transient "
                    f"{sorted(transient)} (has_deadlock={has_deadlock}), "
                    f"reference recorded {recorded['flagged']} / "
                    f"{recorded['transient']} "
                    f"(has_deadlock={recorded['has_deadlock']})"
                ),
                final_digest=digest,
            )
    return ReplayResult(
        ok=True, diverged_at=None, divergence="", detail="", final_digest=digest
    )


def make_deadlock_witness(case: OracleCase, graph: Optional[StateGraph] = None) -> dict:
    """The shortest path into a true deadlock of ``case`` (its closure must
    contain one)."""
    if graph is None:
        graph = explore(case.config)
    deadlocked = graph.deadlocked_terminal_indices()
    if not deadlocked:
        raise SimulationError(
            f"oracle case {case.name!r} has a deadlock-free closure; "
            "pick a case with expected_deadlocked_terminals > 0"
        )
    # BFS tree paths are shortest paths; pick the nearest deadlocked terminal
    target = min(deadlocked, key=lambda i: len(graph.path_to(i)))
    return build_witness(
        graph,
        target,
        kind="deadlock",
        detail=(
            f"shortest path to a deadlocked terminal of case {case.name!r}"
        ),
    )


def make_wake_witness(case: OracleCase, graph: Optional[StateGraph] = None) -> dict:
    """The shortest path traversing a blocked→unblocked transition.

    An edge where a previously-blocked message comes unblocked (or is
    delivered outright) exercises the fast path's wake index — exactly the
    bookkeeping the ``skip-wake`` fault severs — so replaying this witness
    with that fault armed must diverge.
    """
    if graph is None:
        graph = explore(case.config)
    best: Optional[tuple[int, int, int]] = None  # (path_len, src, dst)
    for src in range(len(graph)):
        blocked_here = {
            rec[0] for rec in graph.index[src].messages if rec[9]
        }
        if not blocked_here:
            continue
        src_len = len(graph.path_to(src))
        if best is not None and src_len + 1 >= best[0]:
            continue
        for dst in graph.succ[src]:
            if dst == src:
                continue
            still_blocked = {
                rec[0] for rec in graph.index[dst].messages if rec[9]
            }
            if blocked_here - still_blocked:
                best = (src_len + 1, src, dst)
                break
    if best is None:
        raise SimulationError(
            f"oracle case {case.name!r} has no blocked→unblocked edge; "
            "every blocked message stays blocked (pure deadlock funnel)"
        )
    _, src, dst = best
    path = graph.path_to(src) + [(graph.scripts[src][dst], dst)]
    return build_witness(
        graph,
        dst,
        kind="wake",
        detail=(
            f"shortest path of case {case.name!r} through an edge where a "
            f"blocked message wakes"
        ),
        path=path,
    )


# -- teeth: armed faults must produce counterexamples --------------------------------
#: the bookkeeping faults the oracle must catch via production replay.
#: ``skip-wake`` breaks the fast path's wake index (stalled messages sleep
#: forever → the replayed trajectory leaves the recorded one at the first
#: wake) and ``skip-dirty-block`` hides dashed-arc churn from the
#: dirty-region detector cache (states still match, the cached verdict
#: goes stale at the knot-forming step).  Two known faults are *not*
#: end-to-end catchable here and are deliberately excluded:
#: ``skip-dirty-acquire`` is masked because an acquire almost always
#: changes the region's vertex set, forcing a recompute regardless of
#: dirty marks (its event-level contract is pinned by the teeth tests,
#: mirroring the fuzz harness); ``skip-immobile-clear`` lives in the
#: kernel engine, which reproduces raw RNG word streams inline and cannot
#: replay choice scripts — the differential fuzzer covers it.
TEETH_FAULTS = ("skip-wake", "skip-dirty-block")


@dataclass
class TeethOutcome:
    """Did an armed fault produce a concrete counterexample?"""

    fault: str
    caught: bool
    divergence: str  #: "state" | "verdict" | "" (uncaught)
    diverged_at: Optional[int]
    detail: str
    witness_kind: str = ""  #: which candidate witness caught it
    witness: Optional[dict] = None  #: the catching (replayable) payload


def teeth_candidates(
    case: OracleCase, graph: Optional[StateGraph] = None
) -> list[dict]:
    """The witness battery teeth mode replays under each armed fault.

    Different faults manifest on different trajectories: a stale dirty
    mark needs a path whose *verdict* the cache can get wrong (the
    deadlock witness), a severed wake index needs a path where a blocked
    message actually wakes (the wake witness).  The battery holds every
    witness shape the case supports.
    """
    if graph is None:
        graph = explore(case.config)
    candidates: list[dict] = []
    if graph.deadlocked_terminal_indices():
        candidates.append(make_deadlock_witness(case, graph))
    try:
        candidates.append(make_wake_witness(case, graph))
    except SimulationError:
        pass
    if not candidates:
        raise SimulationError(
            f"oracle case {case.name!r} yields no teeth witnesses"
        )
    return candidates


def run_teeth(
    case: OracleCase,
    faults: Sequence[str] = TEETH_FAULTS,
    candidates: Optional[list[dict]] = None,
) -> list[TeethOutcome]:
    """Arm each fault and replay the case's witness battery against it.

    Every candidate's clean (unarmed) production replay is verified
    first — if *that* diverges the witnesses or the engines are broken and
    fault attribution would be meaningless.  Each armed fault must then
    diverge on at least one candidate: the divergent step index plus the
    witness scripts *are* the concrete counterexample (replaying them
    reproduces the fault deterministically).
    """
    if candidates is None:
        candidates = teeth_candidates(case)
    for payload in candidates:
        clean = replay_witness(payload, production=True)
        if not clean.ok:
            raise SimulationError(
                f"clean production replay of the {payload['kind']!r} "
                f"witness diverged ({clean.detail}); cannot attribute "
                "divergences to injected faults"
            )
    outcomes: list[TeethOutcome] = []
    previous = os.environ.get("REPRO_INJECT_FAULT")
    try:
        for fault in faults:
            os.environ["REPRO_INJECT_FAULT"] = fault
            outcome = TeethOutcome(
                fault=fault,
                caught=False,
                divergence="",
                diverged_at=None,
                detail="no candidate witness diverged",
            )
            for payload in candidates:
                result = replay_witness(payload, production=True)
                if not result.ok:
                    outcome = TeethOutcome(
                        fault=fault,
                        caught=True,
                        divergence=result.divergence,
                        diverged_at=result.diverged_at,
                        detail=result.detail,
                        witness_kind=payload["kind"],
                        witness=payload,
                    )
                    break
            outcomes.append(outcome)
    finally:
        if previous is None:
            os.environ.pop("REPRO_INJECT_FAULT", None)
        else:
            os.environ["REPRO_INJECT_FAULT"] = previous
    return outcomes


# -- abstract progress game over snapshot CWGs ---------------------------------------
def cwg_doomed_messages(graph: ChannelWaitForGraph) -> frozenset[int]:
    """Messages that can never complete, by the CWG's own progress game.

    An independent ground truth for *snapshot* wait-for graphs (the
    paper-figure galleries), needing no simulator: repeatedly complete any
    message that is unblocked (no outstanding requests), releasing its
    chain; a blocked message unblocks when any requested vertex is free or
    freed.  The fixpoint's survivors are doomed.  This is exactly the
    "no legal sequence of channel releases drains it" characterization of
    deadlock, and on the Figure 1–4 galleries it reproduces the paper's
    deadlock + dependent classifications.
    """
    completed: set[int] = set()
    messages = set(graph.chains)
    while True:
        progressed = False
        for m in sorted(messages - completed):
            requests = graph.requests.get(m, ())
            if requests:
                # can m's header advance? any requested vertex free or
                # owned by a completed (drained) message
                movable = any(
                    graph.owner.get(t) is None or graph.owner.get(t) in completed
                    for t in requests
                )
                if not movable:
                    continue
            completed.add(m)
            progressed = True
        if not progressed:
            return frozenset(messages - completed)
