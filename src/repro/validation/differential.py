"""Deterministic differential fuzzing of the simulator's optimized paths.

The repo carries five pairs of independently-implemented equivalents:

* **engine** — the activity-tracked fast path vs the legacy full-rescan
  engine (``engine_fast_path``),
* **vectorized** — the structure-of-arrays vectorized core vs the legacy
  engine (``engine_vectorized``; legacy is the ground truth, so this axis
  is independent of the fast path's own bookkeeping),
* **kernels** — the batched array-kernel engine vs the vectorized core
  (``engine_kernels``; the vectorized engine is the reference here so the
  axis isolates exactly what the kernel tier adds — its RNG replay,
  maintained quiescence flags, and batch generate/allocate/move paths),
* **detector** — dirty-region cached detection vs the per-pass global
  analysis (``detector_caching``),
* **cwg** — the event-maintained :class:`IncrementalCWG` vs a from-scratch
  :meth:`DeadlockDetector.build_cwg` rebuild.

Each pair is documented bit-identical; the hand-written A/B/C suites cover
a fixed case matrix.  This module covers the space *between* the hand-picked
cases: :func:`random_config` draws a seeded random configuration across
topology / routing / VC / buffer / traffic / detection / recovery space,
:func:`check_config` cross-checks all the axes on it, and
:func:`shrink_config` greedily minimizes any mismatching configuration to
a smallest one that still reproduces, suitable for dumping as a replayable
JSON artifact (:func:`dump_artifact` / :func:`load_artifact`).

Everything is deterministic: a fuzz run is a pure function of its seed, so
CI failures replay exactly, and artifacts re-check byte-for-byte.

``scripts/fuzz_differential.py`` is the command-line front end.
"""

from __future__ import annotations

import dataclasses
import json
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.detector import DeadlockDetector
from repro.errors import SimulationError
from repro.network.simulator import NetworkSimulator

__all__ = [
    "AXES",
    "FuzzMismatch",
    "random_config",
    "check_config",
    "shrink_config",
    "run_fuzz",
    "dump_artifact",
    "load_artifact",
]

#: the five differential axes, in checking order
AXES = ("engine", "vectorized", "kernels", "detector", "cwg")


@dataclass(frozen=True)
class FuzzMismatch:
    """One confirmed divergence between paired implementations."""

    axis: str  #: "engine" | "vectorized" | "kernels" | "detector" | "cwg"
    config: SimulationConfig  #: a configuration reproducing the divergence
    detail: str  #: human-readable description of the first difference

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.axis}] {self.detail}\n  config: {self.config.label()}"


# -- configuration generation --------------------------------------------------------
def random_config(rng: random.Random) -> SimulationConfig:
    """One valid random configuration, drawn deterministically from ``rng``.

    The draw favours small, saturated, deadlock-prone networks (the
    interesting regime for all three axes) while sweeping every behavioural
    knob the engine and detector branch on.  Every returned configuration
    validates, constructs, and runs in well under a second; draws that hit
    an invalid combination are discarded and redrawn (deterministically —
    rejection consumes the stream in a seed-reproducible way).
    """
    while True:
        config = _draw_config(rng)
        try:
            config.validate()
            NetworkSimulator(config)  # rejects e.g. routing/VC/topology combos
        except (SimulationError, ValueError):
            continue
        return config


def _draw_config(rng: random.Random) -> SimulationConfig:
    routing = rng.choice(
        ["dor", "dor", "tfar", "tfar", "tfar", "tfar-mis", "dor-dateline", "duato"]
    )
    mesh = routing in ("dor", "tfar") and rng.random() < 0.15
    if mesh and rng.random() < 0.3:
        routing = "negative-first"
    k = rng.choice([3, 4, 4, 5])
    n = rng.choice([1, 2, 2])
    min_vcs = {"dor-dateline": 2, "duato": 3}.get(routing, 1)
    num_vcs = max(min_vcs, rng.choice([1, 1, 2, 2, 3, 4]))
    traffic_choices = ["uniform"] * 4 + ["hot-spot"]
    if not mesh:
        traffic_choices.append("tornado")
    if k == 4 and n == 2:
        traffic_choices.extend(["transpose", "bit-reversal"])
    detection_mode = rng.choice(["knot"] * 3 + ["timeout"])
    return SimulationConfig(
        k=k,
        n=n,
        bidirectional=True if mesh else rng.random() < 0.8,
        mesh=mesh,
        routing=routing,
        num_vcs=num_vcs,
        buffer_depth=rng.choice([1, 2, 2, 4, 8]),
        router_delay=rng.choice([0, 0, 0, 1, 2]),
        rx_channels=rng.choice([1, 1, 1, 2]),
        selection=rng.choice(["straight", "straight", "random", "lowest"]),
        arbitration=rng.choice(["random", "random", "oldest-first", "round-robin"]),
        message_length=rng.choice([2, 4, 4, 8, 16]),
        traffic=rng.choice(traffic_choices),
        load=rng.choice([0.5, 0.8, 1.0, 1.0, 1.3]),
        max_queued_per_node=rng.choice([8, 16]),
        detection_interval=rng.choice([10, 25, 25, 50]),
        detection_mode=detection_mode,
        timeout_threshold=100,
        recovery=rng.choice(["disha", "disha", "abort-all", "none"]),
        recovery_teardown=rng.choice(["instant", "instant", "flit-by-flit"]),
        # keep the census mostly on (it exercises the per-region cache
        # merge paths) but cap it low: saturated misrouting nets otherwise
        # spend tens of seconds enumerating cycles per detection, blowing
        # the smoke budget; census-off draws fuzz the incremental
        # knot-tracking detector path instead
        count_cycles=rng.random() < 0.75,
        max_cycles_counted=1_000,
        record_blocked_durations=rng.random() < 0.3,
        warmup_cycles=0,
        measure_cycles=rng.choice([300, 400, 600]),
        seed=rng.randrange(2**32),
    )


# -- fingerprints --------------------------------------------------------------------
def _result_fingerprint(result) -> dict:
    fields = dataclasses.asdict(result)
    fields.pop("config")  # differs by construction (the toggled flag)
    return fields


def _event_fingerprint(events) -> list:
    return [
        (
            e.cycle,
            tuple(sorted(e.deadlock_set)),
            tuple(sorted(e.resource_set, key=str)),
            tuple(sorted(e.knot, key=str)),
            e.knot_cycle_density,
            e.density_saturated,
            tuple(sorted(e.dependent)),
            tuple(sorted(e.transient_dependent)),
        )
        for e in events
    ]


def _first_diff(a: dict, b: dict) -> str:
    """Name and abbreviate the first differing field of two field dicts."""
    for key in a:
        if a[key] != b[key]:
            va, vb = repr(a[key]), repr(b[key])
            if len(va) > 120:
                va = va[:120] + "..."
            if len(vb) > 120:
                vb = vb[:120] + "..."
            return f"field {key!r}: {va} != {vb}"
    return "fingerprints differ"


# -- the three axes ------------------------------------------------------------------
def compare_engine(config: SimulationConfig) -> Optional[str]:
    """Fast-path vs legacy engine; None when bit-identical."""
    outcomes = {}
    for fast in (True, False):
        sim = NetworkSimulator(config.replace(engine_fast_path=fast))
        result = sim.run()
        outcomes[fast] = (
            _result_fingerprint(result),
            _event_fingerprint(sim.detector.events),
        )
    if outcomes[True] == outcomes[False]:
        return None
    fast_res, fast_ev = outcomes[True]
    legacy_res, legacy_ev = outcomes[False]
    if fast_res != legacy_res:
        return f"engine fast path diverges: {_first_diff(fast_res, legacy_res)}"
    return (
        f"engine fast path deadlock events diverge: "
        f"{len(fast_ev)} fast vs {len(legacy_ev)} legacy events"
    )


def compare_vectorized(config: SimulationConfig) -> Optional[str]:
    """SoA vectorized engine vs the legacy engine; None when bit-identical.

    Legacy — not the fast path — is the reference: the vectorized core
    inherits the fast path's activity flags, so comparing against legacy
    keeps the implementations maximally independent (and a fault injected
    into the shared fast-path bookkeeping still diverges here).
    """
    outcomes = {}
    for flags in (
        dict(engine_fast_path=True, engine_vectorized=True),
        dict(engine_fast_path=False, engine_vectorized=False),
    ):
        sim = NetworkSimulator(config.replace(**flags))
        result = sim.run()
        outcomes[flags["engine_vectorized"]] = (
            _result_fingerprint(result),
            _event_fingerprint(sim.detector.events),
        )
    if outcomes[True] == outcomes[False]:
        return None
    vec_res, vec_ev = outcomes[True]
    legacy_res, legacy_ev = outcomes[False]
    if vec_res != legacy_res:
        return (
            f"vectorized engine diverges: {_first_diff(vec_res, legacy_res)}"
        )
    return (
        f"vectorized engine deadlock events diverge: "
        f"{len(vec_ev)} vectorized vs {len(legacy_ev)} legacy events"
    )


def compare_kernels(config: SimulationConfig) -> Optional[str]:
    """Batched kernel engine vs the vectorized core; None when bit-identical.

    The vectorized engine — not legacy — is the reference: the kernel tier
    stacks on top of the SoA core, and comparing one tier down isolates
    exactly what the kernels change (batch generate / allocate / move,
    inline RNG replay, maintained quiescence flags) from everything the
    vectorized axis already covers.  Legacy coverage is transitive:
    vectorized ≡ legacy is checked by :func:`compare_vectorized`.
    """
    outcomes = {}
    for kernels in (True, False):
        sim = NetworkSimulator(
            config.replace(
                engine_fast_path=True,
                engine_vectorized=True,
                engine_kernels=kernels,
            )
        )
        result = sim.run()
        outcomes[kernels] = (
            _result_fingerprint(result),
            _event_fingerprint(sim.detector.events),
        )
    if outcomes[True] == outcomes[False]:
        return None
    kern_res, kern_ev = outcomes[True]
    vec_res, vec_ev = outcomes[False]
    if kern_res != vec_res:
        return f"kernel engine diverges: {_first_diff(kern_res, vec_res)}"
    return (
        f"kernel engine deadlock events diverge: "
        f"{len(kern_ev)} kernels vs {len(vec_ev)} vectorized events"
    )


def compare_detector(config: SimulationConfig) -> Optional[str]:
    """Cached vs uncached detector (incremental maintenance forced)."""
    base = config.replace(cwg_maintenance="incremental")
    sims = {}
    for cached in (True, False):
        sim = NetworkSimulator(base.replace(detector_caching=cached))
        sim.run()
        sims[cached] = sim
    rec_c, rec_u = sims[True].detector.records, sims[False].detector.records
    if rec_c == rec_u and sims[True].detector.events == sims[False].detector.events:
        return None
    if len(rec_c) != len(rec_u):
        return (
            f"detector caching diverges: {len(rec_c)} cached vs "
            f"{len(rec_u)} uncached detection records"
        )
    for i, (a, b) in enumerate(zip(rec_c, rec_u)):
        if a != b:
            return (
                f"detector caching diverges at record {i} "
                f"(cycle {a.cycle}): {_first_diff(dataclasses.asdict(a), dataclasses.asdict(b))}"
            )
    return "detector caching diverges in the flat event list"


def compare_cwg(config: SimulationConfig) -> Optional[str]:
    """Incrementally-maintained CWG vs from-scratch rebuild, per detection."""
    cfg = config.replace(cwg_maintenance="incremental")
    sim = NetworkSimulator(cfg)
    total = cfg.warmup_cycles + cfg.measure_cycles
    interval = cfg.detection_interval
    while sim.cycle < total:
        sim.step()
        if sim.cycle % interval == 0:
            try:
                sim.tracker.assert_matches(DeadlockDetector.build_cwg(sim))
            except SimulationError as exc:
                return f"incremental CWG diverges at cycle {sim.cycle}: {exc}"
    return None


_AXIS_CHECKS: dict[str, Callable[[SimulationConfig], Optional[str]]] = {
    "engine": compare_engine,
    "vectorized": compare_vectorized,
    "kernels": compare_kernels,
    "detector": compare_detector,
    "cwg": compare_cwg,
}


def check_config(
    config: SimulationConfig, axes: Sequence[str] = AXES
) -> list[FuzzMismatch]:
    """Cross-check one configuration on the given axes."""
    mismatches = []
    for axis in axes:
        detail = _AXIS_CHECKS[axis](config)
        if detail is not None:
            mismatches.append(FuzzMismatch(axis, config, detail))
    return mismatches


# -- shrinking -----------------------------------------------------------------------
#: reduction candidates per field, tried in order, most-simplifying first
_REDUCTIONS: list[tuple[str, list]] = [
    ("measure_cycles", [150, 300]),
    ("n", [1]),
    ("k", [3, 4]),
    ("routing", ["dor", "tfar"]),
    ("num_vcs", [1, 2]),
    ("buffer_depth", [1, 2]),
    ("message_length", [2, 4]),
    ("traffic", ["uniform"]),
    ("mesh", [False]),
    ("bidirectional", [True]),
    ("detection_mode", ["knot"]),
    ("recovery", ["disha"]),
    ("recovery_teardown", ["instant"]),
    ("arbitration", ["random"]),
    ("selection", ["straight"]),
    ("router_delay", [0]),
    ("rx_channels", [1]),
    ("record_blocked_durations", [False]),
    ("detection_interval", [25]),
    ("load", [1.0]),
]


def shrink_config(
    config: SimulationConfig,
    axis: str,
    max_checks: int = 200,
) -> tuple[SimulationConfig, str]:
    """Greedily minimize a mismatching configuration.

    Repeatedly tries the per-field reductions, keeping any replacement
    under which the axis still mismatches, until a full pass accepts
    nothing (a local minimum) or ``max_checks`` re-checks were spent.
    Returns the minimized config and its mismatch detail.  The input must
    actually mismatch on ``axis``.
    """
    check = _AXIS_CHECKS[axis]
    detail = check(config)
    if detail is None:
        raise ValueError("shrink_config called on a non-mismatching config")
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for field_name, candidates in _REDUCTIONS:
            current = getattr(config, field_name)
            for value in candidates:
                if value == current or checks >= max_checks:
                    continue
                candidate = config.replace(**{field_name: value})
                try:
                    candidate.validate()
                    new_detail = check(candidate)
                except SimulationError:
                    # includes RoutingError/ConfigurationError: the reduced
                    # combination is invalid — not a divergence
                    continue
                except ValueError:
                    continue
                finally:
                    checks += 1
                if new_detail is not None:
                    config, detail = candidate, new_detail
                    improved = True
                    break
    return config, detail


# -- artifacts -----------------------------------------------------------------------
def dump_artifact(mismatch: FuzzMismatch, path: Path | str) -> Path:
    """Write a replayable JSON artifact for a mismatch."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "axis": mismatch.axis,
        "detail": mismatch.detail,
        "config": dataclasses.asdict(mismatch.config),
        "replay": "python scripts/fuzz_differential.py --replay "
        + path.name,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: Path | str) -> tuple[str, SimulationConfig]:
    """Load an artifact back into (axis, config) for replay."""
    payload = json.loads(Path(path).read_text())
    fields = dict(payload["config"])
    # JSON turns tuples into lists; restore the tuple-typed fields
    fields["failed_links"] = tuple(
        tuple(pair) for pair in fields.get("failed_links", ())
    )
    fields["length_mix"] = tuple(
        (int(l), float(w)) for l, w in fields.get("length_mix", ())
    )
    fields["traffic_mix"] = tuple(
        (str(p), float(w)) for p, w in fields.get("traffic_mix", ())
    )
    fields["dims"] = tuple(int(d) for d in fields.get("dims", ()))
    fields["link_latencies"] = tuple(
        int(l) for l in fields.get("link_latencies", ())
    )
    return payload["axis"], SimulationConfig(**fields)


# -- driving -------------------------------------------------------------------------
def run_fuzz(
    num_configs: int,
    seed: int,
    axes: Sequence[str] = AXES,
    shrink: bool = True,
    time_budget: Optional[float] = None,
    log: Optional[Callable[[str], None]] = None,
) -> tuple[list[FuzzMismatch], int]:
    """Fuzz ``num_configs`` seeded random configurations.

    Returns ``(mismatches, configs_checked)``.  Deterministic given
    ``seed`` — the same seed draws the same configurations in the same
    order.  ``time_budget`` (seconds) is a safety stop for CI: checking
    halts after the config that exceeds it, which trades config *count*
    (reported, never silent) for bounded wall-clock.
    """
    rng = random.Random(seed)
    started = time.monotonic()
    mismatches: list[FuzzMismatch] = []
    checked = 0
    for i in range(num_configs):
        config = random_config(rng)
        if log:
            log(f"[{i + 1}/{num_configs}] {config.label()} seed={config.seed}")
        for axis in axes:
            detail = _AXIS_CHECKS[axis](config)
            if detail is None:
                continue
            if log:
                log(f"  MISMATCH on {axis}: {detail}")
            if shrink:
                small, small_detail = shrink_config(config, axis)
                if log:
                    log(f"  shrunk to: {small.label()} ({small_detail})")
                mismatches.append(FuzzMismatch(axis, small, small_detail))
            else:
                mismatches.append(FuzzMismatch(axis, config, detail))
        checked += 1
        if time_budget is not None and time.monotonic() - started > time_budget:
            if log and checked < num_configs:
                log(
                    f"time budget {time_budget:.0f}s exhausted after "
                    f"{checked}/{num_configs} configs"
                )
            break
    return mismatches, checked
