"""ASCII visualization of live network state and detected deadlocks.

For 2-D networks (the paper's primary subject) these renderers draw the
router grid with per-node congestion, mark blocked headers, and highlight
the channels of a detected knot — making the anatomy of a deadlock (which
the paper illustrates with hand-drawn Figures 1-4) visible for *live*
simulations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.network.topology import KAryNCube

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.detector import DeadlockEvent
    from repro.network.simulator import NetworkSimulator

__all__ = ["render_occupancy", "render_knot", "describe_event"]


def _require_2d(sim: "NetworkSimulator") -> KAryNCube:
    topo = sim.topology
    if not isinstance(topo, KAryNCube) or topo.n != 2:
        raise ConfigurationError("network views require a 2-D k-ary n-cube")
    return topo


def render_occupancy(sim: "NetworkSimulator") -> str:
    """The router grid with buffered-flit counts and blocked-header marks.

    Each cell shows the total flits buffered at the node's input VCs; a
    ``*`` suffix marks nodes where at least one header is blocked.  Row 0
    is printed at the bottom so coordinates read like axes.
    """
    topo = _require_2d(sim)
    flits = [0] * topo.num_nodes
    for vc in sim.pool.vcs:
        flits[vc.dst] += vc.occupancy
    blocked_at = {m.head_node for m in sim.blocked_messages()}
    width = max(3, len(str(max(flits, default=0))) + 1)
    lines = [
        f"cycle {sim.cycle}: {sim.messages_in_network} msgs in flight, "
        f"{len(blocked_at)} nodes with blocked headers"
    ]
    for y in reversed(range(topo.k)):
        row = []
        for x in range(topo.k):
            node = topo.node_at((x, y))
            mark = "*" if node in blocked_at else " "
            row.append(f"{flits[node]}{mark}".rjust(width))
        lines.append(f"y={y:<2} " + " ".join(row))
    lines.append("     " + " ".join(f"x={x}".rjust(width) for x in range(topo.k)))
    return "\n".join(lines)


def render_knot(sim: "NetworkSimulator", event: "DeadlockEvent") -> str:
    """The router grid with the knot's channels drawn as directed marks.

    Nodes whose in- or outgoing channels participate in the knot are
    boxed; the legend lists the deadlock set.
    """
    topo = _require_2d(sim)
    knot_nodes: set[int] = set()
    for v in event.knot:
        if isinstance(v, int):
            vc = sim.pool.vcs[v]
            knot_nodes.add(vc.src)
            knot_nodes.add(vc.dst)
    lines = [
        f"deadlock at cycle {event.cycle}: knot of {len(event.knot)} channels "
        f"across {len(knot_nodes)} routers ({event.classification}, "
        f"density {event.knot_cycle_density})"
    ]
    for y in reversed(range(topo.k)):
        row = []
        for x in range(topo.k):
            node = topo.node_at((x, y))
            row.append("[#]" if node in knot_nodes else " . ")
        lines.append(f"y={y:<2} " + "".join(row))
    lines.append("     " + "".join(f" x{x} "[:3] for x in range(topo.k)))
    lines.append(
        f"deadlock set: messages {sorted(event.deadlock_set)}; "
        f"resource set {event.resource_set_size} channels"
    )
    return "\n".join(lines)


def describe_event(event: "DeadlockEvent") -> str:
    """A multi-line anatomy of one detected deadlock."""
    lines = [
        f"deadlock @ cycle {event.cycle} ({event.classification})",
        f"  knot               : {len(event.knot)} channels",
        f"  deadlock set       : {sorted(event.deadlock_set)}",
        f"  resource set       : {event.resource_set_size} channels",
        f"  knot cycle density : {event.knot_cycle_density}"
        + (" (capped)" if event.density_saturated else ""),
    ]
    if event.dependent:
        lines.append(f"  dependent messages : {sorted(event.dependent)}")
    if event.transient_dependent:
        lines.append(
            f"  transient deps     : {sorted(event.transient_dependent)}"
        )
    return "\n".join(lines)
