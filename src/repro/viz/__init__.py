"""ASCII visualization of live network state and deadlock anatomy."""

from repro.viz.netview import describe_event, render_knot, render_occupancy

__all__ = ["render_occupancy", "render_knot", "describe_event"]
