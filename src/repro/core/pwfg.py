"""Packet (message) wait-for graphs and the connectivity premise.

Section 2.3 of the paper contrasts its channel-level analysis with the
message-level **packet wait-for graph** of Dally & Aoki: vertices are
*messages*, with an arc ``a -> b`` when blocked message ``a`` waits on a
channel owned by ``b``.  Avoidance schemes that forbid cycles in this graph
are *overly restrictive*: Figure 4's cyclic non-deadlock has packet
wait-for cycles yet no deadlock, because a cycle of packet waits does not
imply that every routing *alternative* is exhausted.

This module derives the PWFG from a CWG, detects its cycles/knots, and
provides :func:`is_connected_routing` — a checker for the premise under
which the CWG-knot criterion is exact (the routing relation must supply at
least one candidate at every non-destination (node, destination) state).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.cwg import ChannelWaitForGraph
from repro.core.cycles import CycleCount, count_simple_cycles
from repro.core.knots import find_knots
from repro.errors import RoutingError
from repro.network.channels import ChannelPool
from repro.network.message import Message
from repro.network.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.routing.base import RoutingFunction

__all__ = [
    "packet_wait_for_graph",
    "pwfg_cycle_count",
    "pwfg_knots",
    "is_connected_routing",
]


def packet_wait_for_graph(cwg: ChannelWaitForGraph) -> dict[int, list[int]]:
    """The message-level wait-for graph induced by a CWG snapshot.

    An arc ``a -> b`` is added for every resource ``a`` waits on that ``b``
    currently owns.  Messages owning resources but waiting on nothing (the
    m2/m4 of Figure 1) appear as arcless vertices.
    """
    adj: dict[int, list[int]] = {m: [] for m in cwg.chains}
    for requester, targets in cwg.requests.items():
        for t in targets:
            owner = cwg.owner.get(t)
            if owner is not None and owner != requester:
                if owner not in adj[requester]:
                    adj[requester].append(owner)
    return adj


def pwfg_cycle_count(
    cwg: ChannelWaitForGraph, limit: int = 10_000
) -> CycleCount:
    """Simple cycles of the packet wait-for graph (capped)."""
    return count_simple_cycles(packet_wait_for_graph(cwg), limit=limit)


def pwfg_knots(cwg: ChannelWaitForGraph) -> list[frozenset[int]]:
    """Knots of the packet wait-for graph.

    Note: a PWFG knot is *still* not equivalent to deadlock in general —
    the exact criterion lives at channel granularity — but comparing the
    two graphs' verdicts on the same snapshot quantifies how conservative
    message-level reasoning is.
    """
    return find_knots(packet_wait_for_graph(cwg))


def is_connected_routing(
    routing: "RoutingFunction",
    topology: Topology,
    pool: ChannelPool,
) -> bool:
    """Verify the connectivity premise of the knot criterion.

    For every ordered (node, destination) pair with ``node != destination``
    the relation must supply at least one candidate VC whose link makes
    progress possible (the CWG-knot equivalence assumes blocked messages
    always have *some* requestable resource).  Routing functions in this
    package raise :class:`~repro.errors.RoutingError` on empty candidate
    sets, so this checker doubles as an exhaustive probe of that guard.
    """
    probe = Message(0, 0, 1, 2, 0)
    for src in range(topology.num_nodes):
        for dest in range(topology.num_nodes):
            if src == dest:
                continue
            probe.src, probe.dest = src, dest
            # check every node reachable on *some* minimal path
            frontier = {src}
            seen = set()
            while frontier:
                node = frontier.pop()
                if node == dest or node in seen:
                    continue
                seen.add(node)
                try:
                    candidates = routing.candidates(probe, node, topology, pool)
                except RoutingError:
                    return False
                if not candidates:
                    return False
                frontier.update(vc.dst for vc in candidates)
    return True
