"""Channel wait-for graphs (CWGs).

The paper's central modelling device (Section 2.1): a snapshot of the
network's *dynamic* resource state at one instant.

* **Vertices** are virtual channels (plus reception channels, which messages
  can also wait on).
* **Solid arcs** chain the VCs a message currently owns, in the temporal
  order they were acquired; every solid arc is labelled with its owner.
* **Dashed arcs** connect a blocked message's most recently acquired VC to
  every VC its routing function supplies at the blocked header's node — the
  alternatives it is waiting for.

Unlike the channel *dependency* graphs of avoidance theory, which encode the
static relation a routing algorithm permits, a CWG reflects the allocations
and requests that exist right now, so the CWG of an entire network need not
be connected.

This class is deliberately decoupled from the simulator: tests build CWGs
directly from the paper's Figures 1–4, and the detector builds them from
live network state.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from repro.errors import SimulationError

__all__ = ["WaitGraphQueries", "ChannelWaitForGraph"]

Vertex = Hashable


class WaitGraphQueries:
    """Read-only wait-graph queries shared by snapshot and live graphs.

    Everything here is defined purely in terms of the ``owner`` /
    ``chains`` / ``requests`` mappings, so :class:`ChannelWaitForGraph`
    (an immutable snapshot) and
    :class:`~repro.core.incremental.IncrementalCWG` (the event-maintained
    live state) answer them identically — which is what lets the detector
    query the live tracker directly instead of materializing a snapshot.
    """

    owner: Mapping[Vertex, int | None]
    #: any ordered, sized, iterable chain works — the snapshot stores lists,
    #: the live tracker deques (O(1) head pops on release)
    chains: Mapping[int, Sequence[Vertex]]
    requests: Mapping[int, Sequence[Vertex]]

    @property
    def num_arcs(self) -> int:
        solid = sum(len(c) - 1 for c in self.chains.values())
        dashed = sum(len(t) for t in self.requests.values())
        return solid + dashed

    def blocked_messages(self) -> list[int]:
        """Messages with outstanding dashed arcs."""
        return list(self.requests)

    def fan_out(self, message: int) -> int:
        """Number of alternatives a blocked message waits on (dashed arcs).

        The paper observes that vertex fan-out — set by routing adaptivity
        and the VC count — governs how many unique cycles can form.
        """
        return len(self.requests.get(message, ()))

    def messages_owning(self, vertices: Iterable[Vertex]) -> set[int]:
        """Distinct owners of the given vertices (ignoring free vertices)."""
        out = set()
        for v in vertices:
            o = self.owner.get(v)
            if o is not None:
                out.add(o)
        return out

    def resources_of(self, messages: Iterable[int]) -> set[Vertex]:
        """Every vertex owned by any of the given messages."""
        out: set[Vertex] = set()
        for m in messages:
            out.update(self.chains.get(m, ()))
        return out


class ChannelWaitForGraph(WaitGraphQueries):
    """A snapshot wait-for graph over channel resources."""

    def __init__(self) -> None:
        #: vertex -> owning message id (None for free/virtual vertices)
        self.owner: dict[Vertex, int | None] = {}
        #: message id -> its owned chain, tail-to-head acquisition order
        self.chains: dict[int, list[Vertex]] = {}
        #: message id -> vertices it is waiting for (dashed arc targets)
        self.requests: dict[int, list[Vertex]] = {}
        #: message id -> source vertex of its dashed arcs (its newest VC)
        self.request_from: dict[int, Vertex] = {}

    # -- construction ---------------------------------------------------------------
    def add_vertex(self, vertex: Vertex, owner: int | None = None) -> None:
        """Register a vertex, optionally with an owner but no chain arcs."""
        if vertex in self.owner and self.owner[vertex] is not None:
            if owner is not None and self.owner[vertex] != owner:
                raise SimulationError(
                    f"vertex {vertex!r} already owned by {self.owner[vertex]}"
                )
            return
        self.owner[vertex] = owner

    def add_ownership_chain(self, message: int, chain: Iterable[Vertex]) -> None:
        """Record the solid-arc chain of ``message`` (acquisition order)."""
        chain = list(chain)
        if message in self.chains:
            raise SimulationError(f"message {message} already has a chain")
        if not chain:
            raise SimulationError(f"empty ownership chain for message {message}")
        for v in chain:
            prior = self.owner.get(v)
            if prior is not None and prior != message:
                raise SimulationError(
                    f"vertex {v!r} owned by both {prior} and {message}: "
                    "exclusive ownership violated"
                )
            self.owner[v] = message
        self.chains[message] = chain

    def add_request(self, message: int, targets: Iterable[Vertex]) -> None:
        """Record the dashed arcs of blocked ``message``.

        The arcs originate at the message's most recently acquired vertex,
        so the message must already have an ownership chain.
        """
        targets = list(targets)
        if message not in self.chains:
            raise SimulationError(
                f"blocked message {message} owns no resources; requests from "
                "source-queued messages are not part of the CWG"
            )
        if message in self.requests:
            raise SimulationError(f"message {message} already has requests")
        if not targets:
            raise SimulationError(f"blocked message {message} waits on nothing")
        for t in targets:
            self.owner.setdefault(t, None)
        self.requests[message] = targets
        self.request_from[message] = self.chains[message][-1]

    # -- queries ----------------------------------------------------------------------
    @property
    def vertices(self) -> list[Vertex]:
        return list(self.owner)

    @property
    def num_vertices(self) -> int:
        return len(self.owner)

    def adjacency(self) -> dict[Vertex, list[Vertex]]:
        """Successor lists combining solid and dashed arcs."""
        adj: dict[Vertex, list[Vertex]] = {v: [] for v in self.owner}
        for chain in self.chains.values():
            for u, v in zip(chain, chain[1:]):
                adj[u].append(v)
        for message, targets in self.requests.items():
            src = self.request_from[message]
            adj[src].extend(targets)
        return adj

    def solid_arcs(self) -> list[tuple[Vertex, Vertex, int]]:
        """(u, v, owner) triples for every solid arc."""
        out = []
        for message, chain in self.chains.items():
            out.extend((u, v, message) for u, v in zip(chain, chain[1:]))
        return out

    def dashed_arcs(self) -> list[tuple[Vertex, Vertex, int]]:
        """(u, v, requester) triples for every dashed arc."""
        out = []
        for message, targets in self.requests.items():
            src = self.request_from[message]
            out.extend((src, t, message) for t in targets)
        return out

    def to_dot(self) -> str:
        """Graphviz rendering (solid vs dashed arcs), for documentation."""
        lines = ["digraph CWG {", "  rankdir=LR;"]
        for v, o in self.owner.items():
            label = f"{v}" + (f"\\n(m{o})" if o is not None else "")
            lines.append(f'  "{v}" [label="{label}"];')
        for u, v, m in self.solid_arcs():
            lines.append(f'  "{u}" -> "{v}" [label="m{m}"];')
        for u, v, m in self.dashed_arcs():
            lines.append(f'  "{u}" -> "{v}" [style=dashed, label="m{m}"];')
        lines.append("}")
        return "\n".join(lines)
