"""Bounded enumeration of simple cycles (resource-dependency cycles).

The paper uses the number of resource-dependency cycles in the CWG as a
leading indicator of deadlock risk ("when no deadlocks exist, we instead use
the total number of resource dependency cycles formed ... to represent the
conditions that could lead to deadlock"), and *knot cycle density* — the
number of unique cycles inside a knot — to describe deadlock complexity.

Cycle counts explode at saturation (the paper reports hundreds of thousands
of cycles even without deadlock), so enumeration is capped: the result
carries a ``saturated`` flag when the cap was hit, mirroring the paper's own
practice of running "until the network saturates with respect to the number
of resource dependency cycles".

The algorithm is Johnson's (1975) simple-cycle enumeration restricted to
nontrivial SCCs, O((V + E)(C + 1)) for C cycles, in an iterative form: the
recursion of the textbook presentation is replaced by an explicit frame
stack, so censusing a whole-network knot can never overflow the Python
stack and ``sys.setrecursionlimit`` is never touched.

Because a found ``CycleCount`` is ``(min(true_total, limit),
true_total >= limit)`` regardless of the order cycles are discovered in
(each found cycle decrements the budget by exactly one and enumeration
stops the instant it empties), bounded counts compose: counting a graph's
weakly-connected regions independently, each with the full budget, and
summing yields the exact same ``CycleCount`` as one global enumeration.
The dirty-region detector relies on this to merge cached per-region
censuses.

For the detector's cached path, :func:`contract_graph` collapses
*pass-through* vertices — in-degree 1, out-degree 1, no self-loop — into
multigraph arcs between the remaining branch vertices.  A CWG is mostly
unbranched ownership chains, so this shrinks the graph several-fold while
preserving the simple-cycle count exactly: every original simple cycle
corresponds 1:1 to either a contracted-multigraph cycle (parallel arcs
counting separately) or a *ring* of pure pass-through vertices.
:func:`count_cycles_contracted` exploits that for an identical-but-faster
census.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

from repro.core.knots import strongly_connected_components

__all__ = [
    "CycleCount",
    "count_simple_cycles",
    "enumerate_simple_cycles",
    "ContractedGraph",
    "contract_graph",
    "count_cycles_contracted",
]

Vertex = Hashable


@dataclass(frozen=True)
class CycleCount:
    """Result of a bounded cycle enumeration."""

    count: int
    saturated: bool  #: True when the cap stopped enumeration early

    def __int__(self) -> int:
        return self.count


class _Budget:
    __slots__ = ("left",)

    def __init__(self, limit: int) -> None:
        self.left = limit


def _johnson_scc(
    adj: Mapping[int, Sequence[int]],
    vertices: list[int],
    budget: _Budget,
    collect: list[list[int]] | None,
) -> int:
    """Count simple cycles within one SCC (vertices already pre-restricted).

    Iterative Johnson: each explicit frame is ``[vertex, successor index,
    found-a-cycle flag]``, mirroring the recursive formulation exactly —
    the enumeration order (and therefore any ``collect`` output and any
    budget-capped count) is identical to the recursive algorithm's.

    ``adj`` may be a multigraph (duplicate successors): parallel arcs into
    the start vertex each close a distinct cycle, and parallel arcs
    elsewhere re-explore their target, which is exactly the per-arc cycle
    multiplicity the contraction path needs.
    """
    vset = set(vertices)
    order = {v: i for i, v in enumerate(sorted(vertices))}
    count = 0

    # Johnson processes each vertex s in turn, finding cycles whose minimum
    # vertex (by ``order``) is s, within the subgraph of vertices >= s.
    for s in sorted(vertices, key=order.__getitem__):
        if budget.left <= 0:
            break
        allowed = {v for v in vset if order[v] >= order[s]}
        blocked: set[int] = set()
        blist: dict[int, set[int]] = {v: set() for v in allowed}
        path: list[int] = [s]
        blocked.add(s)
        stack: list[list] = [[s, 0, False]]

        while stack:
            frame = stack[-1]
            v = frame[0]
            succs = adj.get(v, ())
            descended = False
            while frame[1] < len(succs):
                w = succs[frame[1]]
                frame[1] += 1
                if w not in allowed or w == v:
                    continue  # self-loops are counted separately
                if w == s:
                    count += 1
                    budget.left -= 1
                    if collect is not None:
                        collect.append(list(path))
                    frame[2] = True
                    if budget.left <= 0:
                        return count  # cap hit: abandon all bookkeeping
                elif w not in blocked:
                    stack.append([w, 0, False])
                    path.append(w)
                    blocked.add(w)
                    descended = True
                    break
            if descended:
                continue
            # Frame exhausted: retire it, propagating the found flag.
            if frame[2]:
                unstack = [v]
                while unstack:
                    u = unstack.pop()
                    if u in blocked:
                        blocked.discard(u)
                        unstack.extend(blist[u])
                        blist[u].clear()
            else:
                for w in succs:
                    if w in allowed:
                        blist[w].add(v)
            path.pop()
            stack.pop()
            if stack and frame[2]:
                stack[-1][2] = True
        vset.discard(s)
    return count


def _count(
    adjacency: Mapping[Vertex, Sequence[Vertex]],
    limit: int,
    collect: list[list[Vertex]] | None,
    self_loop_multiplicity: bool = False,
) -> CycleCount:
    """Bounded cycle count.

    ``self_loop_multiplicity`` selects multigraph semantics for self-loops
    (each parallel self-loop arc is a distinct cycle); the default treats a
    self-loop as a single 1-cycle, which is the right reading for the
    simple-digraph adjacency a CWG produces.  Non-self parallel arcs are
    handled per-arc by :func:`_johnson_scc` in both modes.
    """
    # Map vertices to dense ints for speed and a stable vertex order.
    ids = {v: i for i, v in enumerate(adjacency)}
    for succs in adjacency.values():
        for w in succs:
            if w not in ids:
                ids[w] = len(ids)
    rev = {i: v for v, i in ids.items()}
    adj: dict[int, list[int]] = {
        ids[v]: [ids[w] for w in succs] for v, succs in adjacency.items()
    }

    budget = _Budget(limit)
    total = 0
    # Self-loops are 1-cycles; Johnson below handles cycles of length >= 2.
    for v, succs in adj.items():
        if budget.left <= 0:
            break
        if v in succs:
            loops = succs.count(v) if self_loop_multiplicity else 1
            take = min(loops, budget.left)
            total += take
            budget.left -= take
            if collect is not None:
                collect.extend([rev[v]] for _ in range(take))

    for comp in strongly_connected_components(adj):
        if len(comp) < 2:
            continue
        if budget.left <= 0:
            break
        raw: list[list[int]] | None = [] if collect is not None else None
        total += _johnson_scc(adj, comp, budget, raw)
        if collect is not None and raw:
            collect.extend([[rev[u] for u in cyc] for cyc in raw])
    return CycleCount(count=total, saturated=budget.left <= 0)


def count_simple_cycles(
    adjacency: Mapping[Vertex, Sequence[Vertex]], limit: int = 100_000
) -> CycleCount:
    """Number of distinct simple cycles, capped at ``limit``."""
    if limit < 1:
        return CycleCount(0, True)
    return _count(adjacency, limit, None)


def enumerate_simple_cycles(
    adjacency: Mapping[Vertex, Sequence[Vertex]], limit: int = 10_000
) -> tuple[list[list[Vertex]], bool]:
    """The cycles themselves (as vertex lists) plus a saturation flag."""
    out: list[list[Vertex]] = []
    result = _count(adjacency, limit, out)
    return out, result.saturated


# -- chain contraction ---------------------------------------------------------------


@dataclass
class ContractedGraph:
    """A CWG adjacency with pass-through chain vertices contracted away.

    ``succ``/``paths`` are parallel: ``paths[v][i]`` holds the original
    pass-through vertices collapsed into the contracted arc
    ``v -> succ[v][i]``, in traversal order.  ``rings`` are the simple
    cycles made *entirely* of pass-through vertices — each is exactly one
    original cycle (and, being a sink SCC with arcs, a knot on its own).
    """

    succ: dict[Vertex, list[Vertex]] = field(default_factory=dict)
    paths: dict[Vertex, list[tuple[Vertex, ...]]] = field(default_factory=dict)
    rings: list[list[Vertex]] = field(default_factory=list)

    @property
    def num_kept(self) -> int:
        return len(self.succ)


def contract_graph(
    adjacency: Mapping[Vertex, Sequence[Vertex]],
) -> ContractedGraph:
    """Collapse in-degree-1/out-degree-1 pass-through vertices.

    Simple-cycle counts are invariant under the contraction: an original
    simple cycle maps 1:1 to a contracted-multigraph simple cycle (each
    parallel arc choice being a distinct original cycle) or to one entry of
    ``rings``.  SCC/knot structure over the kept vertices is likewise
    preserved — interior vertices have exactly one outgoing arc, so no
    escape path can originate inside a contracted arc.
    """
    indeg: dict[Vertex, int] = {v: 0 for v in adjacency}
    for succs in adjacency.values():
        for w in succs:
            indeg[w] = indeg.get(w, 0) + 1

    keep: set[Vertex] = set()
    for v in indeg:
        succs = adjacency.get(v, ())
        if len(succs) != 1 or indeg[v] != 1 or v in succs:
            keep.add(v)

    out = ContractedGraph()
    succ = out.succ
    paths = out.paths
    on_path: set[Vertex] = set()
    for v in adjacency:
        if v not in keep:
            continue
        sl: list[Vertex] = []
        pl: list[tuple[Vertex, ...]] = []
        for w in adjacency.get(v, ()):
            interior: list[Vertex] = []
            while w not in keep:
                interior.append(w)
                on_path.add(w)
                w = adjacency[w][0]
            sl.append(w)
            pl.append(tuple(interior))
        succ[v] = sl
        paths[v] = pl
    # Cycles made purely of pass-through vertices never touch a kept vertex
    # and are missed by the arc walk above: collect them as rings.
    for v in adjacency:
        if v in keep or v in on_path:
            continue
        ring = [v]
        on_path.add(v)
        u = adjacency[v][0]
        while u != v:
            ring.append(u)
            on_path.add(u)
            u = adjacency[u][0]
        out.rings.append(ring)
    return out


def count_cycles_contracted(
    contracted: ContractedGraph, limit: int
) -> CycleCount:
    """Bounded cycle count over a contracted graph.

    Produces the exact ``CycleCount`` that :func:`count_simple_cycles`
    returns on the uncontracted adjacency (counts are order-independent
    under the budget; see the module docstring).
    """
    if limit < 1:
        return CycleCount(0, True)
    rings = min(len(contracted.rings), limit)
    inner = _count(
        contracted.succ, limit - rings, None, self_loop_multiplicity=True
    )
    total = rings + inner.count
    return CycleCount(min(total, limit), total >= limit)
