"""Bounded enumeration of simple cycles (resource-dependency cycles).

The paper uses the number of resource-dependency cycles in the CWG as a
leading indicator of deadlock risk ("when no deadlocks exist, we instead use
the total number of resource dependency cycles formed ... to represent the
conditions that could lead to deadlock"), and *knot cycle density* — the
number of unique cycles inside a knot — to describe deadlock complexity.

Cycle counts explode at saturation (the paper reports hundreds of thousands
of cycles even without deadlock), so enumeration is capped: the result
carries a ``saturated`` flag when the cap was hit, mirroring the paper's own
practice of running "until the network saturates with respect to the number
of resource dependency cycles".

The algorithm is Johnson's (1975) simple-cycle enumeration restricted to
nontrivial SCCs, O((V + E)(C + 1)) for C cycles.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.core.knots import strongly_connected_components

__all__ = ["CycleCount", "count_simple_cycles", "enumerate_simple_cycles"]

Vertex = Hashable


@dataclass(frozen=True)
class CycleCount:
    """Result of a bounded cycle enumeration."""

    count: int
    saturated: bool  #: True when the cap stopped enumeration early

    def __int__(self) -> int:
        return self.count


class _Budget:
    __slots__ = ("left",)

    def __init__(self, limit: int) -> None:
        self.left = limit


def _johnson_scc(
    adj: Mapping[int, Sequence[int]],
    vertices: list[int],
    budget: _Budget,
    collect: list[list[int]] | None,
) -> int:
    """Count simple cycles within one SCC (vertices already pre-restricted)."""
    vset = set(vertices)
    order = {v: i for i, v in enumerate(sorted(vertices))}
    count = 0

    # Johnson processes each vertex s in turn, finding cycles whose minimum
    # vertex (by ``order``) is s, within the subgraph of vertices >= s.
    for s in sorted(vertices, key=order.__getitem__):
        if budget.left <= 0:
            break
        allowed = {v for v in vset if order[v] >= order[s]}
        blocked: set[int] = set()
        blist: dict[int, set[int]] = {v: set() for v in allowed}
        path: list[int] = []

        def unblock(v: int) -> None:
            stack = [v]
            while stack:
                u = stack.pop()
                if u in blocked:
                    blocked.discard(u)
                    stack.extend(blist[u])
                    blist[u].clear()

        def circuit(v: int) -> bool:
            nonlocal count
            found = False
            path.append(v)
            blocked.add(v)
            for w in adj.get(v, ()):
                if w not in allowed or w == v:
                    continue  # self-loops are counted separately
                if w == s:
                    count += 1
                    budget.left -= 1
                    if collect is not None:
                        collect.append(list(path))
                    found = True
                    if budget.left <= 0:
                        path.pop()
                        return True
                elif w not in blocked:
                    if circuit(w):
                        found = True
                    if budget.left <= 0:
                        path.pop()
                        return True
            if found:
                unblock(v)
            else:
                for w in adj.get(v, ()):
                    if w in allowed:
                        blist[w].add(v)
            path.pop()
            return found

        circuit(s)
        vset.discard(s)
    return count


def _count(
    adjacency: Mapping[Vertex, Sequence[Vertex]],
    limit: int,
    collect: list[list[Vertex]] | None,
) -> CycleCount:
    # Map vertices to dense ints for speed and a stable vertex order.
    ids = {v: i for i, v in enumerate(adjacency)}
    for succs in adjacency.values():
        for w in succs:
            if w not in ids:
                ids[w] = len(ids)
    rev = {i: v for v, i in ids.items()}
    adj: dict[int, list[int]] = {
        ids[v]: [ids[w] for w in succs] for v, succs in adjacency.items()
    }

    budget = _Budget(limit)
    total = 0
    # Self-loops are 1-cycles; Johnson below handles cycles of length >= 2.
    for v, succs in adj.items():
        if budget.left <= 0:
            break
        if v in succs:
            total += 1
            budget.left -= 1
            if collect is not None:
                collect.append([rev[v]])

    old_limit = sys.getrecursionlimit()
    needed = len(ids) + 100
    if needed > old_limit:
        sys.setrecursionlimit(needed)
    try:
        for comp in strongly_connected_components(adj):
            if len(comp) < 2:
                continue
            if budget.left <= 0:
                break
            raw: list[list[int]] | None = [] if collect is not None else None
            total += _johnson_scc(adj, comp, budget, raw)
            if collect is not None and raw:
                collect.extend([[rev[u] for u in cyc] for cyc in raw])
    finally:
        if needed > old_limit:
            sys.setrecursionlimit(old_limit)
    return CycleCount(count=total, saturated=budget.left <= 0)


def count_simple_cycles(
    adjacency: Mapping[Vertex, Sequence[Vertex]], limit: int = 100_000
) -> CycleCount:
    """Number of distinct simple cycles, capped at ``limit``."""
    if limit < 1:
        return CycleCount(0, True)
    return _count(adjacency, limit, None)


def enumerate_simple_cycles(
    adjacency: Mapping[Vertex, Sequence[Vertex]], limit: int = 10_000
) -> tuple[list[list[Vertex]], bool]:
    """The cycles themselves (as vertex lists) plus a saturation flag."""
    out: list[list[Vertex]] = []
    result = _count(adjacency, limit, out)
    return out, result.saturated
