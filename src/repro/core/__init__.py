"""The paper's contribution: CWGs, knots, cycles, detection, recovery."""

from repro.core.cwg import ChannelWaitForGraph
from repro.core.incremental import IncrementalCWG
from repro.core.gallery import figure1_cwg, figure2_cwg, figure3_cwg, figure4_cwg
from repro.core.cycles import (
    ContractedGraph,
    CycleCount,
    contract_graph,
    count_cycles_contracted,
    count_simple_cycles,
    enumerate_simple_cycles,
)
from repro.core.detector import (
    DeadlockDetector,
    DeadlockEvent,
    DetectionRecord,
    classify_event,
)
from repro.core.knots import (
    find_knots,
    find_knots_contracted,
    knot_of_vertex,
    strongly_connected_components,
)
from repro.core.pwfg import (
    is_connected_routing,
    packet_wait_for_graph,
    pwfg_cycle_count,
    pwfg_knots,
)
from repro.core.recovery import (
    AbortAllRecovery,
    DishaRecovery,
    NoRecovery,
    RecoveryPolicy,
    make_recovery,
)

__all__ = [
    "ChannelWaitForGraph",
    "IncrementalCWG",
    "figure1_cwg",
    "figure2_cwg",
    "figure3_cwg",
    "figure4_cwg",
    "ContractedGraph",
    "CycleCount",
    "contract_graph",
    "count_cycles_contracted",
    "count_simple_cycles",
    "enumerate_simple_cycles",
    "DeadlockDetector",
    "DeadlockEvent",
    "DetectionRecord",
    "classify_event",
    "find_knots",
    "find_knots_contracted",
    "knot_of_vertex",
    "strongly_connected_components",
    "packet_wait_for_graph",
    "pwfg_cycle_count",
    "pwfg_knots",
    "is_connected_routing",
    "RecoveryPolicy",
    "DishaRecovery",
    "AbortAllRecovery",
    "NoRecovery",
    "make_recovery",
]
