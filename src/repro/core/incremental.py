"""Incrementally-maintained channel wait-for graphs.

The paper's detection procedure "involves **maintaining** a CWG, detecting
cycles within this graph, and identifying groups of cycles which form
knots" — i.e. the graph is updated as resource events happen, not rebuilt
from scratch at each invocation.  Rebuilding costs O(messages × chain
length) per detection; incremental maintenance costs O(1) amortized per
resource event and makes high-frequency detection cheap, which is what a
hardware detection mechanism would do.

:class:`IncrementalCWG` mirrors :class:`~repro.core.cwg.ChannelWaitForGraph`
state under five engine events:

* ``on_acquire(msg, vertex)``   — VC or reception channel acquired,
* ``on_release(msg, vertex)``   — tail drained past a VC,
* ``on_block(msg, targets)``    — a header's allocation attempt failed,
* ``on_unblock(msg)``           — the header acquired something / moved on,
* ``on_done(msg)``              — message delivered, recovered or aborted.

The engine drives these hooks when ``cwg_maintenance="incremental"``; the
equivalence of the maintained graph and the rebuild snapshot is asserted by
the test-suite over randomized runs, and the two share all downstream
analysis (knots, cycles, PWFG).

Dirty-vertex tracking
---------------------

On top of the mirrored graph state, every event records the vertices whose
ownership or adjacency it touched in ``dirty`` — the **dirty-vertex set**
the region-cached detector consumes (:meth:`consume_dirty`) to decide
which weakly-connected regions of the CWG must be re-analyzed.  The
contract backing that reuse: *if between two detection passes no vertex of
a weakly-connected region is marked dirty and the region's vertex set is
unchanged, then the region's internal arcs, ownership labels and request
sets are unchanged too*.  Every mutation marks at least the source vertex
of each added/removed arc (arc sources always lie inside the arc's weak
region) and every vertex whose owner changed; region merges and splits are
caught by the vertex-set comparison instead.  Re-blocking on an identical
target set is a graph no-op and deliberately marks nothing — under the
legacy engine path a blocked header re-requests every cycle, and those
repeats must not smear dirt across an otherwise quiescent region.

Ownership chains are :class:`collections.deque`\\ s: a tail release pops
from the left in O(1), where a list would shift the whole chain on every
tail movement (O(length) per release, paid once per flit at every hop).
The query surface is unchanged — chains iterate, index at ``[0]``/``[-1]``
and report ``len`` exactly as before.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable

from repro.core.cwg import ChannelWaitForGraph, WaitGraphQueries
from repro.errors import SimulationError
from repro.faults import active_faults

__all__ = ["IncrementalCWG"]

Vertex = Hashable


class IncrementalCWG(WaitGraphQueries):
    """Event-maintained wait-for graph state.

    Inherits the read-only queries of
    :class:`~repro.core.cwg.WaitGraphQueries`, so the detector can analyse
    the live tracker directly (vertex/arc counts, blocked set, ownership
    closure, adjacency) without materializing a snapshot first.
    """

    def __init__(self) -> None:
        self.chains: dict[int, deque[Vertex]] = {}
        self.requests: dict[int, list[Vertex]] = {}
        self.owner: dict[Vertex, int] = {}
        #: solid-arc successor per owned vertex: the next vertex along the
        #: owner's chain, or None at the chain head (the newest VC, whose
        #: outgoing arcs — if any — are the dashed ``requests``).  Maintained
        #: so per-vertex successor queries are O(1) without scanning chains;
        #: the incremental knot tracker's closure walks depend on it.
        self.next_in_chain: dict[Vertex, Vertex | None] = {}
        #: vertices whose ownership or adjacency changed since the last
        #: :meth:`consume_dirty` — the detector's region-invalidation feed.
        #: Bounded by the network's resource universe (vertices are reused
        #: across messages), so an unconsumed set cannot grow without limit.
        self.dirty: set[Vertex] = set()
        #: running dashed-arc total (sum of request-target list lengths),
        #: maintained by the block/unblock/acquire/done hooks so
        #: :attr:`num_arcs` is O(1) instead of re-summing every request
        #: list on each detection pass
        self._dashed_arcs = 0
        #: counters for introspection / benchmarks (see :meth:`stats`)
        self.events = 0
        self.dirty_consumed = 0  #: dirty vertices handed to the detector
        self.dirty_consumptions = 0  #: consume_dirty() calls
        # test-only fault injection (repro.faults): sampled once here so the
        # event hot path pays nothing when no fault is armed
        faults = active_faults()
        self._fault_skip_dirty_acquire = "skip-dirty-acquire" in faults
        self._fault_skip_dirty_block = "skip-dirty-block" in faults

    @property
    def num_arcs(self) -> int:
        """Arc count from maintained totals (O(1), queried every pass).

        Solid arcs are chain lengths minus one each — every owned vertex
        except each chain's head sources one — so the running dict sizes
        give the total without touching a single chain; dashed arcs come
        from the counter the block/unblock hooks maintain.
        """
        return len(self.owner) - len(self.chains) + self._dashed_arcs

    def consume_dirty(self) -> set[Vertex]:
        """Hand the accumulated dirty-vertex set over and start a fresh one."""
        out = self.dirty
        self.dirty = set()
        self.dirty_consumed += len(out)
        self.dirty_consumptions += 1
        return out

    def stats(self) -> dict[str, int]:
        """Dirty-vertex and event accounting (surfaced by :mod:`repro.obs`).

        ``events`` counts every maintenance hook call; ``dirty_consumed``
        totals the dirty vertices handed to the detector across
        ``dirty_consumptions`` passes — their ratio is the average
        churn a cached detection pass had to re-examine.
        """
        return {
            "events": self.events,
            "dirty_consumed": self.dirty_consumed,
            "dirty_consumptions": self.dirty_consumptions,
            "dirty_pending": len(self.dirty),
            "chains": len(self.chains),
            "owned_vertices": len(self.owner),
        }

    # -- event hooks ----------------------------------------------------------------
    def on_acquire(self, message: int, vertex: Vertex) -> None:
        self.events += 1
        holder = self.owner.get(vertex)
        if holder is not None:
            raise SimulationError(
                f"incremental CWG: {vertex!r} already owned by {holder}"
            )
        self.owner[vertex] = message
        chain = self.chains.get(message)
        if chain is None:
            self.chains[message] = deque((vertex,))
        else:
            # the old tail gains a solid arc (and sheds its dashed arcs)
            if not self._fault_skip_dirty_acquire:
                self.dirty.add(chain[-1])
            self.next_in_chain[chain[-1]] = vertex
            chain.append(vertex)
        self.next_in_chain[vertex] = None
        if not self._fault_skip_dirty_acquire:
            self.dirty.add(vertex)
        # acquiring anything ends the current blocked state
        prev = self.requests.pop(message, None)
        if prev is not None:
            self._dashed_arcs -= len(prev)

    def on_release(self, message: int, vertex: Vertex) -> None:
        self.events += 1
        chain = self.chains.get(message)
        if not chain or chain[0] != vertex:
            raise SimulationError(
                f"incremental CWG: message {message} releasing {vertex!r} "
                f"out of tail order (chain {list(chain) if chain else chain})"
            )
        chain.popleft()
        del self.owner[vertex]
        del self.next_in_chain[vertex]
        self.dirty.add(vertex)
        if chain:
            self.dirty.add(chain[0])
        else:
            del self.chains[message]

    def on_block(self, message: int, targets: Iterable[Vertex]) -> None:
        self.events += 1
        chain = self.chains.get(message)
        if chain is None:
            # a source-queued message owns nothing; its waits are not part
            # of the network's resource state
            return
        targets = list(targets)
        prev = self.requests.get(message)
        if prev == targets:
            return  # re-requesting the same set: the graph did not change
        self.requests[message] = targets
        self._dashed_arcs += len(targets) - (0 if prev is None else len(prev))
        if not self._fault_skip_dirty_block:
            self.dirty.add(chain[-1])

    def on_unblock(self, message: int) -> None:
        self.events += 1
        prev = self.requests.pop(message, None)
        if prev is not None:
            self._dashed_arcs -= len(prev)
            self.dirty.add(self.chains[message][-1])

    def on_done(self, message: int) -> None:
        self.events += 1
        chain = self.chains.pop(message, None)
        if chain is not None:
            for vertex in chain:
                del self.owner[vertex]
                del self.next_in_chain[vertex]
            self.dirty.update(chain)
        prev = self.requests.pop(message, None)
        if prev is not None:
            self._dashed_arcs -= len(prev)

    def successors(self, vertex: Vertex):
        """Out-neighbours of ``vertex``: its solid arc or its dashed arcs.

        An owned interior vertex has exactly one successor (the next vertex
        of its owner's chain); the chain head's successors are the owner's
        request targets, if it is blocked; a free vertex (a request target
        owned by nobody) has none.  Matches :meth:`adjacency` row for row —
        no vertex ever carries both solid and dashed out-arcs, because
        dashed arcs originate only at chain heads.
        """
        nxt = self.next_in_chain.get(vertex)
        if nxt is not None:
            return (nxt,)
        message = self.owner.get(vertex)
        if message is None:
            return ()
        return self.requests.get(message) or ()

    # -- views ------------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Vertex count of the equivalent snapshot graph.

        The snapshot registers request targets as (possibly free) vertices;
        the live ``owner`` map only holds owned ones, so free targets are
        counted separately here to keep the two views interchangeable.
        """
        extra = 0
        seen: set[Vertex] = set()
        for targets in self.requests.values():
            for t in targets:
                if t not in self.owner and t not in seen:
                    seen.add(t)
                    extra += 1
        return len(self.owner) + extra

    def snapshot(self) -> ChannelWaitForGraph:
        """An immutable :class:`ChannelWaitForGraph` of the current state."""
        g = ChannelWaitForGraph()
        for message, chain in self.chains.items():
            g.add_ownership_chain(message, list(chain))
        for message, targets in self.requests.items():
            if message in self.chains:
                g.add_request(message, list(targets))
        return g

    def adjacency(self) -> dict[Vertex, list[Vertex]]:
        """Successor lists, built directly (no snapshot materialization)."""
        adj: dict[Vertex, list[Vertex]] = {}
        for chain in self.chains.values():
            prev: Vertex | None = None
            for v in chain:
                adj.setdefault(v, [])
                if prev is not None:
                    adj[prev].append(v)
                prev = v
        for message, targets in self.requests.items():
            chain = self.chains.get(message)
            if not chain:
                continue
            src = chain[-1]
            for t in targets:
                adj.setdefault(t, [])
            adj[src].extend(targets)
        return adj

    def assert_consistent(self) -> None:
        """Internal cross-checks (used by tests)."""
        for message, chain in self.chains.items():
            if not chain:
                raise SimulationError(f"empty chain retained for {message}")
            for v in chain:
                if self.owner.get(v) != message:
                    raise SimulationError(
                        f"owner map disagrees with chain at {v!r}"
                    )
        for v, m in self.owner.items():
            if v not in self.chains.get(m, ()):
                raise SimulationError(f"orphan ownership {v!r} -> {m}")
        expected_next: dict[Vertex, Vertex | None] = {}
        for chain in self.chains.values():
            prev: Vertex | None = None
            for v in chain:
                if prev is not None:
                    expected_next[prev] = v
                prev = v
            if prev is not None:
                expected_next[prev] = None
        if self.next_in_chain != expected_next:
            diff = [
                v
                for v in set(self.next_in_chain) | set(expected_next)
                if self.next_in_chain.get(v, -1) != expected_next.get(v, -1)
            ]
            raise SimulationError(
                f"next_in_chain map diverges from chains at {diff[:5]}"
            )
        for m in self.requests:
            if m not in self.chains:
                raise SimulationError(f"requests retained for chainless {m}")

    def assert_matches(self, rebuilt: ChannelWaitForGraph) -> None:
        """The maintained graph must equal a from-scratch rebuild.

        Extends :meth:`assert_consistent` (which checks *internal* coherence
        of the mirrored state) with the external ground truth: chains,
        requests and non-free ownership must be identical to a
        :class:`ChannelWaitForGraph` rebuilt from the live network by
        :meth:`~repro.core.detector.DeadlockDetector.build_cwg`.  Raises
        :class:`~repro.errors.SimulationError` naming the first divergence.
        """
        self.assert_consistent()
        mine = {m: list(c) for m, c in self.chains.items()}
        theirs = dict(rebuilt.chains)
        if mine != theirs:
            diff = sorted(
                m
                for m in set(mine) | set(theirs)
                if mine.get(m) != theirs.get(m)
            )
            raise SimulationError(
                f"incremental CWG chains diverge from rebuild for messages "
                f"{diff[:5]}: maintained={[mine.get(m) for m in diff[:5]]} "
                f"rebuilt={[theirs.get(m) for m in diff[:5]]}"
            )
        my_req = {m: list(t) for m, t in self.requests.items()}
        their_req = dict(rebuilt.requests)
        if my_req != their_req:
            diff = sorted(
                m
                for m in set(my_req) | set(their_req)
                if my_req.get(m) != their_req.get(m)
            )
            raise SimulationError(
                f"incremental CWG requests diverge from rebuild for messages "
                f"{diff[:5]}: maintained={[my_req.get(m) for m in diff[:5]]} "
                f"rebuilt={[their_req.get(m) for m in diff[:5]]}"
            )
        their_owner = {
            v: o for v, o in rebuilt.owner.items() if o is not None
        }
        if self.owner != their_owner:
            diff = [
                v
                for v in set(self.owner) | set(their_owner)
                if self.owner.get(v) != their_owner.get(v)
            ]
            raise SimulationError(
                f"incremental CWG ownership diverges from rebuild at "
                f"vertices {diff[:5]}"
            )
