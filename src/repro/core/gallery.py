"""The paper's worked deadlock examples (Figures 1-4) as CWG fixtures.

Each builder returns a :class:`~repro.core.cwg.ChannelWaitForGraph`
reproducing the resource state of one of the paper's illustrative figures,
with the documented characteristics:

========  ===========================  =====  ======  ======  ========
figure    kind                         knot   dset    rset    density
========  ===========================  =====  ======  ======  ========
Figure 1  single-cycle deadlock (DOR)  8 VCs  3 msgs  8 VCs   1
Figure 2  single-cycle deadlock        4 VCs  4 msgs  8 VCs   1
          (adaptive, exhausted)
Figure 3  multi-cycle deadlock         8 VCs  8 msgs  16 VCs  4
Figure 4  cyclic non-deadlock          none   —       —       cycles>0
========  ===========================  =====  ======  ======  ========

Figures 1 and 2 follow the paper's channel numbering exactly.  The precise
arc layout of Figures 3 and 4 did not survive the source scan, so those two
builders construct states with the *same reported characteristics* (message
count, resource count, knot size, knot cycle density, fan-out 2) — which is
what the tests assert.
"""

from __future__ import annotations

from repro.core.cwg import ChannelWaitForGraph

__all__ = ["figure1_cwg", "figure2_cwg", "figure3_cwg", "figure4_cwg"]


def figure1_cwg() -> ChannelWaitForGraph:
    """Figure 1: a single-cycle deadlock under DOR with one VC.

    Five messages route in dimension order around a torus ring.  Messages
    m1, m3, m5 are blocked in a cycle; m2 and m4 hold channels but have all
    resources needed to reach their destinations (no dashed arcs).

    The knot is {c0..c7}; deadlock set {m1, m3, m5}; resource set 8
    channels; knot cycle density 1.
    """
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["c1", "c2"])
    g.add_ownership_chain(3, ["c3", "c4", "c5"])
    g.add_ownership_chain(5, ["c6", "c7", "c0"])
    # m2 and m4 are en route but unblocked; their channels are CWG vertices
    # with no dashed arcs, so they can never join a knot.
    g.add_ownership_chain(2, ["c8", "c9"])
    g.add_ownership_chain(4, ["c10"])
    # DOR returns exactly one channel option: fan-out 1.
    g.add_request(1, ["c3"])
    g.add_request(3, ["c6"])
    g.add_request(5, ["c1"])
    return g


def figure2_cwg() -> ChannelWaitForGraph:
    """Figure 2: a single-cycle deadlock under minimal adaptive routing.

    Four messages have exhausted their adaptivity (each needs exactly one
    specific channel, owned by another group member).  Message m6 owns c8,
    c9 and waits for a channel owned by m3 — it is a *dependent* message,
    unable to proceed but not part of the knot: removing it cannot resolve
    the deadlock.

    The knot is {c1, c3, c5, c7}; deadlock set {m1..m4}; resource set 8
    channels; knot cycle density 1.
    """
    g = ChannelWaitForGraph()
    g.add_ownership_chain(1, ["c0", "c1"])
    g.add_ownership_chain(2, ["c2", "c3"])
    g.add_ownership_chain(3, ["c4", "c5"])
    g.add_ownership_chain(4, ["c6", "c7"])
    g.add_request(1, ["c3"])
    g.add_request(2, ["c5"])
    g.add_request(3, ["c7"])
    g.add_request(4, ["c1"])
    # The dependent message: waits on c4 (owned by deadlock-set member m3).
    g.add_ownership_chain(6, ["c8", "c9"])
    g.add_request(6, ["c4"])
    return g


def figure3_cwg() -> ChannelWaitForGraph:
    """Figure 3: a multi-cycle deadlock (adaptive routing, 2 VCs).

    Eight blocked messages, 16 owned VCs, a knot of 8 vertices and a knot
    cycle density of 4 — matching the paper's reported characteristics.
    Messages m0 and m4 retain two routing alternatives (fan-out 2, the
    multi-VC signature); the rest have exhausted theirs.

    Structure: each message m_i owns the chain u_i -> v_i; the v vertices
    form a ring v0 -> v1 -> ... -> v7 -> v0 of waits, with extra
    alternatives v0 -> v4 and v4 -> v0.  The simple cycles inside the knot
    {v0..v7} are: the full ring, the two chord+half-ring circuits, and the
    chord 2-cycle — exactly four.
    """
    g = ChannelWaitForGraph()
    for i in range(8):
        g.add_ownership_chain(i, [f"u{i}", f"v{i}"])
    for i in range(8):
        targets = [f"v{(i + 1) % 8}"]
        if i in (0, 4):
            targets.append(f"v{(i + 4) % 8}")
        g.add_request(i, targets)
    return g


def figure4_cwg() -> ChannelWaitForGraph:
    """Figure 4: a cyclic non-deadlock — cycles exist but no knot.

    The same population as Figure 3 except message m4's destination
    changed: one of its routing alternatives is now the escape channel e4,
    owned by message m8 which is *not* blocked (it holds everything it
    needs, like m2/m4 of Figure 1).  All of Figure 3's wait cycles are
    still present, but from v4 the escape vertex e4 is reachable while e4
    reaches nothing back — so no vertex set satisfies the knot condition.
    Eventually m8 drains and releases e4, m4 proceeds and releases v4, and
    the whole tangle unwinds: cycles are necessary but not sufficient for
    deadlock (Duato's observation, confirmed by the paper).
    """
    g = ChannelWaitForGraph()
    for i in range(8):
        g.add_ownership_chain(i, [f"u{i}", f"v{i}"])
    g.add_ownership_chain(8, ["e4"])  # the unblocked escape-channel owner
    for i in range(8):
        targets = [f"v{(i + 1) % 8}"]
        if i == 0:
            targets.append("v4")
        if i == 4:
            targets.append("e4")  # m4's second alternative: the escape
        g.add_request(i, targets)
    return g
