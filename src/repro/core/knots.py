"""Knot detection: the exact deadlock criterion.

A **knot** is a set of vertices R such that the set of vertices reachable
from each and every member of R is R itself [Maekawa et al.].  Given a
connected routing function, a knot in the CWG is a *necessary and
sufficient* condition for deadlock (Warnakulasuriya & Pinkston, TR CENG
97-05) — cycles alone are necessary but not sufficient (Figure 4's cyclic
non-deadlock).

Equivalently, a knot is a **sink strongly-connected component that contains
at least one arc** (size >= 2, or a self-loop): every member reaches the
whole component and nothing else, and the component can reach nothing
outside itself — no escape vertex exists.

The implementation is an iterative Tarjan SCC pass (recursion-free so deep
ownership chains cannot overflow Python's stack) followed by a sink test on
the condensation.  Complexity O(V + E) per detection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cycles import ContractedGraph

__all__ = [
    "strongly_connected_components",
    "find_knots",
    "find_knots_contracted",
    "knot_of_vertex",
]

Vertex = Hashable


def strongly_connected_components(
    adjacency: Mapping[Vertex, Sequence[Vertex]],
) -> list[list[Vertex]]:
    """Tarjan's algorithm, iterative form.

    Returns SCCs in reverse topological order of the condensation (every
    successor component appears before its predecessors), which is Tarjan's
    natural emission order.
    """
    index: dict[Vertex, int] = {}
    lowlink: dict[Vertex, int] = {}
    on_stack: set[Vertex] = set()
    stack: list[Vertex] = []
    sccs: list[list[Vertex]] = []
    counter = 0

    for root in adjacency:
        if root in index:
            continue
        # Each work-stack frame: (vertex, iterator position into successors)
        work: list[tuple[Vertex, int]] = [(root, 0)]
        while work:
            v, pos = work[-1]
            if pos == 0:
                index[v] = lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack.add(v)
            succs = adjacency.get(v, ())
            advanced = False
            for i in range(pos, len(succs)):
                w = succs[i]
                if w not in index:
                    work[-1] = (v, i + 1)
                    work.append((w, 0))
                    advanced = True
                    break
                if w in on_stack:
                    if index[w] < lowlink[v]:
                        lowlink[v] = index[w]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]
            if lowlink[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(comp)
    return sccs


def find_knots(
    adjacency: Mapping[Vertex, Sequence[Vertex]],
) -> list[frozenset[Vertex]]:
    """All knots of the graph (possibly several disjoint ones).

    A knot is a sink SCC containing an arc.  Multiple simultaneous deadlocks
    appear as multiple disjoint knots.
    """
    sccs = strongly_connected_components(adjacency)
    comp_of: dict[Vertex, int] = {}
    for i, comp in enumerate(sccs):
        for v in comp:
            comp_of[v] = i
    knots: list[frozenset[Vertex]] = []
    for i, comp in enumerate(sccs):
        has_internal_arc = len(comp) > 1
        is_sink = True
        for v in comp:
            for w in adjacency.get(v, ()):
                if comp_of[w] != i:
                    is_sink = False
                    break
                if w == v:
                    has_internal_arc = True  # self-loop
            if not is_sink:
                break
        if is_sink and has_internal_arc:
            knots.append(frozenset(comp))
    return knots


def find_knots_contracted(contracted: "ContractedGraph") -> list[frozenset[Vertex]]:
    """All knots of a chain-contracted graph, expanded to original vertices.

    Knot structure survives the contraction of
    :func:`~repro.core.cycles.contract_graph` exactly: interior vertices of
    a contracted arc have out-degree 1, so no escape arc can originate
    inside one — a sink SCC of the contracted multigraph therefore expands
    (kept members plus the interiors of their intra-component arcs) to a
    sink SCC of the original graph, and vice versa.  A *ring* (a cycle of
    pure pass-through vertices) has no kept member at all and is always a
    knot: every vertex's single arc stays inside the ring.

    Returns the same knot *sets* as :func:`find_knots` on the uncontracted
    adjacency, in an unspecified order — callers needing a stable order
    sort canonically (the detector does).
    """
    succ = contracted.succ
    paths = contracted.paths
    sccs = strongly_connected_components(succ)
    comp_of: dict[Vertex, int] = {}
    for i, comp in enumerate(sccs):
        for v in comp:
            comp_of[v] = i
    knots: list[frozenset[Vertex]] = [frozenset(ring) for ring in contracted.rings]
    for i, comp in enumerate(sccs):
        has_internal_arc = len(comp) > 1
        is_sink = True
        for v in comp:
            for w in succ.get(v, ()):
                if comp_of[w] != i:
                    is_sink = False
                    break
                if w == v:
                    has_internal_arc = True  # self-loop
            if not is_sink:
                break
        if not (is_sink and has_internal_arc):
            continue
        expanded: set[Vertex] = set(comp)
        for v in comp:
            for interior in paths.get(v, ()):
                expanded.update(interior)
        knots.append(frozenset(expanded))
    return knots


def knot_of_vertex(
    adjacency: Mapping[Vertex, Sequence[Vertex]], vertex: Vertex
) -> frozenset[Vertex] | None:
    """The knot containing ``vertex``, if any — direct from the definition.

    Computes reach(vertex) by BFS and verifies that every member's reachable
    set equals it.  O(R * E) — used by tests as an oracle against
    :func:`find_knots`, not by the detector.
    """

    def reach(start: Vertex) -> frozenset[Vertex]:
        seen = {start}
        frontier = [start]
        while frontier:
            nxt = []
            for u in frontier:
                for w in adjacency.get(u, ()):
                    if w not in seen:
                        seen.add(w)
                        nxt.append(w)
            frontier = nxt
        # reach() in the knot definition excludes the start unless it lies on
        # a cycle; including it unconditionally is safe because we verify
        # mutual reachability below.
        return frozenset(seen)

    r = reach(vertex)
    for v in r:
        if reach(v) != r:
            return None
    # Reject trivial fixed points: an arcless single vertex is not a knot.
    if len(r) == 1:
        v = next(iter(r))
        if v not in adjacency.get(v, ()):
            return None
    return r
