"""Deadlock recovery policies.

The paper breaks each detected deadlock "by removing a message in the
deadlock set (flit-by-flit) from the network so as to synthesize a recovery
procedure (as in the Disha scheme [5])".  In Disha the victim message is not
lost — it is delivered to its destination over a dedicated deadlock-free
recovery lane — so the default policy counts the victim as delivered.

Removing a single victim may leave a residual knot in a multi-cycle
deadlock; the detector's next invocation (every ``detection_interval``
cycles) resolves the remainder, exactly as in the paper's methodology.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.message import Message

__all__ = [
    "RecoveryPolicy",
    "DishaRecovery",
    "AbortAllRecovery",
    "NoRecovery",
    "make_recovery",
]


class RecoveryPolicy:
    """Chooses which deadlock-set messages to remove, and how."""

    name = "base"
    #: recovered messages reach their destination (Disha semantics)?
    delivers_victim = True

    def victims(
        self, deadlock_set: Sequence["Message"], rng: random.Random
    ) -> list["Message"]:
        """The messages to remove for one detected knot."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class DishaRecovery(RecoveryPolicy):
    """Remove one victim per knot; the victim is delivered via recovery lane.

    Victim selection follows Disha's progressive recovery intuition: the
    message that has been blocked the longest (i.e. the "most deadlocked")
    claims the recovery resource.  Ties break deterministically by id.
    """

    name = "disha"
    delivers_victim = True

    def victims(
        self, deadlock_set: Sequence["Message"], rng: random.Random
    ) -> list["Message"]:
        def key(m: "Message") -> tuple[int, int]:
            since = m.blocked_since if m.blocked_since is not None else 1 << 60
            return (since, m.id)

        return [min(deadlock_set, key=key)]


class AbortAllRecovery(RecoveryPolicy):
    """Remove every message in the deadlock set (regressive recovery).

    Models compressionless-routing-style regressive recovery [4]: victims
    are killed and must be reinjected, so they do not count as delivered.
    """

    name = "abort-all"
    delivers_victim = False

    def victims(
        self, deadlock_set: Sequence["Message"], rng: random.Random
    ) -> list["Message"]:
        return list(deadlock_set)


class NoRecovery(RecoveryPolicy):
    """Detect but never break deadlocks.

    Used to study deadlock persistence and to validate that an unresolved
    knot remains a knot (deadlocked messages never progress).
    """

    name = "none"
    delivers_victim = False

    def victims(
        self, deadlock_set: Sequence["Message"], rng: random.Random
    ) -> list["Message"]:
        return []


_POLICIES = {cls.name: cls for cls in (DishaRecovery, AbortAllRecovery, NoRecovery)}


def make_recovery(name: str) -> RecoveryPolicy:
    """Instantiate a recovery policy by its short name."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown recovery policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
