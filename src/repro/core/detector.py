"""True deadlock detection over live network state.

This is the paper's core instrument: every ``detection_interval`` cycles the
detector snapshots the network into a channel wait-for graph, finds knots
(the exact deadlock criterion), extracts each deadlock's *deadlock set*,
*resource set* and *knot cycle density*, classifies it as single- or
multi-cycle, distinguishes *dependent* and *transient dependent* messages,
and optionally censuses all resource-dependency cycles in the CWG.

The detector is pure observation plus classification; breaking the deadlock
is delegated to a :class:`~repro.core.recovery.RecoveryPolicy` by the
simulation engine.

Dirty-region caching
--------------------

With ``detector_caching`` on (the default) and incremental CWG maintenance
active, a pass scales with *what changed since the last pass* instead of
with CWG size.  The CWG is partitioned into weakly-connected regions;
knots, deadlock events and the bounded cycle census are computed **per
region** and cached two ways:

* by the region's exact vertex set, reused when no member vertex is in the
  tracker's dirty set (ownership and adjacency provably unchanged — region
  merges and splits always change the vertex set);
* by a canonical region *signature* — the sorted ``(message, chain,
  targets)`` tuples composing the region — in a bounded LRU, so a region
  that returns to a previously-seen shape (common while knots persist or
  traffic cycles through configurations) skips re-analysis even after its
  vertices went dirty.

Fresh region analysis runs on the *chain-contracted* graph
(:func:`~repro.core.cycles.contract_graph`): CWGs are mostly unbranched
ownership chains, so Tarjan, the knot test and Johnson's enumeration all
run on a several-fold smaller multigraph with provably identical results.
Per-region censuses merge exactly because bounded cycle counts are
enumeration-order independent (see :mod:`repro.core.cycles`).

Both detector modes emit deadlock events in one canonical order (knots
sorted by their least vertex), making cached passes **bit-identical** to
full passes — asserted over randomized runs by
``tests/integration/test_detector_caching_equivalence.py``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import TYPE_CHECKING, Hashable, Mapping, Optional, Sequence

from repro.core.cwg import ChannelWaitForGraph, WaitGraphQueries
from repro.core.cycles import (
    CycleCount,
    contract_graph,
    count_cycles_contracted,
    count_simple_cycles,
)
from repro.core.knots import find_knots, find_knots_contracted

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.incremental import IncrementalCWG
    from repro.network.simulator import NetworkSimulator

__all__ = ["DeadlockEvent", "DetectionRecord", "DeadlockDetector", "classify_event"]

Vertex = Hashable

SINGLE_CYCLE = "single-cycle"
MULTI_CYCLE = "multi-cycle"


def _vertex_key(v: Vertex):
    """Total order over the mixed vertex universe (ints, strings, tuples).

    VC indices are ints, reception channels are ``("rx", node, index)``
    tuples, and test galleries use string vertices; tagging by type makes
    them mutually comparable so knot ordering never depends on hash seeds
    or dict insertion order.
    """
    if isinstance(v, tuple):
        return (2, tuple(_vertex_key(x) for x in v))
    if isinstance(v, str):
        return (1, v)
    return (0, v)


def _knot_key(knot: frozenset[Vertex]):
    return min(map(_vertex_key, knot))


@dataclass(frozen=True)
class DeadlockEvent:
    """One detected deadlock (one knot)."""

    cycle: int  #: simulation cycle of detection
    knot: frozenset[Vertex]  #: the knot's vertex set
    deadlock_set: frozenset[int]  #: message ids owning knot vertices
    resource_set: frozenset[Vertex]  #: every VC owned by deadlock-set messages
    knot_cycle_density: int  #: distinct simple cycles within the knot
    density_saturated: bool  #: True if the density count hit its cap
    dependent: frozenset[int]  #: blocked messages fully dependent on the set
    transient_dependent: frozenset[int]  #: partially dependent blocked messages

    @property
    def classification(self) -> str:
        return SINGLE_CYCLE if self.knot_cycle_density <= 1 else MULTI_CYCLE

    @property
    def deadlock_set_size(self) -> int:
        return len(self.deadlock_set)

    @property
    def resource_set_size(self) -> int:
        return len(self.resource_set)


def classify_event(event: DeadlockEvent) -> str:
    """Single- vs multi-cycle classification (Section 2.2 of the paper)."""
    return event.classification


@dataclass
class DetectionRecord:
    """Everything one detector invocation observed."""

    cycle: int
    events: list[DeadlockEvent]
    cwg_vertices: int
    cwg_arcs: int
    blocked_messages: int
    messages_in_network: int  #: network population at the detection instant
    cycle_count: Optional[CycleCount]  #: CWG-wide cycle census (if enabled)
    #: (message id, cycles spent blocked, in a deadlock set?) per blocked
    #: message — raw material for timeout-heuristic comparisons.
    blocked_durations: list[tuple[int, int, bool]] = field(default_factory=list)
    #: in timeout mode: ids of the engine-blocked messages at this instant
    #: (``sim.blocked_messages()`` equivalent), so the recovery step reuses
    #: the detector's enumeration instead of rescanning the population
    blocked_ids: Optional[tuple[int, ...]] = None

    @property
    def has_deadlock(self) -> bool:
        return bool(self.events)


@dataclass
class _RegionAnalysis:
    """Cached analysis of one weakly-connected CWG region.

    ``events`` carry the cycle stamp of the pass that computed them and are
    restamped on reuse; everything else is purely structural.
    """

    events: tuple[DeadlockEvent, ...]
    census: Optional[CycleCount]  #: bounded count with the detector's full cap


#: regions kept in the signature LRU; each entry is a handful of frozensets
#: and a CycleCount, so the cap bounds memory without evicting the working
#: set of a steady-state network (regions per pass ≪ this)
_SIG_CACHE_CAP = 512


class DeadlockDetector:
    """Builds CWGs from a live simulation and identifies knots."""

    def __init__(
        self,
        count_cycles: bool = True,
        max_cycles_counted: int = 50_000,
        knot_density_cap: int = 10_000,
        knot_size_enumeration_limit: int = 200,
        record_blocked_durations: bool = False,
        caching: bool = True,
    ) -> None:
        self.count_cycles = count_cycles
        self.max_cycles_counted = max_cycles_counted
        self.knot_density_cap = knot_density_cap
        self.knot_size_enumeration_limit = knot_size_enumeration_limit
        self.record_blocked_durations = record_blocked_durations
        #: enables the dirty-region cached pass (needs an incremental
        #: tracker on the simulator; silently falls back to full passes
        #: otherwise, so the flag is safe to leave on everywhere)
        self.caching = caching
        self.records: list[DetectionRecord] = []
        self.events: list[DeadlockEvent] = []
        # short-circuit cache: last full pass and the blocked epoch it saw
        self._sc_sim: Optional["NetworkSimulator"] = None
        self._sc_epoch = -1
        self._sc_record: Optional[DetectionRecord] = None
        self._sc_blocked: list[int] = []
        # dirty-region caches (cached mode only)
        self._cache_sim: Optional["NetworkSimulator"] = None
        self._prev_regions: dict[frozenset, _RegionAnalysis] = {}
        self._sig_cache: OrderedDict[tuple, _RegionAnalysis] = OrderedDict()
        # incremental knot tracking (cached mode without the cycle census):
        # the knots of the previous pass and their densities, keyed by
        # vertex set — see _analyze_tracked
        self._kt_sim: Optional["NetworkSimulator"] = None
        self._kt_knots: dict[frozenset, CycleCount] = {}
        # cache accounting (always maintained — a handful of integer
        # increments per pass; surfaced by cache_stats() and repro.obs)
        self.region_hits = 0  #: regions reused clean via exact vertex set
        self.signature_hits = 0  #: dirty regions reused via the LRU
        self.region_misses = 0  #: fresh region analyses
        self.signature_evictions = 0  #: LRU entries dropped at capacity
        self.full_passes = 0  #: global (uncached) analysis passes
        self.cached_passes = 0  #: dirty-region analysis passes
        self.shortcircuit_passes = 0  #: passes skipped on a stale epoch
        self.tracked_passes = 0  #: incremental knot-tracking passes
        self.tracked_rescans = 0  #: tracked passes that fell back to Tarjan
        self.knots_reused = 0  #: persisting knots reused without re-analysis
        self.knots_discovered = 0  #: knots found by dirty-vertex closure walks
        # observability session of the sim under detection (None or the
        # process-global null observer when obs is off)
        self._obs = None

    def cache_stats(self) -> dict[str, int]:
        """Cache and pass accounting for the dirty-region pipeline.

        ``region_hits`` are regions reused because no member vertex went
        dirty (exact vertex-set match); ``signature_hits`` are dirty
        regions that matched a previously-analyzed canonical signature in
        the LRU; ``region_misses`` are fresh analyses; ``signature_evictions``
        counts LRU entries dropped at capacity.  Pass counters split
        detector invocations into full (global analysis), cached
        (dirty-region), tracked (incremental knot tracking) and
        short-circuited (stale blocked epoch) passes; ``tracked_rescans``
        counts tracked passes that chose the global-Tarjan fallback, and
        ``knots_reused`` / ``knots_discovered`` split the knots reported by
        tracked passes into persisting (density reused) and new (closure
        walk or rescan).  Counters are cumulative over the detector's
        lifetime.
        """
        return {
            "region_hits": self.region_hits,
            "signature_hits": self.signature_hits,
            "region_misses": self.region_misses,
            "signature_evictions": self.signature_evictions,
            "full_passes": self.full_passes,
            "cached_passes": self.cached_passes,
            "shortcircuit_passes": self.shortcircuit_passes,
            "tracked_passes": self.tracked_passes,
            "tracked_rescans": self.tracked_rescans,
            "knots_reused": self.knots_reused,
            "knots_discovered": self.knots_discovered,
        }

    # -- CWG construction ------------------------------------------------------------
    @staticmethod
    def build_cwg(sim: "NetworkSimulator") -> ChannelWaitForGraph:
        """Snapshot the live network into a channel wait-for graph.

        Vertices are VC indices plus ``("rx", node, index)`` reception
        channels.
        Only messages owning at least one network resource contribute;
        source-queued messages hold nothing and cannot deadlock the network.
        """
        g = ChannelWaitForGraph()
        for msg in sim.active_messages():
            chain: list[Vertex] = [vc.index for vc in msg.vcs]
            if msg.is_draining:
                chain.append(("rx", msg.dest, msg.reception.index))
            if chain:
                g.add_ownership_chain(msg.id, chain)
        for msg in sim.active_messages():
            if not msg.vcs or not sim.routing_eligible(msg):
                continue
            if msg.blocked_since is None:
                # the header arrived this cycle and has not yet *failed* an
                # allocation attempt: it is requesting nothing yet
                continue
            if msg.needs_next_vc:
                cands = sim.route_candidates(msg)
                g.add_request(msg.id, [vc.index for vc in cands])
            elif msg.needs_reception:
                # the wait is recorded even if the reception channel freed
                # after this cycle's allocation phase (the message acquires
                # it next cycle): a free vertex has no outgoing arcs, so it
                # can never contribute to a knot
                g.add_request(
                    msg.id,
                    [
                        ("rx", msg.dest, i)
                        for i in range(sim.pool.rx_channels)
                    ],
                )
        return g

    # -- detection ---------------------------------------------------------------------
    def detect(self, sim: "NetworkSimulator") -> DetectionRecord:
        """Run one detection pass and append its record.

        With the engine's fast path, a pass is **short-circuited** when the
        simulator's ``blocked_epoch`` has not advanced since the previous
        pass and that pass found no deadlock: the epoch counts every
        ownership change and blocked-set transition, so an unchanged epoch
        means an unchanged CWG — same (empty) knot set, same vertex/arc/
        blocked counts, same cycle census.  Only the per-message blocked
        durations (which depend on the current cycle) are refreshed.  A
        pass that *found* a deadlock is never short-circuited: a persisting
        knot must be re-reported every interval, exactly as the full pass
        would.

        Otherwise the pass runs **cached** (dirty regions only, see the
        module docstring) when ``caching`` is set and the simulator carries
        an incremental tracker, or **full** (global Tarjan + Johnson) when
        not.  The two produce identical records.
        """
        cycle = sim.cycle
        if (
            self._sc_record is not None
            and not self._sc_record.events
            and self._sc_sim is sim
            and getattr(sim, "fast_path", False)
            and not getattr(sim, "_uncacheable_routing", True)
            and sim.blocked_epoch == self._sc_epoch
        ):
            self.shortcircuit_passes += 1
            return self._detect_unchanged(sim, cycle)

        obs = getattr(sim, "obs", None)
        self._obs = obs if obs is not None and obs.enabled else None

        g = sim.cwg_view() if hasattr(sim, "cwg_view") else sim.cwg_snapshot()
        tracker = getattr(sim, "tracker", None)
        if self.caching and tracker is not None:
            if self.count_cycles:
                self.cached_passes += 1
                events, cycle_count = self._analyze_cached(sim, g, tracker, cycle)
            else:
                # No census wanted: knots are all that matters, and they
                # can be maintained incrementally across passes instead of
                # recomputed per region (see _analyze_tracked).
                self.tracked_passes += 1
                events = self._analyze_tracked(sim, g, tracker, cycle)
                cycle_count = None
        else:
            self.full_passes += 1
            adjacency = g.adjacency()
            knots = sorted(find_knots(adjacency), key=_knot_key)
            events = [
                self._knot_event(g, adjacency, knot, cycle) for knot in knots
            ]
            cycle_count = (
                count_simple_cycles(adjacency, limit=self.max_cycles_counted)
                if self.count_cycles
                else None
            )

        all_deadlocked: set[int] = set()
        for event in events:
            all_deadlocked.update(event.deadlock_set)

        blocked_list = g.blocked_messages()
        if self._obs is not None:
            reg = self._obs.registry
            reg.histogram("detector/blocked_per_pass").observe(
                len(blocked_list)
            )
            reg.histogram("detector/knots_per_pass").observe(len(events))
        blocked_durations: list[tuple[int, int, bool]] = []
        if self.record_blocked_durations:
            for mid in blocked_list:
                msg = sim.message_by_id(mid)
                since = msg.blocked_since
                duration = cycle - since if since is not None else 0
                blocked_durations.append((mid, duration, mid in all_deadlocked))

        blocked_ids: Optional[tuple[int, ...]] = None
        if sim.config.detection_mode == "timeout":
            # The engine's blocked_messages() additionally drops a message
            # whose awaited reception channel freed after its last attempt;
            # apply the same filter so recovery sees an identical pool.
            ids = []
            for mid in blocked_list:
                msg = sim.message_by_id(mid)
                if (
                    msg.needs_reception
                    and sim.pool.free_reception(msg.dest) is not None
                ):
                    continue
                ids.append(mid)
            blocked_ids = tuple(ids)

        record = DetectionRecord(
            cycle=cycle,
            events=events,
            cwg_vertices=g.num_vertices,
            cwg_arcs=g.num_arcs,
            blocked_messages=len(blocked_list),
            messages_in_network=sim.messages_in_network,
            cycle_count=cycle_count,
            blocked_durations=blocked_durations,
            blocked_ids=blocked_ids,
        )
        self.records.append(record)
        self.events.extend(events)
        self._sc_sim = sim
        self._sc_epoch = getattr(sim, "blocked_epoch", -1)
        self._sc_record = record
        self._sc_blocked = blocked_list
        return record

    def _detect_unchanged(
        self, sim: "NetworkSimulator", cycle: int
    ) -> DetectionRecord:
        """Record a short-circuited pass (CWG unchanged, no deadlock).

        Structure-derived fields are copied from the cached record; only
        the blocked durations advance with the clock.  ``blocked_ids`` is
        reused as-is: reception-channel freeness is epoch-stable too (every
        acquire/release bumps the epoch).
        """
        prev = self._sc_record
        blocked_durations: list[tuple[int, int, bool]] = []
        if self.record_blocked_durations:
            for mid in self._sc_blocked:
                msg = sim.message_by_id(mid)
                since = msg.blocked_since
                duration = cycle - since if since is not None else 0
                blocked_durations.append((mid, duration, False))
        record = DetectionRecord(
            cycle=cycle,
            events=[],
            cwg_vertices=prev.cwg_vertices,
            cwg_arcs=prev.cwg_arcs,
            blocked_messages=prev.blocked_messages,
            messages_in_network=prev.messages_in_network,
            cycle_count=prev.cycle_count,
            blocked_durations=blocked_durations,
            blocked_ids=prev.blocked_ids,
        )
        self.records.append(record)
        self._sc_record = record
        return record

    # -- per-knot event construction --------------------------------------------------
    def _knot_event(
        self,
        g: WaitGraphQueries,
        adjacency: Mapping[Vertex, Sequence[Vertex]],
        knot: frozenset[Vertex],
        cycle: int,
    ) -> DeadlockEvent:
        """Classify one knot into a :class:`DeadlockEvent`.

        ``adjacency`` only needs to cover the knot's own region — deadlock,
        resource, dependent and transient sets never reach outside the
        knot's weakly-connected component.
        """
        deadlock_set = frozenset(g.messages_owning(knot))
        resource_set = frozenset(g.resources_of(deadlock_set))
        sub = {v: [w for w in adjacency[v] if w in knot] for v in knot}
        density = self._knot_density(sub)
        deps, transients = self._dependents(g, deadlock_set)
        return DeadlockEvent(
            cycle=cycle,
            knot=knot,
            deadlock_set=deadlock_set,
            resource_set=resource_set,
            knot_cycle_density=density.count,
            density_saturated=density.saturated,
            dependent=deps,
            transient_dependent=transients,
        )

    # -- dirty-region cached pass -----------------------------------------------------
    def _analyze_cached(
        self,
        sim: "NetworkSimulator",
        g: WaitGraphQueries,
        tracker: "IncrementalCWG",
        cycle: int,
    ) -> tuple[list[DeadlockEvent], Optional[CycleCount]]:
        """Events + census via the region partition, reusing cached regions."""
        if self._cache_sim is not sim:
            self._cache_sim = sim
            self._prev_regions = {}
            self._sig_cache = OrderedDict()
        obs = self._obs
        prof = obs.profiler if obs is not None else None
        t0 = perf_counter() if prof is not None else 0.0
        dirty = tracker.consume_dirty()
        adjacency = tracker.adjacency()

        # Weakly-connected regions by union-find over the arcs.
        parent: dict[Vertex, Vertex] = {v: v for v in adjacency}

        def find(v: Vertex) -> Vertex:
            root = v
            while parent[root] != root:
                root = parent[root]
            while parent[v] != root:
                parent[v], v = root, parent[v]
            return root

        for v, succs in adjacency.items():
            for w in succs:
                rv, rw = find(v), find(w)
                if rv != rw:
                    parent[rw] = rv
        components: dict[Vertex, list[Vertex]] = {}
        for v in adjacency:
            components.setdefault(find(v), []).append(v)
        if prof is not None:
            now = perf_counter()
            prof.add("detect/partition", now - t0)
            t0 = now
            obs.registry.histogram("detector/regions_per_pass").observe(
                len(components)
            )
            obs.registry.histogram("detector/dirty_per_pass").observe(
                len(dirty)
            )

        buckets: Optional[dict[Vertex, list[tuple]]] = None
        new_regions: dict[frozenset, _RegionAnalysis] = {}
        events: list[DeadlockEvent] = []
        census_total = 0
        for root, members in components.items():
            vertex_set = frozenset(members)
            analysis = self._prev_regions.get(vertex_set)
            if analysis is not None and dirty.isdisjoint(vertex_set):
                self.region_hits += 1
            else:
                if buckets is None:
                    buckets = self._bucket_messages(tracker, find)
                sig = tuple(
                    sorted(buckets.get(root, ()), key=lambda t: t[0])
                )
                analysis = self._sig_cache.get(sig)
                if analysis is not None:
                    self.signature_hits += 1
                    self._sig_cache.move_to_end(sig)
                else:
                    self.region_misses += 1
                    analysis = self._analyze_region(g, members, adjacency, cycle)
                    self._sig_cache[sig] = analysis
                    if len(self._sig_cache) > _SIG_CACHE_CAP:
                        self._sig_cache.popitem(last=False)
                        self.signature_evictions += 1
            new_regions[vertex_set] = analysis
            events.extend(analysis.events)
            if analysis.census is not None:
                census_total += analysis.census.count
        self._prev_regions = new_regions
        if prof is not None:
            prof.add("detect/regions", perf_counter() - t0)

        events.sort(key=lambda e: _knot_key(e.knot))
        events = [e if e.cycle == cycle else replace(e, cycle=cycle) for e in events]

        cycle_count: Optional[CycleCount] = None
        if self.count_cycles:
            limit = self.max_cycles_counted
            if limit < 1:
                cycle_count = CycleCount(0, True)
            else:
                # Exact merge: bounded counts are enumeration-order
                # independent, so full-budget per-region counts sum to the
                # global census (see repro.core.cycles).
                cycle_count = CycleCount(
                    min(census_total, limit), census_total >= limit
                )
        return events, cycle_count

    @staticmethod
    def _bucket_messages(tracker: "IncrementalCWG", find) -> dict:
        """Region signatures' raw material: (mid, chain, targets) per region.

        A message's whole chain (and its request targets) lie in one region
        by construction, so bucketing by the chain head's root is exact.
        """
        buckets: dict[Vertex, list[tuple]] = {}
        for mid, chain in tracker.chains.items():
            targets = tracker.requests.get(mid)
            entry = (mid, tuple(chain), tuple(targets) if targets else ())
            buckets.setdefault(find(chain[0]), []).append(entry)
        return buckets

    def _analyze_region(
        self,
        g: WaitGraphQueries,
        members: list[Vertex],
        adjacency: Mapping[Vertex, Sequence[Vertex]],
        cycle: int,
    ) -> _RegionAnalysis:
        """Fresh analysis of one region, on its chain-contracted form."""
        obs = self._obs
        prof = obs.profiler if obs is not None else None
        t0 = perf_counter() if prof is not None else 0.0
        region_adj = {v: adjacency[v] for v in members}
        contracted = contract_graph(region_adj)
        knots = sorted(find_knots_contracted(contracted), key=_knot_key)
        events = tuple(
            self._knot_event(g, region_adj, knot, cycle) for knot in knots
        )
        if prof is not None:
            now = perf_counter()
            prof.add("detect/knots", now - t0)
            t0 = now
        census = (
            count_cycles_contracted(contracted, self.max_cycles_counted)
            if self.count_cycles
            else None
        )
        if prof is not None:
            prof.add("detect/census", perf_counter() - t0)
        return _RegionAnalysis(events=events, census=census)

    # -- incremental knot tracking ----------------------------------------------------
    def _analyze_tracked(
        self,
        sim: "NetworkSimulator",
        g: WaitGraphQueries,
        tracker: "IncrementalCWG",
        cycle: int,
    ) -> list[DeadlockEvent]:
        """Events via knot persistence + dirty-vertex discovery (no census).

        The pass maintains the invariant that ``self._kt_knots`` holds
        exactly the knots of the previous pass (vertex set -> density).
        Correctness rests on three facts about the tracker's dirty
        contract (every arc-source mutation and ownership change marks the
        vertex dirty):

        * **Persistence.**  A previous knot none of whose vertices went
          dirty is still exactly a knot: sink-ness and strong connectivity
          depend only on arcs *sourced inside* the knot, all of which are
          unchanged.  Its internal arc structure is unchanged too, so its
          cycle density is reused verbatim.
        * **Locality.**  Every *new* knot contains at least one dirty
          vertex: a knot made only of clean vertices had the same
          out-arcs last pass, hence was already a knot then (and so
          persisted).  On the very first pass the dirty set contains every
          owned vertex (acquisition dirties), so nothing is missed.
        * **Discovery.**  For a dirty vertex ``v``, a forward closure walk
          either (a) completes, yielding ``R = reach(v)`` — ``v`` lies in
          a knot iff ``R`` is strongly connected (checked by one reverse
          traversal inside ``R``) and, for ``|R| == 1``, carries a
          self-loop; ``R`` strongly connected and forward-closed is
          automatically a *maximal* SCC — or (b) touches a vertex already
          known to be in a (surviving or just-found) knot or already
          cleared, which proves ``v`` itself is in no knot (its reach
          strictly contains another knot, or escapes through a knot-free
          vertex).  Only ``v`` is cleared on abort: other visited vertices
          sit on branches that need not reach the abort trigger.

        Worst-case discovery is O(|dirty| x region size), dangerous in the
        churny pre-knot regime, so a pass falls back to one global
        chain-contracted Tarjan scan — still reusing densities of clean
        persisting knots — whenever the dirty set is large relative to the
        graph or a closure walk blows a step budget.  Both paths emit
        identical events, so the heuristic never affects results.

        Event construction matches :meth:`_knot_event` field by field;
        deadlock/resource/dependent sets are recomputed fresh every pass
        (a clean knot's *owners* and chain prefixes outside the knot can
        change without dirtying knot vertices), while densities — a
        function of knot-internal arcs only — persist.
        """
        if self._kt_sim is not sim:
            self._kt_sim = sim
            self._kt_knots = {}
        obs = self._obs
        prof = obs.profiler if obs is not None else None
        t0 = perf_counter() if prof is not None else 0.0
        dirty = tracker.consume_dirty()
        persist = self._kt_knots
        surviving: dict[frozenset, CycleCount] = {}
        for knot, density in persist.items():
            if dirty.isdisjoint(knot):
                surviving[knot] = density
        self.knots_reused += len(surviving)

        owned = len(tracker.owner)
        found = self._discover_incremental(tracker, dirty, surviving)
        if found is None:
            self.tracked_rescans += 1
            found = self._discover_rescan(tracker, surviving)
        new_knots = dict(surviving)
        new_knots.update(found)
        self.knots_discovered += len(found)

        events = []
        for knot in sorted(new_knots, key=_knot_key):
            density = new_knots[knot]
            deadlock_set = frozenset(g.messages_owning(knot))
            deps, transients = self._dependents(g, deadlock_set)
            events.append(
                DeadlockEvent(
                    cycle=cycle,
                    knot=knot,
                    deadlock_set=deadlock_set,
                    resource_set=frozenset(g.resources_of(deadlock_set)),
                    knot_cycle_density=density.count,
                    density_saturated=density.saturated,
                    dependent=deps,
                    transient_dependent=transients,
                )
            )
        self._kt_knots = new_knots
        if prof is not None:
            prof.add("detect/knot_track", perf_counter() - t0)
            reg = obs.registry
            reg.histogram("detector/dirty_per_pass").observe(len(dirty))
            reg.histogram("detector/tracked_vertices").observe(owned)
        return events

    def _discover_incremental(
        self,
        tracker: "IncrementalCWG",
        dirty: set,
        surviving: dict,
    ) -> Optional[dict]:
        """New knots by closure walks from dirty vertices, or None to bail.

        Returns ``None`` when the dirty set is too large a fraction of the
        graph for per-vertex walks to beat one global Tarjan scan, or when
        the walks exceed their collective step budget mid-pass (partial
        finds are discarded; the rescan recomputes everything).
        """
        owned = len(tracker.owner)
        if len(dirty) * 8 > owned:
            return None
        # the tracker's successors() inlined: one dict-get cascade per
        # vertex, and each vertex's successor list is computed exactly once
        # per walk (cached in ``succ_of``) — the reverse-reachability check
        # and the knot-subgraph build below reuse it instead of re-querying
        next_in_chain = tracker.next_in_chain
        owner = tracker.owner
        requests = tracker.requests
        in_known: set = set()
        for knot in surviving:
            in_known.update(knot)
        cleared: set = set()
        found: dict[frozenset, CycleCount] = {}
        budget = 4 * owned + 256
        for v in dirty:
            if v in cleared or v in in_known:
                continue
            # forward closure walk, aborting on contact with known state
            visited = {v}
            stack = [v]
            succ_of: dict = {}
            aborted = False
            while stack:
                u = stack.pop()
                nxt = next_in_chain.get(u)
                if nxt is not None:
                    succs = (nxt,)
                else:
                    m = owner.get(u)
                    succs = (
                        () if m is None else (requests.get(m) or ())
                    )
                succ_of[u] = succs
                for w in succs:
                    if w in visited:
                        continue
                    if w in in_known or w in cleared:
                        aborted = True
                        break
                    visited.add(w)
                    stack.append(w)
                budget -= 1
                if aborted or budget <= 0:
                    break
            if not aborted and stack:
                return None  # budget exhausted mid-walk: bail to the rescan
            if aborted:
                cleared.add(v)
                continue
            # visited == reach(v); knot iff strongly connected (+ self-loop
            # for singletons).  The completed walk popped every visited
            # vertex, so ``succ_of`` covers the closure exactly.
            if len(visited) == 1:
                if v not in succ_of[v]:
                    cleared.add(v)
                    continue
            else:
                preds: dict = {u: [] for u in visited}
                for u, succs in succ_of.items():
                    for w in succs:
                        preds[w].append(u)
                seen = {v}
                rstack = [v]
                while rstack:
                    u = rstack.pop()
                    for p in preds[u]:
                        if p not in seen:
                            seen.add(p)
                            rstack.append(p)
                if len(seen) != len(visited):
                    cleared.add(v)
                    continue
            knot = frozenset(visited)
            # succ_of IS the knot's internal adjacency: the walk closed
            # without abort, so every successor of a visited vertex is
            # visited.  Density analysis only reads it, so no copy.
            found[knot] = self._knot_density(succ_of)
            in_known.update(knot)
        return found

    def _discover_rescan(
        self, tracker: "IncrementalCWG", surviving: dict
    ) -> dict:
        """All current knots by one global chain-contracted Tarjan scan.

        Clean persisting knots keep their cached densities (a rescan finds
        the same vertex sets); only genuinely new knots are enumerated.
        """
        adjacency = tracker.adjacency()
        contracted = contract_graph(adjacency)
        found: dict[frozenset, CycleCount] = {}
        for knot in find_knots_contracted(contracted):
            if knot in surviving:
                continue
            sub = {v: [w for w in adjacency[v] if w in knot] for v in knot}
            found[knot] = self._knot_density(sub)
        return found

    def _knot_density(self, sub: dict) -> CycleCount:
        """Simple-cycle count within a knot, with structural shortcuts.

        * Every vertex of a strongly connected component with internal
          out-degree exactly 1 lies on one Hamiltonian cycle of the
          component: density is exactly 1, no enumeration needed.  This is
          the overwhelmingly common case (single-cycle deadlocks).
        * Huge multi-cycle knots (the whole-network tangles of deep
          saturation) would take minutes to enumerate; for knots larger
          than ``knot_size_enumeration_limit`` the cyclomatic number
          ``E - V + 1`` — the exact count of *independent* cycles and a
          lower bound on simple cycles in a strongly connected graph — is
          reported with the saturated flag set.
        * Everything else gets the exact bounded Johnson enumeration, run
          on the chain-contracted multigraph: knots are mostly unbranched
          ownership chains, so contraction shrinks the enumeration graph
          several-fold with provably identical bounded counts (cycle
          counts are enumeration-order independent, the same fact that
          lets :meth:`_analyze_region` merge per-region censuses).
        """
        vertices = len(sub)
        arcs = sum(len(v) for v in sub.values())
        if arcs == vertices and all(len(v) == 1 for v in sub.values()):
            return CycleCount(1, False)
        if vertices > self.knot_size_enumeration_limit:
            return CycleCount(max(2, arcs - vertices + 1), True)
        return count_cycles_contracted(
            contract_graph(sub), limit=self.knot_density_cap
        )

    @staticmethod
    def _dependents(
        g: WaitGraphQueries, deadlock_set: frozenset[int]
    ) -> tuple[frozenset[int], frozenset[int]]:
        """Dependent and transient-dependent messages for one deadlock.

        A blocked message outside the deadlock set is *dependent* when every
        resource it waits on is owned by a deadlock-set or (recursively)
        dependent message — it cannot progress until the deadlock resolves,
        yet removing it would not break the knot.  A *transient* dependent
        waits on at least one such resource but also has an alternative, so
        it may escape on its own.

        Implemented as a reverse-ownership worklist: each candidate counts
        the waited-on owners not yet known to be blocking, and is revisited
        exactly when one of those owners joins the dependent set — O(waits)
        total instead of the naive fixed point's O(blocked²) rescans.
        """
        owner = g.owner
        dependents: set[int] = set()
        # need[mid]: waited-on owners still outside the blocking set; a
        # message waiting on any free resource can never become dependent
        # and is excluded up front (as is one waiting on itself — it can
        # only enter via its own membership, which is circular).
        need: dict[int, int] = {}
        waiters_on: dict[int, list[int]] = {}
        ready: list[int] = []
        for mid, targets in g.requests.items():
            if mid in deadlock_set:
                continue
            outside: list[int] = []
            for t in targets:
                o = owner.get(t)
                if o is None:
                    break
                if o not in deadlock_set:
                    outside.append(o)
            else:
                need[mid] = len(outside)
                if outside:
                    for o in outside:
                        waiters_on.setdefault(o, []).append(mid)
                else:
                    ready.append(mid)
        while ready:
            m = ready.pop()
            if m in dependents:
                continue
            dependents.add(m)
            for w in waiters_on.get(m, ()):
                need[w] -= 1
                if need[w] == 0:
                    ready.append(w)

        transients: set[int] = set()
        blocking = deadlock_set | dependents
        for mid, targets in g.requests.items():
            if mid in deadlock_set or mid in dependents:
                continue
            for t in targets:
                o = owner.get(t)
                if o is not None and o in blocking:
                    transients.add(mid)
                    break
        return frozenset(dependents), frozenset(transients)
