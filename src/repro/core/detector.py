"""True deadlock detection over live network state.

This is the paper's core instrument: every ``detection_interval`` cycles the
detector snapshots the network into a channel wait-for graph, finds knots
(the exact deadlock criterion), extracts each deadlock's *deadlock set*,
*resource set* and *knot cycle density*, classifies it as single- or
multi-cycle, distinguishes *dependent* and *transient dependent* messages,
and optionally censuses all resource-dependency cycles in the CWG.

The detector is pure observation plus classification; breaking the deadlock
is delegated to a :class:`~repro.core.recovery.RecoveryPolicy` by the
simulation engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Optional

from repro.core.cwg import ChannelWaitForGraph
from repro.core.cycles import CycleCount, count_simple_cycles
from repro.core.knots import find_knots

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.simulator import NetworkSimulator

__all__ = ["DeadlockEvent", "DetectionRecord", "DeadlockDetector", "classify_event"]

Vertex = Hashable

SINGLE_CYCLE = "single-cycle"
MULTI_CYCLE = "multi-cycle"


@dataclass(frozen=True)
class DeadlockEvent:
    """One detected deadlock (one knot)."""

    cycle: int  #: simulation cycle of detection
    knot: frozenset[Vertex]  #: the knot's vertex set
    deadlock_set: frozenset[int]  #: message ids owning knot vertices
    resource_set: frozenset[Vertex]  #: every VC owned by deadlock-set messages
    knot_cycle_density: int  #: distinct simple cycles within the knot
    density_saturated: bool  #: True if the density count hit its cap
    dependent: frozenset[int]  #: blocked messages fully dependent on the set
    transient_dependent: frozenset[int]  #: partially dependent blocked messages

    @property
    def classification(self) -> str:
        return SINGLE_CYCLE if self.knot_cycle_density <= 1 else MULTI_CYCLE

    @property
    def deadlock_set_size(self) -> int:
        return len(self.deadlock_set)

    @property
    def resource_set_size(self) -> int:
        return len(self.resource_set)


def classify_event(event: DeadlockEvent) -> str:
    """Single- vs multi-cycle classification (Section 2.2 of the paper)."""
    return event.classification


@dataclass
class DetectionRecord:
    """Everything one detector invocation observed."""

    cycle: int
    events: list[DeadlockEvent]
    cwg_vertices: int
    cwg_arcs: int
    blocked_messages: int
    messages_in_network: int  #: network population at the detection instant
    cycle_count: Optional[CycleCount]  #: CWG-wide cycle census (if enabled)
    #: (message id, cycles spent blocked, in a deadlock set?) per blocked
    #: message — raw material for timeout-heuristic comparisons.
    blocked_durations: list[tuple[int, int, bool]] = field(default_factory=list)
    #: in timeout mode: ids of the engine-blocked messages at this instant
    #: (``sim.blocked_messages()`` equivalent), so the recovery step reuses
    #: the detector's enumeration instead of rescanning the population
    blocked_ids: Optional[tuple[int, ...]] = None

    @property
    def has_deadlock(self) -> bool:
        return bool(self.events)


class DeadlockDetector:
    """Builds CWGs from a live simulation and identifies knots."""

    def __init__(
        self,
        count_cycles: bool = True,
        max_cycles_counted: int = 50_000,
        knot_density_cap: int = 10_000,
        knot_size_enumeration_limit: int = 200,
        record_blocked_durations: bool = False,
    ) -> None:
        self.count_cycles = count_cycles
        self.max_cycles_counted = max_cycles_counted
        self.knot_density_cap = knot_density_cap
        self.knot_size_enumeration_limit = knot_size_enumeration_limit
        self.record_blocked_durations = record_blocked_durations
        self.records: list[DetectionRecord] = []
        self.events: list[DeadlockEvent] = []
        # short-circuit cache: last full pass and the blocked epoch it saw
        self._sc_sim: Optional["NetworkSimulator"] = None
        self._sc_epoch = -1
        self._sc_record: Optional[DetectionRecord] = None
        self._sc_blocked: list[int] = []

    # -- CWG construction ------------------------------------------------------------
    @staticmethod
    def build_cwg(sim: "NetworkSimulator") -> ChannelWaitForGraph:
        """Snapshot the live network into a channel wait-for graph.

        Vertices are VC indices plus ``("rx", node, index)`` reception
        channels.
        Only messages owning at least one network resource contribute;
        source-queued messages hold nothing and cannot deadlock the network.
        """
        g = ChannelWaitForGraph()
        for msg in sim.active_messages():
            chain: list[Vertex] = [vc.index for vc in msg.vcs]
            if msg.is_draining:
                chain.append(("rx", msg.dest, msg.reception.index))
            if chain:
                g.add_ownership_chain(msg.id, chain)
        for msg in sim.active_messages():
            if not msg.vcs or not sim.routing_eligible(msg):
                continue
            if msg.blocked_since is None:
                # the header arrived this cycle and has not yet *failed* an
                # allocation attempt: it is requesting nothing yet
                continue
            if msg.needs_next_vc:
                cands = sim.route_candidates(msg)
                g.add_request(msg.id, [vc.index for vc in cands])
            elif msg.needs_reception:
                # the wait is recorded even if the reception channel freed
                # after this cycle's allocation phase (the message acquires
                # it next cycle): a free vertex has no outgoing arcs, so it
                # can never contribute to a knot
                g.add_request(
                    msg.id,
                    [
                        ("rx", msg.dest, i)
                        for i in range(sim.pool.rx_channels)
                    ],
                )
        return g

    # -- detection ---------------------------------------------------------------------
    def detect(self, sim: "NetworkSimulator") -> DetectionRecord:
        """Run one detection pass and append its record.

        With the engine's fast path, a pass is **short-circuited** when the
        simulator's ``blocked_epoch`` has not advanced since the previous
        pass and that pass found no deadlock: the epoch counts every
        ownership change and blocked-set transition, so an unchanged epoch
        means an unchanged CWG — same (empty) knot set, same vertex/arc/
        blocked counts, same cycle census.  Only the per-message blocked
        durations (which depend on the current cycle) are refreshed.  A
        pass that *found* a deadlock is never short-circuited: a persisting
        knot must be re-reported every interval, exactly as the full pass
        would.
        """
        cycle = sim.cycle
        if (
            self._sc_record is not None
            and not self._sc_record.events
            and self._sc_sim is sim
            and getattr(sim, "fast_path", False)
            and not getattr(sim, "_uncacheable_routing", True)
            and sim.blocked_epoch == self._sc_epoch
        ):
            return self._detect_unchanged(sim, cycle)
        g = sim.cwg_view() if hasattr(sim, "cwg_view") else sim.cwg_snapshot()
        adjacency = g.adjacency()
        knots = find_knots(adjacency)

        events: list[DeadlockEvent] = []
        all_deadlocked: set[int] = set()
        for knot in knots:
            deadlock_set = frozenset(g.messages_owning(knot))
            resource_set = frozenset(g.resources_of(deadlock_set))
            sub = {
                v: [w for w in adjacency[v] if w in knot]
                for v in knot
            }
            density = self._knot_density(sub)
            deps, transients = self._dependents(g, deadlock_set)
            event = DeadlockEvent(
                cycle=cycle,
                knot=knot,
                deadlock_set=deadlock_set,
                resource_set=resource_set,
                knot_cycle_density=density.count,
                density_saturated=density.saturated,
                dependent=deps,
                transient_dependent=transients,
            )
            events.append(event)
            all_deadlocked.update(deadlock_set)

        cycle_count: Optional[CycleCount] = None
        if self.count_cycles:
            cycle_count = count_simple_cycles(
                adjacency, limit=self.max_cycles_counted
            )

        blocked_list = g.blocked_messages()
        blocked_durations: list[tuple[int, int, bool]] = []
        if self.record_blocked_durations:
            for mid in blocked_list:
                msg = sim.message_by_id(mid)
                since = msg.blocked_since
                duration = cycle - since if since is not None else 0
                blocked_durations.append((mid, duration, mid in all_deadlocked))

        blocked_ids: Optional[tuple[int, ...]] = None
        if sim.config.detection_mode == "timeout":
            # The engine's blocked_messages() additionally drops a message
            # whose awaited reception channel freed after its last attempt;
            # apply the same filter so recovery sees an identical pool.
            ids = []
            for mid in blocked_list:
                msg = sim.message_by_id(mid)
                if (
                    msg.needs_reception
                    and sim.pool.free_reception(msg.dest) is not None
                ):
                    continue
                ids.append(mid)
            blocked_ids = tuple(ids)

        record = DetectionRecord(
            cycle=cycle,
            events=events,
            cwg_vertices=g.num_vertices,
            cwg_arcs=g.num_arcs,
            blocked_messages=len(blocked_list),
            messages_in_network=sim.messages_in_network,
            cycle_count=cycle_count,
            blocked_durations=blocked_durations,
            blocked_ids=blocked_ids,
        )
        self.records.append(record)
        self.events.extend(events)
        self._sc_sim = sim
        self._sc_epoch = getattr(sim, "blocked_epoch", -1)
        self._sc_record = record
        self._sc_blocked = blocked_list
        return record

    def _detect_unchanged(
        self, sim: "NetworkSimulator", cycle: int
    ) -> DetectionRecord:
        """Record a short-circuited pass (CWG unchanged, no deadlock).

        Structure-derived fields are copied from the cached record; only
        the blocked durations advance with the clock.  ``blocked_ids`` is
        reused as-is: reception-channel freeness is epoch-stable too (every
        acquire/release bumps the epoch).
        """
        prev = self._sc_record
        blocked_durations: list[tuple[int, int, bool]] = []
        if self.record_blocked_durations:
            for mid in self._sc_blocked:
                msg = sim.message_by_id(mid)
                since = msg.blocked_since
                duration = cycle - since if since is not None else 0
                blocked_durations.append((mid, duration, False))
        record = DetectionRecord(
            cycle=cycle,
            events=[],
            cwg_vertices=prev.cwg_vertices,
            cwg_arcs=prev.cwg_arcs,
            blocked_messages=prev.blocked_messages,
            messages_in_network=prev.messages_in_network,
            cycle_count=prev.cycle_count,
            blocked_durations=blocked_durations,
            blocked_ids=prev.blocked_ids,
        )
        self.records.append(record)
        self._sc_record = record
        return record

    def _knot_density(self, sub: dict) -> CycleCount:
        """Simple-cycle count within a knot, with structural shortcuts.

        * Every vertex of a strongly connected component with internal
          out-degree exactly 1 lies on one Hamiltonian cycle of the
          component: density is exactly 1, no enumeration needed.  This is
          the overwhelmingly common case (single-cycle deadlocks).
        * Huge multi-cycle knots (the whole-network tangles of deep
          saturation) would take minutes to enumerate; for knots larger
          than ``knot_size_enumeration_limit`` the cyclomatic number
          ``E - V + 1`` — the exact count of *independent* cycles and a
          lower bound on simple cycles in a strongly connected graph — is
          reported with the saturated flag set.
        * Everything else gets the exact bounded Johnson enumeration.
        """
        vertices = len(sub)
        arcs = sum(len(v) for v in sub.values())
        if arcs == vertices and all(len(v) == 1 for v in sub.values()):
            return CycleCount(1, False)
        if vertices > self.knot_size_enumeration_limit:
            return CycleCount(max(2, arcs - vertices + 1), True)
        return count_simple_cycles(sub, limit=self.knot_density_cap)

    @staticmethod
    def _dependents(
        g: ChannelWaitForGraph, deadlock_set: frozenset[int]
    ) -> tuple[frozenset[int], frozenset[int]]:
        """Dependent and transient-dependent messages for one deadlock.

        A blocked message outside the deadlock set is *dependent* when every
        resource it waits on is owned by a deadlock-set or (recursively)
        dependent message — it cannot progress until the deadlock resolves,
        yet removing it would not break the knot.  A *transient* dependent
        waits on at least one such resource but also has an alternative, so
        it may escape on its own.
        """
        dependents: set[int] = set()
        changed = True
        while changed:
            changed = False
            for mid, targets in g.requests.items():
                if mid in deadlock_set or mid in dependents:
                    continue
                owners = [g.owner.get(t) for t in targets]
                if all(
                    o is not None and (o in deadlock_set or o in dependents)
                    for o in owners
                ):
                    dependents.add(mid)
                    changed = True
        transients: set[int] = set()
        blocking = deadlock_set | dependents
        for mid, targets in g.requests.items():
            if mid in deadlock_set or mid in dependents:
                continue
            owners = [g.owner.get(t) for t in targets]
            if any(o in blocking for o in owners if o is not None):
                transients.add(mid)
        return frozenset(dependents), frozenset(transients)
