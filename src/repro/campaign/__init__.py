"""Resumable, fault-tolerant sweep campaigns.

Regenerating a paper figure is hundreds of independent simulations; this
package makes that workload durable.  :class:`~repro.campaign.store.
ResultStore` is a content-addressed on-disk store (one atomic JSON
artifact per completed :class:`~repro.config.SimulationConfig`, keyed by a
stable config digest + schema version, indexed by a manifest), and
:class:`~repro.campaign.runner.CampaignRunner` drives sweep points through
killable worker processes with retry/backoff, per-point wall-clock
timeouts, graceful degradation (a point that exhausts its retries becomes
a recorded :class:`~repro.campaign.store.PointFailure`, not an abort) and
resume (points already in the store are never re-run; determinism makes
the merged sweep bit-identical to an uninterrupted run).

The :mod:`repro.campaign.service` subpackage scales a campaign past one
machine: an asyncio lease scheduler with work stealing, remote TCP
workers (``repro campaign serve`` / ``repro campaign worker``), journaled
concurrent-writer store updates, and a live status endpoint — all while
keeping the drained sweep bit-identical to a single-host run.

Entry points: ``repro campaign run|status|resume|clean|serve|worker|
watch|rebuild`` on the CLI, ``--store/--retries/--timeout`` on
``repro experiment``, and
:func:`repro.experiments.base.experiment_sweep` for programmatic use.
"""

from repro.campaign.runner import CampaignRunner, CampaignSweep
from repro.campaign.store import (
    SCHEMA_VERSION,
    PointFailure,
    ResultStore,
    StoredPoint,
    StoreSchemaError,
    config_digest,
    new_writer_id,
)

__all__ = [
    "CampaignRunner",
    "CampaignSweep",
    "ResultStore",
    "StoredPoint",
    "PointFailure",
    "StoreSchemaError",
    "config_digest",
    "new_writer_id",
    "SCHEMA_VERSION",
]
