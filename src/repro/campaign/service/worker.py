"""The remote campaign worker: claim → execute → report, over TCP.

``repro campaign worker --connect HOST:PORT`` runs :func:`run_worker`,
which connects a :class:`WorkerSession` to a campaign service and drains
points until the service says ``done``.  Points execute through the exact
same forked-worker / retry / timeout machinery a single-host campaign
uses (:func:`~repro.campaign.service.executor.execute_point`), so the
artifact a remote worker ships back is byte-identical to what the
service's host would have written itself.

While the main thread is blocked inside a point, a side thread heartbeats
the lease so the scheduler knows the worker is alive (heartbeats are
unacknowledged — see :mod:`repro.campaign.service.protocol`).  The
``drop-lease-heartbeat`` injectable fault (:mod:`repro.faults`) suppresses
those heartbeats for matching points, which is how the test-suite proves
the scheduler's reaper actually detects silent workers and requeues their
points.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Optional

from repro.campaign.service import protocol
from repro.campaign.service.executor import execute_point
from repro.campaign.store import SCHEMA_VERSION
from repro.errors import ReproError
from repro.faults import active_faults, point_fault_matches

__all__ = ["WorkerSession", "run_worker", "WorkerError"]


class WorkerError(ReproError):
    """The service refused this worker or the session broke irrecoverably."""


class WorkerSession:
    """One worker's connection to a campaign service.

    Parameters
    ----------
    host / port:
        The service's worker-protocol endpoint.
    worker_id:
        Stable identity reported to the scheduler; defaults to
        ``hostname/pid``.
    retries / backoff_s / timeout_s:
        Per-point fork machinery knobs (worker-side retries are internal
        to a lease — the scheduler only sees the final outcome).
    max_points:
        Stop after executing this many points (``None`` = until drained);
        used by tests and batch-queue wrappers.
    exit_when_done:
        When ``False``, keep polling after a ``done`` — for workers that
        outlive one campaign.  The default exits cleanly.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        worker_id: Optional[str] = None,
        schema_version: int = SCHEMA_VERSION,
        retries: int = 2,
        backoff_s: float = 0.25,
        timeout_s: Optional[float] = None,
        max_points: Optional[int] = None,
        exit_when_done: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.worker_id = worker_id or f"{socket.gethostname()}/{os.getpid()}"
        self.schema_version = schema_version
        self.retries = retries
        self.backoff_s = backoff_s
        self.timeout_s = timeout_s
        self.max_points = max_points
        self.exit_when_done = exit_when_done
        self.heartbeat_s = 5.0  # overwritten by the welcome message
        self.stats = {"claims": 0, "points_done": 0, "points_failed": 0}
        self._sock: Optional[socket.socket] = None
        self._fh = None
        self._send_lock = threading.Lock()

    # -- wire helpers ------------------------------------------------------------
    def _send(self, message: dict) -> None:
        with self._send_lock:
            protocol.send_line(self._sock, message)

    def _recv(self) -> dict:
        message = protocol.recv_line(self._fh)
        if message is None:
            raise WorkerError("service closed the connection")
        if message["type"] == "error":
            raise WorkerError(f"service error: {message.get('detail')}")
        return message

    # -- session -----------------------------------------------------------------
    def run(self) -> dict:
        """Drain points until done (or ``max_points``); returns stats."""
        self._sock = socket.create_connection((self.host, self.port), timeout=30.0)
        self._sock.settimeout(None)
        self._fh = self._sock.makefile("rb")
        try:
            self._send(
                {
                    "type": "hello",
                    "worker": self.worker_id,
                    "schema_version": self.schema_version,
                    "protocol_version": protocol.PROTOCOL_VERSION,
                }
            )
            welcome = self._recv()
            if welcome["type"] != "welcome":
                raise WorkerError(f"expected welcome, got {welcome['type']!r}")
            self.heartbeat_s = float(welcome.get("heartbeat_s", self.heartbeat_s))
            while True:
                if (
                    self.max_points is not None
                    and self.stats["points_done"] + self.stats["points_failed"]
                    >= self.max_points
                ):
                    break
                self._send({"type": "claim"})
                reply = self._recv()
                if reply["type"] == "done":
                    if self.exit_when_done:
                        break
                    time.sleep(0.5)
                elif reply["type"] == "idle":
                    time.sleep(float(reply.get("retry_after_s", 0.5)))
                elif reply["type"] == "lease":
                    self._run_lease(reply)
                else:
                    raise WorkerError(
                        f"unexpected claim reply {reply['type']!r}"
                    )
            try:
                self._send({"type": "bye"})
            except OSError:
                pass
        finally:
            try:
                self._fh.close()
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._fh = None
        return dict(self.stats)

    def _run_lease(self, lease: dict) -> None:
        self.stats["claims"] += 1
        digest = lease["digest"]
        # the drop-lease-heartbeat fault silences this lease's heartbeats so
        # the suite can prove the reaper notices (sampled per lease, here)
        silent = "drop-lease-heartbeat" in active_faults() and point_fault_matches(
            lease.get("label", "")
        )
        stop = threading.Event()
        beater = threading.Thread(
            target=self._heartbeat_loop, args=(digest, stop, silent), daemon=True
        )
        beater.start()
        try:
            outcome = execute_point(
                lease["config"],
                schema_version=self.schema_version,
                retries=self.retries,
                backoff_s=self.backoff_s,
                timeout_s=self.timeout_s,
            )
        finally:
            stop.set()
            beater.join(timeout=5.0)
        if outcome["ok"]:
            self._send(
                {
                    "type": "result",
                    "digest": digest,
                    "artifact": outcome["artifact"],
                    "attempts": outcome["attempts"],
                }
            )
            self._recv()  # ack; stale/duplicate verdicts are fine to ignore
            self.stats["points_done"] += 1
        else:
            self._send(
                {
                    "type": "point-failed",
                    "digest": digest,
                    "error": outcome["error"],
                    "kind": outcome["kind"],
                    "attempts": outcome["attempts"],
                }
            )
            self._recv()
            self.stats["points_failed"] += 1

    def _heartbeat_loop(
        self, digest: str, stop: threading.Event, silent: bool
    ) -> None:
        while not stop.wait(self.heartbeat_s):
            if silent:
                continue
            try:
                self._send({"type": "heartbeat", "digest": digest})
            except OSError:
                return  # main thread will see the broken socket


def run_worker(
    host: str,
    port: int,
    **kwargs,
) -> dict:
    """Connect one :class:`WorkerSession` and drain; returns its stats."""
    return WorkerSession(host, port, **kwargs).run()
