"""ServiceRunner: drive experiment sweeps through a campaign service.

:func:`~repro.experiments.base.set_campaign_runner` accepts anything with
the :class:`~repro.campaign.runner.CampaignRunner` surface (``run_sweep``
/ ``run_points`` / ``store`` / ``registry``).  :class:`ServiceRunner`
implements that surface on top of a live :class:`~repro.campaign.service.
server.CampaignService`: points are submitted to the scheduler, drained
by whatever mix of local slots and remote TCP workers is attached, and
collected back *from the store* — the same materialize-through-the-store
rule :class:`CampaignRunner` follows, which is what makes a distributed
sweep's merged :class:`~repro.metrics.sweep.SweepResult` bit-identical to
a single-host run's.

``repro campaign serve`` wires one of these up so an entire experiment
can be drained by remote workers with no experiment-code changes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.campaign.runner import CampaignSweep
from repro.campaign.store import PointFailure, StoredPoint
from repro.config import SimulationConfig
from repro.metrics.stats import RunResult
from repro.metrics.sweep import SweepResult, obs_rollup
from repro.obs.registry import MetricsRegistry

__all__ = ["ServiceRunner"]


class ServiceRunner:
    """A :class:`CampaignRunner` look-alike backed by a running service.

    Parameters
    ----------
    service:
        A started :class:`~repro.campaign.service.server.CampaignService`.
    tenant / priority:
        Scheduling identity for every point this runner submits — two
        runners sharing one service can carry different tenants, and the
        scheduler's quotas keep either from starving the other.
    wait_timeout_s:
        Upper bound on one batch drain (``None`` = wait forever).
    """

    def __init__(
        self,
        service,
        *,
        tenant: str = "default",
        priority: int = 0,
        wait_timeout_s: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.service = service
        self.store = service.store
        self.tenant = tenant
        self.priority = priority
        self.wait_timeout_s = wait_timeout_s
        self.registry = registry if registry is not None else MetricsRegistry()

    def run_sweep(
        self,
        base: SimulationConfig,
        loads: Sequence[float],
        label: str = "",
        *,
        progress: Callable[[SimulationConfig, RunResult], None] | None = None,
    ) -> CampaignSweep:
        """Submit a load sweep, wait for the drain, merge from the store."""
        from repro.network.simulator import build_topology

        capacity = build_topology(base).capacity_flits_per_node_cycle
        configs = [base.replace(load=load) for load in loads]
        out = self.run_points(configs, progress=progress)
        completed: dict[int, StoredPoint] = out["completed"]
        done_loads = [loads[i] for i in sorted(completed)]
        results = [completed[i].result for i in sorted(completed)]
        snapshots = [completed[i].obs for i in sorted(completed)]
        sweep = SweepResult(
            label=label or base.label(),
            loads=done_loads,
            results=results,
            capacity=capacity,
            obs=obs_rollup(done_loads, snapshots),
            failures=list(out["failures"]),
        )
        return CampaignSweep(
            sweep=sweep,
            failures=out["failures"],
            resumed=out["resumed"],
            executed=out["executed"],
            remaining=out["remaining"],
        )

    def run_points(
        self,
        configs: Sequence[SimulationConfig],
        *,
        progress: Callable[[SimulationConfig, RunResult], None] | None = None,
    ) -> dict:
        """Submit, drain, and collect a batch; CampaignRunner-shaped result.

        Unlike the local runner's incremental callbacks, ``progress``
        fires after the drain completes (results arrive from many workers
        at once; per-point streaming lives on the status endpoint).
        """
        self.registry.counter("campaign/points_total").inc(len(configs))
        submitted = self.service.submit_points(
            configs, tenant=self.tenant, priority=self.priority
        )
        statuses = self.service.wait_points(
            submitted["digests"], timeout=self.wait_timeout_s
        )
        resumed = len(submitted["resumed"])
        if resumed:
            self.registry.counter("campaign/points_resumed").inc(resumed)

        completed: dict[int, StoredPoint] = {}
        failures: list[PointFailure] = []
        executed = 0
        for index, config in enumerate(configs):
            digest = submitted["digests"][index]
            status = statuses[digest]
            if status["status"] == "done":
                point = self.store.load(config)
                completed[index] = point
                if not status.get("resumed"):
                    executed += 1
                if progress is not None:
                    progress(config, point.result)
            else:
                failures.append(
                    PointFailure(
                        label=status.get("label", config.label()),
                        digest=digest,
                        load=config.load,
                        seed=config.seed,
                        error=status.get("error") or "point failed",
                        attempts=status.get("attempts", 1),
                        kind=status.get("kind") or "error",
                    )
                )
        self.registry.counter("campaign/points_executed").inc(executed)
        if failures:
            self.registry.counter("campaign/failures").inc(len(failures))
        return {
            "completed": completed,
            "failures": failures,
            "resumed": resumed,
            "executed": executed,
            "remaining": 0,
        }
