"""Work-stealing lease scheduler for distributed sweep campaigns.

:class:`LeaseScheduler` owns the pending-point queue of a campaign
service.  Executors — local fork slots and remote TCP workers alike —
**claim** points rather than being assigned them, which makes the system
work-stealing by construction: a fast machine simply claims more often.

Every claim grants a **lease**: an exclusive, time-bounded right to run
one point.  The worker extends its lease by heartbeating; a worker that
dies (or silently stops heartbeating — see the ``drop-lease-heartbeat``
injectable fault in :mod:`repro.faults`) lets its lease expire, and the
reaper (:meth:`LeaseScheduler.reap`) reclaims it and **requeues** the
point for the next claimer.  Because simulations are deterministic given
their config, a point completed after a reclaim is bit-identical to the
one the dead worker would have produced — requeueing is always safe, and
a *stale* result arriving later (the original worker was slow, not dead)
is either accepted (point still open) or dropped (point already done)
without ever corrupting the store.

Scheduling order is **priority class first** (higher int wins), FIFO
within a class.  **Per-tenant quotas** cap how many leases a tenant may
hold concurrently, so a bulk sweep cannot starve an interactive one
sharing the service.

The scheduler is a plain single-threaded state machine: the campaign
service calls it only from its asyncio event-loop thread, tests drive it
directly with a fake clock.  It performs no I/O — artifact and journal
writes are the service's job.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["LeaseScheduler", "SchedulerPoint", "Lease"]

#: terminal failure kind for a point whose lease expired too many times
LEASE_EXPIRED_KIND = "lease-expired"


@dataclass
class SchedulerPoint:
    """One sweep point tracked by the scheduler."""

    digest: str
    config: dict  #: canonical config JSON (what the worker receives)
    label: str
    load: float
    seed: int
    tenant: str
    priority: int
    status: str = "pending"  #: pending | leased | done | failed
    lease_attempts: int = 0  #: lease grants so far (worker retries are internal)
    worker: Optional[str] = None  #: current or last lease holder
    error: Optional[str] = None
    kind: Optional[str] = None


@dataclass
class Lease:
    """An exclusive, time-bounded right to execute one point."""

    digest: str
    worker: str
    tenant: str
    granted_at: float
    expires_at: float


@dataclass
class _WorkerInfo:
    connected_at: float
    leases: set = field(default_factory=set)
    last_seen: float = 0.0


class LeaseScheduler:
    """Pending-point queue with leases, priorities and tenant quotas.

    Parameters
    ----------
    lease_ttl:
        Seconds a lease survives without a heartbeat before the reaper
        reclaims it and requeues the point.
    requeue_limit:
        Maximum lease grants per point.  A point whose leases keep dying
        past this bound degrades to a terminal ``lease-expired`` failure
        instead of cycling forever through crashing workers.
    quotas:
        ``{tenant: max_concurrent_leases}``; tenants not listed fall back
        to ``default_quota`` (``None`` = unlimited).
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        *,
        lease_ttl: float = 15.0,
        requeue_limit: int = 3,
        quotas: Optional[dict[str, int]] = None,
        default_quota: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        self.lease_ttl = lease_ttl
        self.requeue_limit = max(1, requeue_limit)
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self._clock = clock
        self.points: dict[str, SchedulerPoint] = {}
        self.leases: dict[str, Lease] = {}
        self.workers: dict[str, _WorkerInfo] = {}
        self.counters: dict[str, int] = {}
        #: heap of (-priority, submit_seq, digest); entries for points no
        #: longer pending are dropped lazily on pop
        self._heap: list[tuple[int, int, str]] = []
        self._seq = 0

    # -- bookkeeping helpers -----------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _quota(self, tenant: str) -> Optional[int]:
        return self.quotas.get(tenant, self.default_quota)

    def _tenant_leases(self, tenant: str) -> int:
        return sum(1 for lease in self.leases.values() if lease.tenant == tenant)

    # -- submission --------------------------------------------------------------
    def submit(
        self,
        digest: str,
        config: dict,
        label: str,
        load: float,
        seed: int,
        *,
        tenant: str = "default",
        priority: int = 0,
    ) -> bool:
        """Queue a point; returns ``False`` if the digest is already known."""
        if digest in self.points:
            return False
        self.points[digest] = SchedulerPoint(
            digest=digest, config=config, label=label, load=load, seed=seed,
            tenant=tenant, priority=priority,
        )
        heapq.heappush(self._heap, (-priority, self._seq, digest))
        self._seq += 1
        self._count("submitted")
        return True

    # -- worker registry ---------------------------------------------------------
    def connect_worker(self, worker: str) -> None:
        now = self._clock()
        self.workers[worker] = _WorkerInfo(connected_at=now, last_seen=now)
        self._count("worker_connects")

    def disconnect_worker(self, worker: str) -> list[str]:
        """Drop a worker and immediately requeue every lease it held.

        A closed TCP connection is a stronger death signal than a missed
        heartbeat, so the points go back to pending without waiting out
        the lease TTL.  Returns the requeued digests.
        """
        info = self.workers.pop(worker, None)
        if info is None:
            return []
        requeued = []
        for digest in sorted(info.leases):
            if self._release_to_pending(digest, why="worker_disconnect"):
                requeued.append(digest)
        self._count("worker_disconnects")
        return requeued

    # -- the lease lifecycle -----------------------------------------------------
    def claim(self, worker: str) -> Optional[dict]:
        """Grant the best eligible pending point to ``worker``, or ``None``.

        Best = highest priority class, oldest submission within it, whose
        tenant is under quota.  Quota-blocked entries are put back intact.
        """
        if worker not in self.workers:
            self.connect_worker(worker)
        info = self.workers[worker]
        info.last_seen = self._clock()
        blocked: list[tuple[int, int, str]] = []
        granted: Optional[SchedulerPoint] = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            point = self.points.get(entry[2])
            if point is None or point.status != "pending":
                continue  # lazy deletion of stale heap entries
            quota = self._quota(point.tenant)
            if quota is not None and self._tenant_leases(point.tenant) >= quota:
                blocked.append(entry)
                continue
            granted = point
            break
        for entry in blocked:
            heapq.heappush(self._heap, entry)
        if granted is None:
            return None
        now = self._clock()
        granted.status = "leased"
        granted.worker = worker
        granted.lease_attempts += 1
        self.leases[granted.digest] = Lease(
            digest=granted.digest, worker=worker, tenant=granted.tenant,
            granted_at=now, expires_at=now + self.lease_ttl,
        )
        info.leases.add(granted.digest)
        self._count("leases_granted")
        return {
            "digest": granted.digest,
            "config": granted.config,
            "label": granted.label,
            "attempt": granted.lease_attempts,
        }

    def heartbeat(self, worker: str, digest: str) -> bool:
        """Extend a live lease; ``False`` if it is gone or owned elsewhere."""
        info = self.workers.get(worker)
        if info is not None:
            info.last_seen = self._clock()
        lease = self.leases.get(digest)
        if lease is None or lease.worker != worker:
            return False
        lease.expires_at = self._clock() + self.lease_ttl
        self._count("heartbeats")
        return True

    def complete(self, worker: str, digest: str) -> str:
        """Record a point's completion; returns how the report was treated.

        * ``"ok"`` — the reporting worker held the live lease;
        * ``"stale"`` — its lease was reclaimed meanwhile, but the point
          is still open, so the (deterministic, hence identical) result is
          accepted anyway;
        * ``"duplicate"`` — the point already completed; drop the report;
        * ``"unknown"`` — no such point was ever submitted.
        """
        point = self.points.get(digest)
        if point is None:
            self._count("unknown_reports")
            return "unknown"
        if point.status == "done":
            self._count("duplicate_results")
            return "duplicate"
        lease = self.leases.get(digest)
        verdict = "ok" if lease is not None and lease.worker == worker else "stale"
        if verdict == "stale":
            self._count("stale_results")
        self._drop_lease(digest)
        point.status = "done"
        point.worker = worker
        point.error = None
        point.kind = None
        self._count("completed")
        return verdict

    def fail(self, worker: str, digest: str, error: str, kind: str = "error") -> str:
        """Record a worker-reported terminal point failure.

        The worker's own retry/backoff machinery already re-attempted the
        point, so a reported failure is terminal — unlike a *lease* death,
        which requeues.  Stale reports (lease reclaimed, point requeued or
        finished elsewhere) are dropped: another attempt is in flight.
        """
        point = self.points.get(digest)
        if point is None:
            self._count("unknown_reports")
            return "unknown"
        lease = self.leases.get(digest)
        if point.status != "leased" or lease is None or lease.worker != worker:
            self._count("stale_failures")
            return "stale"
        self._drop_lease(digest)
        point.status = "failed"
        point.error = error
        point.kind = kind
        self._count("failed")
        return "failed"

    def reap(self) -> list[str]:
        """Reclaim every expired lease; requeue (or terminally fail) points.

        The liveness half of work stealing: this is what detects a worker
        that died — or stopped heartbeating — mid-point and puts the point
        back where a sibling can claim it.  Returns the affected digests.
        """
        now = self._clock()
        expired = [
            digest for digest, lease in self.leases.items()
            if now >= lease.expires_at
        ]
        for digest in expired:
            self._release_to_pending(digest, why="lease_expired")
        return expired

    def next_deadline(self) -> Optional[float]:
        """Earliest lease expiry (absolute clock time); reaper wake hint."""
        if not self.leases:
            return None
        return min(lease.expires_at for lease in self.leases.values())

    def _drop_lease(self, digest: str) -> None:
        lease = self.leases.pop(digest, None)
        if lease is None:
            return
        info = self.workers.get(lease.worker)
        if info is not None:
            info.leases.discard(digest)

    def _release_to_pending(self, digest: str, *, why: str) -> bool:
        """Reclaim one lease: requeue the point or fail it past the limit."""
        point = self.points.get(digest)
        self._drop_lease(digest)
        if point is None or point.status != "leased":
            return False
        self._count("leases_reclaimed")
        if point.lease_attempts >= self.requeue_limit:
            point.status = "failed"
            point.error = (
                f"lease expired {point.lease_attempts} time(s) "
                f"(last holder {point.worker}); requeue limit reached"
            )
            point.kind = LEASE_EXPIRED_KIND
            self._count("failed")
            return False
        point.status = "pending"
        heapq.heappush(self._heap, (-point.priority, self._seq, digest))
        self._seq += 1
        self._count("points_requeued")
        return True

    # -- introspection -----------------------------------------------------------
    def is_drained(self, digests: Optional[list[str]] = None) -> bool:
        """Are the given points (default: all) terminally done or failed?"""
        pool = (
            self.points.values()
            if digests is None
            else [self.points[d] for d in digests if d in self.points]
        )
        return all(p.status in ("done", "failed") for p in pool)

    def status(self) -> dict:
        """JSON-able snapshot for the live status endpoint."""
        now = self._clock()
        by_status: dict[str, int] = {}
        tenants: dict[str, dict[str, int]] = {}
        for point in self.points.values():
            by_status[point.status] = by_status.get(point.status, 0) + 1
            t = tenants.setdefault(
                point.tenant,
                {"pending": 0, "leased": 0, "done": 0, "failed": 0},
            )
            t[point.status] += 1
        for tenant, counts in tenants.items():
            quota = self._quota(tenant)
            if quota is not None:
                counts["quota"] = quota
        return {
            "points": {
                "total": len(self.points),
                "pending": by_status.get("pending", 0),
                "leased": by_status.get("leased", 0),
                "done": by_status.get("done", 0),
                "failed": by_status.get("failed", 0),
            },
            "tenants": tenants,
            "workers": {
                worker: {
                    "leases": sorted(info.leases),
                    "connected_s": round(now - info.connected_at, 3),
                    "idle_s": round(now - info.last_seen, 3),
                }
                for worker, info in sorted(self.workers.items())
            },
            "leases": {
                digest: {
                    "worker": lease.worker,
                    "tenant": lease.tenant,
                    "expires_in_s": round(lease.expires_at - now, 3),
                }
                for digest, lease in sorted(self.leases.items())
            },
            "failed_points": {
                p.digest: {"label": p.label, "error": p.error, "kind": p.kind}
                for p in self.points.values()
                if p.status == "failed"
            },
            "counters": dict(sorted(self.counters.items())),
            "lease_ttl": self.lease_ttl,
        }
